// demographics.hpp — downloader demographics (paper §2: every downloader
// IP is mapped through the GeoIP database to its ISP and location). The
// paper uses this mapping for the consumer-side checks of §3.2; this
// module generalises it into country/ISP breakdowns of the downloading
// population — the demographic view earlier BitTorrent studies (Zhang et
// al., Pouwelse et al.) report.
#pragma once

#include <string>
#include <vector>

#include "crawler/dataset.hpp"
#include "geo/geo_db.hpp"

namespace btpub {

struct DemographicRow {
  std::string label;           // country code or ISP name
  std::size_t downloaders = 0; // distinct IPs
  double share = 0.0;          // of all located downloader IPs
};

struct DownloaderDemographics {
  std::size_t total_distinct_ips = 0;
  std::size_t located_ips = 0;
  std::vector<DemographicRow> by_country;  // descending, top-k
  std::vector<DemographicRow> by_isp;      // descending, top-k
};

/// Maps every distinct downloader IP and aggregates by country and ISP.
/// `top_k` limits both breakdowns (0 = unlimited).
DownloaderDemographics downloader_demographics(const Dataset& dataset,
                                               const GeoDb& geo,
                                               std::size_t top_k = 10);

/// Country breakdown of *publishers* (identified IPs), weighted by
/// published content — the supply-side counterpart.
std::vector<DemographicRow> publisher_countries(const Dataset& dataset,
                                                const GeoDb& geo,
                                                std::size_t top_k = 10);

}  // namespace btpub
