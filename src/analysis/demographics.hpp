// demographics.hpp — downloader demographics (paper §2: every downloader
// IP is mapped through the GeoIP database to its ISP and location). The
// paper uses this mapping for the consumer-side checks of §3.2; this
// module generalises it into country/ISP breakdowns of the downloading
// population — the demographic view earlier BitTorrent studies (Zhang et
// al., Pouwelse et al.) report.
#pragma once

#include <string>
#include <vector>

#include "crawler/compact_dataset.hpp"
#include "crawler/dataset.hpp"
#include "geo/geo_db.hpp"

namespace btpub {

struct DemographicRow {
  std::string label;           // country code or ISP name
  std::size_t downloaders = 0; // distinct IPs
  double share = 0.0;          // of all located downloader IPs
};

struct DownloaderDemographics {
  std::size_t total_distinct_ips = 0;
  std::size_t located_ips = 0;
  std::vector<DemographicRow> by_country;  // descending, top-k
  std::vector<DemographicRow> by_isp;      // descending, top-k
};

/// Maps every distinct downloader IP and aggregates by country and ISP.
/// `top_k` limits both breakdowns (0 = unlimited). `threads` shards both
/// the per-torrent dedup scan and the geo lookups over a worker pool (0 =
/// hardware concurrency); shard results merge in span order / by
/// commutative sums, so the breakdown is byte-identical to serial at any
/// thread count.
DownloaderDemographics downloader_demographics(const Dataset& dataset,
                                               const GeoDb& geo,
                                               std::size_t top_k = 10,
                                               std::size_t threads = 1);

/// Span-native overload over the compact view (in-memory or mmap-ed).
DownloaderDemographics downloader_demographics(const CompactDatasetView& view,
                                               const GeoDb& geo,
                                               std::size_t top_k = 10,
                                               std::size_t threads = 1);

/// Country breakdown of *publishers* (identified IPs), weighted by
/// published content — the supply-side counterpart.
std::vector<DemographicRow> publisher_countries(const Dataset& dataset,
                                                const GeoDb& geo,
                                                std::size_t top_k = 10);

/// Span-native overload.
std::vector<DemographicRow> publisher_countries(const CompactDatasetView& view,
                                                const GeoDb& geo,
                                                std::size_t top_k = 10);

}  // namespace btpub
