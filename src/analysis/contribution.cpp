#include "analysis/contribution.hpp"

#include <unordered_map>

namespace btpub {

ContributionCurve contribution_curve(const IdentityAnalysis& identity,
                                     std::span<const double> top_percents) {
  ContributionCurve curve;
  std::vector<double> contributions;
  if (!identity.usernames().empty()) {
    contributions.reserve(identity.usernames().size());
    for (const UsernameStats& stats : identity.usernames()) {
      contributions.push_back(static_cast<double>(stats.content_count));
    }
  } else {
    // mn08: publishers are identified by IP address only.
    contributions.reserve(identity.ips().size());
    for (const IpStats& stats : identity.ips()) {
      contributions.push_back(static_cast<double>(stats.content_count));
    }
  }
  curve.publishers = contributions.size();
  curve.contents = identity.total_content();
  curve.points = top_share_curve(contributions, top_percents);
  curve.gini = gini(contributions);
  return curve;
}

TopConsumptionStats top_publisher_consumption(const Dataset& dataset,
                                              const IdentityAnalysis& identity,
                                              std::size_t top_n) {
  TopConsumptionStats stats;
  stats.considered = std::min(top_n, identity.ips().size());

  // Count how often each top publisher IP shows up as a downloader of
  // *other* torrents.
  std::unordered_map<IpAddress, std::size_t> downloads;
  for (std::size_t i = 0; i < stats.considered; ++i) {
    downloads.emplace(identity.ips()[i].ip, 0);
  }
  for (const auto& torrent_ips : dataset.downloaders) {
    for (const IpAddress& ip : torrent_ips) {
      const auto it = downloads.find(ip);
      if (it != downloads.end()) ++it->second;
    }
  }
  for (std::size_t i = 0; i < stats.considered; ++i) {
    const std::size_t count = downloads[identity.ips()[i].ip];
    if (count == 0) ++stats.zero_downloads;
    if (count < 5) ++stats.under_five_downloads;
  }
  return stats;
}

}  // namespace btpub
