#include "analysis/contribution.hpp"

#include <unordered_map>

#include "util/parallel.hpp"

namespace btpub {
namespace {

/// Sharded scan over every downloader entry; `for_each_ip(t, fn)` invokes
/// fn for each downloader IP of torrent t. Workers only read the shared
/// `tracked` set and accumulate shard-local counts; the merge is a
/// commutative sum, so the totals equal the serial scan's exactly.
template <typename ForEachIp>
TopConsumptionStats consumption_impl(std::size_t torrent_count,
                                     const IdentityAnalysis& identity,
                                     std::size_t top_n, std::size_t threads,
                                     ForEachIp&& for_each_ip) {
  TopConsumptionStats stats;
  stats.considered = std::min(top_n, identity.ips().size());

  std::unordered_map<IpAddress, std::size_t> downloads;
  for (std::size_t i = 0; i < stats.considered; ++i) {
    downloads.emplace(identity.ips()[i].ip, 0);
  }
  const auto shards = sharded_scan(
      torrent_count, threads,
      [&](std::size_t begin, std::size_t end) {
        std::unordered_map<IpAddress, std::size_t> local;
        for (std::size_t t = begin; t < end; ++t) {
          for_each_ip(t, [&](const IpAddress& ip) {
            if (downloads.find(ip) != downloads.end()) ++local[ip];
          });
        }
        return local;
      });
  for (const auto& shard : shards) {
    for (const auto& [ip, count] : shard) downloads[ip] += count;
  }

  for (std::size_t i = 0; i < stats.considered; ++i) {
    const std::size_t count = downloads[identity.ips()[i].ip];
    if (count == 0) ++stats.zero_downloads;
    if (count < 5) ++stats.under_five_downloads;
  }
  return stats;
}

}  // namespace

ContributionCurve contribution_curve(const IdentityAnalysis& identity,
                                     std::span<const double> top_percents) {
  ContributionCurve curve;
  std::vector<double> contributions;
  if (!identity.usernames().empty()) {
    contributions.reserve(identity.usernames().size());
    for (const UsernameStats& stats : identity.usernames()) {
      contributions.push_back(static_cast<double>(stats.content_count));
    }
  } else {
    // mn08: publishers are identified by IP address only.
    contributions.reserve(identity.ips().size());
    for (const IpStats& stats : identity.ips()) {
      contributions.push_back(static_cast<double>(stats.content_count));
    }
  }
  curve.publishers = contributions.size();
  curve.contents = identity.total_content();
  curve.points = top_share_curve(contributions, top_percents);
  curve.gini = gini(contributions);
  return curve;
}

TopConsumptionStats top_publisher_consumption(const Dataset& dataset,
                                              const IdentityAnalysis& identity,
                                              std::size_t top_n,
                                              std::size_t threads) {
  // Count how often each top publisher IP shows up as a downloader of
  // *other* torrents.
  return consumption_impl(
      dataset.downloaders.size(), identity, top_n, threads,
      [&dataset](std::size_t t, auto&& fn) {
        for (const IpAddress& ip : dataset.downloaders[t]) fn(ip);
      });
}

TopConsumptionStats top_publisher_consumption(const CompactDatasetView& view,
                                              const IdentityAnalysis& identity,
                                              std::size_t top_n,
                                              std::size_t threads) {
  return consumption_impl(
      view.torrents.size(), identity, top_n, threads,
      [&view](std::size_t t, auto&& fn) {
        const TorrentRecordPod& pod = view.torrents[t];
        const std::uint32_t n = pod.downloaders.size();
        for (std::uint32_t i = 0; i < n; ++i) fn(view.downloader_ip(pod, i));
      });
}

}  // namespace btpub
