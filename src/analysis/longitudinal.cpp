#include "analysis/longitudinal.hpp"

#include <algorithm>

namespace btpub {

std::vector<PublisherHistory> publisher_histories(
    const Dataset& dataset, const ClassificationResult& classification) {
  std::vector<PublisherHistory> histories;
  for (const PublisherProfile& profile : classification.profiles) {
    const auto it = dataset.user_pages.find(profile.username);
    if (it == dataset.user_pages.end() || it->second.publish_times.empty()) {
      continue;
    }
    const auto& times = it->second.publish_times;
    PublisherHistory history;
    history.username = profile.username;
    history.cls = profile.cls;
    history.total_published = times.size();
    history.lifetime_days =
        std::max(to_days(times.back() - times.front()), 1.0);
    history.publish_rate =
        static_cast<double>(times.size()) / history.lifetime_days;
    histories.push_back(std::move(history));
  }
  return histories;
}

std::vector<LongitudinalRow> longitudinal_table(
    const Dataset& dataset, const ClassificationResult& classification) {
  const auto histories = publisher_histories(dataset, classification);
  std::vector<LongitudinalRow> rows;
  for (const BusinessClass cls :
       {BusinessClass::BtPortal, BusinessClass::OtherWeb, BusinessClass::Altruistic}) {
    std::vector<double> lifetimes, rates;
    for (const PublisherHistory& h : histories) {
      if (h.cls != cls) continue;
      lifetimes.push_back(h.lifetime_days);
      rates.push_back(h.publish_rate);
    }
    LongitudinalRow row;
    row.cls = cls;
    row.publishers = lifetimes.size();
    row.lifetime_days = summary_row(lifetimes);
    row.publish_rate = summary_row(rates);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace btpub
