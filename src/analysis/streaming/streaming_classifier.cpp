#include "analysis/streaming/streaming_classifier.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <mutex>
#include <unordered_set>

#include "analysis/session.hpp"

namespace btpub {

StreamingClassifier::StreamingClassifier(const GeoDb& geo,
                                         const WebsiteDirectory& websites,
                                         StreamingConfig config)
    : geo_(&geo),
      websites_(&websites),
      config_(config),
      announce_rates_(config.cms_width, config.cms_depth, config.sketch_salt) {}

void StreamingClassifier::on_discover(const TorrentRecord& record, SimTime now) {
  auto slot = std::make_unique<TorrentSlot>(config_.hll_precision,
                                            config_.sketch_salt,
                                            config_.offline_gap,
                                            config_.query_gap);
  slot->id = record.portal_id;
  slot->username = record.username;
  slot->language = record.language;
  slot->finding = find_promotion(record);
  slot->publisher_ip = record.publisher_ip;
  slot->discovered_at = now;
  slot->last_observation = now;
  std::unique_lock lock(mu_);
  slots_[record.portal_id] = std::move(slot);
}

StreamingClassifier::TorrentSlot* StreamingClassifier::find_slot(
    TorrentId id) const {
  std::shared_lock lock(mu_);
  const auto it = slots_.find(id);
  return it == slots_.end() ? nullptr : it->second.get();
}

void StreamingClassifier::on_downloaders(TorrentId id,
                                         std::span<const IpAddress> ips,
                                         SimTime now) {
  TorrentSlot* slot = find_slot(id);
  if (slot == nullptr) return;
  for (const IpAddress& ip : ips) {
    slot->downloaders.add(ip.value());
    announce_rates_.add(ip.value());
  }
  slot->last_observation = std::max(slot->last_observation, now);
  updates_.fetch_add(ips.size(), std::memory_order_relaxed);
}

void StreamingClassifier::on_publisher_sighting(TorrentId id, SimTime now) {
  TorrentSlot* slot = find_slot(id);
  if (slot == nullptr) return;
  slot->sessions.add_sighting(now);
  if (slot->publisher_ip) announce_rates_.add(slot->publisher_ip->value());
  slot->last_observation = std::max(slot->last_observation, now);
  updates_.fetch_add(1, std::memory_order_relaxed);
}

void StreamingClassifier::on_removal(TorrentId id, SimTime now) {
  TorrentSlot* slot = find_slot(id);
  if (slot == nullptr) return;
  slot->removed = true;
  slot->last_observation = std::max(slot->last_observation, now);
}

void StreamingClassifier::on_user_page(const std::string& username,
                                       const UserPage& page) {
  std::unique_lock lock(mu_);
  user_banned_[username] = page.banned;
}

std::size_t StreamingClassifier::torrents_seen() const {
  std::shared_lock lock(mu_);
  return slots_.size();
}

StreamingSnapshot StreamingClassifier::snapshot(SimTime now,
                                                bool provisional) const {
  StreamingSnapshot snap;
  snap.at = now;

  // Stable view: slots in portal-id order. Snapshots must not run
  // concurrently with observation pushes (observer.hpp contract), so the
  // slot contents are quiescent here.
  std::vector<const TorrentSlot*> slots;
  std::unordered_map<std::string, bool> banned_pages;
  {
    std::shared_lock lock(mu_);
    slots.reserve(slots_.size());
    for (const auto& [id, slot] : slots_) slots.push_back(slot.get());
    banned_pages = user_banned_;
  }
  std::sort(slots.begin(), slots.end(),
            [](const TorrentSlot* a, const TorrentSlot* b) {
              return a->id < b->id;
            });
  snap.torrents = slots.size();

  // Global distinct-IP estimate: register-wise merge of the per-slot HLLs.
  HyperLogLog global(config_.hll_precision, config_.sketch_salt);
  snap.torrent_estimates.reserve(slots.size());
  for (const TorrentSlot* slot : slots) {
    global.merge(slot->downloaders);
    snap.torrent_estimates.push_back(
        {slot->id,
         slot->downloaders.empty() ? 0.0 : slot->downloaders.estimate()});
  }
  snap.est_distinct_ips_global = global.empty() ? 0.0 : global.estimate();
  snap.hll_relative_error = global.relative_error();
  snap.cms_epsilon = announce_rates_.epsilon();
  snap.announce_total = announce_rates_.total();

  // Per-username aggregation, insertion-ordered by first portal id — the
  // same tie-break the batch ranking uses (dataset order is id order).
  struct Agg {
    std::string username;
    std::vector<const TorrentSlot*> slots;  // id-ascending
    std::vector<IpAddress> ips;             // identified publisher IPs, deduped
    bool removed_observed = false;
  };
  std::vector<Agg> aggs;
  std::unordered_map<std::string, std::size_t> agg_index;
  std::unordered_map<std::string, std::unordered_set<std::uint32_t>> seen_ips;
  for (const TorrentSlot* slot : slots) {
    if (slot->username.empty()) continue;
    auto [it, inserted] = agg_index.try_emplace(slot->username, aggs.size());
    if (inserted) {
      Agg agg;
      agg.username = slot->username;
      aggs.push_back(std::move(agg));
    }
    Agg& agg = aggs[it->second];
    agg.slots.push_back(slot);
    agg.removed_observed |= slot->removed;
    if (slot->publisher_ip &&
        seen_ips[slot->username].insert(slot->publisher_ip->value()).second) {
      agg.ips.push_back(*slot->publisher_ip);
    }
  }
  snap.publishers = aggs.size();

  const auto banned = [&](const std::string& username, bool removed) {
    const auto it = banned_pages.find(username);
    if (it != banned_pages.end() && it->second) return true;
    return provisional && removed;
  };

  // Fake detection: the exact batch farm rule over the exact
  // username <-> IP table (this state is tiny — the sketches only carry the
  // unbounded per-IP populations).
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> ip_to_aggs;
  {
    std::unordered_map<std::uint32_t, std::unordered_set<std::size_t>> dedup;
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      for (const IpAddress& ip : aggs[a].ips) {
        if (dedup[ip.value()].insert(a).second) {
          ip_to_aggs[ip.value()].push_back(a);
        }
      }
    }
  }
  std::vector<bool> fake(aggs.size(), false);
  for (const auto& [ip, members] : ip_to_aggs) {
    if (members.size() < config_.fake.min_usernames_per_ip) continue;
    std::size_t banned_count = 0;
    for (const std::size_t a : members) {
      if (banned(aggs[a].username, aggs[a].removed_observed)) ++banned_count;
    }
    const double fraction = static_cast<double>(banned_count) /
                            static_cast<double>(members.size());
    if (fraction < config_.fake.min_banned_fraction) continue;
    for (const std::size_t a : members) fake[a] = true;
  }
  for (std::size_t a = 0; a < aggs.size(); ++a) {
    if (banned(aggs[a].username, aggs[a].removed_observed)) fake[a] = true;
  }

  // Ranking: content desc, first portal id asc (== batch dataset order).
  std::vector<std::size_t> ranked(aggs.size());
  for (std::size_t a = 0; a < ranked.size(); ++a) ranked[a] = a;
  std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
    if (aggs[a].slots.size() != aggs[b].slots.size()) {
      return aggs[a].slots.size() > aggs[b].slots.size();
    }
    return aggs[a].slots.front()->id < aggs[b].slots.front()->id;
  });

  const std::size_t cut = std::min(config_.top_n, ranked.size());
  std::vector<bool> top(aggs.size(), false);
  for (std::size_t i = 0; i < cut; ++i) {
    if (!fake[ranked[i]]) top[ranked[i]] = true;
  }

  snap.verdicts.reserve(aggs.size());
  for (const std::size_t a : ranked) {
    const Agg& agg = aggs[a];
    PublisherVerdict verdict;
    verdict.username = agg.username;
    verdict.content_count = agg.slots.size();
    verdict.fake = fake[a];
    verdict.provisional_fake =
        fake[a] && provisional && !banned_pages.contains(agg.username) &&
        agg.removed_observed;
    verdict.top = top[a];

    // Streaming download estimate + Appendix-A session metrics.
    std::size_t torrents_with_data = 0;
    double seeded_hours = 0.0;
    std::vector<Interval> all_intervals;
    for (const TorrentSlot* slot : agg.slots) {
      if (!slot->downloaders.empty()) {
        verdict.est_downloads += slot->downloaders.estimate();
      }
      if (slot->sessions.sighting_count() > 0) {
        ++torrents_with_data;
        seeded_hours += to_hours(slot->sessions.total_session_length());
        const auto intervals = slot->sessions.intervals();
        all_intervals.insert(all_intervals.end(), intervals.begin(),
                             intervals.end());
      }
    }
    if (torrents_with_data > 0) {
      verdict.seeding_hours =
          seeded_hours / static_cast<double>(torrents_with_data);
      verdict.aggregated_hours = to_hours(union_length(all_intervals));
      verdict.parallel_torrents =
          verdict.aggregated_hours > 0.0
              ? seeded_hours / verdict.aggregated_hours
              : 0.0;
    }

    // Announce-rate signal: busiest identified publisher IP vs the alert
    // threshold over this publisher's monitoring span.
    SimTime span_start = 0, span_end = 0;
    bool have_span = false;
    for (const TorrentSlot* slot : agg.slots) {
      if (!have_span) {
        span_start = slot->discovered_at;
        span_end = slot->last_observation;
        have_span = true;
      } else {
        span_start = std::min(span_start, slot->discovered_at);
        span_end = std::max(span_end, slot->last_observation);
      }
    }
    for (const IpAddress& ip : agg.ips) {
      verdict.announce_observations = std::max(
          verdict.announce_observations, announce_rates_.count(ip.value()));
    }
    const double span_hours = std::max(1.0, to_hours(span_end - span_start));
    verdict.rate_flagged =
        static_cast<double>(verdict.announce_observations) / span_hours >
        config_.announce_rate_alert;

    // Business classification for the top cut, batch-identical (unsampled):
    // first finding in portal-id order names the domain, channels OR over
    // every finding, dominant language over the full torrent list.
    if (verdict.top) {
      for (const TorrentSlot* slot : agg.slots) {
        if (!slot->finding) continue;
        if (verdict.domain.empty()) verdict.domain = slot->finding->domain;
        verdict.in_textbox |= slot->finding->in_textbox;
        verdict.in_filename |= slot->finding->in_filename;
        verdict.in_payload |= slot->finding->in_payload;
      }
      std::array<std::size_t, 6> lang_counts{};
      for (const TorrentSlot* slot : agg.slots) {
        ++lang_counts[static_cast<std::size_t>(slot->language)];
      }
      const auto max_it =
          std::max_element(lang_counts.begin(), lang_counts.end());
      if (*max_it * 2 >= verdict.content_count &&
          static_cast<Language>(max_it - lang_counts.begin()) !=
              Language::English) {
        verdict.dominant_language =
            static_cast<Language>(max_it - lang_counts.begin());
      }
      if (verdict.domain.empty()) {
        verdict.cls = BusinessClass::Altruistic;
      } else if (const auto view = websites_->visit(verdict.domain)) {
        verdict.cls = view->torrent_index ? BusinessClass::BtPortal
                                          : BusinessClass::OtherWeb;
      } else {
        verdict.cls = BusinessClass::OtherWeb;
      }

      // Top-HP vs Top-CI: majority ISP type over identified IPs; no
      // located IP defaults to CI (batch rule).
      std::size_t hosting = 0, commercial = 0;
      for (const IpAddress& ip : agg.ips) {
        const auto loc = geo_->lookup(ip);
        if (!loc) continue;
        if (loc->isp_type == IspType::HostingProvider) {
          ++hosting;
        } else {
          ++commercial;
        }
      }
      verdict.hosting_provider = (hosting + commercial) > 0 && hosting >= commercial;
    }
    snap.verdicts.push_back(std::move(verdict));
  }
  return snap;
}

std::vector<std::string> StreamingSnapshot::top() const {
  std::vector<std::string> out;
  for (const PublisherVerdict& v : verdicts) {
    if (v.top) out.push_back(v.username);
  }
  return out;
}

std::vector<std::string> StreamingSnapshot::fakes() const {
  std::vector<std::string> out;
  for (const PublisherVerdict& v : verdicts) {
    if (v.fake) out.push_back(v.username);
  }
  return out;
}

std::string StreamingSnapshot::to_text() const {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof line,
                "streaming snapshot @%lld: %zu torrents, %zu publishers, "
                "global distinct IPs ~%.1f (+/-%.2f%%), %llu announce obs "
                "(cms eps %.5f)\n",
                static_cast<long long>(at), torrents, publishers,
                est_distinct_ips_global, 100.0 * hll_relative_error,
                static_cast<unsigned long long>(announce_total), cms_epsilon);
  out += line;
  for (const PublisherVerdict& v : verdicts) {
    std::snprintf(
        line, sizeof line,
        "  %-16s content=%zu est_dl=%.1f %s%s%s cls=%s domain=%s "
        "seed_h=%.3f agg_h=%.3f par=%.3f obs=%llu%s\n",
        v.username.c_str(), v.content_count, v.est_downloads,
        v.fake ? (v.provisional_fake ? "FAKE?" : "FAKE") : "-",
        v.top ? " TOP" : "", v.top ? (v.hosting_provider ? "-HP" : "-CI") : "",
        v.top ? std::string(to_string(v.cls)).c_str() : "-",
        v.domain.empty() ? "-" : v.domain.c_str(), v.seeding_hours,
        v.aggregated_hours, v.parallel_torrents,
        static_cast<unsigned long long>(v.announce_observations),
        v.rate_flagged ? " RATE-FLAG" : "");
    out += line;
  }
  return out;
}

}  // namespace btpub
