#include "analysis/streaming/sketch.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace btpub {
namespace {

double hll_alpha(std::size_t m) noexcept {
  // Flajolet et al.'s bias-correction constants.
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(int precision, std::uint64_t salt)
    : precision_(std::clamp(precision, 4, 18)),
      salt_(salt),
      registers_(std::size_t{1} << std::clamp(precision, 4, 18), 0) {}

void HyperLogLog::add(std::uint64_t key) noexcept {
  const std::uint64_t h = mix64(key ^ salt_);
  const std::size_t index = static_cast<std::size_t>(h >> (64 - precision_));
  // Rank of the first set bit in the remaining 64-p bits, 1-based; an
  // all-zero remainder ranks 64-p+1.
  const std::uint64_t rest = h << precision_;
  const int rank = rest == 0 ? (64 - precision_ + 1) : std::countl_zero(rest) + 1;
  registers_[index] =
      std::max(registers_[index], static_cast<std::uint8_t>(rank));
}

double HyperLogLog::estimate() const noexcept {
  const double m = static_cast<double>(registers_.size());
  double inverse_sum = 0.0;
  std::size_t zeros = 0;
  for (const std::uint8_t reg : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) ++zeros;
  }
  const double raw = hll_alpha(registers_.size()) * m * m / inverse_sum;
  if (raw <= 2.5 * m && zeros > 0) {
    // Small-range correction: linear counting on empty registers.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (other.precision_ != precision_ || other.salt_ != salt_) {
    throw std::invalid_argument("HyperLogLog::merge: mismatched sketches");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

double HyperLogLog::relative_error() const noexcept {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

bool HyperLogLog::empty() const noexcept {
  return std::all_of(registers_.begin(), registers_.end(),
                     [](std::uint8_t r) { return r == 0; });
}

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t salt)
    : width_(std::max<std::size_t>(width, 1)),
      depth_(std::max<std::size_t>(depth, 1)),
      salt_(salt),
      cells_(width_ * depth_) {}

void CountMinSketch::add(std::uint64_t key, std::uint64_t amount) noexcept {
  auto [h, step] = hashes(key);
  for (std::size_t row = 0; row < depth_; ++row, h += step) {
    cells_[row * width_ + static_cast<std::size_t>(h % width_)].fetch_add(
        amount, std::memory_order_relaxed);
  }
  total_.fetch_add(amount, std::memory_order_relaxed);
}

std::uint64_t CountMinSketch::count(std::uint64_t key) const noexcept {
  std::uint64_t best = ~std::uint64_t{0};
  auto [h, step] = hashes(key);
  for (std::size_t row = 0; row < depth_; ++row, h += step) {
    best = std::min(
        best, cells_[row * width_ + static_cast<std::size_t>(h % width_)].load(
                  std::memory_order_relaxed));
  }
  return best;
}

double CountMinSketch::epsilon() const noexcept {
  return std::exp(1.0) / static_cast<double>(width_);
}

}  // namespace btpub
