// sketch.hpp — bounded-memory probabilistic sketches for the streaming
// analysis layer (§4.5): a HyperLogLog for distinct downloader IPs and a
// count-min sketch for per-IP announce rates.
//
// Both sketches are *commutative*: their final state depends only on the
// multiset of updates, never on update order or thread interleaving. That
// property is what lets the parallel crawl engine push observations from
// N workers and still produce byte-identical end-of-crawl snapshots at
// every thread count (the same invariant the crawl itself guarantees).
//
//   * HyperLogLog registers only ever move up (max of two states), so
//     per-torrent instances are owned by one worker and merged serially at
//     snapshot time — no atomics needed on the hot path.
//   * CountMinSketch cells are relaxed atomic counters shared by all
//     workers; fetch_add is commutative, so final counts are exact
//     functions of the observation multiset.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

namespace btpub {

/// SplitMix64 finalizer — the same mixer the RNG substream derivation uses.
/// Full-avalanche 64-bit hash for sketch bucketing.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// HyperLogLog distinct counter (Flajolet et al. 2007) with the standard
/// small-range linear-counting correction. With 2^precision registers the
/// standard error is 1.04 / sqrt(2^precision) — precision 12 (4 KiB) gives
/// ~1.6%, precision 14 (16 KiB) ~0.41%. A 64-bit hash removes the need for
/// the 32-bit large-range correction: collisions are negligible below 2^57.
class HyperLogLog {
 public:
  /// precision in [4, 18]; out-of-range values are clamped.
  explicit HyperLogLog(int precision = 12, std::uint64_t salt = 0);

  void add(std::uint64_t key) noexcept;
  /// Estimated number of distinct keys added.
  double estimate() const noexcept;
  /// Merges another sketch (register-wise max). Both must share precision
  /// and salt; mismatches throw std::invalid_argument.
  void merge(const HyperLogLog& other);

  int precision() const noexcept { return precision_; }
  std::size_t register_count() const noexcept { return registers_.size(); }
  /// One standard error of the estimator, as a fraction of the true count.
  double relative_error() const noexcept;
  /// True when no key was ever added.
  bool empty() const noexcept;

 private:
  int precision_;
  std::uint64_t salt_;
  std::vector<std::uint8_t> registers_;
};

/// Count-min sketch (Cormode & Muthukrishnan 2005) over 64-bit keys with
/// relaxed-atomic cells, shared by every crawl worker. count() never
/// under-estimates; with width w it over-estimates by at most e/w of the
/// total mass with probability 1 - e^-depth.
class CountMinSketch {
 public:
  CountMinSketch(std::size_t width, std::size_t depth, std::uint64_t salt = 0);

  void add(std::uint64_t key, std::uint64_t amount = 1) noexcept;
  /// Point estimate: min over rows. An over-estimate, never an under-.
  std::uint64_t count(std::uint64_t key) const noexcept;
  /// Total mass added across all keys.
  std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  std::size_t width() const noexcept { return width_; }
  std::size_t depth() const noexcept { return depth_; }
  /// Over-estimation bound as a fraction of total(): err <= epsilon * total
  /// with probability 1 - e^-depth.
  double epsilon() const noexcept;

 private:
  /// Kirsch–Mitzenmacher double hashing: one mix of the salted key yields
  /// (h1, h2), and row r probes column (h1 + r*h2) % width — one hash per
  /// update instead of one per row, preserving the pairwise-independence
  /// the CMS error bound needs. h2 is forced odd so consecutive rows never
  /// collapse onto one column stride.
  std::pair<std::uint64_t, std::uint64_t> hashes(std::uint64_t key) const noexcept {
    const std::uint64_t h1 = mix64(key ^ salt_);
    return {h1, mix64(h1) | 1};
  }

  std::size_t width_;
  std::size_t depth_;
  std::uint64_t salt_;
  std::vector<std::atomic<std::uint64_t>> cells_;
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace btpub
