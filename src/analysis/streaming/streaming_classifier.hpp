// streaming_classifier.hpp — the real-time publisher classifier (§4.5).
//
// The batch pipeline answers "fake / top / altruistic?" only after a crawl
// has finished: IdentityAnalysis aggregates a complete Dataset, then
// classify_top_publishers replays the downloader experience. This class is
// the crawl-time equivalent: it implements CrawlObserver, consumes the
// observation stream from either vantage (or both) while crawling, and can
// emit provisional verdicts at every poll round — with bounded memory.
//
//   * Per-torrent distinct downloader IPs: a HyperLogLog per monitored
//     torrent (the streaming replacement, on the observation side, for the
//     finalize-only cached Swarm::distinct_downloader_ips ground-truth
//     path) — O(2^p) bytes per torrent instead of a per-IP hash set.
//   * Per-IP announce rates: one shared count-min sketch; publisher IPs
//     whose observation rate exceeds the alert threshold are flagged as a
//     provisional fake signal (decoy-flood posture).
//   * Sessions: an OnlineSessionEstimator per identified publisher, fed
//     one sighting at a time.
//
// Verdict convergence (pinned by streaming_test): the *exact* classifier
// inputs — who published what, promotion findings, username <-> IP links,
// moderation bans — are small per-publisher state kept exactly, so
// finalize() reproduces IdentityAnalysis + classify_top_publishers
// (unsampled) verbatim on the same observations, at any crawl thread
// count. Only the distinct-IP counts are estimates, and those stay within
// the sketch's documented error bound.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/classify.hpp"
#include "analysis/groups.hpp"
#include "analysis/streaming/online_session.hpp"
#include "analysis/streaming/sketch.hpp"
#include "crawler/observer.hpp"
#include "geo/geo_db.hpp"
#include "websim/website.hpp"

namespace btpub {

struct StreamingConfig {
  /// Size of the "top publishers" cut (the paper's 100).
  std::size_t top_n = 100;
  /// Fake-farm thresholds, identical to the batch rule.
  FakeDetectionConfig fake{};
  /// Appendix-A session parameters.
  SimDuration offline_gap = hours(4);
  SimDuration query_gap = minutes(15);
  /// HyperLogLog precision: 2^p registers per torrent (p=12 -> 4 KiB,
  /// ~1.6% standard error).
  int hll_precision = 12;
  /// Count-min geometry for the per-IP announce-rate sketch.
  std::size_t cms_width = 4096;
  std::size_t cms_depth = 4;
  /// Salt folded into every sketch hash (determinism: same salt, same
  /// registers).
  std::uint64_t sketch_salt = 0x5eed5eedULL;
  /// Provisional fake signal: a publisher IP observed more often than this
  /// many times per hour of its monitoring span is rate-flagged.
  double announce_rate_alert = 120.0;
};

/// One publisher's rolling verdict.
struct PublisherVerdict {
  std::string username;
  std::size_t content_count = 0;
  /// Sum over torrents of HLL-estimated distinct downloader IPs (the
  /// streaming stand-in for the batch download_count).
  double est_downloads = 0.0;
  bool fake = false;
  /// True when the fake call came only from the mid-crawl moderation
  /// signal (provisional rounds), not yet from the user-page ban.
  bool provisional_fake = false;
  bool top = false;
  bool hosting_provider = false;  // Top-HP vs Top-CI split (top only)
  /// Business classification (top publishers only; Altruistic otherwise).
  BusinessClass cls = BusinessClass::Altruistic;
  std::string domain;
  bool in_textbox = false, in_filename = false, in_payload = false;
  std::optional<Language> dominant_language;
  /// Appendix-A streaming estimates (tracker vantage only).
  double seeding_hours = 0.0;       // mean per-torrent session time
  double aggregated_hours = 0.0;    // union across torrents
  double parallel_torrents = 0.0;
  /// Count-min announce observations of the busiest publisher IP, and the
  /// rate flag derived from it.
  std::uint64_t announce_observations = 0;
  bool rate_flagged = false;
};

/// What one poll round (or finalize) reports.
struct StreamingSnapshot {
  SimTime at = 0;
  std::size_t torrents = 0;
  std::size_t publishers = 0;
  /// Verdicts sorted like the batch ranking: content desc, first portal id
  /// asc. Covers every observed username.
  std::vector<PublisherVerdict> verdicts;
  /// Per-torrent HLL estimates (portal-id ascending).
  struct TorrentEstimate {
    TorrentId id = kInvalidTorrent;
    double est_distinct_downloaders = 0.0;
  };
  std::vector<TorrentEstimate> torrent_estimates;
  /// Merged-HLL estimate of distinct downloader IPs across all torrents.
  double est_distinct_ips_global = 0.0;
  /// One standard error of every HLL estimate, as a fraction.
  double hll_relative_error = 0.0;
  /// Count-min over-estimation bound: err <= cms_epsilon * announce_total.
  double cms_epsilon = 0.0;
  std::uint64_t announce_total = 0;

  /// The members of the top cut, in rank order.
  std::vector<std::string> top() const;
  /// Usernames currently called fake.
  std::vector<std::string> fakes() const;
  /// Canonical multi-line rendering (stable across runs — the 1-vs-N
  /// byte-identity oracle, also what live_monitor prints).
  std::string to_text() const;
};

class StreamingClassifier : public CrawlObserver {
 public:
  StreamingClassifier(const GeoDb& geo, const WebsiteDirectory& websites,
                      StreamingConfig config = {});

  // CrawlObserver (thread-safe; see observer.hpp for the contract).
  void on_discover(const TorrentRecord& record, SimTime now) override;
  void on_downloaders(TorrentId id, std::span<const IpAddress> ips,
                      SimTime now) override;
  void on_publisher_sighting(TorrentId id, SimTime now) override;
  void on_removal(TorrentId id, SimTime now) override;
  void on_user_page(const std::string& username, const UserPage& page) override;

  /// Provisional verdicts mid-crawl: moderation removals observed so far
  /// stand in for the user-page bans that only exist at crawl end, and
  /// rate flags feed the fake signal. Must not run concurrently with
  /// observation pushes.
  StreamingSnapshot round(SimTime now) const { return snapshot(now, true); }
  /// End-of-crawl verdicts: exact batch semantics (user-page bans only).
  StreamingSnapshot finalize(SimTime now = 0) const {
    return snapshot(now, false);
  }

  /// Count-min point estimate for one IP's announce observations.
  std::uint64_t announce_count(IpAddress ip) const {
    return announce_rates_.count(ip.value());
  }

  const StreamingConfig& config() const noexcept { return config_; }
  std::size_t torrents_seen() const;
  std::uint64_t updates() const noexcept {
    return updates_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-torrent state, owned by the one worker crawling that torrent.
  struct TorrentSlot {
    TorrentId id = kInvalidTorrent;
    std::string username;
    Language language = Language::English;
    std::optional<PromoFinding> finding;
    std::optional<IpAddress> publisher_ip;
    bool removed = false;
    SimTime discovered_at = 0;
    SimTime last_observation = 0;
    HyperLogLog downloaders;
    OnlineSessionEstimator sessions;

    TorrentSlot(int hll_precision, std::uint64_t salt, SimDuration offline_gap,
                SimDuration query_gap)
        : downloaders(hll_precision, salt),
          sessions(offline_gap, query_gap) {}
  };

  TorrentSlot* find_slot(TorrentId id) const;
  StreamingSnapshot snapshot(SimTime now, bool provisional) const;

  const GeoDb* geo_;
  const WebsiteDirectory* websites_;
  StreamingConfig config_;

  /// Guards the slot map and the user-page table; slot *contents* are
  /// single-owner and accessed without it.
  mutable std::shared_mutex mu_;
  std::unordered_map<TorrentId, std::unique_ptr<TorrentSlot>> slots_;
  std::unordered_map<std::string, bool> user_banned_;

  CountMinSketch announce_rates_;
  std::atomic<std::uint64_t> updates_{0};
};

}  // namespace btpub
