#include "analysis/streaming/online_session.hpp"

namespace btpub {

void OnlineSessionEstimator::add_sighting(SimTime t) {
  ++sightings_;
  if (t <= newest_ && sightings_ > 1) ++out_of_order_;
  newest_ = std::max(newest_, t);

  // The cluster that could absorb t from the left: greatest start <= t.
  auto next = clusters_.upper_bound(t);
  auto home = clusters_.end();
  if (next != clusters_.begin()) {
    auto prev = std::prev(next);
    if (t <= prev->second) return;  // inside an existing session: no change
    if (t - prev->second <= offline_gap_) {
      span_sum_ += t - prev->second;
      prev->second = t;
      home = prev;
    }
  }
  if (home == clusters_.end()) {
    home = clusters_.emplace(t, t).first;
    next = std::next(home);
  }
  // Bridge with the following cluster when t closed the gap.
  if (next != clusters_.end() && next->first - t <= offline_gap_) {
    span_sum_ += next->first - home->second;  // the bridged gap
    home->second = next->second;
    clusters_.erase(next);
  }
}

std::vector<Interval> OnlineSessionEstimator::intervals() const {
  std::vector<Interval> out;
  out.reserve(clusters_.size());
  for (const auto& [start, last] : clusters_) {
    out.push_back(Interval{start, last + query_gap_});
  }
  return out;
}

}  // namespace btpub
