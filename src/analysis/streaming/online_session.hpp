// online_session.hpp — the Appendix-A session estimator, made incremental.
//
// The batch estimator (analysis/session.hpp) reconstructs presence sessions
// from a *finished*, sorted sighting list: consecutive sightings closer than
// `offline_gap` form one session [first, last + query_gap). This class
// maintains exactly those sessions while sightings arrive one at a time and
// in ANY order (merged tracker + DHT vantages interleave arbitrarily):
// sessions are kept as an ordered map of clusters keyed by first-sighting
// time, and each insertion either joins the preceding cluster, opens a new
// one, or bridges two clusters into one — O(log sessions) per sighting,
// O(sessions) memory, no sighting list retained.
//
// Invariant (pinned by the convergence tests): after any permutation of the
// same sighting multiset, intervals() equals reconstruct_sessions() over
// the sorted list. A single sighting therefore yields exactly one
// query_gap-long session — never zero hours.
#pragma once

#include <limits>
#include <map>
#include <vector>

#include "util/time.hpp"

namespace btpub {

class OnlineSessionEstimator {
 public:
  explicit OnlineSessionEstimator(SimDuration offline_gap = hours(4),
                                  SimDuration query_gap = minutes(15))
      : offline_gap_(offline_gap),
        query_gap_(query_gap < 0 ? 0 : query_gap) {}

  /// Consumes one sighting; duplicates and out-of-order arrivals are fine.
  void add_sighting(SimTime t);

  std::size_t session_count() const noexcept { return clusters_.size(); }
  std::size_t sighting_count() const noexcept { return sightings_; }
  /// Sightings that arrived at or before the latest one seen so far (the
  /// multi-vantage merge telemetry; does not affect the estimate).
  std::size_t out_of_order_count() const noexcept { return out_of_order_; }

  /// Total estimated presence time: sum over sessions of
  /// (last - first + query_gap). Maintained incrementally, O(1) to read.
  SimDuration total_session_length() const noexcept {
    return span_sum_ + static_cast<SimDuration>(clusters_.size()) * query_gap_;
  }

  /// Materializes the current sessions, ascending, batch-identical.
  std::vector<Interval> intervals() const;

 private:
  SimDuration offline_gap_;
  SimDuration query_gap_;
  /// first sighting -> last sighting, per cluster. Disjoint: consecutive
  /// clusters are separated by more than offline_gap.
  std::map<SimTime, SimTime> clusters_;
  /// Sum over clusters of (last - first); query gaps are added on read.
  SimDuration span_sum_ = 0;
  std::size_t sightings_ = 0;
  std::size_t out_of_order_ = 0;
  SimTime newest_ = std::numeric_limits<SimTime>::min();
};

}  // namespace btpub
