// isp.hpp — ISP-level analyses (paper §3.2, Tables 2 and 3).
#pragma once

#include <string>
#include <vector>

#include "analysis/groups.hpp"
#include "crawler/dataset.hpp"
#include "geo/geo_db.hpp"

namespace btpub {

/// One row of Table 2.
struct IspShareRow {
  std::string isp;
  IspType type = IspType::CommercialIsp;
  /// Share of (IP-identified) published content fed from this ISP.
  double content_share = 0.0;
  /// Share of identified publisher IPs located at this ISP.
  double publisher_share = 0.0;
  std::size_t torrents = 0;
  std::size_t publisher_ips = 0;
};

/// Table 2: the top-k ISPs by content fed, over torrents with an
/// identified publisher IP.
std::vector<IspShareRow> top_publisher_isps(const Dataset& dataset,
                                            const GeoDb& geo, std::size_t k = 10);

/// One row of Table 3 (per-ISP feeder profile).
struct IspFeederProfile {
  std::string isp;
  std::size_t fed_torrents = 0;
  std::size_t distinct_ips = 0;
  std::size_t distinct_prefixes16 = 0;
  std::size_t distinct_locations = 0;  // (country, city) pairs
};

IspFeederProfile isp_feeder_profile(const Dataset& dataset, const GeoDb& geo,
                                    std::string_view isp_name);

/// §3.2's closing check: how many *consumer* (downloader) IPs come from a
/// given ISP across the whole dataset (the paper found no OVH consumers).
/// Addresses known to belong to publishers (identified in any torrent) are
/// excluded when `exclude_publishers` is set — presence of a publisher's
/// own box in a swarm it seeds is not consumption.
std::size_t consumers_from_isp(const Dataset& dataset, const GeoDb& geo,
                               std::string_view isp_name,
                               bool exclude_publishers = true);

/// Fraction of the top-N publishers (usernames) whose identified addresses
/// are at hosting providers, and the share of those at one named ISP
/// (the paper: 42% at hosting services, half of them at OVH).
struct TopHostingShare {
  std::size_t considered = 0;
  std::size_t at_hosting = 0;
  std::size_t at_named_isp = 0;
};
TopHostingShare top_hosting_share(const IdentityAnalysis& identity,
                                  const GeoDb& geo, std::string_view named_isp,
                                  std::size_t top_n = 100);

}  // namespace btpub
