#include "analysis/popularity.hpp"

namespace btpub {

std::vector<double> avg_downloaders_per_publisher(const IdentityAnalysis& identity,
                                                  TargetGroup group,
                                                  std::size_t sample, Rng& rng) {
  std::vector<const UsernameStats*> members = identity.members(group);
  if (sample > 0 && members.size() > sample) {
    std::vector<const UsernameStats*> chosen;
    chosen.reserve(sample);
    for (std::size_t index : rng.sample_indices(members.size(), sample)) {
      chosen.push_back(members[index]);
    }
    members.swap(chosen);
  }
  std::vector<double> averages;
  averages.reserve(members.size());
  for (const UsernameStats* stats : members) {
    if (stats->content_count == 0) continue;
    averages.push_back(static_cast<double>(stats->download_count) /
                       static_cast<double>(stats->content_count));
  }
  return averages;
}

PopularityBox popularity_box(const IdentityAnalysis& identity, TargetGroup group,
                             std::size_t sample, Rng& rng) {
  PopularityBox box;
  box.group = group;
  const auto averages = avg_downloaders_per_publisher(identity, group, sample, rng);
  box.box = box_stats(averages);
  return box;
}

std::vector<PopularityBox> popularity_panel(const IdentityAnalysis& identity,
                                            std::size_t all_sample, Rng& rng) {
  std::vector<PopularityBox> panel;
  panel.push_back(popularity_box(identity, TargetGroup::All, all_sample, rng));
  for (const TargetGroup group : {TargetGroup::Fake, TargetGroup::Top,
                                  TargetGroup::TopHP, TargetGroup::TopCI}) {
    panel.push_back(popularity_box(identity, group, 0, rng));
  }
  return panel;
}

}  // namespace btpub
