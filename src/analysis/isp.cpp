#include "analysis/isp.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace btpub {

std::vector<IspShareRow> top_publisher_isps(const Dataset& dataset,
                                            const GeoDb& geo, std::size_t k) {
  struct Acc {
    IspType type = IspType::CommercialIsp;
    std::size_t torrents = 0;
    std::unordered_set<IpAddress> ips;
  };
  std::unordered_map<std::string, Acc> by_isp;
  std::size_t identified_torrents = 0;
  std::size_t identified_ips = 0;

  std::unordered_set<IpAddress> all_ips;
  for (const TorrentRecord& record : dataset.torrents) {
    if (!record.publisher_ip) continue;
    const auto loc = geo.lookup(*record.publisher_ip);
    if (!loc) continue;
    ++identified_torrents;
    Acc& acc = by_isp[std::string(loc->isp_name)];
    acc.type = loc->isp_type;
    ++acc.torrents;
    acc.ips.insert(*record.publisher_ip);
    all_ips.insert(*record.publisher_ip);
  }
  identified_ips = all_ips.size();

  std::vector<IspShareRow> rows;
  rows.reserve(by_isp.size());
  for (const auto& [name, acc] : by_isp) {
    IspShareRow row;
    row.isp = name;
    row.type = acc.type;
    row.torrents = acc.torrents;
    row.publisher_ips = acc.ips.size();
    row.content_share = identified_torrents == 0
                            ? 0.0
                            : static_cast<double>(acc.torrents) /
                                  static_cast<double>(identified_torrents);
    row.publisher_share = identified_ips == 0
                              ? 0.0
                              : static_cast<double>(acc.ips.size()) /
                                    static_cast<double>(identified_ips);
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const IspShareRow& a, const IspShareRow& b) {
    if (a.torrents != b.torrents) return a.torrents > b.torrents;
    return a.isp < b.isp;
  });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

IspFeederProfile isp_feeder_profile(const Dataset& dataset, const GeoDb& geo,
                                    std::string_view isp_name) {
  IspFeederProfile profile;
  profile.isp = std::string(isp_name);
  std::unordered_set<IpAddress> ips;
  std::unordered_set<std::uint16_t> prefixes;
  std::set<std::pair<std::string, std::string>> locations;
  for (const TorrentRecord& record : dataset.torrents) {
    if (!record.publisher_ip) continue;
    const auto loc = geo.lookup(*record.publisher_ip);
    if (!loc || loc->isp_name != isp_name) continue;
    ++profile.fed_torrents;
    ips.insert(*record.publisher_ip);
    prefixes.insert(Prefix16(*record.publisher_ip).value());
    locations.emplace(std::string(loc->country), std::string(loc->city));
  }
  profile.distinct_ips = ips.size();
  profile.distinct_prefixes16 = prefixes.size();
  profile.distinct_locations = locations.size();
  return profile;
}

std::size_t consumers_from_isp(const Dataset& dataset, const GeoDb& geo,
                               std::string_view isp_name,
                               bool exclude_publishers) {
  std::unordered_set<IpAddress> publisher_ips;
  if (exclude_publishers) {
    for (const TorrentRecord& record : dataset.torrents) {
      if (record.publisher_ip) publisher_ips.insert(*record.publisher_ip);
    }
  }
  std::unordered_set<IpAddress> consumers;
  for (const auto& torrent_ips : dataset.downloaders) {
    for (const IpAddress& ip : torrent_ips) {
      if (exclude_publishers && publisher_ips.contains(ip)) continue;
      const auto loc = geo.lookup(ip);
      if (loc && loc->isp_name == isp_name) consumers.insert(ip);
    }
  }
  return consumers.size();
}

TopHostingShare top_hosting_share(const IdentityAnalysis& identity,
                                  const GeoDb& geo, std::string_view named_isp,
                                  std::size_t top_n) {
  TopHostingShare share;
  const auto& usernames = identity.usernames();
  share.considered = std::min(top_n, usernames.size());
  for (std::size_t i = 0; i < share.considered; ++i) {
    bool hosting = false, named = false;
    std::size_t host_votes = 0, total_votes = 0;
    for (const IpAddress& ip : usernames[i].ips) {
      const auto loc = geo.lookup(ip);
      if (!loc) continue;
      ++total_votes;
      if (loc->isp_type == IspType::HostingProvider) {
        ++host_votes;
        if (loc->isp_name == named_isp) named = true;
      }
    }
    hosting = total_votes > 0 && host_votes * 2 >= total_votes;
    if (hosting) {
      ++share.at_hosting;
      if (named) ++share.at_named_isp;
    }
  }
  return share;
}

}  // namespace btpub
