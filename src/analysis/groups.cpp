#include "analysis/groups.hpp"

#include <algorithm>
#include <cassert>

#include "util/parallel.hpp"

namespace btpub {
namespace {

/// The per-torrent fields the identity scan consumes, independent of the
/// row source. The username view points into source-owned memory (Dataset
/// strings or the compact text arena), stable for the scan's lifetime.
struct RowView {
  std::string_view username;
  std::uint32_t ip = 0;
  bool has_ip = false;
  std::size_t downloads = 0;
};

struct DatasetAccess {
  const Dataset* dataset;
  std::size_t size() const { return dataset->torrents.size(); }
  RowView row(std::size_t i) const {
    const TorrentRecord& record = dataset->torrents[i];
    RowView out;
    out.username = record.username;
    if (record.publisher_ip) {
      out.has_ip = true;
      out.ip = record.publisher_ip->value();
    }
    out.downloads = dataset->downloaders[i].size();
    return out;
  }
  bool banned(std::string_view name) const {
    const auto it = dataset->user_pages.find(std::string(name));
    return it != dataset->user_pages.end() && it->second.banned;
  }
};

struct ViewAccess {
  const CompactDatasetView* view;
  std::size_t size() const { return view->torrents.size(); }
  RowView row(std::size_t i) const {
    const TorrentRecordPod& pod = view->torrents[i];
    RowView out;
    out.username = view->username(pod);
    if ((pod.flags & TorrentRecordPod::kHasPublisherIp) != 0) {
      out.has_ip = true;
      out.ip = pod.publisher_ip;
    }
    out.downloads = pod.downloaders.size();
    return out;
  }
  bool banned(std::string_view name) const {
    const UserPagePod* page = view->find_user(name);
    return page != nullptr && (page->flags & UserPagePod::kBanned) != 0;
  }
};

}  // namespace

std::string_view to_string(TargetGroup g) {
  switch (g) {
    case TargetGroup::All:
      return "All";
    case TargetGroup::Fake:
      return "Fake";
    case TargetGroup::Top:
      return "Top";
    case TargetGroup::TopHP:
      return "Top-HP";
    case TargetGroup::TopCI:
      return "Top-CI";
  }
  return "?";
}

IdentityAnalysis::IdentityAnalysis(const Dataset& dataset, const GeoDb& geo,
                                   std::size_t top_n,
                                   FakeDetectionConfig fake_config,
                                   std::size_t threads)
    : geo_(&geo), top_n_(top_n) {
  build_tables(DatasetAccess{&dataset}, threads);
  detect_fakes(fake_config);
  build_top(geo, top_n);
}

IdentityAnalysis::IdentityAnalysis(const CompactDatasetView& view,
                                   const GeoDb& geo, std::size_t top_n,
                                   FakeDetectionConfig fake_config,
                                   std::size_t threads)
    : geo_(&geo), top_n_(top_n) {
  build_tables(ViewAccess{&view}, threads);
  detect_fakes(fake_config);
  build_top(geo, top_n);
}

struct IdentityAnalysis::ShardTables {
  std::vector<UsernameStats> usernames;  // shard-local first-occurrence order
  std::vector<IpStats> ips;
  std::size_t total_content = 0;
  std::size_t total_downloads = 0;
};

struct IdentityAnalysis::MergeState {
  std::unordered_map<std::string, std::size_t> username_index;  // -> usernames_
  std::unordered_map<IpAddress, std::size_t> ip_index;          // -> ips_
  // Cross-shard (username, ip) / (ip, username) pair dedup, mirroring the
  // serial scan's global sets.
  std::unordered_map<std::string, std::unordered_set<std::uint32_t>> user_ips;
  std::unordered_map<IpAddress, std::unordered_set<std::string>> ip_users;
};

template <typename Access>
void IdentityAnalysis::build_tables(const Access& access, std::size_t threads) {
  // Each shard scans a contiguous torrent span with exactly the serial
  // algorithm (per-shard first-occurrence dedup), and shards merge back in
  // span order. A key's global first occurrence lies in the earliest shard
  // that saw it, and within a shard the local first-occurrence order is the
  // index order — so the merged tables list usernames, IPs, torrent indices
  // and deduped cross-references in exactly the serial scan's order, at any
  // thread count (including shard-count 1, which *is* the serial path).
  auto shards = sharded_scan(
      access.size(), threads, [&access](std::size_t begin, std::size_t end) {
        ShardTables shard;
        std::unordered_map<std::string_view, std::size_t> uindex;
        std::unordered_map<IpAddress, std::size_t> ipindex;
        std::unordered_map<std::string_view, std::unordered_set<std::uint32_t>>
            user_ips;
        std::unordered_map<IpAddress, std::unordered_set<std::string_view>>
            ip_users;
        for (std::size_t i = begin; i < end; ++i) {
          const RowView row = access.row(i);
          ++shard.total_content;
          shard.total_downloads += row.downloads;

          if (!row.username.empty()) {
            auto [it, inserted] =
                uindex.try_emplace(row.username, shard.usernames.size());
            if (inserted) {
              UsernameStats stats;
              stats.username = std::string(row.username);
              stats.banned = access.banned(row.username);
              shard.usernames.push_back(std::move(stats));
            }
            UsernameStats& stats = shard.usernames[it->second];
            stats.torrents.push_back(i);
            ++stats.content_count;
            stats.download_count += row.downloads;
            if (row.has_ip && user_ips[row.username].insert(row.ip).second) {
              stats.ips.emplace_back(row.ip);
            }
          }

          if (row.has_ip) {
            const IpAddress ip(row.ip);
            auto [it, inserted] = ipindex.try_emplace(ip, shard.ips.size());
            if (inserted) {
              IpStats stats;
              stats.ip = ip;
              shard.ips.push_back(std::move(stats));
            }
            IpStats& stats = shard.ips[it->second];
            stats.torrents.push_back(i);
            ++stats.content_count;
            if (!row.username.empty() &&
                ip_users[ip].insert(row.username).second) {
              stats.usernames.emplace_back(row.username);
            }
          }
        }
        return shard;
      });

  MergeState state;
  for (ShardTables& shard : shards) merge_shard(std::move(shard), state);
  finish_tables();
}

void IdentityAnalysis::merge_shard(ShardTables&& shard, MergeState& state) {
  total_content_ += shard.total_content;
  total_downloads_ += shard.total_downloads;

  for (UsernameStats& s : shard.usernames) {
    const auto it = state.username_index.find(s.username);
    if (it == state.username_index.end()) {
      auto& seen = state.user_ips[s.username];
      for (const IpAddress& ip : s.ips) seen.insert(ip.value());
      state.username_index.emplace(s.username, usernames_.size());
      usernames_.push_back(std::move(s));
      continue;
    }
    UsernameStats& global = usernames_[it->second];
    global.torrents.insert(global.torrents.end(), s.torrents.begin(),
                           s.torrents.end());
    global.content_count += s.content_count;
    global.download_count += s.download_count;
    auto& seen = state.user_ips[global.username];
    for (const IpAddress& ip : s.ips) {
      if (seen.insert(ip.value()).second) global.ips.push_back(ip);
    }
  }

  for (IpStats& s : shard.ips) {
    const auto it = state.ip_index.find(s.ip);
    if (it == state.ip_index.end()) {
      auto& seen = state.ip_users[s.ip];
      for (const std::string& name : s.usernames) seen.insert(name);
      state.ip_index.emplace(s.ip, ips_.size());
      ips_.push_back(std::move(s));
      continue;
    }
    IpStats& global = ips_[it->second];
    global.torrents.insert(global.torrents.end(), s.torrents.begin(),
                           s.torrents.end());
    global.content_count += s.content_count;
    auto& seen = state.ip_users[s.ip];
    for (std::string& name : s.usernames) {
      if (seen.insert(name).second) global.usernames.push_back(std::move(name));
    }
  }
}

void IdentityAnalysis::finish_tables() {
  // Moderation bans arrive after a username's torrents; count them per IP.
  std::unordered_map<std::string_view, bool> banned;
  banned.reserve(usernames_.size());
  for (const UsernameStats& stats : usernames_) {
    banned.emplace(stats.username, stats.banned);
  }
  for (IpStats& stats : ips_) {
    for (const std::string& name : stats.usernames) {
      const auto it = banned.find(name);
      if (it != banned.end() && it->second) ++stats.banned_usernames;
    }
  }

  auto by_content_desc = [](const auto& a, const auto& b) {
    if (a.content_count != b.content_count) return a.content_count > b.content_count;
    // torrents.front() — the key's first torrent index — is unique per
    // entry, so this is a total order and the sort is deterministic.
    return a.torrents.front() < b.torrents.front();
  };
  std::sort(usernames_.begin(), usernames_.end(), by_content_desc);
  std::sort(ips_.begin(), ips_.end(), by_content_desc);
  username_index_.clear();
  for (std::size_t i = 0; i < usernames_.size(); ++i) {
    username_index_.emplace(usernames_[i].username, i);
  }
}

void IdentityAnalysis::detect_fakes(const FakeDetectionConfig& config) {
  for (const IpStats& stats : ips_) {
    if (stats.usernames.size() < config.min_usernames_per_ip) continue;
    const double banned_fraction =
        static_cast<double>(stats.banned_usernames) /
        static_cast<double>(stats.usernames.size());
    if (banned_fraction < config.min_banned_fraction) continue;
    fake_ips_.insert(stats.ip);
    for (const std::string& name : stats.usernames) {
      fake_usernames_.insert(name);
    }
  }
  // A banned username is a fake publisher even when its farm IP was never
  // identified (footnote 3: the ban is the portal's fake signal).
  for (const UsernameStats& stats : usernames_) {
    if (stats.banned) fake_usernames_.insert(stats.username);
  }
}

void IdentityAnalysis::build_top(const GeoDb& geo, std::size_t top_n) {
  const std::size_t cut = std::min(top_n, usernames_.size());
  for (std::size_t i = 0; i < cut; ++i) {
    const UsernameStats& stats = usernames_[i];
    if (fake_usernames_.contains(stats.username)) {
      ++compromised_in_top_;
      continue;
    }
    top_.push_back(stats.username);
    top_set_.insert(stats.username);
    // Hosting vs commercial: majority ISP type over identified IPs.
    std::size_t hosting = 0, commercial = 0;
    for (const IpAddress& ip : stats.ips) {
      const auto loc = geo.lookup(ip);
      if (!loc) continue;
      if (loc->isp_type == IspType::HostingProvider) {
        ++hosting;
      } else {
        ++commercial;
      }
    }
    if (hosting == 0 && commercial == 0) {
      // No identified IP: indistinguishable; the paper's HP/CI break-down
      // only covers publishers with located addresses. Default to CI (a
      // hosted box would have been reachable and identified).
      top_ci_.insert(stats.username);
    } else if (hosting >= commercial) {
      top_hp_.insert(stats.username);
    } else {
      top_ci_.insert(stats.username);
    }
  }
}

const UsernameStats* IdentityAnalysis::find_username(std::string_view name) const {
  const auto it = username_index_.find(std::string(name));
  return it == username_index_.end() ? nullptr : &usernames_[it->second];
}

bool IdentityAnalysis::is_fake(std::string_view username) const {
  return fake_usernames_.contains(std::string(username));
}

bool IdentityAnalysis::in_group(std::string_view username, TargetGroup g) const {
  const std::string name(username);
  switch (g) {
    case TargetGroup::All:
      return username_index_.contains(name);
    case TargetGroup::Fake:
      return fake_usernames_.contains(name);
    case TargetGroup::Top:
      return top_set_.contains(name);
    case TargetGroup::TopHP:
      return top_hp_.contains(name);
    case TargetGroup::TopCI:
      return top_ci_.contains(name);
  }
  return false;
}

std::vector<const UsernameStats*> IdentityAnalysis::members(TargetGroup g) const {
  std::vector<const UsernameStats*> out;
  for (const UsernameStats& stats : usernames_) {
    if (in_group(stats.username, g)) out.push_back(&stats);
  }
  return out;
}

IdentityAnalysis::TopIpBreakdown IdentityAnalysis::top_ip_breakdown() const {
  TopIpBreakdown breakdown;
  breakdown.considered = std::min(top_n_, ips_.size());
  for (std::size_t i = 0; i < breakdown.considered; ++i) {
    if (ips_[i].usernames.size() > 1) {
      ++breakdown.multi_username;
    } else {
      ++breakdown.single_username;
    }
  }
  return breakdown;
}

IdentityAnalysis::Share IdentityAnalysis::share_of(TargetGroup g) const {
  Share share;
  if (total_content_ == 0) return share;
  std::size_t content = 0, downloads = 0;
  for (const UsernameStats* stats : members(g)) {
    content += stats->content_count;
    downloads += stats->download_count;
  }
  share.content = static_cast<double>(content) / static_cast<double>(total_content_);
  share.downloads = total_downloads_ == 0
                        ? 0.0
                        : static_cast<double>(downloads) /
                              static_cast<double>(total_downloads_);
  return share;
}

}  // namespace btpub
