#include "analysis/groups.hpp"

#include <algorithm>
#include <cassert>

namespace btpub {

std::string_view to_string(TargetGroup g) {
  switch (g) {
    case TargetGroup::All:
      return "All";
    case TargetGroup::Fake:
      return "Fake";
    case TargetGroup::Top:
      return "Top";
    case TargetGroup::TopHP:
      return "Top-HP";
    case TargetGroup::TopCI:
      return "Top-CI";
  }
  return "?";
}

IdentityAnalysis::IdentityAnalysis(const Dataset& dataset, const GeoDb& geo,
                                   std::size_t top_n,
                                   FakeDetectionConfig fake_config)
    : geo_(&geo), top_n_(top_n) {
  build_tables(dataset);
  detect_fakes(fake_config);
  build_top(geo, top_n);
}

IdentityAnalysis::IdentityAnalysis(const CompactDatasetView& view,
                                   const GeoDb& geo, std::size_t top_n,
                                   FakeDetectionConfig fake_config)
    : geo_(&geo), top_n_(top_n) {
  build_tables(view);
  detect_fakes(fake_config);
  build_top(geo, top_n);
}

void IdentityAnalysis::build_tables(const Dataset& dataset) {
  std::unordered_map<IpAddress, std::size_t> ip_index;
  std::unordered_map<IpAddress, std::unordered_set<std::string>> ip_users;
  std::unordered_map<std::string, std::unordered_set<std::uint32_t>> user_ips;

  for (std::size_t i = 0; i < dataset.torrents.size(); ++i) {
    const TorrentRecord& record = dataset.torrents[i];
    const std::size_t downloads = dataset.downloaders[i].size();
    ++total_content_;
    total_downloads_ += downloads;

    if (!record.username.empty()) {
      auto [it, inserted] =
          username_index_.try_emplace(record.username, usernames_.size());
      if (inserted) {
        UsernameStats stats;
        stats.username = record.username;
        const auto page = dataset.user_pages.find(record.username);
        stats.banned = page != dataset.user_pages.end() && page->second.banned;
        usernames_.push_back(std::move(stats));
      }
      UsernameStats& stats = usernames_[it->second];
      stats.torrents.push_back(i);
      ++stats.content_count;
      stats.download_count += downloads;
      if (record.publisher_ip) {
        if (user_ips[record.username].insert(record.publisher_ip->value()).second) {
          stats.ips.push_back(*record.publisher_ip);
        }
      }
    }

    if (record.publisher_ip) {
      auto [it, inserted] = ip_index.try_emplace(*record.publisher_ip, ips_.size());
      if (inserted) {
        IpStats stats;
        stats.ip = *record.publisher_ip;
        ips_.push_back(std::move(stats));
      }
      IpStats& stats = ips_[it->second];
      stats.torrents.push_back(i);
      ++stats.content_count;
      if (!record.username.empty() &&
          ip_users[*record.publisher_ip].insert(record.username).second) {
        stats.usernames.push_back(record.username);
      }
    }
  }

  // Moderation bans arrive after a username's torrents; count them per IP.
  for (IpStats& stats : ips_) {
    for (const std::string& name : stats.usernames) {
      const auto it = username_index_.find(name);
      if (it != username_index_.end() && usernames_[it->second].banned) {
        ++stats.banned_usernames;
      }
    }
  }

  auto by_content_desc = [](const auto& a, const auto& b) {
    if (a.content_count != b.content_count) return a.content_count > b.content_count;
    return a.torrents.front() < b.torrents.front();
  };
  std::sort(usernames_.begin(), usernames_.end(), by_content_desc);
  std::sort(ips_.begin(), ips_.end(), by_content_desc);
  // Re-key after the sort.
  username_index_.clear();
  for (std::size_t i = 0; i < usernames_.size(); ++i) {
    username_index_.emplace(usernames_[i].username, i);
  }
}

void IdentityAnalysis::build_tables(const CompactDatasetView& view) {
  // Mirrors the Dataset overload row for row so both paths produce
  // identical tables; downloader counts come from the per-torrent spans
  // ([begin, end) over the peer blob) without touching the entries.
  std::unordered_map<IpAddress, std::size_t> ip_index;
  std::unordered_map<IpAddress, std::unordered_set<std::string>> ip_users;
  std::unordered_map<std::string, std::unordered_set<std::uint32_t>> user_ips;

  for (std::size_t i = 0; i < view.torrents.size(); ++i) {
    const TorrentRecordPod& pod = view.torrents[i];
    const std::string_view username = view.username(pod);
    const bool has_ip = (pod.flags & TorrentRecordPod::kHasPublisherIp) != 0;
    const std::size_t downloads = pod.downloaders.size();
    ++total_content_;
    total_downloads_ += downloads;

    if (!username.empty()) {
      auto [it, inserted] =
          username_index_.try_emplace(std::string(username), usernames_.size());
      if (inserted) {
        UsernameStats stats;
        stats.username = std::string(username);
        const UserPagePod* page = view.find_user(username);
        stats.banned = page != nullptr && (page->flags & UserPagePod::kBanned) != 0;
        usernames_.push_back(std::move(stats));
      }
      UsernameStats& stats = usernames_[it->second];
      stats.torrents.push_back(i);
      ++stats.content_count;
      stats.download_count += downloads;
      if (has_ip && user_ips[stats.username].insert(pod.publisher_ip).second) {
        stats.ips.emplace_back(pod.publisher_ip);
      }
    }

    if (has_ip) {
      const IpAddress ip(pod.publisher_ip);
      auto [it, inserted] = ip_index.try_emplace(ip, ips_.size());
      if (inserted) {
        IpStats stats;
        stats.ip = ip;
        ips_.push_back(std::move(stats));
      }
      IpStats& stats = ips_[it->second];
      stats.torrents.push_back(i);
      ++stats.content_count;
      if (!username.empty() &&
          ip_users[ip].insert(std::string(username)).second) {
        stats.usernames.emplace_back(username);
      }
    }
  }

  for (IpStats& stats : ips_) {
    for (const std::string& name : stats.usernames) {
      const auto it = username_index_.find(name);
      if (it != username_index_.end() && usernames_[it->second].banned) {
        ++stats.banned_usernames;
      }
    }
  }

  auto by_content_desc = [](const auto& a, const auto& b) {
    if (a.content_count != b.content_count) return a.content_count > b.content_count;
    return a.torrents.front() < b.torrents.front();
  };
  std::sort(usernames_.begin(), usernames_.end(), by_content_desc);
  std::sort(ips_.begin(), ips_.end(), by_content_desc);
  username_index_.clear();
  for (std::size_t i = 0; i < usernames_.size(); ++i) {
    username_index_.emplace(usernames_[i].username, i);
  }
}

void IdentityAnalysis::detect_fakes(const FakeDetectionConfig& config) {
  for (const IpStats& stats : ips_) {
    if (stats.usernames.size() < config.min_usernames_per_ip) continue;
    const double banned_fraction =
        static_cast<double>(stats.banned_usernames) /
        static_cast<double>(stats.usernames.size());
    if (banned_fraction < config.min_banned_fraction) continue;
    fake_ips_.insert(stats.ip);
    for (const std::string& name : stats.usernames) {
      fake_usernames_.insert(name);
    }
  }
  // A banned username is a fake publisher even when its farm IP was never
  // identified (footnote 3: the ban is the portal's fake signal).
  for (const UsernameStats& stats : usernames_) {
    if (stats.banned) fake_usernames_.insert(stats.username);
  }
}

void IdentityAnalysis::build_top(const GeoDb& geo, std::size_t top_n) {
  const std::size_t cut = std::min(top_n, usernames_.size());
  for (std::size_t i = 0; i < cut; ++i) {
    const UsernameStats& stats = usernames_[i];
    if (fake_usernames_.contains(stats.username)) {
      ++compromised_in_top_;
      continue;
    }
    top_.push_back(stats.username);
    top_set_.insert(stats.username);
    // Hosting vs commercial: majority ISP type over identified IPs.
    std::size_t hosting = 0, commercial = 0;
    for (const IpAddress& ip : stats.ips) {
      const auto loc = geo.lookup(ip);
      if (!loc) continue;
      if (loc->isp_type == IspType::HostingProvider) {
        ++hosting;
      } else {
        ++commercial;
      }
    }
    if (hosting == 0 && commercial == 0) {
      // No identified IP: indistinguishable; the paper's HP/CI break-down
      // only covers publishers with located addresses. Default to CI (a
      // hosted box would have been reachable and identified).
      top_ci_.insert(stats.username);
    } else if (hosting >= commercial) {
      top_hp_.insert(stats.username);
    } else {
      top_ci_.insert(stats.username);
    }
  }
}

const UsernameStats* IdentityAnalysis::find_username(std::string_view name) const {
  const auto it = username_index_.find(std::string(name));
  return it == username_index_.end() ? nullptr : &usernames_[it->second];
}

bool IdentityAnalysis::is_fake(std::string_view username) const {
  return fake_usernames_.contains(std::string(username));
}

bool IdentityAnalysis::in_group(std::string_view username, TargetGroup g) const {
  const std::string name(username);
  switch (g) {
    case TargetGroup::All:
      return username_index_.contains(name);
    case TargetGroup::Fake:
      return fake_usernames_.contains(name);
    case TargetGroup::Top:
      return top_set_.contains(name);
    case TargetGroup::TopHP:
      return top_hp_.contains(name);
    case TargetGroup::TopCI:
      return top_ci_.contains(name);
  }
  return false;
}

std::vector<const UsernameStats*> IdentityAnalysis::members(TargetGroup g) const {
  std::vector<const UsernameStats*> out;
  for (const UsernameStats& stats : usernames_) {
    if (in_group(stats.username, g)) out.push_back(&stats);
  }
  return out;
}

IdentityAnalysis::TopIpBreakdown IdentityAnalysis::top_ip_breakdown() const {
  TopIpBreakdown breakdown;
  breakdown.considered = std::min(top_n_, ips_.size());
  for (std::size_t i = 0; i < breakdown.considered; ++i) {
    if (ips_[i].usernames.size() > 1) {
      ++breakdown.multi_username;
    } else {
      ++breakdown.single_username;
    }
  }
  return breakdown;
}

IdentityAnalysis::Share IdentityAnalysis::share_of(TargetGroup g) const {
  Share share;
  if (total_content_ == 0) return share;
  std::size_t content = 0, downloads = 0;
  for (const UsernameStats* stats : members(g)) {
    content += stats->content_count;
    downloads += stats->download_count;
  }
  share.content = static_cast<double>(content) / static_cast<double>(total_content_);
  share.downloads = total_downloads_ == 0
                        ? 0.0
                        : static_cast<double>(downloads) /
                              static_cast<double>(total_downloads_);
  return share;
}

}  // namespace btpub
