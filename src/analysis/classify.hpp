// classify.hpp — business classification of top publishers (paper §5).
//
// For each top publisher the pipeline emulates a downloader's experience
// over a sample of its torrents: scan the content-page textbox, the release
// filename and the payload file listing for a promoting URL; visit the URL
// and characterise the business (private BT portal vs other web site); and
// inspect the HTTP header exchange for third-party ad networks. Publishers
// with no promoting URL anywhere are classified altruistic.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/groups.hpp"
#include "util/rng.hpp"
#include "websim/appraisal.hpp"
#include "websim/website.hpp"

namespace btpub {

/// §5.1's three classes of top publishers.
enum class BusinessClass : std::uint8_t { BtPortal, OtherWeb, Altruistic };
std::string_view to_string(BusinessClass c);

/// Where a promoting URL was found for one torrent.
struct PromoFinding {
  std::string domain;
  bool in_textbox = false;
  bool in_filename = false;
  bool in_payload = false;
};

/// URL extraction primitives (exposed for tests).
std::optional<std::string> domain_from_textbox(std::string_view textbox);
std::optional<std::string> domain_from_title(std::string_view title);
std::optional<std::string> domain_from_payload(
    std::span<const std::string> filenames);

/// Scans one crawled torrent for a promoting URL in any channel.
std::optional<PromoFinding> find_promotion(const TorrentRecord& record);
/// Span-native overload: reads title/textbox/payload filenames straight
/// from the view's text arena.
std::optional<PromoFinding> find_promotion(const CompactDatasetView& view,
                                           const TorrentRecordPod& pod);

/// The assembled profile of one top publisher.
struct PublisherProfile {
  std::string username;
  BusinessClass cls = BusinessClass::Altruistic;
  std::string domain;  // empty for altruistic publishers
  // Channels observed across the sampled torrents.
  bool in_textbox = false;
  bool in_filename = false;
  bool in_payload = false;
  // Business observations from visiting the site.
  bool ads = false;
  bool donations = false;
  bool vip = false;
  bool signup = false;
  bool private_tracker = false;
  std::vector<std::string> ad_networks;
  // Contribution within the dataset.
  std::size_t content_count = 0;
  std::size_t download_count = 0;
  /// Dominant content language across this publisher's torrents, when a
  /// single language covers at least half of them.
  std::optional<Language> dominant_language;
};

struct ClassificationResult {
  std::vector<PublisherProfile> profiles;  // one per top publisher

  std::vector<const PublisherProfile*> of_class(BusinessClass c) const;
  /// Content/download share of one class against dataset totals.
  struct ClassShare {
    BusinessClass cls = BusinessClass::Altruistic;
    std::size_t publishers = 0;
    double content = 0.0;
    double downloads = 0.0;
  };
  std::vector<ClassShare> shares(std::size_t total_content,
                                 std::size_t total_downloads) const;
};

/// Classifies every member of the Top group, sampling up to
/// `sample_per_publisher` torrents each (the paper examined "a few").
/// `threads` fans the per-publisher promotion scans and site visits out
/// over a worker pool (0 = hardware concurrency). Every torrent sample is
/// drawn from `rng` serially in top() order before the fan-out, and each
/// profile is then a pure function of its publisher's torrents written to
/// its own result slot — byte-identical to serial at any thread count.
ClassificationResult classify_top_publishers(const Dataset& dataset,
                                             const IdentityAnalysis& identity,
                                             const WebsiteDirectory& websites,
                                             std::size_t sample_per_publisher,
                                             Rng& rng, std::size_t threads = 1);

/// Span-native overload over the compact view (in-memory or mmap-ed).
ClassificationResult classify_top_publishers(const CompactDatasetView& view,
                                             const IdentityAnalysis& identity,
                                             const WebsiteDirectory& websites,
                                             std::size_t sample_per_publisher,
                                             Rng& rng, std::size_t threads = 1);

}  // namespace btpub
