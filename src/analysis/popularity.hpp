// popularity.hpp — content-popularity analysis (paper §4.2, Figure 3):
// the distribution, across a group's publishers, of each publisher's
// average number of downloaders per torrent.
#pragma once

#include "analysis/groups.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace btpub {

/// The Figure-3 box for one group.
struct PopularityBox {
  TargetGroup group = TargetGroup::All;
  BoxStats box;  // over per-publisher average downloaders per torrent
};

/// Per-publisher averages for a group. When `sample` is nonzero the group
/// is subsampled to that many publishers (the paper's random 400 for
/// "All"); sampling is deterministic in `rng`.
std::vector<double> avg_downloaders_per_publisher(const IdentityAnalysis& identity,
                                                  TargetGroup group,
                                                  std::size_t sample, Rng& rng);

PopularityBox popularity_box(const IdentityAnalysis& identity, TargetGroup group,
                             std::size_t sample, Rng& rng);

/// The whole Figure-3 panel; "All" is subsampled to `all_sample`.
std::vector<PopularityBox> popularity_panel(const IdentityAnalysis& identity,
                                            std::size_t all_sample, Rng& rng);

}  // namespace btpub
