// income.hpp — publisher-income estimation (paper §5.3, Table 5) and the
// quantified business-model money flows (§6, Figure 5).
#pragma once

#include <vector>

#include "analysis/classify.hpp"
#include "geo/geo_db.hpp"
#include "util/stats.hpp"
#include "websim/appraisal.hpp"

namespace btpub {

/// One Table-5 row: cross-service averaged estimates summarised over the
/// publishers of one profit-driven class.
struct IncomeRow {
  BusinessClass cls = BusinessClass::BtPortal;
  SummaryRow value_usd;        // min/median/avg/max across publishers
  SummaryRow daily_income_usd;
  SummaryRow daily_visits;
  std::size_t sites = 0;
};

/// Table 5 (BT Portals and Other Web Sites rows).
std::vector<IncomeRow> income_table(const ClassificationResult& classification,
                                    const WebsiteDirectory& websites,
                                    const AppraisalPanel& panel);

/// Figure 5 / §6: estimated money flows between the ecosystem's players.
struct MoneyFlows {
  /// Sum of estimated daily ad income over all profit-driven publishers.
  double publishers_income_per_day_usd = 0.0;
  /// Distinct publisher servers found at the named hosting provider.
  std::size_t hosting_servers = 0;
  /// §6's estimate: servers x monthly server price.
  double hosting_income_per_month_eur = 0.0;
  /// Count of publishers whose sites post third-party ads.
  std::size_t publishers_with_ads = 0;
  /// Distinct ad networks observed in header exchanges.
  std::size_t ad_networks = 0;
};

MoneyFlows money_flows(const Dataset& dataset,
                       const ClassificationResult& classification,
                       const WebsiteDirectory& websites,
                       const AppraisalPanel& panel, const GeoDb& geo,
                       std::string_view hosting_isp = "OVH",
                       double server_price_eur_month = 300.0);

}  // namespace btpub
