// contribution.hpp — contribution-skew analysis (paper §3.1, Figure 1).
#pragma once

#include <vector>

#include "analysis/groups.hpp"
#include "util/stats.hpp"

namespace btpub {

/// The Figure-1 curve: share of published content held by the top x% of
/// publishers, by username (or by IP for username-less datasets).
struct ContributionCurve {
  std::vector<LorenzPoint> points;
  double gini = 0.0;
  std::size_t publishers = 0;
  std::size_t contents = 0;
};

/// Curve over username contributions (mn08 falls back to IP when the
/// dataset carries no usernames).
ContributionCurve contribution_curve(const IdentityAnalysis& identity,
                                     std::span<const double> top_percents);

/// §3.1's side observation: how many of the top-N publisher *IPs* also
/// appear as content consumers, and how much they download.
struct TopConsumptionStats {
  std::size_t considered = 0;
  std::size_t zero_downloads = 0;      // paper: ~40%
  std::size_t under_five_downloads = 0;  // paper: ~80% (includes zeroes)
};
/// Scans every downloader entry for top-publisher IPs. `threads` shards
/// the scan over contiguous torrent spans (0 = hardware concurrency);
/// per-shard hit counts merge by commutative integer sums, so the result
/// is byte-identical to serial at any thread count.
TopConsumptionStats top_publisher_consumption(const Dataset& dataset,
                                              const IdentityAnalysis& identity,
                                              std::size_t top_n = 100,
                                              std::size_t threads = 1);
/// Span-native overload: decodes downloader IPs straight from the BEP-23
/// peer blob.
TopConsumptionStats top_publisher_consumption(const CompactDatasetView& view,
                                              const IdentityAnalysis& identity,
                                              std::size_t top_n = 100,
                                              std::size_t threads = 1);

}  // namespace btpub
