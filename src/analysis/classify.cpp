#include "analysis/classify.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace btpub {
namespace {

constexpr std::array<std::string_view, 5> kTlds = {".com", ".net", ".org",
                                                   ".info", ".to"};

bool is_domain_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '-';
}

bool ends_with_tld(std::string_view s) {
  for (const std::string_view tld : kTlds) {
    if (ends_with(s, tld)) return true;
  }
  return false;
}

std::optional<std::string> payload_domain_from_name(std::string_view name) {
  static constexpr std::string_view kPrefix = "Visit-www-";
  static constexpr std::string_view kSuffix = ".txt";
  if (!starts_with(name, kPrefix) || !ends_with(name, kSuffix)) {
    return std::nullopt;
  }
  std::string flat(
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size()));
  std::replace(flat.begin(), flat.end(), '-', '.');
  if (ends_with_tld(flat)) return flat;
  return std::nullopt;
}

}  // namespace

std::string_view to_string(BusinessClass c) {
  switch (c) {
    case BusinessClass::BtPortal:
      return "BT Portals";
    case BusinessClass::OtherWeb:
      return "Other Web Sites";
    case BusinessClass::Altruistic:
      return "Altruistic";
  }
  return "?";
}

std::optional<std::string> domain_from_textbox(std::string_view textbox) {
  // Promoting URLs appear as http://www.domain.tld, https://www.domain.tld
  // or the bare http(s)://domain.tld form. The original matcher anchored on
  // the literal "http://www." prefix, so the other two forms were silently
  // never attributed and their publishers fell through to Altruistic. Scan
  // every scheme occurrence until one yields an allowlisted domain.
  static constexpr std::string_view kScheme = "http";
  for (std::size_t pos = textbox.find(kScheme); pos != std::string_view::npos;
       pos = textbox.find(kScheme, pos + 1)) {
    std::size_t begin = pos + kScheme.size();
    if (begin < textbox.size() && textbox[begin] == 's') ++begin;
    if (textbox.substr(begin, 3) != "://") continue;
    begin += 3;
    // "www." is a presentation prefix, not part of the promoted domain.
    if (textbox.substr(begin, 4) == "www.") begin += 4;
    std::size_t end = begin;
    while (end < textbox.size() && is_domain_char(textbox[end])) ++end;
    if (end == begin) continue;
    std::string domain(textbox.substr(begin, end - begin));
    if (ends_with_tld(domain)) return domain;
  }
  return std::nullopt;
}

std::optional<std::string> domain_from_title(std::string_view title) {
  if (!ends_with_tld(title)) return std::nullopt;
  // The promoting domain is appended as "...-domain.tld".
  const std::size_t dash = title.rfind('-');
  if (dash == std::string_view::npos || dash + 1 >= title.size()) {
    return std::nullopt;
  }
  std::string_view tail = title.substr(dash + 1);
  if (tail.find('.') == std::string_view::npos) return std::nullopt;
  for (char c : tail) {
    if (!is_domain_char(c)) return std::nullopt;
  }
  return std::string(tail);
}

std::optional<std::string> domain_from_payload(
    std::span<const std::string> filenames) {
  for (const std::string& name : filenames) {
    if (auto domain = payload_domain_from_name(name)) return domain;
  }
  return std::nullopt;
}

std::optional<PromoFinding> find_promotion(const TorrentRecord& record) {
  PromoFinding finding;
  if (const auto domain = domain_from_textbox(record.textbox)) {
    finding.domain = *domain;
    finding.in_textbox = true;
  }
  if (const auto domain = domain_from_title(record.title)) {
    if (finding.domain.empty()) finding.domain = *domain;
    finding.in_filename = true;
  }
  if (const auto domain = domain_from_payload(record.payload_filenames)) {
    if (finding.domain.empty()) finding.domain = *domain;
    finding.in_payload = true;
  }
  if (finding.domain.empty()) return std::nullopt;
  return finding;
}

std::optional<PromoFinding> find_promotion(const CompactDatasetView& view,
                                           const TorrentRecordPod& pod) {
  PromoFinding finding;
  if (const auto domain = domain_from_textbox(view.textbox(pod))) {
    finding.domain = *domain;
    finding.in_textbox = true;
  }
  if (const auto domain = domain_from_title(view.title(pod))) {
    if (finding.domain.empty()) finding.domain = *domain;
    finding.in_filename = true;
  }
  for (const StrRef& ref : view.filenames_of(pod)) {
    if (auto domain = payload_domain_from_name(view.str(ref))) {
      if (finding.domain.empty()) finding.domain = *domain;
      finding.in_payload = true;
      break;
    }
  }
  if (finding.domain.empty()) return std::nullopt;
  return finding;
}

std::vector<const PublisherProfile*> ClassificationResult::of_class(
    BusinessClass c) const {
  std::vector<const PublisherProfile*> out;
  for (const PublisherProfile& profile : profiles) {
    if (profile.cls == c) out.push_back(&profile);
  }
  return out;
}

std::vector<ClassificationResult::ClassShare> ClassificationResult::shares(
    std::size_t total_content, std::size_t total_downloads) const {
  std::vector<ClassShare> out;
  for (const BusinessClass c :
       {BusinessClass::BtPortal, BusinessClass::OtherWeb, BusinessClass::Altruistic}) {
    ClassShare share;
    share.cls = c;
    for (const PublisherProfile* p : of_class(c)) {
      ++share.publishers;
      share.content += static_cast<double>(p->content_count);
      share.downloads += static_cast<double>(p->download_count);
    }
    if (total_content > 0) share.content /= static_cast<double>(total_content);
    if (total_downloads > 0) {
      share.downloads /= static_cast<double>(total_downloads);
    }
    out.push_back(share);
  }
  return out;
}

namespace {

/// The parallel classifier core. Phase 1 (serial): walk top() in order and
/// draw every torrent sample from the shared rng — the exact serial
/// consumption sequence. Phase 2 (parallel): build each profile into its
/// own slot; promotion scans, language counts and site visits only read
/// frozen state (the dataset, the const WebsiteDirectory). `promo_of` maps
/// a torrent index to its promotion finding, `language_of` to its content
/// language.
template <typename PromoOf, typename LanguageOf>
ClassificationResult classify_impl(const IdentityAnalysis& identity,
                                   const WebsiteDirectory& websites,
                                   std::size_t sample_per_publisher, Rng& rng,
                                   std::size_t threads, PromoOf&& promo_of,
                                   LanguageOf&& language_of) {
  struct Item {
    const UsernameStats* stats;
    std::vector<std::size_t> sample;
  };
  std::vector<Item> items;
  for (const std::string& username : identity.top()) {
    const UsernameStats* stats = identity.find_username(username);
    if (stats == nullptr) continue;
    // Emulate the downloader experience on a sample of this publisher's
    // torrents.
    std::vector<std::size_t> sample = stats->torrents;
    if (sample_per_publisher > 0 && sample.size() > sample_per_publisher) {
      std::vector<std::size_t> chosen;
      for (std::size_t i : rng.sample_indices(sample.size(), sample_per_publisher)) {
        chosen.push_back(sample[i]);
      }
      sample.swap(chosen);
    }
    items.push_back(Item{stats, std::move(sample)});
  }

  ClassificationResult result;
  result.profiles.resize(items.size());
  parallel_for_each_index(items.size(), threads, [&](std::size_t p) {
    const Item& item = items[p];
    const UsernameStats* stats = item.stats;
    PublisherProfile profile;
    profile.username = stats->username;
    profile.content_count = stats->content_count;
    profile.download_count = stats->download_count;

    for (const std::size_t index : item.sample) {
      const auto finding = promo_of(index);
      if (!finding) continue;
      if (profile.domain.empty()) profile.domain = finding->domain;
      profile.in_textbox |= finding->in_textbox;
      profile.in_filename |= finding->in_filename;
      profile.in_payload |= finding->in_payload;
    }

    // Dominant language over the full torrent list.
    std::array<std::size_t, 6> lang_counts{};
    for (const std::size_t index : stats->torrents) {
      ++lang_counts[static_cast<std::size_t>(language_of(index))];
    }
    const auto max_it = std::max_element(lang_counts.begin(), lang_counts.end());
    if (*max_it * 2 >= stats->content_count &&
        static_cast<Language>(max_it - lang_counts.begin()) != Language::English) {
      profile.dominant_language =
          static_cast<Language>(max_it - lang_counts.begin());
    }

    if (profile.domain.empty()) {
      profile.cls = BusinessClass::Altruistic;
    } else if (const auto site = websites.visit(profile.domain)) {
      profile.signup = site->signup_form;
      profile.private_tracker = site->tracker_links;
      profile.ads = site->ad_banners;
      profile.donations = site->donation_button;
      profile.vip = site->vip_offer;
      profile.ad_networks = websites.third_parties(profile.domain);
      profile.cls = site->torrent_index ? BusinessClass::BtPortal
                                        : BusinessClass::OtherWeb;
    } else {
      // URL resolved nowhere (site gone): best effort, keep it OtherWeb.
      profile.cls = BusinessClass::OtherWeb;
    }
    result.profiles[p] = std::move(profile);
  });
  return result;
}

}  // namespace

ClassificationResult classify_top_publishers(const Dataset& dataset,
                                             const IdentityAnalysis& identity,
                                             const WebsiteDirectory& websites,
                                             std::size_t sample_per_publisher,
                                             Rng& rng, std::size_t threads) {
  return classify_impl(
      identity, websites, sample_per_publisher, rng, threads,
      [&dataset](std::size_t index) {
        return find_promotion(dataset.torrents[index]);
      },
      [&dataset](std::size_t index) { return dataset.torrents[index].language; });
}

ClassificationResult classify_top_publishers(const CompactDatasetView& view,
                                             const IdentityAnalysis& identity,
                                             const WebsiteDirectory& websites,
                                             std::size_t sample_per_publisher,
                                             Rng& rng, std::size_t threads) {
  return classify_impl(
      identity, websites, sample_per_publisher, rng, threads,
      [&view](std::size_t index) {
        return find_promotion(view, view.torrents[index]);
      },
      [&view](std::size_t index) {
        return static_cast<Language>(view.torrents[index].language);
      });
}

}  // namespace btpub
