// content_type.hpp — content-type mix per target group (paper §4.1,
// Figure 2).
#pragma once

#include <array>

#include "analysis/groups.hpp"
#include "portal/category.hpp"

namespace btpub {

/// Fraction of a group's published content per coarse category (Video,
/// Audio, Games, Software, Books, Other). Fractions sum to 1 for a
/// non-empty group.
struct ContentTypeMix {
  TargetGroup group = TargetGroup::All;
  std::array<double, 6> fractions{};  // indexed by CoarseCategory
  std::size_t contents = 0;

  double of(CoarseCategory c) const {
    return fractions[static_cast<std::size_t>(c)];
  }
};

ContentTypeMix content_type_mix(const Dataset& dataset,
                                const IdentityAnalysis& identity,
                                TargetGroup group);

/// All five groups at once (the full Figure 2 panel).
std::vector<ContentTypeMix> content_type_panel(const Dataset& dataset,
                                               const IdentityAnalysis& identity);

}  // namespace btpub
