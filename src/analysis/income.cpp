#include "analysis/income.hpp"

#include <unordered_set>

namespace btpub {

std::vector<IncomeRow> income_table(const ClassificationResult& classification,
                                    const WebsiteDirectory& websites,
                                    const AppraisalPanel& panel) {
  std::vector<IncomeRow> rows;
  for (const BusinessClass cls : {BusinessClass::BtPortal, BusinessClass::OtherWeb}) {
    std::vector<double> values, incomes, visits;
    for (const PublisherProfile* profile : classification.of_class(cls)) {
      const auto estimate = panel.average(websites, profile->domain);
      if (!estimate) continue;
      values.push_back(estimate->value_usd);
      incomes.push_back(estimate->daily_income_usd);
      visits.push_back(estimate->daily_visits);
    }
    IncomeRow row;
    row.cls = cls;
    row.sites = values.size();
    row.value_usd = summary_row(values);
    row.daily_income_usd = summary_row(incomes);
    row.daily_visits = summary_row(visits);
    rows.push_back(std::move(row));
  }
  return rows;
}

MoneyFlows money_flows(const Dataset& dataset,
                       const ClassificationResult& classification,
                       const WebsiteDirectory& websites,
                       const AppraisalPanel& panel, const GeoDb& geo,
                       std::string_view hosting_isp,
                       double server_price_eur_month) {
  MoneyFlows flows;
  std::unordered_set<std::string> networks;
  for (const PublisherProfile& profile : classification.profiles) {
    if (profile.domain.empty()) continue;
    const auto estimate = panel.average(websites, profile.domain);
    if (estimate) flows.publishers_income_per_day_usd += estimate->daily_income_usd;
    if (profile.ads) ++flows.publishers_with_ads;
    for (const std::string& network : profile.ad_networks) {
      networks.insert(network);
    }
  }
  flows.ad_networks = networks.size();

  // §6: hosting income from publisher servers at one provider, counted
  // over every identified publisher address in the dataset.
  std::unordered_set<IpAddress> servers;
  for (const TorrentRecord& record : dataset.torrents) {
    if (!record.publisher_ip) continue;
    const auto loc = geo.lookup(*record.publisher_ip);
    if (loc && loc->isp_name == hosting_isp) servers.insert(*record.publisher_ip);
  }
  flows.hosting_servers = servers.size();
  flows.hosting_income_per_month_eur =
      static_cast<double>(servers.size()) * server_price_eur_month;
  return flows;
}

}  // namespace btpub
