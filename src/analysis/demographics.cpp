#include "analysis/demographics.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace btpub {
namespace {

std::vector<DemographicRow> to_rows(
    const std::unordered_map<std::string, std::size_t>& counts,
    std::size_t total, std::size_t top_k) {
  std::vector<DemographicRow> rows;
  rows.reserve(counts.size());
  for (const auto& [label, count] : counts) {
    DemographicRow row;
    row.label = label;
    row.downloaders = count;
    row.share = total ? static_cast<double>(count) / static_cast<double>(total)
                      : 0.0;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const DemographicRow& a, const DemographicRow& b) {
              if (a.downloaders != b.downloaders) {
                return a.downloaders > b.downloaders;
              }
              return a.label < b.label;
            });
  if (top_k > 0 && rows.size() > top_k) rows.resize(top_k);
  return rows;
}

}  // namespace

DownloaderDemographics downloader_demographics(const Dataset& dataset,
                                               const GeoDb& geo,
                                               std::size_t top_k) {
  DownloaderDemographics demo;
  std::unordered_set<IpAddress> seen;
  std::unordered_map<std::string, std::size_t> by_country;
  std::unordered_map<std::string, std::size_t> by_isp;
  for (const auto& torrent_ips : dataset.downloaders) {
    for (const IpAddress& ip : torrent_ips) {
      if (!seen.insert(ip).second) continue;
      const auto loc = geo.lookup(ip);
      if (!loc) continue;
      ++demo.located_ips;
      ++by_country[std::string(loc->country)];
      ++by_isp[std::string(loc->isp_name)];
    }
  }
  demo.total_distinct_ips = seen.size();
  demo.by_country = to_rows(by_country, demo.located_ips, top_k);
  demo.by_isp = to_rows(by_isp, demo.located_ips, top_k);
  return demo;
}

std::vector<DemographicRow> publisher_countries(const Dataset& dataset,
                                                const GeoDb& geo,
                                                std::size_t top_k) {
  std::unordered_map<std::string, std::size_t> counts;
  std::size_t total = 0;
  for (const TorrentRecord& record : dataset.torrents) {
    if (!record.publisher_ip) continue;
    const auto loc = geo.lookup(*record.publisher_ip);
    if (!loc) continue;
    ++counts[std::string(loc->country)];
    ++total;
  }
  return to_rows(counts, total, top_k);
}

}  // namespace btpub
