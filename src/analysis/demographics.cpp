#include "analysis/demographics.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/parallel.hpp"

namespace btpub {
namespace {

std::vector<DemographicRow> to_rows(
    const std::unordered_map<std::string, std::size_t>& counts,
    std::size_t total, std::size_t top_k) {
  std::vector<DemographicRow> rows;
  rows.reserve(counts.size());
  for (const auto& [label, count] : counts) {
    DemographicRow row;
    row.label = label;
    row.downloaders = count;
    row.share = total ? static_cast<double>(count) / static_cast<double>(total)
                      : 0.0;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const DemographicRow& a, const DemographicRow& b) {
              if (a.downloaders != b.downloaders) {
                return a.downloaders > b.downloaders;
              }
              return a.label < b.label;
            });
  if (top_k > 0 && rows.size() > top_k) rows.resize(top_k);
  return rows;
}

/// Per-shard geo aggregation over a slice of the distinct-IP list.
struct GeoCounts {
  std::size_t located = 0;
  std::unordered_map<std::string, std::size_t> by_country;
  std::unordered_map<std::string, std::size_t> by_isp;
};

/// The demographics core over any downloader source. `for_each_ip(t, fn)`
/// invokes fn per downloader IP of torrent t. Two sharded passes: the
/// dedup scan emits each shard's locally-new IPs (merged into the global
/// distinct set in span order), then the geo lookups fan out over the
/// distinct list and merge by commutative sums — both byte-identical to
/// the serial single pass.
template <typename ForEachIp>
DownloaderDemographics demographics_impl(std::size_t torrent_count,
                                         const GeoDb& geo, std::size_t top_k,
                                         std::size_t threads,
                                         ForEachIp&& for_each_ip) {
  DownloaderDemographics demo;

  auto shards = sharded_scan(
      torrent_count, threads, [&](std::size_t begin, std::size_t end) {
        std::unordered_set<IpAddress> local_seen;
        std::vector<IpAddress> local_new;
        for (std::size_t t = begin; t < end; ++t) {
          for_each_ip(t, [&](const IpAddress& ip) {
            if (local_seen.insert(ip).second) local_new.push_back(ip);
          });
        }
        return local_new;
      });

  std::unordered_set<IpAddress> seen;
  std::vector<IpAddress> distinct;
  for (const auto& shard : shards) {
    for (const IpAddress& ip : shard) {
      if (seen.insert(ip).second) distinct.push_back(ip);
    }
  }
  demo.total_distinct_ips = seen.size();

  auto counts = sharded_scan(
      distinct.size(), threads, [&](std::size_t begin, std::size_t end) {
        GeoCounts local;
        for (std::size_t i = begin; i < end; ++i) {
          const auto loc = geo.lookup(distinct[i]);
          if (!loc) continue;
          ++local.located;
          ++local.by_country[std::string(loc->country)];
          ++local.by_isp[std::string(loc->isp_name)];
        }
        return local;
      });
  std::unordered_map<std::string, std::size_t> by_country;
  std::unordered_map<std::string, std::size_t> by_isp;
  for (const GeoCounts& shard : counts) {
    demo.located_ips += shard.located;
    for (const auto& [label, count] : shard.by_country) by_country[label] += count;
    for (const auto& [label, count] : shard.by_isp) by_isp[label] += count;
  }
  demo.by_country = to_rows(by_country, demo.located_ips, top_k);
  demo.by_isp = to_rows(by_isp, demo.located_ips, top_k);
  return demo;
}

}  // namespace

DownloaderDemographics downloader_demographics(const Dataset& dataset,
                                               const GeoDb& geo,
                                               std::size_t top_k,
                                               std::size_t threads) {
  return demographics_impl(
      dataset.downloaders.size(), geo, top_k, threads,
      [&dataset](std::size_t t, auto&& fn) {
        for (const IpAddress& ip : dataset.downloaders[t]) fn(ip);
      });
}

DownloaderDemographics downloader_demographics(const CompactDatasetView& view,
                                               const GeoDb& geo,
                                               std::size_t top_k,
                                               std::size_t threads) {
  return demographics_impl(
      view.torrents.size(), geo, top_k, threads,
      [&view](std::size_t t, auto&& fn) {
        const TorrentRecordPod& pod = view.torrents[t];
        const std::uint32_t n = pod.downloaders.size();
        for (std::uint32_t i = 0; i < n; ++i) fn(view.downloader_ip(pod, i));
      });
}

namespace {

template <typename RowOf>
std::vector<DemographicRow> publisher_countries_impl(std::size_t torrent_count,
                                                     const GeoDb& geo,
                                                     std::size_t top_k,
                                                     RowOf&& publisher_ip_of) {
  std::unordered_map<std::string, std::size_t> counts;
  std::size_t total = 0;
  for (std::size_t t = 0; t < torrent_count; ++t) {
    const std::optional<IpAddress> ip = publisher_ip_of(t);
    if (!ip) continue;
    const auto loc = geo.lookup(*ip);
    if (!loc) continue;
    ++counts[std::string(loc->country)];
    ++total;
  }
  return to_rows(counts, total, top_k);
}

}  // namespace

std::vector<DemographicRow> publisher_countries(const Dataset& dataset,
                                                const GeoDb& geo,
                                                std::size_t top_k) {
  return publisher_countries_impl(
      dataset.torrents.size(), geo, top_k, [&dataset](std::size_t t) {
        return dataset.torrents[t].publisher_ip;
      });
}

std::vector<DemographicRow> publisher_countries(const CompactDatasetView& view,
                                                const GeoDb& geo,
                                                std::size_t top_k) {
  return publisher_countries_impl(
      view.torrents.size(), geo, top_k,
      [&view](std::size_t t) -> std::optional<IpAddress> {
        const TorrentRecordPod& pod = view.torrents[t];
        if ((pod.flags & TorrentRecordPod::kHasPublisherIp) == 0) {
          return std::nullopt;
        }
        return IpAddress(pod.publisher_ip);
      });
}

}  // namespace btpub
