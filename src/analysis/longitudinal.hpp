// longitudinal.hpp — the §5.2 longitudinal study (Table 4): publisher
// lifetime and average publishing rate per business class, read off the
// portal's per-user history pages snapshotted by the crawler.
#pragma once

#include <vector>

#include "analysis/classify.hpp"
#include "util/stats.hpp"

namespace btpub {

/// One publisher's longitudinal facts.
struct PublisherHistory {
  std::string username;
  BusinessClass cls = BusinessClass::Altruistic;
  double lifetime_days = 0.0;     // first to last appearance
  double publish_rate = 0.0;      // contents per day over the lifetime
  std::size_t total_published = 0;
};

/// One Table-4 row.
struct LongitudinalRow {
  BusinessClass cls = BusinessClass::Altruistic;
  SummaryRow lifetime_days;   // min/median/avg/max over publishers
  SummaryRow publish_rate;
  std::size_t publishers = 0;
};

/// Per-publisher histories for all classified top publishers. Publishers
/// whose user page is missing (e.g. already purged) are skipped.
std::vector<PublisherHistory> publisher_histories(
    const Dataset& dataset, const ClassificationResult& classification);

/// The Table-4 rows (BT Portals / Other Web Sites / Altruistic).
std::vector<LongitudinalRow> longitudinal_table(
    const Dataset& dataset, const ClassificationResult& classification);

}  // namespace btpub
