#include "analysis/session.hpp"

#include <algorithm>
#include <cmath>

#include "util/parallel.hpp"

namespace btpub {
namespace {

/// Shared metric computation over any sightings source: a callable
/// mapping a torrent index to its std::span<const SimTime> sightings.
template <typename SightingsOf>
SeedingMetrics seeding_metrics_impl(SightingsOf&& sightings_of,
                                    std::span<const std::size_t> torrent_indices,
                                    SimDuration offline_gap) {
  SeedingMetrics metrics;
  std::vector<Interval> all_sessions;
  double total_seeded_hours = 0.0;
  for (const std::size_t index : torrent_indices) {
    const std::span<const SimTime> sightings = sightings_of(index);
    if (sightings.empty()) continue;
    const auto sessions = reconstruct_sessions(sightings, offline_gap);
    SimDuration torrent_total = 0;
    for (const Interval& s : sessions) torrent_total += s.length();
    total_seeded_hours += to_hours(torrent_total);
    all_sessions.insert(all_sessions.end(), sessions.begin(), sessions.end());
    ++metrics.torrents_with_data;
  }
  if (metrics.torrents_with_data == 0) return metrics;
  metrics.avg_seeding_hours =
      total_seeded_hours / static_cast<double>(metrics.torrents_with_data);
  metrics.aggregated_session_hours = to_hours(union_length(all_sessions));
  metrics.avg_parallel_torrents =
      metrics.aggregated_session_hours > 0.0
          ? total_seeded_hours / metrics.aggregated_session_hours
          : 0.0;
  return metrics;
}

template <typename SightingsOf>
std::vector<SeedingBox> seeding_panel_impl(SightingsOf&& sightings_of,
                                           const IdentityAnalysis& identity,
                                           std::size_t all_sample, Rng& rng,
                                           SimDuration offline_gap,
                                           std::size_t threads) {
  std::vector<SeedingBox> panel;
  for (const TargetGroup group : {TargetGroup::All, TargetGroup::Fake,
                                  TargetGroup::Top, TargetGroup::TopHP,
                                  TargetGroup::TopCI}) {
    std::vector<const UsernameStats*> members = identity.members(group);
    // The subsample draw happens before the fan-out, in group order — the
    // rng consumption sequence is the serial one at any thread count.
    if (group == TargetGroup::All && all_sample > 0 &&
        members.size() > all_sample) {
      std::vector<const UsernameStats*> chosen;
      chosen.reserve(all_sample);
      for (std::size_t i : rng.sample_indices(members.size(), all_sample)) {
        chosen.push_back(members[i]);
      }
      members.swap(chosen);
    }
    // Each publisher's metrics are a pure function of its own sightings;
    // workers write disjoint slots, the fold below runs serially in order.
    std::vector<SeedingMetrics> metrics(members.size());
    parallel_for_each_index(members.size(), threads, [&](std::size_t i) {
      metrics[i] =
          seeding_metrics_impl(sightings_of, members[i]->torrents, offline_gap);
    });
    std::vector<double> seeding_hours, parallel, aggregated;
    for (const SeedingMetrics& m : metrics) {
      if (m.torrents_with_data == 0) continue;
      seeding_hours.push_back(m.avg_seeding_hours);
      parallel.push_back(m.avg_parallel_torrents);
      aggregated.push_back(m.aggregated_session_hours);
    }
    SeedingBox box;
    box.group = group;
    box.publishers = seeding_hours.size();
    box.seeding_time_hours = box_stats(seeding_hours);
    box.parallel_torrents = box_stats(parallel);
    box.aggregated_session_hours = box_stats(aggregated);
    panel.push_back(std::move(box));
  }
  return panel;
}

}  // namespace

double discovery_probability(double w, double n, std::size_t m) {
  if (n <= 0.0 || w <= 0.0) return 0.0;
  if (w >= n) return 1.0;
  return 1.0 - std::pow(1.0 - w / n, static_cast<double>(m));
}

std::size_t queries_for_probability(double w, double n, double target) {
  // Degenerate inputs first: NaNs poison every comparison below, and a
  // publisher that can never appear in a reply window (w <= 0, or an empty
  // swarm) makes per_query_miss exactly 1, whose log is 0 — the division
  // would yield inf and casting inf to std::size_t is UB.
  if (std::isnan(w) || std::isnan(n) || std::isnan(target)) {
    return kQueriesUnreachable;
  }
  if (target <= 0.0) return 0;  // any nonpositive target is already met
  if (n <= 0.0 || w <= 0.0) return kQueriesUnreachable;
  if (w >= n) return 1;
  if (target >= 1.0) target = 1.0 - 1e-12;
  const double per_query_miss = 1.0 - w / n;
  const double queries =
      std::ceil(std::log(1.0 - target) / std::log(per_query_miss));
  if (!(queries >= 0.0) ||
      queries >= static_cast<double>(kQueriesUnreachable)) {
    return kQueriesUnreachable;
  }
  return static_cast<std::size_t>(queries);
}

std::vector<Interval> reconstruct_sessions(std::span<const SimTime> sightings,
                                           SimDuration offline_gap,
                                           SimDuration query_gap) {
  std::vector<Interval> sessions;
  if (sightings.empty()) return sessions;
  // A negative query gap would produce end < start intervals whose negative
  // lengths silently *subtract* seeding hours downstream; clamp to zero (a
  // lone sighting then contributes a zero-length session, never negative).
  if (query_gap < 0) query_gap = 0;
  // The gap rule below assumes ascending sightings. Merged multi-vantage
  // timelines (tracker + DHT machines interleaving) can arrive out of
  // order, and running the sweep on an unsorted span fabricates phantom
  // session splits at every backwards jump — inflating session counts and
  // seeding hours. Verify, and sort a local copy only when actually needed
  // (the common single-vantage path stays allocation-free).
  std::vector<SimTime> sorted;
  if (!std::is_sorted(sightings.begin(), sightings.end())) {
    sorted.assign(sightings.begin(), sightings.end());
    std::sort(sorted.begin(), sorted.end());
    sightings = sorted;
  }
  SimTime start = sightings.front();
  SimTime last = sightings.front();
  for (std::size_t i = 1; i < sightings.size(); ++i) {
    const SimTime t = sightings[i];
    if (t - last > offline_gap) {
      sessions.push_back(Interval{start, last + query_gap});
      start = t;
    }
    last = t;
  }
  sessions.push_back(Interval{start, last + query_gap});
  return sessions;
}

SimDuration union_length(std::vector<Interval> intervals) {
  if (intervals.empty()) return 0;
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  SimDuration total = 0;
  SimTime cover_end = intervals.front().start;
  for (const Interval& iv : intervals) {
    const SimTime begin = std::max(iv.start, cover_end);
    if (iv.end > begin) {
      total += iv.end - begin;
      cover_end = iv.end;
    } else {
      cover_end = std::max(cover_end, iv.end);
    }
  }
  return total;
}

SeedingMetrics seeding_metrics(const Dataset& dataset,
                               std::span<const std::size_t> torrent_indices,
                               SimDuration offline_gap) {
  return seeding_metrics_impl(
      [&dataset](std::size_t index) {
        return std::span<const SimTime>(dataset.publisher_sightings[index]);
      },
      torrent_indices, offline_gap);
}

SeedingMetrics seeding_metrics(const CompactDatasetView& view,
                               std::span<const std::size_t> torrent_indices,
                               SimDuration offline_gap) {
  return seeding_metrics_impl(
      [&view](std::size_t index) {
        return view.sightings_of(view.torrents[index]);
      },
      torrent_indices, offline_gap);
}

std::vector<SeedingBox> seeding_panel(const Dataset& dataset,
                                      const IdentityAnalysis& identity,
                                      std::size_t all_sample, Rng& rng,
                                      SimDuration offline_gap,
                                      std::size_t threads) {
  return seeding_panel_impl(
      [&dataset](std::size_t index) {
        return std::span<const SimTime>(dataset.publisher_sightings[index]);
      },
      identity, all_sample, rng, offline_gap, threads);
}

std::vector<SeedingBox> seeding_panel(const CompactDatasetView& view,
                                      const IdentityAnalysis& identity,
                                      std::size_t all_sample, Rng& rng,
                                      SimDuration offline_gap,
                                      std::size_t threads) {
  return seeding_panel_impl(
      [&view](std::size_t index) {
        return view.sightings_of(view.torrents[index]);
      },
      identity, all_sample, rng, offline_gap, threads);
}

}  // namespace btpub
