// groups.hpp — publisher identity analysis (paper §3.3).
//
// Aggregates the crawled dataset by username and by IP, detects fake
// publishers from the username↔IP mapping plus the portal's moderation
// signal (an IP that publishes under many usernames which keep getting
// banned is a fake farm), and forms the paper's target groups:
// All / Fake / Top / Top-HP / Top-CI.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crawler/compact_dataset.hpp"
#include "crawler/dataset.hpp"
#include "geo/geo_db.hpp"

namespace btpub {

/// Everything observed about one username.
struct UsernameStats {
  std::string username;
  std::vector<std::size_t> torrents;  // indices into Dataset::torrents
  std::size_t content_count = 0;
  std::size_t download_count = 0;  // total distinct downloader IPs
  std::vector<IpAddress> ips;      // identified publisher IPs (deduped)
  bool banned = false;
};

/// Everything observed about one publisher IP.
struct IpStats {
  IpAddress ip;
  std::vector<std::size_t> torrents;
  std::size_t content_count = 0;
  std::vector<std::string> usernames;  // deduped
  std::size_t banned_usernames = 0;
};

/// Thresholds for the fake-farm rule.
struct FakeDetectionConfig {
  /// An IP is a fake farm when it published under at least this many
  /// distinct usernames...
  std::size_t min_usernames_per_ip = 3;
  /// ...of which at least this fraction were banned by moderation.
  double min_banned_fraction = 0.5;
};

/// The target groups of §4.
enum class TargetGroup : std::uint8_t { All, Fake, Top, TopHP, TopCI };
std::string_view to_string(TargetGroup g);

/// Full identity analysis over one dataset.
class IdentityAnalysis {
 public:
  /// `top_n` is the size of the "top publishers" cut (the paper's 100).
  /// `threads` shards the table-building scan across a worker pool (0 =
  /// hardware concurrency); the tables are byte-identical to a serial
  /// build at every thread count — shards cover contiguous torrent-index
  /// spans and merge back in span order, which reproduces the serial
  /// first-occurrence dedup exactly.
  IdentityAnalysis(const Dataset& dataset, const GeoDb& geo,
                   std::size_t top_n = 100,
                   FakeDetectionConfig fake_config = {},
                   std::size_t threads = 1);

  /// Span-native overload: reads the struct-of-arrays view (in-memory or
  /// mmap-ed) directly — per-torrent downloader counts and publisher IPs
  /// come straight from the flat spans, with no Dataset inflation. The
  /// view only needs to outlive the constructor.
  IdentityAnalysis(const CompactDatasetView& view, const GeoDb& geo,
                   std::size_t top_n = 100,
                   FakeDetectionConfig fake_config = {},
                   std::size_t threads = 1);

  /// Usernames sorted by content count, descending.
  const std::vector<UsernameStats>& usernames() const noexcept { return usernames_; }
  /// IPs sorted by content count, descending.
  const std::vector<IpStats>& ips() const noexcept { return ips_; }

  const UsernameStats* find_username(std::string_view name) const;

  /// Usernames attributed to fake farms.
  const std::unordered_set<std::string>& fake_usernames() const noexcept {
    return fake_usernames_;
  }
  const std::unordered_set<IpAddress>& fake_ips() const noexcept { return fake_ips_; }

  /// The Top group: top-N usernames minus detected fakes.
  const std::vector<std::string>& top() const noexcept { return top_; }
  /// Fake usernames that had cracked the top-N (the paper's 16).
  std::size_t compromised_in_top() const noexcept { return compromised_in_top_; }

  /// Top split by hosting location (majority ISP type of identified IPs).
  const std::unordered_set<std::string>& top_hp() const noexcept { return top_hp_; }
  const std::unordered_set<std::string>& top_ci() const noexcept { return top_ci_; }

  bool is_fake(std::string_view username) const;
  /// Group membership test ("All" is every username).
  bool in_group(std::string_view username, TargetGroup g) const;

  /// Stats pointers for every member of a group (All = everyone).
  std::vector<const UsernameStats*> members(TargetGroup g) const;

  /// §3.3 headline: of the top-N *IPs*, how many are multi-username farms?
  struct TopIpBreakdown {
    std::size_t considered = 0;       // min(top_n, #ips)
    std::size_t single_username = 0;
    std::size_t multi_username = 0;   // fake-farm pattern
  };
  TopIpBreakdown top_ip_breakdown() const;

  /// Content/download share of a set of usernames.
  struct Share {
    double content = 0.0;
    double downloads = 0.0;
  };
  Share share_of(TargetGroup g) const;

  std::size_t total_content() const noexcept { return total_content_; }
  std::size_t total_downloads() const noexcept { return total_downloads_; }

 private:
  /// One shard's worth of tables, scanned over a contiguous torrent span.
  struct ShardTables;
  /// Cross-shard dedup state the in-order merge threads through.
  struct MergeState;

  /// Sharded scan + in-span-order merge; Access abstracts the row source
  /// (Dataset vs CompactDatasetView) so both ctors share one code path.
  template <typename Access>
  void build_tables(const Access& access, std::size_t threads);
  /// Folds one shard's tables into the global ones, preserving the serial
  /// first-occurrence order.
  void merge_shard(ShardTables&& shard, MergeState& state);
  /// The post-merge serial tail: per-IP banned counts, the content-count
  /// sort, and the username re-key.
  void finish_tables();
  void detect_fakes(const FakeDetectionConfig& config);
  void build_top(const GeoDb& geo, std::size_t top_n);

  const GeoDb* geo_;
  std::vector<UsernameStats> usernames_;
  std::unordered_map<std::string, std::size_t> username_index_;
  std::vector<IpStats> ips_;
  std::unordered_set<std::string> fake_usernames_;
  std::unordered_set<IpAddress> fake_ips_;
  std::vector<std::string> top_;
  std::unordered_set<std::string> top_set_;
  std::unordered_set<std::string> top_hp_;
  std::unordered_set<std::string> top_ci_;
  std::size_t compromised_in_top_ = 0;
  std::size_t total_content_ = 0;
  std::size_t total_downloads_ = 0;
  std::size_t top_n_ = 100;
};

}  // namespace btpub
