// session.hpp — the Appendix-A session estimator and the seeding-behaviour
// metrics of §4.3 (Figure 4).
//
// A tracker query returns only a random W-subset of the N participants, so
// publisher presence is observed through sparse sightings. Appendix A
// derives P = 1 - (1 - W/N)^m for the probability of catching a present
// peer within m queries and concludes that a 4-hour sighting gap implies
// the peer left. reconstruct_sessions applies exactly that rule; the
// seeding metrics aggregate the reconstructed sessions per publisher.
#pragma once

#include <limits>
#include <span>

#include "analysis/groups.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace btpub {

/// Appendix A, equation (1): probability that a peer present in a torrent
/// of N peers is returned at least once over m queries of W random peers.
double discovery_probability(double w, double n, std::size_t m);

/// Sentinel returned by queries_for_probability when no finite number of
/// queries can reach the target (W <= 0, empty swarm, or NaN inputs).
inline constexpr std::size_t kQueriesUnreachable =
    std::numeric_limits<std::size_t>::max();

/// Queries needed for discovery_probability >= target (Appendix A solves
/// this for W=50, N=165, target 0.99 -> m = 13). Degenerate inputs return
/// kQueriesUnreachable (never observable) or 0 (target already met).
std::size_t queries_for_probability(double w, double n, double target);

/// Turns sparse sighting times into presence sessions: consecutive
/// sightings closer than `offline_gap` belong to one session (the paper's
/// 4 h threshold; robustness checked at 2 h and 6 h). Unsorted input
/// (merged multi-vantage timelines) is detected and sorted defensively —
/// the result is always the sorted-order reconstruction. Each session is
/// [first_sighting, last_sighting + one nominal query gap); a single
/// sighting yields exactly one query_gap-long session. Negative query gaps
/// are clamped to zero.
std::vector<Interval> reconstruct_sessions(std::span<const SimTime> sightings,
                                           SimDuration offline_gap,
                                           SimDuration query_gap = minutes(15));

/// Union length of a set of (possibly overlapping) intervals.
SimDuration union_length(std::vector<Interval> intervals);

/// Figure-4 metrics for one publisher, from its per-torrent sightings.
struct SeedingMetrics {
  /// (a) mean over torrents of the total reconstructed seeding time.
  double avg_seeding_hours = 0.0;
  /// (b) time-weighted average number of torrents seeded in parallel
  /// (total seeded hours / union-of-session hours).
  double avg_parallel_torrents = 0.0;
  /// (c) aggregated session time across all torrents (union), in hours.
  double aggregated_session_hours = 0.0;
  std::size_t torrents_with_data = 0;
};

/// Computes the metrics for one publisher given the dataset and the
/// indices of its torrents.
SeedingMetrics seeding_metrics(const Dataset& dataset,
                               std::span<const std::size_t> torrent_indices,
                               SimDuration offline_gap = hours(4));

/// Span-native overload: sightings come straight from the flat sightings
/// array via per-torrent [begin, end) spans — no Dataset inflation.
SeedingMetrics seeding_metrics(const CompactDatasetView& view,
                               std::span<const std::size_t> torrent_indices,
                               SimDuration offline_gap = hours(4));

/// The Figure-4 panel: per-group box plots over publishers. "All" is
/// subsampled to `all_sample` (the paper's random 400). Publishers without
/// any identified-IP sightings carry no signal and are skipped.
struct SeedingBox {
  TargetGroup group = TargetGroup::All;
  BoxStats seeding_time_hours;
  BoxStats parallel_torrents;
  BoxStats aggregated_session_hours;
  std::size_t publishers = 0;
};

/// `threads` fans the per-publisher session reconstruction out over a
/// worker pool (0 = hardware concurrency). The "All" subsample is drawn
/// from `rng` before any parallel work, and each publisher's metrics are
/// a pure function of its sightings written to its own result slot — so
/// the panel is byte-identical to a serial run at any thread count.
std::vector<SeedingBox> seeding_panel(const Dataset& dataset,
                                      const IdentityAnalysis& identity,
                                      std::size_t all_sample, Rng& rng,
                                      SimDuration offline_gap = hours(4),
                                      std::size_t threads = 1);

/// Span-native overload of the Figure-4 panel.
std::vector<SeedingBox> seeding_panel(const CompactDatasetView& view,
                                      const IdentityAnalysis& identity,
                                      std::size_t all_sample, Rng& rng,
                                      SimDuration offline_gap = hours(4),
                                      std::size_t threads = 1);

}  // namespace btpub
