#include "analysis/content_type.hpp"

namespace btpub {

ContentTypeMix content_type_mix(const Dataset& dataset,
                                const IdentityAnalysis& identity,
                                TargetGroup group) {
  ContentTypeMix mix;
  mix.group = group;
  for (const UsernameStats* stats : identity.members(group)) {
    for (const std::size_t index : stats->torrents) {
      const auto coarse_cat = coarse(dataset.torrents[index].category);
      mix.fractions[static_cast<std::size_t>(coarse_cat)] += 1.0;
      ++mix.contents;
    }
  }
  if (mix.contents > 0) {
    for (double& f : mix.fractions) f /= static_cast<double>(mix.contents);
  }
  return mix;
}

std::vector<ContentTypeMix> content_type_panel(const Dataset& dataset,
                                               const IdentityAnalysis& identity) {
  std::vector<ContentTypeMix> panel;
  for (const TargetGroup group :
       {TargetGroup::All, TargetGroup::Fake, TargetGroup::Top, TargetGroup::TopHP,
        TargetGroup::TopCI}) {
    panel.push_back(content_type_mix(dataset, identity, group));
  }
  return panel;
}

}  // namespace btpub
