// names.hpp — deterministic generators for release titles, usernames and
// promoting domains. Purely cosmetic on the surface, but the analysis
// pipeline *parses* these artifacts (URL-in-filename detection, username/
// domain correlation like the paper's "UltraTorrents -> ultratorrents.com"),
// so the generators must produce the same kinds of patterns the authors
// found in the wild.
#pragma once

#include <string>

#include "portal/category.hpp"
#include "util/rng.hpp"

namespace btpub {

/// A scene-style release title for the given category, e.g.
/// "Dark.Horizon.2010.DVDRip.XviD-CRoWN" or "Blue Panorama S03E07 HDTV".
std::string make_release_title(ContentCategory category, Rng& rng);

/// A "catchy" title for fake content: names a hot recent release.
std::string make_catchy_title(ContentCategory category, Rng& rng);

/// Regular-user style username ("mike_2041", "dvdfan88", ...).
std::string make_regular_username(Rng& rng);

/// Top-publisher style username, optionally echoing a site brand.
std::string make_top_username(Rng& rng);

/// Random hacked-account style username ("xK9f2QpL"), used by fake farms.
std::string make_hacked_username(Rng& rng);

/// A promoting domain ("divxatope.com" style). `brand_hint` seeds the name
/// so a username can visibly match its domain.
std::string make_domain(const std::string& brand_hint, Rng& rng);

/// A brandable word to correlate username and domain.
std::string make_brand(Rng& rng);

}  // namespace btpub
