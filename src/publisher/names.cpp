#include "publisher/names.hpp"

#include <array>

namespace btpub {
namespace {

constexpr std::array kAdjectives = {
    "Dark",  "Blue",   "Silent", "Broken", "Golden", "Hidden", "Last",
    "Lost",  "Iron",   "Crimson", "Silver", "Final",  "Rising", "Fallen",
    "Wild",  "Frozen", "Burning", "Secret", "Double", "Eternal"};

constexpr std::array kNouns = {
    "Horizon", "Empire",  "Protocol", "Legacy",  "Kingdom", "Paradox",
    "Signal",  "Phoenix", "Echo",     "Fortress", "Harbor",  "Mirage",
    "Vendetta", "Odyssey", "Circuit",  "Panorama", "Outpost", "Tempest",
    "Labyrinth", "Monolith"};

constexpr std::array kGroups = {"CRoWN", "AXXO",  "FXG",   "NoGRP", "LTT",
                                "DMT",   "SAiNTS", "VoMiT", "DiAMOND", "KLAXXON"};

constexpr std::array kHotTitles = {
    "Avatar",          "Inception",       "Iron.Man.2",    "Toy.Story.3",
    "Shutter.Island",  "Kick-Ass",        "Robin.Hood",    "Sex.and.the.City.2",
    "Prince.of.Persia", "Clash.of.the.Titans", "Lost.Final.Season", "Shrek.Forever"};

constexpr std::array kSoftware = {"Photoshop.CS5", "Office.2010",   "Windows.7.Ultimate",
                                  "Nero.10",       "AutoCAD.2011",  "WinRAR.Pro",
                                  "AntiVirus.2010", "TuneUp.Utilities"};

constexpr std::array kArtists = {"The.Static.Waves", "Nova.Era",    "DJ.Kranich",
                                 "Lena.Morre",       "Polar.Youth", "Seven.Stones",
                                 "Los.Ruidos",       "Electric.Fen"};

constexpr std::array kUserWords = {"dvd",   "movie", "rip",   "share", "seed",
                                   "torr",  "media", "flick", "sound", "byte"};

constexpr std::array kBrandWords = {"divx",  "ultra", "mega",  "turbo", "prime",
                                    "zona",  "mundo", "flash", "vip",   "xtreme",
                                    "gig",   "torrentia", "peer", "linka", "rapid"};

constexpr std::array kTlds = {".com", ".net", ".org", ".info", ".to"};

template <typename Array>
const char* pick(const Array& arr, Rng& rng) {
  return arr[rng.index(arr.size())];
}

std::string two_word_name(Rng& rng, char sep) {
  std::string s = pick(kAdjectives, rng);
  s += sep;
  s += pick(kNouns, rng);
  return s;
}

}  // namespace

std::string make_release_title(ContentCategory category, Rng& rng) {
  switch (category) {
    case ContentCategory::Movies: {
      std::string t = two_word_name(rng, '.');
      t += ".20";
      t += std::to_string(rng.uniform_int(5, 10));
      t += rng.chance(0.5) ? ".DVDRip.XviD-" : ".BRRip.x264-";
      t += pick(kGroups, rng);
      return t;
    }
    case ContentCategory::TvShows: {
      std::string t = two_word_name(rng, '.');
      t += ".S";
      const auto s = rng.uniform_int(1, 8);
      t += (s < 10 ? "0" : "") + std::to_string(s);
      t += "E";
      const auto e = rng.uniform_int(1, 24);
      t += (e < 10 ? "0" : "") + std::to_string(e);
      t += ".HDTV.XviD-";
      t += pick(kGroups, rng);
      return t;
    }
    case ContentCategory::Porn: {
      std::string t = "XXX.";
      t += two_word_name(rng, '.');
      t += ".Vol." + std::to_string(rng.uniform_int(1, 30));
      return t;
    }
    case ContentCategory::Music: {
      std::string t = pick(kArtists, rng);
      t += ".-.";
      t += two_word_name(rng, '.');
      t += rng.chance(0.5) ? ".MP3.320kbps" : ".FLAC";
      return t;
    }
    case ContentCategory::Audiobooks: {
      std::string t = two_word_name(rng, '.');
      t += ".Unabridged.Audiobook.MP3";
      return t;
    }
    case ContentCategory::Games: {
      std::string t = two_word_name(rng, '.');
      t += rng.chance(0.5) ? ".PC.GAME-RELOADED" : ".XBOX360-COMPLEX";
      return t;
    }
    case ContentCategory::Software: {
      std::string t = pick(kSoftware, rng);
      t += ".Incl.Keygen-";
      t += pick(kGroups, rng);
      return t;
    }
    case ContentCategory::Ebooks: {
      std::string t = two_word_name(rng, '.');
      t += ".2010.eBook.PDF";
      return t;
    }
    case ContentCategory::Other:
      return two_word_name(rng, '.') + ".Pack";
  }
  return two_word_name(rng, '.');
}

std::string make_catchy_title(ContentCategory category, Rng& rng) {
  // Fake publishers name decoys after the hottest releases of the moment.
  if (category == ContentCategory::Software) {
    std::string t = pick(kSoftware, rng);
    t += ".FULL.Cracked";
    return t;
  }
  std::string t = pick(kHotTitles, rng);
  if (category == ContentCategory::TvShows) {
    t += ".S01E0" + std::to_string(rng.uniform_int(1, 9));
  }
  t += rng.chance(0.5) ? ".2010.DVDRip.XviD" : ".R5.LiNE";
  return t;
}

std::string make_regular_username(Rng& rng) {
  std::string u = pick(kUserWords, rng);
  u += pick(kNouns, rng);
  for (auto& c : u) c = static_cast<char>(std::tolower(c));
  u += std::to_string(rng.uniform_int(0, 9999));
  return u;
}

std::string make_top_username(Rng& rng) {
  std::string u = pick(kBrandWords, rng);
  u += pick(kUserWords, rng);
  if (rng.chance(0.4)) u += std::to_string(rng.uniform_int(1, 99));
  return u;
}

std::string make_hacked_username(Rng& rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHJKLMNPQRSTUVWXYZ23456789";
  std::string u;
  const auto n = static_cast<std::size_t>(rng.uniform_int(6, 10));
  u.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    u.push_back(kAlphabet[rng.index(sizeof(kAlphabet) - 1)]);
  }
  return u;
}

std::string make_brand(Rng& rng) {
  std::string b = pick(kBrandWords, rng);
  b += pick(kUserWords, rng);
  return b;
}

std::string make_domain(const std::string& brand_hint, Rng& rng) {
  std::string d = brand_hint.empty() ? make_brand(rng) : brand_hint;
  for (auto& c : d) c = static_cast<char>(std::tolower(c));
  d += pick(kTlds, rng);
  return d;
}

}  // namespace btpub
