#include "publisher/population.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <span>
#include <unordered_set>

#include "publisher/names.hpp"

namespace btpub {
namespace {

struct WeightedIsp {
  const char* name;
  double weight;
};

// Hosting providers serving top publishers (OVH-heavy, as in Tables 2/3).
constexpr WeightedIsp kTopHosting[] = {
    {"OVH", 0.55},         {"SoftLayer Tech.", 0.10}, {"LeaseWeb", 0.12},
    {"Keyweb", 0.07},      {"NetDirect", 0.08},
    {"NetWork Operations Center", 0.08},
};

// Hosting providers running fake farms: tzulo / FDCservers / 4RWEB carry
// the largest share (§3.3), the rest spreads over ordinary hosters.
constexpr WeightedIsp kFakeHosting[] = {
    {"tzulo", 0.14},        {"FDCservers", 0.14},      {"4RWEB", 0.12},
    {"OVH", 0.20},          {"SoftLayer Tech.", 0.12}, {"LeaseWeb", 0.10},
    {"Keyweb", 0.06},       {"NetDirect", 0.06},
    {"NetWork Operations Center", 0.06},
};

// Commercial ISPs for home publishers (regular users and CI-located tops).
constexpr WeightedIsp kCommercial[] = {
    {"Comcast", 0.090},      {"Road Runner", 0.070},  {"Virgin Media", 0.050},
    {"SBC", 0.050},          {"Verizon", 0.060},      {"Telefonica", 0.070},
    {"Jazz Telecom.", 0.045}, {"Open Computer Network", 0.110},
    {"Telecom Italia", 0.050}, {"Romania DS", 0.040},  {"MTT Network", 0.035},
    {"NIB", 0.030},          {"Cosema", 0.070},       {"Comcor-TV", 0.040},
    // remaining mass goes to the generic eyeball long tail (handled below)
};

constexpr double kCommercialNamedMass = 0.81;  // sum of the table above

constexpr const char* kAdNetworks[] = {
    "adserve-one.example", "clickbarn.example", "trafficx.example",
    "bannerhive.example",  "popundernet.example"};

std::string pick_weighted_isp(std::span<const WeightedIsp> table, Rng& rng) {
  double total = 0.0;
  for (const auto& e : table) total += e.weight;
  double target = rng.uniform() * total;
  for (const auto& e : table) {
    if (target < e.weight) return e.name;
    target -= e.weight;
  }
  return table.back().name;
}

std::string pick_commercial_isp(const IspCatalog& catalog, Rng& rng) {
  if (rng.uniform() < kCommercialNamedMass) {
    return pick_weighted_isp(kCommercial, rng);
  }
  const auto& names = catalog.eyeball_names();
  return names[rng.index(names.size())];
}

std::uint16_t server_port(Rng& rng) {
  return static_cast<std::uint16_t>(rng.uniform_int(6881, 6999));
}
std::uint16_t home_port(Rng& rng) {
  return static_cast<std::uint16_t>(rng.uniform_int(10000, 60000));
}

/// Draws the distinct username for a publisher, retrying on collision.
std::string unique_username(std::unordered_set<std::string>& taken,
                            const std::function<std::string(Rng&)>& gen, Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::string name = gen(rng);
    if (taken.insert(name).second) return name;
  }
  // Pathological collision streak: make it unique by suffixing.
  std::string name = gen(rng) + "_" + std::to_string(taken.size());
  taken.insert(name);
  return name;
}

Language draw_language(PublisherClass cls, Rng& rng) {
  // §5.1: 40% of portal-class publishers are language-specific and 66% of
  // those publish Spanish content.
  if (cls == PublisherClass::TopPortalOwner) {
    if (rng.chance(0.40)) {
      const double u = rng.uniform();
      if (u < 0.66) return Language::Spanish;
      if (u < 0.78) return Language::Italian;
      if (u < 0.90) return Language::Dutch;
      return Language::Swedish;
    }
    return Language::English;
  }
  if (rng.chance(0.10)) {
    const double u = rng.uniform();
    if (u < 0.5) return Language::Spanish;
    if (u < 0.7) return Language::Italian;
    return Language::Other;
  }
  return Language::English;
}

/// Draws (value, income, visits) for a promoting site from correlated
/// log-normals calibrated against Table 5's min/median/avg/max rows.
void draw_site_economics(BusinessType type, Rng& rng, Website& site) {
  const bool portal = type == BusinessType::PrivateBtPortal;
  const double value_median = portal ? 33e3 : 22e3;
  const double value_sigma = portal ? 2.0 : 1.9;
  const double z = rng.normal();
  const double jitter1 = rng.normal(0.0, 0.35);
  const double jitter2 = rng.normal(0.0, 0.35);
  site.value_usd = value_median * std::exp(value_sigma * z);
  const double income_median = portal ? 55.0 : 51.0;
  const double income_sigma = portal ? 1.95 : 1.6;
  site.daily_income_usd = income_median * std::exp(income_sigma * (0.9 * z) + jitter1);
  const double visits_per_dollar = 400.0;
  site.daily_visits =
      site.daily_income_usd * visits_per_dollar * std::exp(jitter2);
}

Website make_website(PublisherClass cls, const std::string& domain, Rng& rng) {
  Website site;
  site.domain = domain;
  if (cls == PublisherClass::TopPortalOwner) {
    site.type = BusinessType::PrivateBtPortal;
    site.has_private_tracker = rng.chance(0.6);
    site.requires_registration = site.has_private_tracker || rng.chance(0.3);
    site.has_ads = rng.chance(0.9);
    site.seeks_donations = rng.chance(0.5);
    site.offers_vip = rng.chance(0.4);
  } else {
    const double u = rng.uniform();
    site.type = u < 0.65   ? BusinessType::ImageHosting
                : u < 0.90 ? BusinessType::Forum
                           : BusinessType::ReligiousSite;
    site.has_ads = true;  // §5.1: "the income of the portals within this
                          // class is based on advertisement"
    site.seeks_donations = rng.chance(0.15);
  }
  draw_site_economics(site.type, rng, site);
  if (site.has_ads) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 3));
    std::vector<std::size_t> picks = rng.sample_indices(std::size(kAdNetworks), n);
    for (std::size_t i : picks) site.ad_networks.emplace_back(kAdNetworks[i]);
  }
  return site;
}

PromoChannel draw_channels(PublisherClass cls, Rng& rng) {
  PromoChannel channels = PromoChannel::None;
  if (cls == PublisherClass::TopPortalOwner) {
    if (rng.chance(0.67)) channels = channels | PromoChannel::Textbox;
    if (rng.chance(0.15)) channels = channels | PromoChannel::FilenameSuffix;
    if (rng.chance(0.15)) channels = channels | PromoChannel::PayloadTextFile;
    if (channels == PromoChannel::None) channels = PromoChannel::Textbox;
  } else if (cls == PublisherClass::TopOtherWeb) {
    channels = PromoChannel::Textbox;  // "all use the textbox"
    if (rng.chance(0.10)) channels = channels | PromoChannel::FilenameSuffix;
    if (rng.chance(0.10)) channels = channels | PromoChannel::PayloadTextFile;
  }
  return channels;
}

IpStrategy draw_top_strategy(PublisherClass cls, Rng& rng, bool& hosted) {
  double w_hosting_multi, w_single, w_dynamic, w_multi, single_hosted_prob;
  switch (cls) {
    case PublisherClass::TopPortalOwner:
      w_hosting_multi = 0.55; w_single = 0.25; w_dynamic = 0.10; w_multi = 0.10;
      single_hosted_prob = 0.7;
      break;
    case PublisherClass::TopOtherWeb:
      w_hosting_multi = 0.40; w_single = 0.30; w_dynamic = 0.15; w_multi = 0.15;
      single_hosted_prob = 0.6;
      break;
    default:  // TopAltruistic
      w_hosting_multi = 0.10; w_single = 0.25; w_dynamic = 0.45; w_multi = 0.20;
      single_hosted_prob = 0.25;
      break;
  }
  const double u = rng.uniform() * (w_hosting_multi + w_single + w_dynamic + w_multi);
  if (u < w_hosting_multi) {
    hosted = true;
    return IpStrategy::HostingMulti;
  }
  if (u < w_hosting_multi + w_single) {
    hosted = rng.chance(single_hosted_prob);
    return IpStrategy::SingleIp;
  }
  if (u < w_hosting_multi + w_single + w_dynamic) {
    hosted = false;
    return IpStrategy::DynamicCommercial;
  }
  hosted = false;
  return IpStrategy::MultiIsp;
}

}  // namespace

std::vector<PublisherId> Population::ids_of(PublisherClass cls) const {
  std::vector<PublisherId> ids;
  for (const Publisher& p : publishers) {
    if (p.cls == cls) ids.push_back(p.id);
  }
  return ids;
}

Population build_population(const PopulationConfig& config, IspCatalog& catalog,
                            Rng& rng) {
  Population pop;
  std::unordered_set<std::string> taken_usernames;
  std::unordered_set<std::string> taken_domains;

  auto register_usernames = [&pop](const Publisher& p) {
    for (const std::string& name : p.usernames) {
      pop.owner_of_username.emplace(name, p.id);
    }
  };

  auto allocate_endpoints = [&](Publisher& p, Rng& prng) {
    switch (p.strategy) {
      case IpStrategy::SingleIp: {
        if (p.hosted) {
          const std::string isp = pick_weighted_isp(kTopHosting, prng);
          p.primary_isp = isp;
          p.endpoints.push_back(
              Endpoint{catalog.pool(isp).allocate_server(), server_port(prng)});
        } else {
          const std::string isp = pick_commercial_isp(catalog, prng);
          p.primary_isp = isp;
          p.endpoints.push_back(Endpoint{
              catalog.pool(isp).random_residential(prng), home_port(prng)});
        }
        break;
      }
      case IpStrategy::HostingMulti: {
        const std::string isp = pick_weighted_isp(kTopHosting, prng);
        p.primary_isp = isp;
        // §3.3: 5.7 hosting servers on average.
        const auto n = static_cast<std::size_t>(prng.uniform_int(3, 9));
        for (std::size_t i = 0; i < n; ++i) {
          p.endpoints.push_back(
              Endpoint{catalog.pool(isp).allocate_server(), server_port(prng)});
        }
        break;
      }
      case IpStrategy::DynamicCommercial: {
        const std::string isp = pick_commercial_isp(catalog, prng);
        p.primary_isp = isp;
        // §3.3: 13.8 addresses on average from one ISP's churn.
        const auto n = static_cast<std::size_t>(prng.uniform_int(10, 18));
        const std::uint16_t port = home_port(prng);
        for (std::size_t i = 0; i < n; ++i) {
          p.endpoints.push_back(
              Endpoint{catalog.pool(isp).random_residential(prng), port});
        }
        break;
      }
      case IpStrategy::MultiIsp: {
        // §3.3: 7.7 addresses across several commercial ISPs (home + work).
        const auto n_isps = static_cast<std::size_t>(prng.uniform_int(2, 4));
        const auto n = static_cast<std::size_t>(prng.uniform_int(5, 10));
        std::vector<std::string> isps;
        for (std::size_t i = 0; i < n_isps; ++i) {
          isps.push_back(pick_commercial_isp(catalog, prng));
        }
        p.primary_isp = isps.front();
        for (std::size_t i = 0; i < n; ++i) {
          const auto& isp = isps[i % isps.size()];
          p.endpoints.push_back(Endpoint{
              catalog.pool(isp).random_residential(prng), home_port(prng)});
        }
        break;
      }
      case IpStrategy::FakeFarm: {
        const std::string isp = pick_weighted_isp(kFakeHosting, prng);
        p.primary_isp = isp;
        const auto n = static_cast<std::size_t>(prng.uniform_int(1, 3));
        for (std::size_t i = 0; i < n; ++i) {
          p.endpoints.push_back(
              Endpoint{catalog.pool(isp).allocate_server(), server_port(prng)});
        }
        break;
      }
    }
  };

  auto next_id = [&pop]() { return static_cast<PublisherId>(pop.publishers.size()); };

  // ---- Top publishers (three classes). -------------------------------
  struct TopSpec {
    PublisherClass cls;
    std::size_t count;
  };
  const TopSpec top_specs[] = {
      {PublisherClass::TopPortalOwner, config.portal_owners},
      {PublisherClass::TopOtherWeb, config.other_web},
      {PublisherClass::TopAltruistic, config.top_altruistic},
  };
  for (const TopSpec& spec : top_specs) {
    for (std::size_t i = 0; i < spec.count; ++i) {
      Publisher p;
      p.id = next_id();
      p.cls = spec.cls;
      const ClassProfile& profile = class_profile(spec.cls);
      p.strategy = draw_top_strategy(spec.cls, rng, p.hosted);
      allocate_endpoints(p, rng);
      p.nat = !p.hosted && rng.chance(profile.nat_probability);
      p.language = draw_language(spec.cls, rng);

      // Username, promoting domain (correlated for ~40% of profit-driven).
      if (is_profit_driven(spec.cls)) {
        std::string brand;
        if (rng.chance(0.4)) {
          brand = make_brand(rng);
          std::string uname = brand;
          if (!taken_usernames.insert(uname).second) {
            uname += std::to_string(i);
            taken_usernames.insert(uname);
          }
          p.usernames.push_back(uname);
        } else {
          p.usernames.push_back(
              unique_username(taken_usernames, make_top_username, rng));
        }
        std::string domain = make_domain(brand, rng);
        while (!taken_domains.insert(domain).second) {
          domain = make_domain("", rng);
        }
        p.promo_domain = domain;
        p.promo_channels = draw_channels(spec.cls, rng);
        pop.websites.add(make_website(spec.cls, domain, rng));
      } else {
        p.usernames.push_back(
            unique_username(taken_usernames, make_top_username, rng));
      }

      p.historical_rate = rng.lognormal_median(profile.rate_median, profile.rate_sigma);
      p.window_rate = p.historical_rate * config.rate_scale;
      p.lifetime_days = std::clamp(
          rng.lognormal_median(spec.cls == PublisherClass::TopAltruistic ? 300.0 : 380.0,
                               spec.cls == PublisherClass::TopAltruistic ? 1.0 : 0.9),
          spec.cls == PublisherClass::TopAltruistic ? 10.0 : 60.0, 1850.0);
      const double pop_adjust = p.hosted ? 1.15 : 0.9;
      p.popularity_median =
          profile.popularity_median * pop_adjust * config.popularity_scale;
      p.popularity_sigma = profile.popularity_sigma;
      p.seeding = profile.seeding;
      if (!p.hosted) {
        // Commercial-ISP top publishers cannot keep an always-on box.
        p.seeding.daily_online_hours = rng.uniform(10.0, 16.0);
        p.seeding.min_seed_time = std::min<SimDuration>(
            p.seeding.min_seed_time, hours(2));
      }
      p.cross_post_probability = profile.cross_post_probability;
      p.online_start = 0;
      register_usernames(p);
      pop.publishers.push_back(std::move(p));
    }
  }

  // ---- Fake farms. ----------------------------------------------------
  // Pre-generate the shared throwaway username pool and the compromised
  // accounts, then distribute them across the farms.
  std::vector<std::string> throwaways;
  throwaways.reserve(config.fake_usernames);
  for (std::size_t i = 0; i < config.fake_usernames; ++i) {
    throwaways.push_back(
        unique_username(taken_usernames, make_hacked_username, rng));
  }
  std::vector<std::string> compromised;
  for (std::size_t i = 0; i < config.compromised_usernames; ++i) {
    // Hijacked accounts look like ordinary (even reputable) usernames.
    compromised.push_back(
        unique_username(taken_usernames, make_top_username, rng));
  }
  for (std::size_t i = 0; i < config.fake_farms; ++i) {
    Publisher p;
    p.id = next_id();
    p.cls = rng.chance(0.55) ? PublisherClass::FakeAntipiracy
                             : PublisherClass::FakeMalware;
    const ClassProfile& profile = class_profile(p.cls);
    p.strategy = IpStrategy::FakeFarm;
    p.hosted = true;
    allocate_endpoints(p, rng);
    if (i < compromised.size()) {
      p.usernames.push_back(compromised[i]);
      p.has_compromised_username = true;
    }
    // Slice the throwaway pool round-robin across farms.
    for (std::size_t j = i; j < throwaways.size(); j += config.fake_farms) {
      p.usernames.push_back(throwaways[j]);
    }
    if (p.usernames.empty()) {
      p.usernames.push_back(unique_username(taken_usernames, make_hacked_username, rng));
    }
    p.historical_rate = rng.lognormal_median(8.0, 0.45);
    p.window_rate = p.historical_rate * config.rate_scale;
    p.lifetime_days = rng.uniform(30.0, 200.0);
    p.popularity_median = profile.popularity_median * config.popularity_scale;
    p.popularity_sigma = profile.popularity_sigma;
    p.seeding = profile.seeding;
    p.cross_post_probability = profile.cross_post_probability;
    register_usernames(p);
    pop.publishers.push_back(std::move(p));
  }

  // ---- Regular publishers. ---------------------------------------------
  for (std::size_t i = 0; i < config.regular_publishers; ++i) {
    Publisher p;
    p.id = next_id();
    p.cls = PublisherClass::Regular;
    const ClassProfile& profile = class_profile(p.cls);
    p.strategy = rng.chance(0.85) ? IpStrategy::SingleIp : IpStrategy::MultiIsp;
    p.hosted = false;
    allocate_endpoints(p, rng);
    p.nat = rng.chance(profile.nat_probability);
    p.language = draw_language(p.cls, rng);
    p.usernames.push_back(
        unique_username(taken_usernames, make_regular_username, rng));
    p.historical_rate = rng.lognormal_median(profile.rate_median, profile.rate_sigma);
    p.window_rate = p.historical_rate;  // regular users are not rate-scaled
    p.lifetime_days = rng.uniform(5.0, 700.0);
    p.popularity_median = profile.popularity_median * config.popularity_scale;
    p.popularity_sigma = profile.popularity_sigma;
    p.seeding = profile.seeding;
    p.seeding.daily_online_hours = rng.uniform(6.0, 14.0);
    p.cross_post_probability = profile.cross_post_probability;
    register_usernames(p);
    pop.publishers.push_back(std::move(p));
  }

  // ---- Sticky consumers. ------------------------------------------------
  for (const Publisher& p : pop.publishers) {
    if (p.cls == PublisherClass::Regular) {
      pop.sticky_consumers.emplace_back(p.endpoints.front(), 1.0);
    } else if (is_top(p.cls) && !p.hosted && rng.chance(0.6)) {
      // §3.1: most top publishers download little or nothing, and hosted
      // ones consume nothing at all (nobody torrents from a rented rack;
      // the paper observed no OVH addresses among consumers).
      pop.sticky_consumers.emplace_back(p.endpoints.front(), 0.7);
    }
  }

  return pop;
}

}  // namespace btpub
