#include "publisher/profile.hpp"

#include <cassert>
#include <span>

namespace btpub {

std::string_view to_string(PublisherClass c) {
  switch (c) {
    case PublisherClass::Regular:
      return "Regular";
    case PublisherClass::TopAltruistic:
      return "Top-Altruistic";
    case PublisherClass::TopPortalOwner:
      return "Top-PortalOwner";
    case PublisherClass::TopOtherWeb:
      return "Top-OtherWeb";
    case PublisherClass::FakeAntipiracy:
      return "Fake-Antipiracy";
    case PublisherClass::FakeMalware:
      return "Fake-Malware";
  }
  return "?";
}

std::string_view to_string(IpStrategy s) {
  switch (s) {
    case IpStrategy::SingleIp:
      return "SingleIp";
    case IpStrategy::HostingMulti:
      return "HostingMulti";
    case IpStrategy::DynamicCommercial:
      return "DynamicCommercial";
    case IpStrategy::MultiIsp:
      return "MultiIsp";
    case IpStrategy::FakeFarm:
      return "FakeFarm";
  }
  return "?";
}

namespace {

// Category order: Movies, TvShows, Porn, Music, Audiobooks, Games,
//                 Software, Ebooks, Other.

ClassProfile make_regular() {
  ClassProfile p;
  p.cls = PublisherClass::Regular;
  // Regular users publish about one file during a month-long window.
  p.rate_median = 0.018;  // roughly one file every couple of months
  p.rate_sigma = 0.5;
  p.popularity_median = 15.0;
  p.popularity_sigma = 1.6;
  p.nat_probability = 0.6;
  p.cross_post_probability = 0.2;
  p.category_weights = {0.18, 0.15, 0.12, 0.17, 0.03, 0.07, 0.10, 0.08, 0.10};
  p.seeding.leave_after_other_seeders = 1;
  p.seeding.min_seed_time = minutes(30);
  p.seeding.max_seed_time = hours(5);
  p.seeding.mean_extra_seed = hours(1);
  p.seeding.daily_online_hours = 10.0;
  return p;
}

ClassProfile make_top_altruistic() {
  ClassProfile p;
  p.cls = PublisherClass::TopAltruistic;
  // Table 4: avg 3.8 contents/day, min 0.10, max 23.67.
  p.rate_median = 2.0;
  p.rate_sigma = 1.05;
  p.popularity_median = 40.0;
  p.popularity_sigma = 1.1;
  p.nat_probability = 0.35;
  p.cross_post_probability = 0.3;
  // Many publish music and e-books: light files, low seeding cost (§5.1).
  p.category_weights = {0.08, 0.08, 0.04, 0.30, 0.05, 0.03, 0.05, 0.30, 0.07};
  p.seeding.leave_after_other_seeders = 2;
  p.seeding.min_seed_time = hours(1);
  p.seeding.max_seed_time = hours(24);
  p.seeding.mean_extra_seed = hours(1);
  p.seeding.daily_online_hours = 14.0;
  return p;
}

ClassProfile make_portal_owner() {
  ClassProfile p;
  p.cls = PublisherClass::TopPortalOwner;
  // Table 4: avg 11.43/day, max 79.91.
  p.rate_median = 5.2;
  p.rate_sigma = 1.0;
  p.popularity_median = 55.0;
  p.popularity_sigma = 1.2;
  p.nat_probability = 0.1;
  p.cross_post_probability = 0.3;
  p.category_weights = {0.25, 0.22, 0.08, 0.12, 0.03, 0.08, 0.12, 0.05, 0.05};
  p.seeding.leave_after_other_seeders = 4;
  p.seeding.min_seed_time = hours(4);
  p.seeding.max_seed_time = hours(48);
  p.seeding.mean_extra_seed = hours(3);
  p.seeding.daily_online_hours = 24.0;  // clipped later for CI-hosted ones
  return p;
}

ClassProfile make_other_web() {
  ClassProfile p;
  p.cls = PublisherClass::TopOtherWeb;
  // Table 4: avg 4.31/day, max 18.98.
  p.rate_median = 2.9;
  p.rate_sigma = 0.9;
  p.popularity_median = 52.0;
  p.popularity_sigma = 1.1;
  p.nat_probability = 0.15;
  p.cross_post_probability = 0.3;
  // 70% publish porn only (image-hosting promoters, §5.1).
  p.category_weights = {0.06, 0.04, 0.70, 0.05, 0.01, 0.02, 0.05, 0.02, 0.05};
  p.seeding.leave_after_other_seeders = 3;
  p.seeding.min_seed_time = hours(3);
  p.seeding.max_seed_time = hours(40);
  p.seeding.mean_extra_seed = hours(2);
  p.seeding.daily_online_hours = 24.0;
  return p;
}

ClassProfile make_fake(PublisherClass cls) {
  ClassProfile p;
  p.cls = cls;
  // Per fake *machine* (farm), not per username.
  p.rate_median = 0.9;
  p.rate_sigma = 0.5;
  // Low median, very heavy tail: most decoys attract almost nobody, a few
  // catchy ones catch millions before removal (Fig. 3 / §3.3).
  p.popularity_median = 4.2;
  p.popularity_sigma = 2.3;
  p.nat_probability = 0.0;  // rented servers
  p.cross_post_probability = 0.05;
  if (cls == PublisherClass::FakeAntipiracy) {
    // Decoys named after the movies/shows they protect.
    p.category_weights = {0.45, 0.25, 0.05, 0.08, 0.0, 0.05, 0.10, 0.0, 0.02};
  } else {
    // Malware spreaders lean on software and catchy video (§4.1).
    p.category_weights = {0.30, 0.10, 0.08, 0.05, 0.0, 0.10, 0.35, 0.0, 0.02};
  }
  p.seeding.delayed_start_prob = 0.03;
  p.seeding.seed_until_removed = true;
  p.seeding.mean_post_removal_linger = hours(6);
  p.seeding.min_seed_time = hours(2);
  p.seeding.max_seed_time = days(6);
  p.seeding.daily_online_hours = 24.0;
  return p;
}

}  // namespace

const ClassProfile& class_profile(PublisherClass c) {
  static const ClassProfile regular = make_regular();
  static const ClassProfile altruistic = make_top_altruistic();
  static const ClassProfile portal_owner = make_portal_owner();
  static const ClassProfile other_web = make_other_web();
  static const ClassProfile fake_ap = make_fake(PublisherClass::FakeAntipiracy);
  static const ClassProfile fake_mw = make_fake(PublisherClass::FakeMalware);
  switch (c) {
    case PublisherClass::Regular:
      return regular;
    case PublisherClass::TopAltruistic:
      return altruistic;
    case PublisherClass::TopPortalOwner:
      return portal_owner;
    case PublisherClass::TopOtherWeb:
      return other_web;
    case PublisherClass::FakeAntipiracy:
      return fake_ap;
    case PublisherClass::FakeMalware:
      return fake_mw;
  }
  return regular;
}

ContentCategory draw_category(const ClassProfile& profile, Rng& rng) {
  const std::size_t i = rng.weighted_index(
      std::span<const double>(profile.category_weights.data(),
                              profile.category_weights.size()));
  assert(i < kAllCategories.size());
  return kAllCategories[i];
}

}  // namespace btpub
