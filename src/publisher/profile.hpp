// profile.hpp — publisher behavioural classes and their parameter tables.
//
// The paper's §3–§5 classification becomes a *generative* model here: the
// ecosystem instantiates publishers from these profiles, and the analysis
// pipeline must then re-discover the classes from crawled observations
// alone. Numbers are calibrated so the scaled-down ecosystem reproduces the
// paper's aggregate shapes (content/download shares, popularity ratios,
// seeding signatures).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "portal/category.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace btpub {

/// Ground-truth behavioural class of a publisher.
enum class PublisherClass : std::uint8_t {
  Regular,         // average user: publishes little, also consumes
  TopAltruistic,   // heavy publisher without a promoting business
  TopPortalOwner,  // promotes an own (often private-tracker) BT portal
  TopOtherWeb,     // promotes image-hosting / forum / other sites
  FakeAntipiracy,  // agency machine poisoning the index with decoys
  FakeMalware,     // malware spreader using catchy fake titles
};

std::string_view to_string(PublisherClass c);

constexpr bool is_fake(PublisherClass c) {
  return c == PublisherClass::FakeAntipiracy || c == PublisherClass::FakeMalware;
}
constexpr bool is_top(PublisherClass c) {
  return c == PublisherClass::TopAltruistic || c == PublisherClass::TopPortalOwner ||
         c == PublisherClass::TopOtherWeb;
}
constexpr bool is_profit_driven(PublisherClass c) {
  return c == PublisherClass::TopPortalOwner || c == PublisherClass::TopOtherWeb;
}

/// How a publisher maps to IP addresses over time (§3.3's four patterns).
enum class IpStrategy : std::uint8_t {
  SingleIp,           // one stable address (25% of top usernames)
  HostingMulti,       // ~5.7 rented servers at hosting providers (34%)
  DynamicCommercial,  // one eyeball ISP, periodically re-assigned IP (24%)
  MultiIsp,           // home + work across different ISPs (16%)
  FakeFarm,           // a fake machine: 1-3 servers, many usernames
};

std::string_view to_string(IpStrategy s);

/// Where a promoting URL is embedded (§5's three channels). Bitmask.
enum class PromoChannel : std::uint8_t {
  None = 0,
  Textbox = 1,          // description box on the content page (most common)
  FilenameSuffix = 2,   // "Some.Movie-divxatope.com.avi"
  PayloadTextFile = 4,  // "Visit-www-example-com.txt" inside the payload
};

constexpr PromoChannel operator|(PromoChannel a, PromoChannel b) {
  return static_cast<PromoChannel>(static_cast<std::uint8_t>(a) |
                                   static_cast<std::uint8_t>(b));
}
constexpr bool has_channel(PromoChannel set, PromoChannel flag) {
  return (static_cast<std::uint8_t>(set) & static_cast<std::uint8_t>(flag)) != 0;
}

/// Seeding behaviour knobs (drives the paper's Figure 4 signatures).
struct SeedingPolicy {
  /// Leave once this many *other* seeders exist (0 = ignore others).
  std::uint32_t leave_after_other_seeders = 3;
  /// Never seed less / more than this per torrent.
  SimDuration min_seed_time = hours(1);
  SimDuration max_seed_time = hours(36);
  /// Mean of the extra time seeded beyond the leave condition.
  SimDuration mean_extra_seed = hours(1);
  /// Hours per day the publisher's machine is online (24 = always-on box).
  double daily_online_hours = 24.0;
  /// Some publish runs upload the .torrent first and bring the seed box
  /// online later (the paper's footnote: swarms whose tracker reported no
  /// seeder for a while), which defeats initial-seeder identification.
  double delayed_start_prob = 0.25;
  SimDuration mean_start_delay = hours(1.5);
  /// Fake publishers: seed continuously until the portal removes the
  /// listing (plus a linger), ignoring other conditions.
  bool seed_until_removed = false;
  SimDuration mean_post_removal_linger = hours(6);
};

/// Per-class generative parameters.
struct ClassProfile {
  PublisherClass cls = PublisherClass::Regular;
  /// Publishing rate (content/day) log-normal over publishers: median and
  /// sigma, at paper (full) scale; the scenario applies its rate scale.
  double rate_median = 0.05;
  double rate_sigma = 0.8;
  /// Per-torrent expected downloads: log-normal median and sigma.
  double popularity_median = 12.0;
  double popularity_sigma = 1.6;
  /// Probability the publisher sits behind NAT when at home (hosted
  /// publishers are never NATed).
  double nat_probability = 0.55;
  /// Probability a torrent was cross-posted earlier on another portal
  /// (defeats initial-seeder identification: swarm is already populated).
  double cross_post_probability = 0.2;
  /// Category mix, indexed by ContentCategory order.
  std::array<double, 9> category_weights{};
  SeedingPolicy seeding;
};

/// The calibrated profile table for a class.
const ClassProfile& class_profile(PublisherClass c);

/// Draws a content category from a profile's mix.
ContentCategory draw_category(const ClassProfile& profile, Rng& rng);

}  // namespace btpub
