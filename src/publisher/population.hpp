// population.hpp — instantiates the full publisher population of a
// scenario: regular users, the three top-publisher classes, and the fake
// farms, together with their websites, IP allocations and username pools.
// Counts and rate scales default to the pb10-like scenario (the paper's
// main dataset) at roughly 1:7 of the real portal's volume.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/isp_catalog.hpp"
#include "publisher/publisher.hpp"
#include "websim/website.hpp"

namespace btpub {

struct PopulationConfig {
  std::size_t regular_publishers = 4600;
  std::size_t portal_owners = 22;
  std::size_t other_web = 20;
  std::size_t top_altruistic = 42;
  std::size_t fake_farms = 40;
  /// Throwaway (hacked / randomly created) accounts shared by the farms.
  std::size_t fake_usernames = 950;
  /// Hijacked formerly-legitimate accounts that end up inside the top-100
  /// usernames (the paper found 16).
  std::size_t compromised_usernames = 16;
  /// Multiplies the full-scale (paper Table 4) publishing rates of top and
  /// fake publishers; regular users are not scaled.
  double rate_scale = 0.22;
  /// Multiplies per-torrent expected downloads.
  double popularity_scale = 1.0;
};

/// The built population plus ground truth the validation benches use.
struct Population {
  std::vector<Publisher> publishers;
  WebsiteDirectory websites;
  /// Ground truth: which publisher entity owns each username.
  std::unordered_map<std::string, PublisherId> owner_of_username;
  /// Sticky consumer endpoints (regular publishers consume; a fraction of
  /// top publishers download a handful of files) with draw weights.
  std::vector<std::pair<Endpoint, double>> sticky_consumers;

  Publisher& by_id(PublisherId id) { return publishers.at(id); }
  const Publisher& by_id(PublisherId id) const { return publishers.at(id); }

  /// Ids of all publishers of a class.
  std::vector<PublisherId> ids_of(PublisherClass cls) const;
};

/// Builds a population. Mutates the catalog (allocates server addresses).
Population build_population(const PopulationConfig& config, IspCatalog& catalog,
                            Rng& rng);

}  // namespace btpub
