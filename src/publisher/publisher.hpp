// publisher.hpp — a publisher agent: identity (usernames + IP strategy),
// content production, URL promotion and seeding behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ip.hpp"
#include "portal/portal.hpp"
#include "publisher/profile.hpp"
#include "torrent/metainfo.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace btpub {

using PublisherId = std::uint32_t;

/// Everything the ecosystem needs to turn one publish action into a portal
/// listing plus a swarm.
struct PublishedWork {
  std::string username;
  Endpoint endpoint{};
  bool endpoint_nat = false;
  std::string title;
  ContentCategory category = ContentCategory::Other;
  Language language = Language::English;
  std::string textbox;
  std::vector<FileEntry> files;
  PayloadKind payload = PayloadKind::Genuine;
  double expected_downloads = 0.0;
  /// Swarm existed before this portal's listing (published elsewhere
  /// first): the initial-seeder identification will fail.
  bool cross_posted = false;
};

/// A publisher instance. Mutable state (IP rotation, fake-farm username
/// cycling) lives here; construction happens in population.cpp.
class Publisher {
 public:
  PublisherId id = 0;
  PublisherClass cls = PublisherClass::Regular;
  IpStrategy strategy = IpStrategy::SingleIp;
  /// All usernames this entity publishes under. Regular/top publishers
  /// have exactly one; fake farms have many (hacked + throwaway).
  std::vector<std::string> usernames;
  /// The addresses this entity publishes from (stable servers, or the
  /// rotation pool for dynamic strategies).
  std::vector<Endpoint> endpoints;
  /// Primary hosting/commercial ISP name (for ground-truth validation).
  std::string primary_isp;
  bool hosted = false;   // primary location is a hosting provider
  bool nat = false;      // home connection behind NAT
  Language language = Language::English;
  /// Promoting site; empty for non-promoting publishers.
  std::string promo_domain;
  PromoChannel promo_channels = PromoChannel::None;
  /// Publishing rate during the window, content/day (already scaled).
  double window_rate = 0.0;
  /// Historical (full-scale) rate and lifetime backing the Table-4 study.
  double historical_rate = 0.0;
  double lifetime_days = 0.0;
  /// Per-torrent expected-download log-normal parameters (already include
  /// any hosting/commercial popularity adjustment).
  double popularity_median = 10.0;
  double popularity_sigma = 1.0;
  SeedingPolicy seeding;
  double cross_post_probability = 0.2;
  /// Daily window start (seconds past local midnight) when
  /// daily_online_hours < 24.
  SimDuration online_start = 0;
  /// Fake farms only: usernames[0] is a hijacked formerly-legitimate
  /// account, reused with this probability per publish (§3.3's "16
  /// compromised usernames inside the top-100").
  bool has_compromised_username = false;
  double compromised_use_prob = 0.35;

  /// Produces the publish action at simulated time `when`. `ordinal` is
  /// this publisher's zero-based publication index in publication order; it
  /// drives IP rotation and fake-farm username cycling, which used to live
  /// in mutable counters. Making the position explicit keeps make_work
  /// const and pure given (when, ordinal, rng) — the parallel ecosystem
  /// build prepares publications out of order across worker threads.
  PublishedWork make_work(SimTime when, std::size_t ordinal, Rng& rng) const;

  /// True when this entity is a fake farm.
  bool is_fake_farm() const noexcept { return is_fake(cls); }
};

/// Computes the seeding sessions for one published torrent.
///
/// `enough_seeders_at` is the instant at which the policy's
/// leave_after_other_seeders-th non-publisher seeder appears (SimTime max
/// when it never happens); `removal_time` is the portal removal instant
/// (-1 when never removed); `hard_end` truncates everything (end of the
/// simulated horizon). Availability windows (daily_online_hours < 24)
/// split the result into multiple sessions.
std::vector<Interval> plan_seed_sessions(const SeedingPolicy& policy,
                                         SimTime birth, SimTime enough_seeders_at,
                                         SimTime removal_time, SimTime hard_end,
                                         SimDuration online_start, Rng& rng);

}  // namespace btpub
