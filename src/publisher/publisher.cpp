#include "publisher/publisher.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "publisher/names.hpp"

namespace btpub {
namespace {

/// Plausible payload size for a category, in bytes.
std::int64_t draw_size(ContentCategory category, Rng& rng) {
  auto mb = [](double v) { return static_cast<std::int64_t>(v * 1024.0 * 1024.0); };
  switch (category) {
    case ContentCategory::Movies:
      return mb(rng.uniform(700.0, 4500.0));
    case ContentCategory::TvShows:
      return mb(rng.uniform(170.0, 1200.0));
    case ContentCategory::Porn:
      return mb(rng.uniform(200.0, 1500.0));
    case ContentCategory::Music:
      return mb(rng.uniform(60.0, 160.0));
    case ContentCategory::Audiobooks:
      return mb(rng.uniform(100.0, 600.0));
    case ContentCategory::Games:
      return mb(rng.uniform(900.0, 7800.0));
    case ContentCategory::Software:
      return mb(rng.uniform(30.0, 2500.0));
    case ContentCategory::Ebooks:
      return mb(rng.uniform(1.0, 40.0));
    case ContentCategory::Other:
      return mb(rng.uniform(10.0, 900.0));
  }
  return mb(100.0);
}

std::string language_tag(Language language) {
  switch (language) {
    case Language::Spanish:
      return ".SPANiSH";
    case Language::Italian:
      return ".iTALiAN";
    case Language::Dutch:
      return ".DUTCH";
    case Language::Swedish:
      return ".SWEDiSH";
    case Language::English:
    case Language::Other:
      return "";
  }
  return "";
}

std::string main_extension(ContentCategory category) {
  switch (category) {
    case ContentCategory::Movies:
    case ContentCategory::TvShows:
    case ContentCategory::Porn:
      return ".avi";
    case ContentCategory::Music:
    case ContentCategory::Audiobooks:
      return ".mp3";
    case ContentCategory::Games:
    case ContentCategory::Software:
      return ".iso";
    case ContentCategory::Ebooks:
      return ".pdf";
    case ContentCategory::Other:
      return ".rar";
  }
  return ".dat";
}

std::string make_textbox(const Publisher& p, const std::string& title, Rng& rng) {
  std::string box = "Release: " + title + "\n";
  box += "Uploaded by " + p.usernames.front() + ".\n";
  if (p.promo_domain.size() > 0 && has_channel(p.promo_channels, PromoChannel::Textbox)) {
    box += "Visit http://www." + p.promo_domain + "/ for more releases";
    if (p.cls == PublisherClass::TopPortalOwner) {
      box += " and our private tracker (signup required)";
    }
    box += "!\n";
  }
  if (p.cls == PublisherClass::TopAltruistic) {
    // The paper notes altruistic top publishers write extensive
    // descriptions and ask for seeding help.
    box += "Full notes: high quality rip, checked and complete. ";
    box += "Please seed after downloading, my upload link is limited!\n";
  }
  if (rng.chance(0.3)) box += "Enjoy.\n";
  return box;
}

}  // namespace

PublishedWork Publisher::make_work(SimTime when, std::size_t ordinal,
                                   Rng& rng) const {
  PublishedWork work;
  const ClassProfile& profile = class_profile(cls);

  // --- Username.
  if (is_fake_farm()) {
    if (has_compromised_username && rng.chance(compromised_use_prob)) {
      work.username = usernames.front();
    } else {
      // Cycle through the throwaway accounts.
      const std::size_t offset = has_compromised_username ? 1 : 0;
      const std::size_t throwaways =
          usernames.size() > offset ? usernames.size() - offset : 0;
      work.username = throwaways == 0
                          ? usernames.front()
                          : usernames[offset + (ordinal % throwaways)];
    }
  } else {
    work.username = usernames.front();
  }

  // --- Endpoint.
  std::size_t ip_index = 0;
  switch (strategy) {
    case IpStrategy::SingleIp:
      ip_index = 0;
      break;
    case IpStrategy::HostingMulti:
    case IpStrategy::FakeFarm:
    case IpStrategy::MultiIsp:
      ip_index = ordinal % endpoints.size();
      break;
    case IpStrategy::DynamicCommercial:
      // The ISP re-assigns the address every couple of days.
      ip_index = static_cast<std::size_t>(when / days(2)) % endpoints.size();
      break;
  }
  work.endpoint = endpoints[ip_index];
  work.endpoint_nat = nat && !hosted;

  // --- Content.
  work.category = draw_category(profile, rng);
  work.language = language;
  work.payload = cls == PublisherClass::FakeAntipiracy ? PayloadKind::FakeAntipiracy
                 : cls == PublisherClass::FakeMalware  ? PayloadKind::FakeMalware
                                                       : PayloadKind::Genuine;
  work.title = is_fake_farm() ? make_catchy_title(work.category, rng)
                              : make_release_title(work.category, rng);
  work.title += language_tag(language);
  if (!promo_domain.empty() &&
      has_channel(promo_channels, PromoChannel::FilenameSuffix)) {
    work.title += "-" + promo_domain;
  }

  // --- Payload files.
  const std::int64_t total = draw_size(work.category, rng);
  work.files.push_back(FileEntry{work.title + main_extension(work.category), total});
  if (rng.chance(0.5)) {
    work.files.push_back(FileEntry{work.title + ".nfo", 4 * 1024});
  }
  if (!promo_domain.empty() &&
      has_channel(promo_channels, PromoChannel::PayloadTextFile)) {
    std::string flat = promo_domain;
    std::replace(flat.begin(), flat.end(), '.', '-');
    work.files.push_back(FileEntry{"Visit-www-" + flat + ".txt", 120});
  }

  work.textbox = make_textbox(*this, work.title, rng);
  work.expected_downloads =
      rng.lognormal_median(popularity_median, popularity_sigma);
  work.cross_posted = rng.chance(cross_post_probability);
  return work;
}

std::vector<Interval> plan_seed_sessions(const SeedingPolicy& policy,
                                         SimTime birth, SimTime enough_seeders_at,
                                         SimTime removal_time, SimTime hard_end,
                                         SimDuration /*online_start*/, Rng& rng) {
  constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  // Occasionally the seed box comes online only a while after the portal
  // listing exists.
  SimTime start = birth;
  if (rng.chance(policy.delayed_start_prob)) {
    start += static_cast<SimDuration>(
        rng.exponential(static_cast<double>(policy.mean_start_delay)));
  }

  SimTime end;
  if (policy.seed_until_removed) {
    if (removal_time >= 0) {
      end = removal_time + static_cast<SimDuration>(rng.exponential(
                               static_cast<double>(policy.mean_post_removal_linger)));
    } else {
      end = birth + policy.max_seed_time;
    }
  } else {
    SimTime leave = kNever;
    if (policy.leave_after_other_seeders > 0 && enough_seeders_at != kNever) {
      leave = enough_seeders_at + static_cast<SimDuration>(rng.exponential(
                                      static_cast<double>(policy.mean_extra_seed)));
    }
    if (leave == kNever) {
      // Nobody ever takes over: seed up to the cap and give up.
      leave = birth + policy.max_seed_time;
    }
    end = std::clamp(leave, start + policy.min_seed_time,
                     start + policy.max_seed_time);
  }
  end = std::min(end, hard_end);
  if (end <= start) return {};

  std::vector<Interval> sessions;
  if (policy.daily_online_hours >= 24.0) {
    sessions.push_back(Interval{start, end});
    return sessions;
  }
  // Home publisher: online `daily_online_hours` out of every 24, anchored at
  // publication (one publishes while online).
  const SimDuration online = hours(policy.daily_online_hours);
  SimTime cursor = start;
  while (cursor < end) {
    const SimTime session_end = std::min<SimTime>(cursor + online, end);
    if (session_end > cursor) sessions.push_back(Interval{cursor, session_end});
    cursor += kDay;
  }
  return sessions;
}

}  // namespace btpub
