#include "swarm/network.hpp"

#include <stdexcept>

#include "torrent/wire.hpp"

namespace btpub {

void SwarmNetwork::register_swarm(Swarm& swarm) {
  if (!swarm.finalized()) {
    throw std::logic_error("SwarmNetwork: swarm must be finalized");
  }
  swarms_.insert(swarm.infohash(), &swarm);
}

Swarm* SwarmNetwork::find(const Sha1Digest& infohash) {
  return swarms_.find(infohash);
}

const Swarm* SwarmNetwork::find(const Sha1Digest& infohash) const {
  return swarms_.find(infohash);
}

std::optional<SwarmNetwork::ProbeResult> SwarmNetwork::probe(
    const Sha1Digest& infohash, const Endpoint& endpoint, SimTime t) {
  Swarm* swarm = find(infohash);
  if (swarm == nullptr) return std::nullopt;
  const PeerSession* session = swarm->find_peer(endpoint, t);
  if (session == nullptr || session->nat) return std::nullopt;

  Handshake hs;
  hs.infohash = infohash;
  hs.peer_id = Handshake::make_peer_id(
      (static_cast<std::uint64_t>(endpoint.ip.value()) << 16) | endpoint.port);
  ProbeResult result;
  result.handshake = hs.encode();
  result.bitfield = encode_bitfield_message(swarm->bitfield_at(*session, t));
  // DHT nodes listen on their peer-wire port in this model.
  result.port = encode_port_message(endpoint.port);
  return result;
}

}  // namespace btpub
