// swarm.hpp — one BitTorrent swarm as a set of peer sessions over
// simulated time.
//
// Peer activity is represented as time intervals rather than discrete
// events: a session is [arrive, depart) with a completion instant at which
// the peer flips from leecher to seeder. The tracker answers announce
// queries by sweeping an event list forward in time, which makes crawling
// thousands of swarms over weeks of simulated time cheap (O(events) for the
// sweep plus O(k) per sampled reply).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crypto/sha1.hpp"
#include "net/ip.hpp"
#include "torrent/bitfield.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace btpub {

/// One peer's participation in one swarm.
struct PeerSession {
  Endpoint endpoint;
  SimTime arrive = 0;
  SimTime depart = 0;
  /// Instant the peer holds all pieces; values >= depart mean it never
  /// completed within the session.
  SimTime complete_at = std::numeric_limits<SimTime>::max();
  bool nat = false;           // unreachable for direct peer-wire probes
  bool is_publisher = false;  // ground-truth marker (not visible on the wire)
  /// Address announced to the tracker but not actually held (a fake
  /// publisher's decoy injection). Spoofed peers are unreachable like NAT
  /// ones and can never appear in the DHT, whose nodes store the announce
  /// datagram's *source* address.
  bool spoofed = false;

  bool seeder_at(SimTime t) const noexcept { return t >= complete_at; }
  bool present_at(SimTime t) const noexcept { return t >= arrive && t < depart; }
};

/// Seeder/leecher population at an instant.
struct SwarmCounts {
  std::uint32_t seeders = 0;
  std::uint32_t leechers = 0;
  std::uint32_t total() const noexcept { return seeders + leechers; }
};

/// A swarm: finalized set of sessions + a forward time sweep.
class Swarm {
 public:
  Swarm() = default;
  Swarm(Sha1Digest infohash, std::size_t n_pieces, SimTime birth);

  const Sha1Digest& infohash() const noexcept { return infohash_; }
  SimTime birth() const noexcept { return birth_; }
  std::size_t piece_count() const noexcept { return n_pieces_; }

  /// Adds a session; only valid before finalize().
  void add_session(PeerSession session);

  /// Pre-sizes the staging buffer; the generator knows its arrival count
  /// up front, so session ingestion is a single allocation.
  void reserve_sessions(std::size_t n) { staging_.reserve(n); }

  /// Sorts the event list and compacts sessions, sweep events and the
  /// endpoint index into the swarm's arena; must be called once before any
  /// query. After finalize the growth staging buffer is released.
  void finalize();
  bool finalized() const noexcept { return finalized_; }

  std::size_t session_count() const noexcept { return sessions().size(); }
  std::span<const PeerSession> sessions() const noexcept {
    return finalized_ ? sessions_ : std::span<const PeerSession>(staging_);
  }

  /// Build-side allocation footprint (bench/observability).
  const Arena& arena() const noexcept { return arena_; }

  /// Population counts at time t. Queries must be issued in non-decreasing
  /// t; a backwards jump rewinds by rebuilding the sweep (slow path).
  SwarmCounts counts_at(SimTime t);

  /// Reusable scratch for sample_peers: holding onto one instance across
  /// queries makes steady-state sampling allocation-free (the announce
  /// fast path threads one through Tracker::announce_into).
  struct SampleScratch {
    std::vector<std::uint32_t> chosen;  // Floyd membership, |chosen| <= k
  };

  /// Uniform sample (without replacement) of at most k present sessions.
  std::vector<const PeerSession*> sample_peers(SimTime t, std::size_t k, Rng& rng);

  /// Same draw (identical RNG consumption and output order — byte-identity
  /// of announce replies depends on it), but writes into caller-owned
  /// storage. `out` is cleared first; both vectors keep their capacity.
  void sample_peers(SimTime t, std::size_t k, Rng& rng,
                    std::vector<const PeerSession*>& out, SampleScratch& scratch);

  /// All sessions present at t (used when the swarm is small).
  std::vector<const PeerSession*> peers_at(SimTime t);

  /// The session with this endpoint present at t, if any.
  const PeerSession* find_peer(const Endpoint& endpoint, SimTime t);

  /// Download progress in [0,1]: linear from arrive to complete_at; peers
  /// that never complete plateau below 1.
  double progress_at(const PeerSession& session, SimTime t) const;

  /// The peer's piece bitfield at t under the linear-progress model.
  Bitfield bitfield_at(const PeerSession& session, SimTime t) const;

  /// Time of the last departure (swarm death); birth when empty.
  SimTime last_departure() const noexcept { return last_departure_; }

  /// Ground truth: number of distinct downloader IPs (excludes publisher
  /// and spoofed sessions — neither is a real downloader). Cached at finalize() — validation benches call this once
  /// per torrent and must not rebuild an IP set every time.
  std::size_t distinct_downloader_ips() const;

 private:
  enum class EventKind : std::uint8_t { Arrive = 0, Complete = 1, Depart = 2 };
  struct Event {
    SimTime at;
    EventKind kind;
    std::uint32_t session;
  };

  void rebuild_sweep();
  void advance_to(SimTime t);

  Sha1Digest infohash_{};
  std::size_t n_pieces_ = 1;
  SimTime birth_ = 0;

  /// Pre-finalize growth buffer; finalize() moves it into the arena.
  std::vector<PeerSession> staging_;

  /// All post-finalize per-session storage lives here: one arena, a couple
  /// of blocks, freed as a unit — instead of a sessions vector, an events
  /// vector and (worst of all) an unordered_map node per endpoint.
  Arena arena_;
  std::span<const PeerSession> sessions_;
  std::span<const Event> events_;
  /// Session indices sorted by (endpoint, insertion index): find_peer is a
  /// binary search over this flat index, replacing the per-endpoint hash
  /// map. Ties keep insertion order, so lookup semantics are unchanged.
  std::span<const std::uint32_t> endpoint_index_;

  bool finalized_ = false;
  SimTime last_departure_ = 0;
  std::size_t distinct_downloader_ips_ = 0;

  // Sweep state.
  std::size_t next_event_ = 0;
  SimTime sweep_time_ = std::numeric_limits<SimTime>::min();
  std::vector<std::uint32_t> present_;               // session indices
  std::vector<std::uint32_t> position_;              // session -> index in present_
  static constexpr std::uint32_t kAbsent = ~std::uint32_t{0};
  SwarmCounts counts_{};
};

}  // namespace btpub
