// network.hpp — the crawler's eye view of the peer network: direct
// peer-wire probes. Given an endpoint learnt from the tracker, the crawler
// attempts a TCP-style connection; NATed or departed peers are unreachable,
// reachable peers answer with a handshake followed by a bitfield message —
// the bytes the paper's apparatus used to single out the initial seeder.
#pragma once

#include <optional>
#include <string>

#include "crypto/sha1.hpp"
#include "swarm/swarm.hpp"
#include "swarm/swarm_map.hpp"

namespace btpub {

/// Registry of live swarms addressable by infohash; simulates the peer-wire
/// reachability side of the network.
class SwarmNetwork {
 public:
  /// Registers a finalized swarm. The swarm must outlive the network.
  void register_swarm(Swarm& swarm);

  Swarm* find(const Sha1Digest& infohash);
  const Swarm* find(const Sha1Digest& infohash) const;
  std::size_t swarm_count() const noexcept { return swarms_.size(); }

  /// Result of a peer-wire probe.
  struct ProbeResult {
    std::string handshake;  // 68 raw bytes
    std::string bitfield;   // length-prefixed bitfield message
    /// Length-prefixed Port message (BEP 5): connectable peers advertise
    /// the UDP port their DHT node listens on — the same population that
    /// joins the simulated overlay (NATed peers are neither probeable nor
    /// DHT nodes, so every probe that succeeds carries one).
    std::string port;
  };

  /// Connects to `endpoint` for `infohash` at time t and performs the
  /// handshake + bitfield (+ Port) exchange. nullopt when the peer is
  /// behind NAT, not present, or the swarm is unknown.
  std::optional<ProbeResult> probe(const Sha1Digest& infohash,
                                   const Endpoint& endpoint, SimTime t);

 private:
  ShardedSwarmMap<Swarm> swarms_;
};

}  // namespace btpub
