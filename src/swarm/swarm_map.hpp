// swarm_map.hpp — infohash-sharded open-addressing registry of swarms.
//
// Both the tracker and the peer-wire network keep an infohash -> Swarm*
// map that is written once per torrent during the build commit phase and
// then read on every announce/probe. std::unordered_map pays a heap node
// per torrent plus a rehash stall whenever the world crosses a load
// threshold — at 500K torrents that is 500K allocations and multi-ms
// pauses in the middle of the commit loop. A SHA-1 infohash is already a
// uniform 160-bit random value, so no hash function is needed at all:
// shard on the top bits of byte 0, then linear-probe a power-of-two flat
// table keyed on the first 8 digest bytes (full-digest compare on the rare
// prefix collision). Each shard grows independently, bounding any single
// rehash to 1/kShards of the world.
//
// Insert-or-overwrite and lookup only (the build never unregisters a
// swarm); not thread-safe for writes, const lookups are safe to share.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/sha1.hpp"

namespace btpub {

template <typename T>
class ShardedSwarmMap {
 public:
  static constexpr std::size_t kShards = 16;

  ShardedSwarmMap() = default;

  void insert(const Sha1Digest& infohash, T* value) {
    Shard& shard = shards_[shard_of(infohash)];
    if ((shard.used + 1) * 4 > shard.slots.size() * 3) grow(shard);
    Slot* slot = probe(shard, infohash);
    if (slot->value == nullptr) ++shard.used, ++size_;
    slot->key = infohash;
    slot->prefix = prefix_of(infohash);
    slot->value = value;
  }

  T* find(const Sha1Digest& infohash) const {
    const Shard& shard = shards_[shard_of(infohash)];
    if (shard.slots.empty()) return nullptr;
    const Slot* slot = probe(shard, infohash);
    return slot->value;
  }

  bool contains(const Sha1Digest& infohash) const {
    return find(infohash) != nullptr;
  }

  std::size_t size() const noexcept { return size_; }

 private:
  struct Slot {
    Sha1Digest key{};
    std::uint64_t prefix = 0;
    T* value = nullptr;  // nullptr == empty
  };
  struct Shard {
    std::vector<Slot> slots;
    std::size_t used = 0;
  };

  static std::size_t shard_of(const Sha1Digest& d) noexcept {
    return d.bytes[0] >> 4;  // top nibble: uniform for SHA-1 keys
  }
  static std::uint64_t prefix_of(const Sha1Digest& d) noexcept {
    std::uint64_t p = 0;
    for (std::size_t i = 0; i < 8; ++i) p = (p << 8) | d.bytes[i];
    return p;
  }

  /// Returns the slot holding `infohash` or the empty slot it belongs in.
  template <typename ShardT>
  static auto* probe(ShardT& shard, const Sha1Digest& infohash) {
    const std::uint64_t prefix = prefix_of(infohash);
    const std::size_t mask = shard.slots.size() - 1;
    // Skip the shard-selector bits so in-shard positions stay uniform.
    std::size_t i = static_cast<std::size_t>(prefix >> 8) & mask;
    for (;;) {
      auto& slot = shard.slots[i];
      if (slot.value == nullptr ||
          (slot.prefix == prefix && slot.key == infohash)) {
        return &slot;
      }
      i = (i + 1) & mask;
    }
  }

  void grow(Shard& shard) {
    const std::size_t capacity =
        shard.slots.empty() ? 64 : shard.slots.size() * 2;
    std::vector<Slot> old = std::move(shard.slots);
    shard.slots.assign(capacity, Slot{});
    for (const Slot& slot : old) {
      if (slot.value == nullptr) continue;
      *probe(shard, slot.key) = slot;
    }
  }

  Shard shards_[kShards];
  std::size_t size_ = 0;
};

}  // namespace btpub
