#include "swarm/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/stats.hpp"

namespace btpub {

ConsumerPool::ConsumerPool(const IspCatalog& catalog) : catalog_(&catalog) {}

void ConsumerPool::add_sticky(Endpoint endpoint, double weight) {
  sticky_.push_back(endpoint);
  weights_.push_back(weight);
}

Endpoint ConsumerPool::draw(Rng& rng) const {
  if (!sticky_.empty() && rng.chance(sticky_bias_)) {
    const std::size_t i = rng.weighted_index(weights_);
    return sticky_[i];
  }
  const auto& names = catalog_->eyeball_names();
  assert(!names.empty());
  const auto& pool = catalog_->pool(names[rng.index(names.size())]);
  Endpoint e;
  e.ip = pool.random_residential(rng);
  e.port = static_cast<std::uint16_t>(rng.uniform_int(1025, 65535));
  return e;
}

double SwarmGenerator::truncated_mean(const SwarmSpec& spec) {
  const SimDuration horizon = spec.arrivals_end - spec.birth;
  if (horizon <= 0) return 0.0;
  const double T = static_cast<double>(horizon);
  const double tau = static_cast<double>(std::max<SimDuration>(spec.decay_tau, 1));
  return spec.expected_downloads * (1.0 - std::exp(-T / tau));
}

std::size_t SwarmGenerator::generate(Swarm& swarm, const SwarmSpec& spec,
                                     Rng& rng) const {
  const double mean_arrivals = truncated_mean(spec);
  const std::size_t n = sample_poisson(mean_arrivals, rng);
  if (n == 0) return 0;
  // One staging allocation for the whole swarm (+ a little headroom for the
  // publisher's seed sessions and any decoys added after us).
  swarm.reserve_sessions(swarm.sessions().size() + n + 8);

  const double T = static_cast<double>(spec.arrivals_end - spec.birth);
  const double tau = static_cast<double>(std::max<SimDuration>(spec.decay_tau, 1));
  const double mass = 1.0 - std::exp(-T / tau);

  for (std::size_t i = 0; i < n; ++i) {
    // Inverse CDF of the truncated exponential arrival-time density.
    const double u = rng.uniform();
    const double offset = -tau * std::log(1.0 - u * mass);
    const SimTime arrive = spec.birth + static_cast<SimTime>(offset);

    PeerSession s;
    s.endpoint = consumers_->draw(rng);
    s.arrive = arrive;
    s.nat = rng.chance(spec.nat_fraction);

    if (spec.fake) {
      // Fake payload: the user joins, realises the content is bogus (or
      // the download stalls behind a single decoy seed) and bails.
      const SimDuration stay = minutes(rng.uniform(10.0, 40.0));
      s.depart = arrive + stay;
      // complete_at stays at "never".
    } else if (rng.chance(spec.abort_probability)) {
      const double dl =
          rng.lognormal_median(static_cast<double>(spec.median_download_time), 0.8);
      const SimDuration stay =
          std::max<SimDuration>(minutes(5), static_cast<SimDuration>(dl * rng.uniform(0.1, 0.7)));
      s.depart = arrive + stay;
    } else {
      const double dl =
          rng.lognormal_median(static_cast<double>(spec.median_download_time), 0.8);
      const auto duration = std::max<SimDuration>(minutes(10), static_cast<SimDuration>(dl));
      s.complete_at = arrive + duration;
      SimDuration seed_tail = minutes(rng.uniform(1.0, 5.0));  // brief linger
      if (rng.chance(spec.seed_probability)) {
        seed_tail = static_cast<SimDuration>(
            rng.exponential(static_cast<double>(spec.mean_seed_time)));
        seed_tail = std::max<SimDuration>(seed_tail, minutes(5));
      }
      s.depart = s.complete_at + seed_tail;
    }
    swarm.add_session(s);
  }
  return n;
}

}  // namespace btpub
