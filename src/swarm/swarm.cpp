#include "swarm/swarm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace btpub {

namespace {

std::size_t count_distinct_downloader_ips(std::span<const PeerSession> sessions) {
  std::unordered_set<IpAddress> ips;
  for (const PeerSession& s : sessions) {
    if (!s.is_publisher && !s.spoofed) ips.insert(s.endpoint.ip);
  }
  return ips.size();
}

}  // namespace

Swarm::Swarm(Sha1Digest infohash, std::size_t n_pieces, SimTime birth)
    : infohash_(infohash), n_pieces_(n_pieces == 0 ? 1 : n_pieces), birth_(birth) {}

void Swarm::add_session(PeerSession session) {
  if (finalized_) throw std::logic_error("Swarm: add_session after finalize");
  if (session.depart <= session.arrive) return;  // degenerate, drop
  staging_.push_back(session);
}

void Swarm::finalize() {
  if (finalized_) return;
  finalized_ = true;

  const auto n = static_cast<std::uint32_t>(staging_.size());
  PeerSession* sessions = arena_.copy_array(staging_.data(), staging_.size());
  sessions_ = {sessions, n};
  staging_ = {};  // release the growth buffer; the arena copy is canonical

  // Sweep events: 2 per session plus a Complete when it falls strictly
  // inside the session. Sized exactly, so one arena bump covers it.
  std::size_t n_events = 0;
  for (const PeerSession& s : sessions_) {
    n_events += 2 + (s.complete_at > s.arrive && s.complete_at < s.depart);
  }
  Event* events = arena_.alloc_array<Event>(n_events);
  std::size_t e = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const PeerSession& s = sessions_[i];
    events[e++] = Event{s.arrive, EventKind::Arrive, i};
    if (s.complete_at > s.arrive && s.complete_at < s.depart) {
      events[e++] = Event{s.complete_at, EventKind::Complete, i};
    }
    events[e++] = Event{s.depart, EventKind::Depart, i};
    last_departure_ = std::max(last_departure_, s.depart);
  }
  std::sort(events, events + n_events, [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.session < b.session;
  });
  events_ = {events, n_events};

  // Endpoint index: session indices ordered by (endpoint, insertion index).
  // find_peer binary-searches it; equal endpoints keep insertion order, so
  // the first matching present session wins exactly as the old per-endpoint
  // hash-map chains did.
  std::uint32_t* index = arena_.alloc_array<std::uint32_t>(n);
  for (std::uint32_t i = 0; i < n; ++i) index[i] = i;
  std::sort(index, index + n, [this](std::uint32_t a, std::uint32_t b) {
    if (sessions_[a].endpoint != sessions_[b].endpoint) {
      return sessions_[a].endpoint < sessions_[b].endpoint;
    }
    return a < b;
  });
  endpoint_index_ = {index, n};

  distinct_downloader_ips_ = count_distinct_downloader_ips(sessions_);
  rebuild_sweep();
}

void Swarm::rebuild_sweep() {
  next_event_ = 0;
  sweep_time_ = std::numeric_limits<SimTime>::min();
  present_.clear();
  position_.assign(sessions_.size(), kAbsent);
  counts_ = SwarmCounts{};
}

void Swarm::advance_to(SimTime t) {
  assert(finalized_);
  if (t < sweep_time_) rebuild_sweep();
  sweep_time_ = t;
  while (next_event_ < events_.size() && events_[next_event_].at <= t) {
    const Event& ev = events_[next_event_++];
    const PeerSession& s = sessions_[ev.session];
    switch (ev.kind) {
      case EventKind::Arrive:
        position_[ev.session] = static_cast<std::uint32_t>(present_.size());
        present_.push_back(ev.session);
        // Sessions that arrive already complete (the initial seeder) count
        // as seeders from the start.
        if (s.complete_at <= s.arrive) {
          ++counts_.seeders;
        } else {
          ++counts_.leechers;
        }
        break;
      case EventKind::Complete:
        --counts_.leechers;
        ++counts_.seeders;
        break;
      case EventKind::Depart: {
        const std::uint32_t pos = position_[ev.session];
        assert(pos != kAbsent);
        const std::uint32_t last = present_.back();
        present_[pos] = last;
        position_[last] = pos;
        present_.pop_back();
        position_[ev.session] = kAbsent;
        if (s.complete_at < s.depart) {
          --counts_.seeders;
        } else {
          --counts_.leechers;
        }
        break;
      }
    }
  }
}

SwarmCounts Swarm::counts_at(SimTime t) {
  advance_to(t);
  return counts_;
}

std::vector<const PeerSession*> Swarm::sample_peers(SimTime t, std::size_t k,
                                                    Rng& rng) {
  std::vector<const PeerSession*> out;
  SampleScratch scratch;
  sample_peers(t, k, rng, out, scratch);
  return out;
}

void Swarm::sample_peers(SimTime t, std::size_t k, Rng& rng,
                         std::vector<const PeerSession*>& out,
                         SampleScratch& scratch) {
  advance_to(t);
  out.clear();
  const std::size_t n = present_.size();
  if (n == 0 || k == 0) return;
  if (k >= n) {
    out.reserve(n);
    for (std::uint32_t idx : present_) out.push_back(&sessions_[idx]);
    return;
  }
  // Floyd's algorithm: k distinct uniform indices in O(k) expected time.
  // Membership lives in a reused flat vector (a linear scan over <= k
  // small integers beats per-node hash-set allocation at announce sizes);
  // the draw sequence and output order are identical to the hash-set
  // formulation, which announce-reply byte-identity depends on.
  std::vector<std::uint32_t>& chosen = scratch.chosen;
  chosen.clear();
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto r = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(j)));
    const bool fresh =
        std::find(chosen.begin(), chosen.end(), r) == chosen.end();
    const std::uint32_t pick = fresh ? r : static_cast<std::uint32_t>(j);
    chosen.push_back(pick);
    out.push_back(&sessions_[present_[pick]]);
  }
}

std::vector<const PeerSession*> Swarm::peers_at(SimTime t) {
  advance_to(t);
  std::vector<const PeerSession*> out;
  out.reserve(present_.size());
  for (std::uint32_t idx : present_) out.push_back(&sessions_[idx]);
  return out;
}

const PeerSession* Swarm::find_peer(const Endpoint& endpoint, SimTime t) {
  assert(finalized_);
  const auto begin = std::partition_point(
      endpoint_index_.begin(), endpoint_index_.end(),
      [&](std::uint32_t idx) { return sessions_[idx].endpoint < endpoint; });
  for (auto it = begin; it != endpoint_index_.end(); ++it) {
    const PeerSession& s = sessions_[*it];
    if (s.endpoint != endpoint) break;
    if (s.present_at(t)) return &s;
  }
  return nullptr;
}

double Swarm::progress_at(const PeerSession& session, SimTime t) const {
  if (t < session.arrive) return 0.0;
  if (session.seeder_at(t)) return 1.0;
  // Linear toward the (possibly never reached) completion instant.
  const SimTime horizon = session.complete_at;
  if (horizon == std::numeric_limits<SimTime>::max() ||
      horizon <= session.arrive) {
    // Peer that will never complete: crawl toward 90% over its stay.
    const double frac = static_cast<double>(t - session.arrive) /
                        static_cast<double>(
                            std::max<SimTime>(session.depart - session.arrive, 1));
    return std::min(0.9, frac * 0.9);
  }
  const double frac = static_cast<double>(t - session.arrive) /
                      static_cast<double>(horizon - session.arrive);
  return std::clamp(frac, 0.0, 1.0);
}

Bitfield Swarm::bitfield_at(const PeerSession& session, SimTime t) const {
  Bitfield field(n_pieces_);
  const double progress = progress_at(session, t);
  const auto k = static_cast<std::size_t>(
      std::floor(progress * static_cast<double>(n_pieces_) + 1e-9));
  field.set_prefix(k);
  return field;
}

std::size_t Swarm::distinct_downloader_ips() const {
  if (finalized_) return distinct_downloader_ips_;
  return count_distinct_downloader_ips(sessions());
}

}  // namespace btpub
