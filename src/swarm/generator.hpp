// generator.hpp — demand model: who downloads a published content, when,
// and for how long.
//
// Arrivals follow a non-homogeneous Poisson process whose rate decays
// exponentially from the torrent's birth (the classic flash-crowd-then-
// -decay shape measured by Izal et al. and Guo et al.), truncated when the
// portal removes the listing. Downloaders of genuine content may convert to
// seeders for a while; downloaders of fake content abandon within minutes
// and never seed — which is what forces fake publishers into long seeding
// sessions (paper §4.3).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/isp_catalog.hpp"
#include "swarm/swarm.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace btpub {

/// The population that downloads content: fresh eyeball-ISP users plus a
/// sticky pool of known consumers (regular publishers also consume; top
/// publishers mostly do not — §3.1's "40% of the top-100 download nothing").
class ConsumerPool {
 public:
  explicit ConsumerPool(const IspCatalog& catalog);

  /// Adds a sticky consumer (e.g. a regular publisher's home IP) with the
  /// given relative weight of appearing in any one swarm.
  void add_sticky(Endpoint endpoint, double weight = 1.0);

  /// Draws a downloader endpoint: with probability `sticky_bias` a sticky
  /// consumer, otherwise a fresh residential address. Pure given `rng` and
  /// touches no pool state, so concurrent draws from distinct generators
  /// (the parallel ecosystem build) are safe.
  Endpoint draw(Rng& rng) const;

  /// Probability that a draw comes from the sticky pool (default 2%).
  void set_sticky_bias(double bias) { sticky_bias_ = bias; }

  std::size_t sticky_count() const noexcept { return sticky_.size(); }

 private:
  const IspCatalog* catalog_;
  std::vector<Endpoint> sticky_;
  std::vector<double> weights_;
  double sticky_bias_ = 0.02;
};

/// Parameters of one torrent's demand.
struct SwarmSpec {
  SimTime birth = 0;
  /// Expected number of downloads over an unbounded horizon.
  double expected_downloads = 50.0;
  /// Arrival-rate decay constant (rate ~ exp(-(t-birth)/tau)).
  SimDuration decay_tau = days(4);
  /// Hard stop for new arrivals (listing removal or end of simulation).
  SimTime arrivals_end = 0;
  /// Fake content: downloaders abandon quickly and never seed.
  bool fake = false;
  /// Fraction of downloaders behind NAT (unreachable for probes).
  double nat_fraction = 0.35;
  /// Median time a genuine downloader needs to complete.
  SimDuration median_download_time = hours(2.5);
  /// Probability a genuine downloader aborts before completing.
  double abort_probability = 0.15;
  /// Probability a completed downloader stays to seed, and for how long.
  double seed_probability = 0.35;
  SimDuration mean_seed_time = hours(2);
};

/// Generates downloader sessions for one swarm.
class SwarmGenerator {
 public:
  explicit SwarmGenerator(const ConsumerPool& consumers) : consumers_(&consumers) {}

  /// Appends downloader sessions to `swarm` per `spec`; returns how many
  /// arrivals were generated. Does not finalize the swarm.
  std::size_t generate(Swarm& swarm, const SwarmSpec& spec, Rng& rng) const;

  /// The truncated-exponential arrival-count mean used internally; exposed
  /// for tests: E[N] = expected * (1 - exp(-T/tau)).
  static double truncated_mean(const SwarmSpec& spec);

 private:
  const ConsumerPool* consumers_;
};

}  // namespace btpub
