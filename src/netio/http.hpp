// http.hpp — minimal HTTP/1.1 announce + scrape listener for the serving
// daemon. Wire framing only: nonblocking accept, bounded header parsing,
// keep-alive and pipelining; the response *bodies* come from the exact
// same view-based query parser and announce_into fast path the simulated
// tracker uses, so a socket-served announce is byte-identical to
// Tracker::handle_get (a tested invariant — see netio_http_test).
//
// The listener and every connection live on one serving shard's event
// loop (shard 0); HTTP is the compatibility path, UDP the throughput path,
// so a single thread is deliberate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "netio/event_loop.hpp"
#include "netio/socket.hpp"
#include "tracker/tracker.hpp"

namespace btpub::netio {

struct HttpStats {
  std::uint64_t accepted = 0;
  std::uint64_t requests = 0;        // well-framed requests routed
  std::uint64_t announces = 0;
  std::uint64_t scrapes = 0;
  std::uint64_t bad_requests = 0;    // malformed framing (4xx)
  std::uint64_t oversized = 0;       // header block over the cap (431)
  std::uint64_t closed = 0;
};

class HttpAnnounceServer {
 public:
  /// Largest accepted request head (request line + headers + CRLFCRLF).
  static constexpr std::size_t kMaxHeaderBytes = 8192;

  /// `now_fn` supplies the serve-time clock for requests that do not carry
  /// the in-band `t` query parameter.
  HttpAnnounceServer(Tracker& tracker, FdHandle listener,
                     std::function<SimTime()> now_fn);
  ~HttpAnnounceServer();

  HttpAnnounceServer(const HttpAnnounceServer&) = delete;
  HttpAnnounceServer& operator=(const HttpAnnounceServer&) = delete;

  std::uint16_t port() const;

  /// Registers the listener on the shard's loop under kListenerTag.
  void register_with(EventLoop& loop);

  /// True when `tag` belongs to this server (listener or a connection).
  bool owns(std::uint64_t tag) const;

  /// Dispatches one readiness event for an owned tag.
  void on_event(EventLoop& loop, std::uint64_t tag, std::uint32_t events);

  /// Graceful drain: best-effort flush of staged responses, then closes
  /// every connection and the listener.
  void close_all(EventLoop& loop);

  const HttpStats& stats() const noexcept { return stats_; }

  /// Event-loop tag for the listener fd. Connection tags are heap pointers
  /// (always > kListenerTag, which the shard reserves among its small
  /// integer tags).
  static constexpr std::uint64_t kListenerTag = 3;

 private:
  struct Conn {
    FdHandle fd;
    std::string rx;
    std::string tx;
    std::size_t tx_off = 0;
    bool close_after = false;
    bool want_write = false;
  };

  void accept_ready(EventLoop& loop);
  void conn_event(EventLoop& loop, Conn* conn, std::uint32_t events);
  /// Parses and answers every complete request in conn->rx; returns false
  /// when the connection must close.
  bool process_buffer(Conn* conn);
  void handle_request_line(Conn* conn, std::string_view request_line,
                           bool keep_alive);
  void respond(Conn* conn, int status, std::string_view reason,
               std::string_view body, bool keep_alive);
  void announce_body(std::string_view target);
  bool scrape_body(std::string_view target);
  /// Flushes staged bytes; returns false when the connection died.
  bool flush(Conn* conn);
  void update_interest(EventLoop& loop, Conn* conn);
  void close_conn(EventLoop& loop, Conn* conn);

  Tracker* tracker_;
  FdHandle listener_;
  std::function<SimTime()> now_fn_;
  std::unordered_map<Conn*, std::unique_ptr<Conn>> conns_;
  HttpStats stats_;
  // Reused across requests (zero-allocation steady state on the announce
  // path, mirroring handle_into).
  AnnounceReply reply_;
  Tracker::AnnounceScratch scratch_;
  std::string body_;
};

}  // namespace btpub::netio
