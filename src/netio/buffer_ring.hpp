// buffer_ring.hpp — caller-owned datagram rings for batched UDP I/O.
//
// One DatagramRing holds everything a recvmmsg/sendmmsg round needs:
// receive slots (flat buffer + iovec + source sockaddr per slot) and
// transmit slots (a reusable payload string + iovec + destination per
// slot). The ring is allocated once per shard; after the first few batches
// every payload string has warmed to its high-water capacity and the
// steady-state packet path performs zero allocations — the same
// caller-owned-buffer discipline as Tracker::announce_into.
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace btpub::netio {

class DatagramRing {
 public:
  /// `slots` datagrams per batch, `datagram_capacity` bytes per receive
  /// slot (BEP 15's largest request — a 74-infohash scrape — is 1496
  /// bytes; anything longer than the slot is truncated by the kernel and
  /// will fail to decode, which is the right outcome for garbage).
  DatagramRing(std::size_t slots, std::size_t datagram_capacity)
      : slots_(slots),
        capacity_(datagram_capacity),
        rx_storage_(slots * datagram_capacity),
        rx_addrs_(slots),
        rx_iovecs_(slots),
        rx_headers_(slots),
        tx_payloads_(slots),
        tx_addrs_(slots),
        tx_iovecs_(slots),
        tx_headers_(slots) {
    for (std::size_t i = 0; i < slots_; ++i) {
      rx_iovecs_[i].iov_base = rx_storage_.data() + i * capacity_;
      rx_iovecs_[i].iov_len = capacity_;
      mmsghdr& rx = rx_headers_[i];
      rx.msg_hdr.msg_name = &rx_addrs_[i];
      rx.msg_hdr.msg_namelen = sizeof(sockaddr_in);
      rx.msg_hdr.msg_iov = &rx_iovecs_[i];
      rx.msg_hdr.msg_iovlen = 1;
      mmsghdr& tx = tx_headers_[i];
      tx.msg_hdr.msg_name = &tx_addrs_[i];
      tx.msg_hdr.msg_namelen = sizeof(sockaddr_in);
      tx.msg_hdr.msg_iov = &tx_iovecs_[i];
      tx.msg_hdr.msg_iovlen = 1;
    }
  }

  std::size_t slots() const noexcept { return slots_; }

  // -- receive side ---------------------------------------------------------

  /// recvmmsg resets msg_namelen on each call, so refresh before reuse.
  mmsghdr* rx_headers() noexcept {
    for (std::size_t i = 0; i < slots_; ++i) {
      rx_headers_[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
      rx_iovecs_[i].iov_len = capacity_;
    }
    return rx_headers_.data();
  }

  /// The i-th received datagram's bytes (valid until the next recvmmsg).
  std::string_view rx_view(std::size_t i) const noexcept {
    return {rx_storage_.data() + i * capacity_, rx_headers_[i].msg_len};
  }

  const sockaddr_in& rx_source(std::size_t i) const noexcept {
    return rx_addrs_[i];
  }

  // -- transmit side --------------------------------------------------------

  /// The reusable payload buffer for transmit slot `i`; fill it, then
  /// stage_tx to point the header at its final size and destination.
  std::string& tx_payload(std::size_t i) noexcept { return tx_payloads_[i]; }

  void stage_tx(std::size_t i, const sockaddr_in& dest) noexcept {
    tx_addrs_[i] = dest;
    tx_iovecs_[i].iov_base = tx_payloads_[i].data();
    tx_iovecs_[i].iov_len = tx_payloads_[i].size();
    tx_headers_[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
  }

  mmsghdr* tx_headers() noexcept { return tx_headers_.data(); }

 private:
  std::size_t slots_;
  std::size_t capacity_;
  std::vector<char> rx_storage_;
  std::vector<sockaddr_in> rx_addrs_;
  std::vector<iovec> rx_iovecs_;
  std::vector<mmsghdr> rx_headers_;
  std::vector<std::string> tx_payloads_;
  std::vector<sockaddr_in> tx_addrs_;
  std::vector<iovec> tx_iovecs_;
  std::vector<mmsghdr> tx_headers_;
};

}  // namespace btpub::netio
