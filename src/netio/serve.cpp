#include "netio/serve.hpp"

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>

#include "netio/buffer_ring.hpp"
#include "netio/event_loop.hpp"
#include "netio/http.hpp"
#include "tracker/udp_server.hpp"
#include "util/rng.hpp"

namespace btpub::netio {
namespace {

// Event-loop tags for the shard's own fds; HTTP connection tags are heap
// pointers and never collide with these small integers.
constexpr std::uint64_t kUdpTag = 0;
constexpr std::uint64_t kStopTag = 1;
constexpr std::uint64_t kTimerTag = 2;
// (HttpAnnounceServer::kListenerTag == 3.)

/// BEP 15 requests are at least 16 bytes (connect header); anything
/// shorter is line noise and gets dropped instead of answered.
constexpr std::size_t kMinDatagramBytes = 16;

/// Batch geometry: 64 datagrams per recvmmsg round, 2048-byte slots (the
/// largest request, a 74-infohash scrape, is 1496 bytes; the largest
/// response, a 200-peer announce, is 1220).
constexpr std::size_t kBatchSlots = 64;
constexpr std::size_t kDatagramBytes = 2048;

/// Bounded rounds per epoll wake so a firehose client cannot starve the
/// stop eventfd or the HTTP path.
constexpr int kMaxRoundsPerWake = 16;

// derive_seed tags for the daemon's independent random streams.
constexpr std::uint64_t kTrackerSeedTag = 0x6e657453'65727665ULL;  // "netServe"
constexpr std::uint64_t kConnectionSeedTag = 0x6e657443'6f6e6e31ULL;

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Sha1Digest serve_swarm_infohash(std::uint64_t seed, std::size_t index) {
  return Sha1::hash("netio-serve/" + std::to_string(seed) + "/" +
                    std::to_string(index));
}

std::vector<Swarm> build_serve_world(std::uint64_t seed, std::size_t swarms,
                                     std::size_t peers_per_swarm) {
  std::vector<Swarm> world;
  world.reserve(swarms);
  for (std::size_t s = 0; s < swarms; ++s) {
    Swarm swarm(serve_swarm_infohash(seed, s), 1024, 0);
    swarm.reserve_sessions(peers_per_swarm);
    for (std::size_t i = 0; i < peers_per_swarm; ++i) {
      PeerSession session;
      // 10.s.x.x peers, distinct per swarm; every peer arrives inside the
      // first hour and stays a year, so any serve-time clock sees a fully
      // populated swarm.
      session.endpoint = Endpoint{
          IpAddress(0x0A000000u + static_cast<std::uint32_t>(s) * 0x10000u +
                    static_cast<std::uint32_t>(i % 0xFFFFu)),
          static_cast<std::uint16_t>(6881 + (i & 7))};
      session.arrive = static_cast<SimTime>(i % 3600);
      session.depart = days(365);
      if (i % 7 == 0) session.complete_at = session.arrive + hours(2);
      swarm.add_session(session);
    }
    swarm.finalize();
    world.push_back(std::move(swarm));
  }
  return world;
}

struct ServeDaemon::Shard {
  FdHandle udp_fd;
  std::vector<Swarm> world;
  std::unique_ptr<Tracker> tracker;
  std::unique_ptr<UdpTrackerEndpoint> endpoint;
  std::unique_ptr<HttpAnnounceServer> http;  // shard 0 only
  DatagramRing ring{kBatchSlots, kDatagramBytes};
  ServeStats stats;
  /// endpoint->stats().announces already folded into announce_total_.
  std::uint64_t announces_counted = 0;
};

ServeDaemon::ServeDaemon(ServeConfig config) : config_(std::move(config)) {
  shard_threads_ = config_.shards != 0
                       ? config_.shards
                       : std::max(1u, std::thread::hardware_concurrency());

  stop_fd_ = FdHandle(eventfd(0, EFD_NONBLOCK));
  if (!stop_fd_.valid()) throw_errno("eventfd", "");
  if (config_.duration_seconds > 0.0) {
    timer_fd_ = FdHandle(timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK));
    if (!timer_fd_.valid()) throw_errno("timerfd_create", "");
  }

  shards_.reserve(shard_threads_);
  for (std::size_t i = 0; i < shard_threads_; ++i) {
    auto shard = std::make_unique<Shard>();
    // Shard 0 resolves an ephemeral port request; the rest join it.
    const std::uint16_t port = i == 0 ? config_.udp_port : udp_port_;
    shard->udp_fd = make_udp_shard_socket(config_.bind_ip, port,
                                          config_.so_rcvbuf, config_.so_sndbuf);
    if (i == 0) udp_port_ = local_port(shard->udp_fd.get());

    // Every replica is built from the same seeds: identical swarms,
    // identical enforced gap, identical sampling key — replies are
    // byte-identical across shards at equal query time.
    shard->world =
        build_serve_world(config_.seed, config_.swarms, config_.peers_per_swarm);
    TrackerConfig tracker_config;
    tracker_config.min_query_gap = config_.query_gap;
    tracker_config.max_query_gap = config_.query_gap;
    shard->tracker = std::make_unique<Tracker>(
        tracker_config, Rng(derive_seed(config_.seed, kTrackerSeedTag)));
    for (Swarm& swarm : shard->world) shard->tracker->host_swarm(swarm);
    shard->endpoint = std::make_unique<UdpTrackerEndpoint>(
        *shard->tracker, Rng(derive_seed(config_.seed, kConnectionSeedTag, i)));
    shards_.push_back(std::move(shard));
  }

  if (config_.enable_http) {
    FdHandle listener =
        make_tcp_listener(config_.bind_ip, config_.http_port, 128);
    http_port_ = local_port(listener.get());
    shards_[0]->http = std::make_unique<HttpAnnounceServer>(
        *shards_[0]->tracker, std::move(listener), [this] { return now(); });
  }
}

ServeDaemon::~ServeDaemon() {
  if (!threads_.empty()) {
    request_stop();
    join();
  }
}

SimTime ServeDaemon::now() const noexcept {
  if (config_.fixed_time) return *config_.fixed_time;
  // Hour 1 of simulated time is the first instant every serving-world peer
  // is present; the wall clock advances the sim clock 1:1 from there.
  if (start_ns_ == 0) return hours(1);
  return hours(1) + (steady_ns() - start_ns_) / 1'000'000'000;
}

void ServeDaemon::start() {
  start_ns_ = steady_ns();
  if (timer_fd_.valid()) {
    itimerspec spec{};
    spec.it_value.tv_sec = static_cast<time_t>(config_.duration_seconds);
    spec.it_value.tv_nsec = static_cast<long>(
        (config_.duration_seconds - static_cast<double>(spec.it_value.tv_sec)) *
        1e9);
    if (spec.it_value.tv_sec == 0 && spec.it_value.tv_nsec == 0) {
      spec.it_value.tv_nsec = 1;  // "expire immediately", not "disarm"
    }
    if (timerfd_settime(timer_fd_.get(), 0, &spec, nullptr) != 0) {
      throw_errno("timerfd_settime on fd", std::to_string(timer_fd_.get()));
    }
  }
  threads_.reserve(shard_threads_);
  for (std::size_t i = 0; i < shard_threads_; ++i) {
    threads_.emplace_back([this, i] {
      try {
        shard_main(i);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[btpub] serve shard %zu died: %s\n", i, e.what());
        request_stop();
      }
    });
  }
}

void ServeDaemon::request_stop() noexcept {
  // A single write to an eventfd that is polled but never read: level-
  // triggered readiness wakes every shard, and the call is async-signal-
  // safe so the CLI's SIGINT/SIGTERM handler can call it directly.
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(stop_fd_.get(), &one, sizeof one);
}

void ServeDaemon::join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ServeDaemon::run() {
  start();
  join();
}

ServeStats ServeDaemon::stats() const {
  ServeStats total;
  for (const auto& shard : shards_) {
    const ServeStats& s = shard->stats;
    total.datagrams_rx += s.datagrams_rx;
    total.responses_tx += s.responses_tx;
    total.dropped_short += s.dropped_short;
    total.send_failures += s.send_failures;
    const UdpTrackerEndpoint::Stats& udp = shard->endpoint->stats();
    total.connects += udp.connects;
    total.announces += udp.announces;
    total.announce_failures += udp.announce_failures;
    total.scrapes += udp.scrapes;
    total.malformed += udp.malformed;
    if (shard->http) {
      const HttpStats& http = shard->http->stats();
      total.http_accepted += http.accepted;
      total.http_requests += http.requests;
      total.http_announces += http.announces;
      total.http_bad_requests += http.bad_requests + http.oversized;
    }
  }
  return total;
}

void ServeDaemon::shard_main(std::size_t index) {
  Shard& shard = *shards_[index];
  EventLoop loop;
  loop.add(shard.udp_fd.get(), EPOLLIN, kUdpTag);
  loop.add(stop_fd_.get(), EPOLLIN, kStopTag);
  if (index == 0) {
    if (timer_fd_.valid()) loop.add(timer_fd_.get(), EPOLLIN, kTimerTag);
    if (shard.http) shard.http->register_with(loop);
  }

  std::array<EventLoop::Ready, 64> ready;
  bool stop = false;
  while (!stop) {
    for (const EventLoop::Ready& ev : loop.wait(ready, -1)) {
      switch (ev.tag) {
        case kUdpTag:
          drain_udp(shard);
          break;
        case kStopTag:
          stop = true;
          break;
        case kTimerTag:
          request_stop();
          break;
        default:
          if (shard.http && shard.http->owns(ev.tag)) {
            shard.http->on_event(loop, ev.tag, ev.events);
          }
          break;
      }
    }
  }
  // Graceful drain: answer the batches that already reached the socket
  // queue, flush HTTP responses, then close.
  drain_udp(shard);
  if (shard.http) shard.http->close_all(loop);
  shard.udp_fd.reset();
}

void ServeDaemon::drain_udp(Shard& shard) {
  const int fd = shard.udp_fd.get();
  for (int round = 0; round < kMaxRoundsPerWake; ++round) {
    const int received = recvmmsg(fd, shard.ring.rx_headers(),
                                  static_cast<unsigned>(shard.ring.slots()),
                                  MSG_DONTWAIT, nullptr);
    if (received <= 0) break;  // EAGAIN: queue drained
    shard.stats.datagrams_rx += static_cast<std::uint64_t>(received);
    const SimTime t = now();

    std::size_t staged = 0;
    for (int i = 0; i < received; ++i) {
      const std::string_view datagram =
          shard.ring.rx_view(static_cast<std::size_t>(i));
      if (datagram.size() < kMinDatagramBytes) {
        ++shard.stats.dropped_short;
        continue;
      }
      const Endpoint from =
          from_sockaddr(shard.ring.rx_source(static_cast<std::size_t>(i)));
      std::string& out = shard.ring.tx_payload(staged);
      shard.endpoint->handle_into(datagram, from, t, out);
      shard.ring.stage_tx(staged, shard.ring.rx_source(static_cast<std::size_t>(i)));
      ++staged;
    }

    std::size_t sent = 0;
    while (sent < staged) {
      const int n = sendmmsg(fd, shard.ring.tx_headers() + sent,
                             static_cast<unsigned>(staged - sent), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
          pollfd p{fd, POLLOUT, 0};
          poll(&p, 1, 50);
          continue;
        }
        // Per-datagram failure (e.g. ECONNREFUSED bounced off loopback):
        // skip the poisoned slot, keep the rest of the batch.
        ++shard.stats.send_failures;
        ++sent;
        continue;
      }
      sent += static_cast<std::size_t>(n);
      shard.stats.responses_tx += static_cast<std::uint64_t>(n);
    }

    if (config_.max_announces != 0) {
      const std::uint64_t seen = shard.endpoint->stats().announces;
      const std::uint64_t delta = seen - shard.announces_counted;
      if (delta != 0) {
        shard.announces_counted = seen;
        if (announce_total_.fetch_add(delta, std::memory_order_relaxed) +
                delta >=
            config_.max_announces) {
          request_stop();
        }
      }
    }
    if (received < static_cast<int>(shard.ring.slots())) break;
  }
}

}  // namespace btpub::netio
