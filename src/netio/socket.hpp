// socket.hpp — thin RAII layer over BSD sockets for the wire-serving
// tracker daemon and load generator. Everything is IPv4 (the study's
// datasets are), nonblocking, and errors carry errno plus the address that
// failed, so a `btpub serve` bind failure reads like
//   [btpub] error: bind udp 127.0.0.1:8800: Address already in use (errno 98)
// matching the load_or_generate warning convention.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <string>
#include <system_error>
#include <utility>

#include "net/ip.hpp"

namespace btpub::netio {

/// Owning file descriptor. Move-only; -1 means empty.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle() { reset(); }

  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void reset() noexcept;
  int release() noexcept { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

/// Throws std::system_error carrying errno with "<what> <addr>" context;
/// every socket helper funnels failures through this so the CLI can print
/// one uniform errno+address diagnostic.
[[noreturn]] void throw_errno(const std::string& what, const std::string& addr);

/// sockaddr_in <-> Endpoint conversion (host-order Endpoint, network-order
/// sockaddr).
sockaddr_in to_sockaddr(const Endpoint& endpoint) noexcept;
Endpoint from_sockaddr(const sockaddr_in& addr) noexcept;

/// Renders "a.b.c.d:port" for diagnostics.
std::string format_addr(const std::string& ip, std::uint16_t port);

/// Nonblocking UDP socket bound to ip:port with SO_REUSEPORT, so N shard
/// sockets can share one port and the kernel hashes each client's 4-tuple
/// onto a consistent shard (a client's connect handshake and its announces
/// land on the same shard's connection table). `rcvbuf_bytes`/
/// `sndbuf_bytes` request larger kernel queues (0 keeps the default);
/// failure to enlarge them is not an error, failure to bind is.
/// `port` 0 binds an ephemeral port; read it back with local_port().
FdHandle make_udp_shard_socket(const std::string& ip, std::uint16_t port,
                               int rcvbuf_bytes, int sndbuf_bytes);

/// Nonblocking UDP client socket connect()ed to ip:port: the kernel pins
/// the 4-tuple (stable SO_REUSEPORT shard on the server side) and delivers
/// async errors like ECONNREFUSED to the caller.
FdHandle make_udp_client_socket(const std::string& ip, std::uint16_t port);

/// Nonblocking TCP listener on ip:port (SO_REUSEADDR, given backlog).
FdHandle make_tcp_listener(const std::string& ip, std::uint16_t port,
                           int backlog);

/// Blocking TCP client socket connected to ip:port.
FdHandle make_tcp_client_socket(const std::string& ip, std::uint16_t port);

/// The port a socket is actually bound to (resolves ephemeral binds).
std::uint16_t local_port(int fd);

void set_nonblocking(int fd, bool nonblocking);

}  // namespace btpub::netio
