// loadgen.hpp — multi-threaded announce load generator (`btpub loadgen`).
//
// Each worker owns one connected UDP socket (or one keep-alive HTTP
// connection), performs the BEP 15 connect handshake, then drives a
// deterministic request stream: worker w's stream is a pure function of
// derive_seed(seed, tag, w), so two runs against the same server issue the
// same announces in the same order. Rate control is open-loop when `rate`
// is set (requests are scheduled on a token clock and lateness is never
// allowed to shrink the offered load — the standard coordinated-omission
// fix) and closed-loop otherwise (`window` outstanding requests).
//
// Latencies are recorded into log-bucketed histograms (~12.5% resolution,
// 8 sub-buckets per octave) and merged across workers for the report.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace btpub::netio {

/// Log-bucketed latency histogram: exact below 8 ns, then 8 sub-buckets
/// per power of two (worst-case ~12.5% relative error on percentiles).
class LatencyHistogram {
 public:
  void record(std::uint64_t ns) noexcept {
    ++counts_[bucket_of(ns)];
    ++total_;
  }

  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
  }

  std::uint64_t total() const noexcept { return total_; }

  /// The lower bound of the bucket holding the p-quantile (p in [0, 1]).
  std::uint64_t percentile_ns(double p) const noexcept {
    if (total_ == 0) return 0;
    const auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > target) return bucket_floor(i);
    }
    return bucket_floor(counts_.size() - 1);
  }

 private:
  static std::size_t bucket_of(std::uint64_t ns) noexcept {
    if (ns < 8) return static_cast<std::size_t>(ns);
    int exp = 63;
    while ((ns >> exp) == 0) --exp;  // exp = floor(log2 ns), >= 3
    const std::uint64_t sub = (ns >> (exp - 3)) & 7u;
    return 8 + static_cast<std::size_t>(exp - 3) * 8 + sub;
  }

  static std::uint64_t bucket_floor(std::size_t index) noexcept {
    if (index < 8) return index;
    const std::size_t exp = (index - 8) / 8 + 3;
    const std::uint64_t sub = (index - 8) % 8;
    return (8ull + sub) << (exp - 3);
  }

  std::array<std::uint64_t, 8 + 61 * 8> counts_{};
  std::uint64_t total_ = 0;
};

struct LoadgenConfig {
  std::string target_ip = "127.0.0.1";
  std::uint16_t udp_port = 0;
  std::size_t threads = 1;
  double duration_seconds = 2.0;
  /// Per-worker announce cap; 0 = bounded by duration only.
  std::uint64_t max_requests = 0;
  /// Open-loop offered load per worker in announces/sec; 0 = closed loop.
  double rate = 0.0;
  /// Closed-loop outstanding-request window.
  std::size_t window = 32;
  std::uint64_t seed = 42;
  /// Number of swarms in the server's world (infohashes are derived from
  /// `seed` exactly as the daemon derives them).
  std::size_t swarms = 64;
  std::uint32_t numwant = 50;
  /// Synthetic client IPs rotated per worker via the announce `ip` field,
  /// bounding the server's per-client rate-limiter state.
  std::size_t ip_pool = 256;
  /// Drive GET /announce over a keep-alive pipelined HTTP connection
  /// instead of UDP.
  bool use_http = false;
  std::uint16_t http_port = 0;
  std::size_t http_pipeline = 8;
};

struct LoadgenReport {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t errors = 0;      // BEP 15 error replies / non-200 statuses
  std::uint64_t timeouts = 0;    // overwritten or never-answered slots
  std::uint64_t reconnects = 0;  // connection-id refresh round-trips
  double elapsed_seconds = 0.0;  // slowest worker's wall time
  std::uint64_t p50_ns = 0;
  std::uint64_t p90_ns = 0;
  std::uint64_t p99_ns = 0;
  LatencyHistogram histogram;

  double throughput() const noexcept {
    return elapsed_seconds > 0.0
               ? static_cast<double>(received) / elapsed_seconds
               : 0.0;
  }
};

/// Runs `threads` workers to completion and returns the merged report.
/// Throws std::system_error when a socket cannot be created/connected.
LoadgenReport run_loadgen(const LoadgenConfig& config);

}  // namespace btpub::netio
