#include "netio/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace btpub::netio {

void FdHandle::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void throw_errno(const std::string& what, const std::string& addr) {
  throw std::system_error(errno, std::generic_category(), what + " " + addr);
}

sockaddr_in to_sockaddr(const Endpoint& endpoint) noexcept {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(endpoint.ip.value());
  addr.sin_port = htons(endpoint.port);
  return addr;
}

Endpoint from_sockaddr(const sockaddr_in& addr) noexcept {
  return Endpoint{IpAddress(ntohl(addr.sin_addr.s_addr)),
                  ntohs(addr.sin_port)};
}

std::string format_addr(const std::string& ip, std::uint16_t port) {
  return ip + ":" + std::to_string(port);
}

namespace {

sockaddr_in parse_addr(const std::string& ip, std::uint16_t port,
                       const std::string& what) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    throw_errno(what, format_addr(ip, port));
  }
  return addr;
}

}  // namespace

void set_nonblocking(int fd, bool nonblocking) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl F_GETFL on fd", std::to_string(fd));
  const int wanted = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && fcntl(fd, F_SETFL, wanted) < 0) {
    throw_errno("fcntl F_SETFL on fd", std::to_string(fd));
  }
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname on fd", std::to_string(fd));
  }
  return ntohs(addr.sin_port);
}

FdHandle make_udp_shard_socket(const std::string& ip, std::uint16_t port,
                               int rcvbuf_bytes, int sndbuf_bytes) {
  const std::string where = format_addr(ip, port);
  const sockaddr_in addr = parse_addr(ip, port, "parse udp address");
  FdHandle fd(socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0));
  if (!fd.valid()) throw_errno("socket udp", where);
  const int one = 1;
  if (setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
    throw_errno("setsockopt SO_REUSEPORT udp", where);
  }
  // Larger kernel queues absorb recvmmsg batch jitter; best effort because
  // the defaults still work, just with more drops under burst.
  if (rcvbuf_bytes > 0) {
    setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
               sizeof rcvbuf_bytes);
  }
  if (sndbuf_bytes > 0) {
    setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &sndbuf_bytes,
               sizeof sndbuf_bytes);
  }
  if (bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw_errno("bind udp", where);
  }
  return fd;
}

FdHandle make_udp_client_socket(const std::string& ip, std::uint16_t port) {
  const std::string where = format_addr(ip, port);
  const sockaddr_in addr = parse_addr(ip, port, "parse udp address");
  FdHandle fd(socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0));
  if (!fd.valid()) throw_errno("socket udp", where);
  if (connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
              sizeof addr) != 0) {
    throw_errno("connect udp", where);
  }
  return fd;
}

FdHandle make_tcp_listener(const std::string& ip, std::uint16_t port,
                           int backlog) {
  const std::string where = format_addr(ip, port);
  const sockaddr_in addr = parse_addr(ip, port, "parse tcp address");
  FdHandle fd(socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!fd.valid()) throw_errno("socket tcp", where);
  const int one = 1;
  if (setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0) {
    throw_errno("setsockopt SO_REUSEADDR tcp", where);
  }
  if (bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw_errno("bind tcp", where);
  }
  if (listen(fd.get(), backlog) != 0) throw_errno("listen tcp", where);
  return fd;
}

FdHandle make_tcp_client_socket(const std::string& ip, std::uint16_t port) {
  const std::string where = format_addr(ip, port);
  const sockaddr_in addr = parse_addr(ip, port, "parse tcp address");
  FdHandle fd(socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket tcp", where);
  const int one = 1;
  // The loadgen pipelines small GETs; Nagle would serialize them on RTT.
  setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
              sizeof addr) != 0) {
    throw_errno("connect tcp", where);
  }
  return fd;
}

}  // namespace btpub::netio
