#include "netio/event_loop.hpp"

#include <algorithm>
#include <cerrno>

namespace btpub::netio {

EventLoop::EventLoop() : epoll_fd_(epoll_create1(0)) {
  if (!epoll_fd_.valid()) throw_errno("epoll_create1", "");
}

void EventLoop::add(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl add fd", std::to_string(fd));
  }
}

void EventLoop::modify(int fd, std::uint32_t events, std::uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl mod fd", std::to_string(fd));
  }
}

void EventLoop::remove(int fd) {
  if (epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) != 0) {
    throw_errno("epoll_ctl del fd", std::to_string(fd));
  }
}

std::span<EventLoop::Ready> EventLoop::wait(std::span<Ready> out,
                                            int timeout_ms) {
  epoll_event events[64];
  const int cap = static_cast<int>(std::min<std::size_t>(out.size(), 64));
  int n;
  do {
    n = epoll_wait(epoll_fd_.get(), events, cap, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw_errno("epoll_wait on fd", std::to_string(epoll_fd_.get()));
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = {events[i].data.u64, events[i].events};
  }
  return out.first(static_cast<std::size_t>(n));
}

}  // namespace btpub::netio
