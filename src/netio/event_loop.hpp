// event_loop.hpp — a minimal epoll wrapper: register fds under integer
// tags, wait, dispatch. One loop per serving shard; no callbacks or timer
// wheel — the shard's run loop owns control flow and the loop only
// multiplexes readiness (libtorrent's udp_socket keeps the same split
// between socket readiness and protocol logic).
#pragma once

#include <sys/epoll.h>

#include <cstdint>
#include <span>

#include "netio/socket.hpp"

namespace btpub::netio {

class EventLoop {
 public:
  /// One readiness notice: the registered tag plus the EPOLL* event mask.
  struct Ready {
    std::uint64_t tag = 0;
    std::uint32_t events = 0;
  };

  EventLoop();

  void add(int fd, std::uint32_t events, std::uint64_t tag);
  void modify(int fd, std::uint32_t events, std::uint64_t tag);
  void remove(int fd);

  /// Blocks up to timeout_ms (-1 = forever) and fills `out` with ready
  /// entries; returns the filled prefix. EINTR retries internally.
  std::span<EventLoop::Ready> wait(std::span<Ready> out, int timeout_ms);

  int fd() const noexcept { return epoll_fd_.get(); }

 private:
  FdHandle epoll_fd_;
};

}  // namespace btpub::netio
