#include "netio/loadgen.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <optional>
#include <thread>
#include <vector>

#include "netio/serve.hpp"
#include "netio/socket.hpp"
#include "tracker/announce.hpp"
#include "tracker/udp.hpp"
#include "util/rng.hpp"

namespace btpub::netio {
namespace {

constexpr std::uint64_t kWorkerSeedTag = 0x6c6f6164'67656e31ULL;  // "loadgen1"

/// Slot ring for in-flight requests; transaction ids index it modulo size.
struct Pending {
  std::uint32_t tid = 0;
  std::int64_t send_ns = 0;
  bool active = false;
};

struct WorkerResult {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t errors = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t reconnects = 0;
  double elapsed = 0.0;
  LatencyHistogram hist;
  bool failed = false;
};

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// BEP 15 connect handshake over a connected socket. Retries with a 250 ms
/// reply window; discards any stray (non-connect) datagrams it drains.
std::optional<std::uint64_t> udp_connect(int fd, std::uint32_t tid,
                                         std::string& buf) {
  UdpConnectRequest request{tid};
  for (int attempt = 0; attempt < 5; ++attempt) {
    request.encode_into(buf);
    if (send(fd, buf.data(), buf.size(), 0) < 0 && errno != EAGAIN &&
        errno != EWOULDBLOCK) {
      return std::nullopt;
    }
    pollfd p{fd, POLLIN, 0};
    if (poll(&p, 1, 250) <= 0) continue;
    char in[512];
    for (;;) {
      const ssize_t n = recv(fd, in, sizeof in, MSG_DONTWAIT);
      if (n < 0) break;
      const auto response =
          UdpConnectResponse::decode({in, static_cast<std::size_t>(n)});
      if (response && response->transaction_id == tid) {
        return response->connection_id;
      }
    }
  }
  return std::nullopt;
}

WorkerResult udp_worker(const LoadgenConfig& cfg, std::size_t worker,
                        const std::vector<Sha1Digest>& infohashes) {
  WorkerResult r;
  FdHandle fd = make_udp_client_socket(cfg.target_ip, cfg.udp_port);
  Rng rng(derive_seed(cfg.seed, kWorkerSeedTag, worker));
  std::string buf;

  // Control-plane transaction ids live in the top range so they can never
  // collide with announce sequence numbers within a run.
  std::uint32_t connect_tid =
      0xC0000000u | static_cast<std::uint32_t>(worker << 8);
  auto connection = udp_connect(fd.get(), connect_tid, buf);
  if (!connection) {
    r.failed = true;
    return r;
  }

  UdpAnnounceRequest req;
  req.connection_id = *connection;
  req.left = 0;
  req.event = 0;
  req.key = static_cast<std::uint32_t>(rng.next());
  req.num_want = cfg.numwant;
  req.port = 6881;
  const std::uint64_t id_seed = derive_seed(cfg.seed, kWorkerSeedTag, worker, 2);
  for (std::size_t i = 0; i < req.peer_id.size(); ++i) {
    req.peer_id[i] = static_cast<std::uint8_t>(id_seed >> ((i % 8) * 8));
  }

  const std::size_t nslots = std::max<std::size_t>(cfg.window * 2, 1024);
  std::vector<Pending> slots(nslots);
  std::size_t outstanding = 0;
  std::uint32_t seq = 0;

  const std::int64_t t0 = steady_ns();
  const std::int64_t deadline =
      t0 + static_cast<std::int64_t>(cfg.duration_seconds * 1e9);
  const double interval_ns = cfg.rate > 0.0 ? 1e9 / cfg.rate : 0.0;
  double next_send = static_cast<double>(t0);
  char in[2048];

  const auto quota_done = [&] {
    return cfg.max_requests != 0 && r.sent >= cfg.max_requests;
  };

  const auto send_one = [&] {
    req.transaction_id = seq;
    req.infohash = infohashes[rng.next() % infohashes.size()];
    req.ip = 0x0B000000u + (static_cast<std::uint32_t>(worker) << 16) +
             static_cast<std::uint32_t>(seq % cfg.ip_pool);
    req.encode_into(buf);
    while (send(fd.get(), buf.data(), buf.size(), 0) < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
        pollfd p{fd.get(), POLLOUT, 0};
        poll(&p, 1, 50);
        continue;
      }
      break;  // counted as sent; an unanswered slot ages into a timeout
    }
    Pending& slot = slots[seq % nslots];
    if (slot.active) {  // lapped an unanswered request
      ++r.timeouts;
      --outstanding;
    }
    slot = Pending{seq, steady_ns(), true};
    ++outstanding;
    ++r.sent;
    ++seq;
  };

  const auto handle_datagram = [&](std::string_view view) {
    const auto action = udp_response_action(view);
    const auto tid = udp_response_transaction_id(view);
    if (!action || !tid) return;
    if (*action == UdpAction::Error) {
      ++r.errors;
      const auto err = UdpErrorResponse::decode(view);
      if (err && err->message == "invalid connection id") {
        connect_tid += 1;
        if (const auto fresh = udp_connect(fd.get(), connect_tid, buf)) {
          req.connection_id = *fresh;
          ++r.reconnects;
        }
      }
    }
    Pending& slot = slots[*tid % nslots];
    if (slot.active && slot.tid == *tid) {
      slot.active = false;
      --outstanding;
      ++r.received;
      if (*action == UdpAction::Announce) {
        r.hist.record(static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, steady_ns() - slot.send_ns)));
      }
    }
  };

  for (;;) {
    const std::int64_t now = steady_ns();
    if (now >= deadline) break;
    if (quota_done() && outstanding == 0) break;

    if (cfg.rate > 0.0) {
      // Open loop: the token clock never slips, so lateness shows up as
      // queueing delay in the histogram instead of reduced offered load.
      int burst = 0;
      while (next_send <= static_cast<double>(now) && burst < 128 &&
             !quota_done()) {
        send_one();
        next_send += interval_ns;
        ++burst;
      }
    } else {
      while (outstanding < cfg.window && !quota_done()) send_one();
    }

    int timeout_ms;
    if (cfg.rate > 0.0) {
      const double wait_ns = next_send - static_cast<double>(steady_ns());
      timeout_ms = static_cast<int>(
          std::clamp(wait_ns / 1e6, 0.0, 10.0));
    } else {
      timeout_ms = outstanding > 0 ? 100 : 0;
    }
    pollfd p{fd.get(), POLLIN, 0};
    const int pr = poll(&p, 1, timeout_ms);
    if (pr > 0) {
      for (;;) {
        const ssize_t n = recv(fd.get(), in, sizeof in, MSG_DONTWAIT);
        if (n < 0) break;
        handle_datagram({in, static_cast<std::size_t>(n)});
      }
    } else if (pr == 0 && cfg.rate == 0.0 && outstanding >= cfg.window) {
      // Full window and silence: age out requests older than a second so a
      // lossy path cannot wedge the worker.
      for (Pending& slot : slots) {
        if (slot.active && steady_ns() - slot.send_ns > 1'000'000'000) {
          slot.active = false;
          --outstanding;
          ++r.timeouts;
        }
      }
    }
  }

  // Grace drain for responses already in flight.
  const std::int64_t drain_until = steady_ns() + 100'000'000;
  while (outstanding > 0 && steady_ns() < drain_until) {
    pollfd p{fd.get(), POLLIN, 0};
    if (poll(&p, 1, 20) <= 0) continue;
    for (;;) {
      const ssize_t n = recv(fd.get(), in, sizeof in, MSG_DONTWAIT);
      if (n < 0) break;
      handle_datagram({in, static_cast<std::size_t>(n)});
    }
  }
  r.timeouts += outstanding;
  r.elapsed = static_cast<double>(steady_ns() - t0) / 1e9;
  return r;
}

WorkerResult http_worker(const LoadgenConfig& cfg, std::size_t worker,
                         const std::vector<Sha1Digest>& infohashes) {
  WorkerResult r;
  FdHandle fd = make_tcp_client_socket(cfg.target_ip, cfg.http_port);
  Rng rng(derive_seed(cfg.seed, kWorkerSeedTag, worker, 3));

  std::string out;
  std::string rx;
  std::deque<std::int64_t> send_times;
  char in[8192];

  const std::int64_t t0 = steady_ns();
  const std::int64_t deadline =
      t0 + static_cast<std::int64_t>(cfg.duration_seconds * 1e9);
  const auto quota_done = [&] {
    return cfg.max_requests != 0 && r.sent >= cfg.max_requests;
  };

  while (steady_ns() < deadline && !(quota_done() && send_times.empty())) {
    out.clear();
    while (send_times.size() < cfg.http_pipeline && !quota_done()) {
      AnnounceRequest announce;
      announce.infohash = infohashes[rng.next() % infohashes.size()];
      announce.client = Endpoint{
          IpAddress(0x0B000000u + (static_cast<std::uint32_t>(worker) << 16) +
                    static_cast<std::uint32_t>(r.sent % cfg.ip_pool)),
          6881};
      announce.numwant = cfg.numwant;
      announce.now = 0;  // daemon clock
      out += "GET " + to_query_string(announce) +
             " HTTP/1.1\r\nHost: loadgen\r\n\r\n";
      send_times.push_back(steady_ns());
      ++r.sent;
    }
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = write(fd.get(), out.data() + off, out.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        r.timeouts += send_times.size();
        r.elapsed = static_cast<double>(steady_ns() - t0) / 1e9;
        return r;  // server went away
      }
      off += static_cast<std::size_t>(n);
    }

    // Read until every pipelined response of this batch is parsed.
    while (!send_times.empty() && steady_ns() < deadline) {
      const auto head_end = rx.find("\r\n\r\n");
      if (head_end == std::string::npos) {
        const ssize_t n = read(fd.get(), in, sizeof in);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          r.timeouts += send_times.size();
          r.elapsed = static_cast<double>(steady_ns() - t0) / 1e9;
          return r;
        }
        rx.append(in, static_cast<std::size_t>(n));
        continue;
      }
      const std::string_view head(rx.data(), head_end);
      std::size_t content_length = 0;
      if (const auto pos = head.find("Content-Length:");
          pos != std::string_view::npos) {
        content_length = static_cast<std::size_t>(
            std::strtoul(rx.c_str() + pos + 15, nullptr, 10));
      }
      const std::size_t total = head_end + 4 + content_length;
      if (rx.size() < total) {
        const ssize_t n = read(fd.get(), in, sizeof in);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) continue;
          r.timeouts += send_times.size();
          r.elapsed = static_cast<double>(steady_ns() - t0) / 1e9;
          return r;
        }
        rx.append(in, static_cast<std::size_t>(n));
        continue;
      }
      const bool ok = head.size() >= 12 && head.substr(9, 3) == "200";
      if (!ok) ++r.errors;
      ++r.received;
      r.hist.record(static_cast<std::uint64_t>(
          std::max<std::int64_t>(0, steady_ns() - send_times.front())));
      send_times.pop_front();
      rx.erase(0, total);
    }
  }
  r.timeouts += send_times.size();
  r.elapsed = static_cast<double>(steady_ns() - t0) / 1e9;
  return r;
}

}  // namespace

LoadgenReport run_loadgen(const LoadgenConfig& config) {
  std::vector<Sha1Digest> infohashes;
  infohashes.reserve(config.swarms);
  for (std::size_t s = 0; s < config.swarms; ++s) {
    infohashes.push_back(serve_swarm_infohash(config.seed, s));
  }

  std::vector<WorkerResult> results(config.threads);
  std::vector<std::thread> threads;
  threads.reserve(config.threads);
  for (std::size_t w = 0; w < config.threads; ++w) {
    threads.emplace_back([&, w] {
      try {
        results[w] = config.use_http ? http_worker(config, w, infohashes)
                                     : udp_worker(config, w, infohashes);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[btpub] loadgen worker %zu died: %s\n", w,
                     e.what());
        results[w].failed = true;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LoadgenReport report;
  for (const WorkerResult& r : results) {
    report.sent += r.sent;
    report.received += r.received;
    report.errors += r.errors;
    report.timeouts += r.timeouts;
    report.reconnects += r.reconnects;
    if (r.failed) ++report.errors;
    report.elapsed_seconds = std::max(report.elapsed_seconds, r.elapsed);
    report.histogram.merge(r.hist);
  }
  report.p50_ns = report.histogram.percentile_ns(0.50);
  report.p90_ns = report.histogram.percentile_ns(0.90);
  report.p99_ns = report.histogram.percentile_ns(0.99);
  return report;
}

}  // namespace btpub::netio
