// serve.hpp — the wire-serving tracker daemon (`btpub serve`).
//
// Architecture (DESIGN.md §4.7): N serving shards, one thread each. Every
// shard owns a nonblocking UDP socket bound to the *same* port under
// SO_REUSEPORT — the kernel hashes each client's 4-tuple onto one shard
// for the life of that client socket, which is what makes per-shard
// connection-id tables correct. Each shard also owns a full *replica* of
// the tracker and its swarms, so the packet path shares no mutable state
// across threads at all: scaling is bounded by the NIC/loopback, not by
// locks. Replicas answer byte-identically because peer sampling is a pure
// function of (sample seed, infohash, query time, client IP) and every
// replica is built from the same seed — a client cannot observe which
// shard served it.
//
// Datagrams move in batches: recvmmsg into a caller-owned DatagramRing,
// per-packet dispatch through UdpTrackerEndpoint::handle_into (the
// announce_into zero-allocation scratch path), sendmmsg out of the same
// ring. Steady state performs zero allocations per packet.
//
// Shard 0 additionally hosts the HTTP/1.1 announce+scrape listener and the
// optional duration timer. Shutdown is graceful on SIGINT/SIGTERM (the CLI
// writes the daemon's stop eventfd, which every shard polls): in-flight
// batches finish, staged responses flush, sockets close.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "netio/socket.hpp"
#include "swarm/swarm.hpp"
#include "tracker/tracker.hpp"
#include "util/time.hpp"

namespace btpub::netio {

struct ServeConfig {
  std::string bind_ip = "127.0.0.1";
  std::uint16_t udp_port = 0;   // 0 = ephemeral; read back via udp_port()
  std::uint16_t http_port = 0;  // 0 = ephemeral
  bool enable_http = true;
  /// UDP serving threads (SO_REUSEPORT shards). 0 = hardware concurrency.
  std::size_t shards = 1;

  /// The served world: `swarms` deterministic synthetic swarms of
  /// `peers_per_swarm` sessions each, derived from `seed` (the load
  /// generator derives the same infohashes from the same seed).
  std::size_t swarms = 64;
  std::size_t peers_per_swarm = 2000;
  std::uint64_t seed = 42;

  /// Tracker-enforced per-(client IP, infohash) announce gap in seconds.
  /// 0 (the default for load serving) disables rate rejection; the
  /// simulator's 10–15 minute behaviour is `--query-gap 600`.
  SimDuration query_gap = 0;

  /// Bounded runs for CI: stop after this much wall time (0 = run until
  /// stop()/signal) or after this many announce datagrams across all
  /// shards (0 = unbounded).
  double duration_seconds = 0.0;
  std::uint64_t max_announces = 0;

  /// Freezes the serving clock at a fixed simulated time. Replies become
  /// deterministic functions of the request — the golden-bytes tests and
  /// any load run that wants reproducible peer samples rely on this.
  std::optional<SimTime> fixed_time;

  /// Kernel buffer request per UDP shard socket (best effort).
  int so_rcvbuf = 1 << 21;
  int so_sndbuf = 1 << 21;
};

/// Aggregate serving counters (summed over shards by stats()).
struct ServeStats {
  std::uint64_t datagrams_rx = 0;
  std::uint64_t responses_tx = 0;
  std::uint64_t dropped_short = 0;   // < 16 bytes: ignored per BEP 15
  std::uint64_t send_failures = 0;
  std::uint64_t connects = 0;
  std::uint64_t announces = 0;
  std::uint64_t announce_failures = 0;
  std::uint64_t scrapes = 0;
  std::uint64_t malformed = 0;
  std::uint64_t http_accepted = 0;
  std::uint64_t http_requests = 0;
  std::uint64_t http_announces = 0;
  std::uint64_t http_bad_requests = 0;
};

/// The infohash of the `index`-th served swarm for `seed` — shared between
/// the daemon's world builder and the load generator's request streams.
Sha1Digest serve_swarm_infohash(std::uint64_t seed, std::size_t index);

/// Builds the deterministic serving world: every peer arrives within the
/// first simulated hour and stays for a year, so any serve-time clock
/// value past hour 1 sees fully populated swarms.
std::vector<Swarm> build_serve_world(std::uint64_t seed, std::size_t swarms,
                                     std::size_t peers_per_swarm);

class ServeDaemon {
 public:
  /// Binds every socket (throws std::system_error with errno + address on
  /// failure) and builds the per-shard world replicas. No threads yet.
  explicit ServeDaemon(ServeConfig config);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Ports actually bound (resolves ephemeral requests).
  std::uint16_t udp_port() const noexcept { return udp_port_; }
  std::uint16_t http_port() const noexcept { return http_port_; }
  std::size_t shard_count() const noexcept { return shard_threads_; }

  /// Spawns the shard threads.
  void start();
  /// Requests a graceful stop. Async-signal-safe (a single write to an
  /// eventfd); callable from any thread or a signal handler.
  void request_stop() noexcept;
  /// Joins every shard; returns once all sockets are closed.
  void join();
  /// start() + join().
  void run();

  /// Consistent only after join() (or before start()).
  ServeStats stats() const;

  /// The serving clock: fixed_time when configured, otherwise hour 1 of
  /// simulated time plus wall seconds since start().
  SimTime now() const noexcept;

 private:
  struct Shard;

  void shard_main(std::size_t index);
  void drain_udp(Shard& shard);

  ServeConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  FdHandle stop_fd_;   // eventfd; never read, so level-triggered wake-all
  FdHandle timer_fd_;  // duration timer (shard 0), when duration > 0
  std::uint16_t udp_port_ = 0;
  std::uint16_t http_port_ = 0;
  std::size_t shard_threads_ = 0;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> announce_total_{0};
  std::int64_t start_ns_ = 0;
};

}  // namespace btpub::netio
