#include "netio/http.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "tracker/announce.hpp"
#include "util/strings.hpp"

namespace btpub::netio {
namespace {

/// Case-insensitive "Connection: close" scan over the raw header block.
bool wants_close(std::string_view headers) {
  for (const std::string_view line : split_views(headers, '\n')) {
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string_view key = trim(line.substr(0, colon));
    if (key.size() != 10 || to_lower(key) != "connection") continue;
    if (to_lower(trim(line.substr(colon + 1))) == "close") return true;
  }
  return false;
}

}  // namespace

HttpAnnounceServer::HttpAnnounceServer(Tracker& tracker, FdHandle listener,
                                       std::function<SimTime()> now_fn)
    : tracker_(&tracker),
      listener_(std::move(listener)),
      now_fn_(std::move(now_fn)) {}

HttpAnnounceServer::~HttpAnnounceServer() = default;

std::uint16_t HttpAnnounceServer::port() const {
  return local_port(listener_.get());
}

void HttpAnnounceServer::register_with(EventLoop& loop) {
  loop.add(listener_.get(), EPOLLIN, kListenerTag);
}

bool HttpAnnounceServer::owns(std::uint64_t tag) const {
  if (tag == kListenerTag) return true;
  return conns_.contains(reinterpret_cast<Conn*>(tag));
}

void HttpAnnounceServer::on_event(EventLoop& loop, std::uint64_t tag,
                                  std::uint32_t events) {
  if (tag == kListenerTag) {
    accept_ready(loop);
    return;
  }
  conn_event(loop, reinterpret_cast<Conn*>(tag), events);
}

void HttpAnnounceServer::accept_ready(EventLoop& loop) {
  for (;;) {
    const int fd = accept4(listener_.get(), nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure (EMFILE etc.): keep serving
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = FdHandle(fd);
    Conn* raw = conn.get();
    conns_.emplace(raw, std::move(conn));
    ++stats_.accepted;
    loop.add(fd, EPOLLIN, reinterpret_cast<std::uint64_t>(raw));
  }
}

void HttpAnnounceServer::conn_event(EventLoop& loop, Conn* conn,
                                    std::uint32_t events) {
  const auto it = conns_.find(conn);
  if (it == conns_.end()) return;  // already closed this round
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(loop, conn);
    return;
  }
  if (events & EPOLLIN) {
    char buf[4096];
    bool peer_closed = false;
    for (;;) {
      const ssize_t n = read(conn->fd.get(), buf, sizeof buf);
      if (n > 0) {
        conn->rx.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(loop, conn);
      return;
    }
    const bool keep = process_buffer(conn);
    if (!flush(conn) || !keep || peer_closed) {
      close_conn(loop, conn);
      return;
    }
    if (conn->close_after && !conn->want_write) {
      close_conn(loop, conn);
      return;
    }
  }
  if (events & EPOLLOUT) {
    if (!flush(conn)) {
      close_conn(loop, conn);
      return;
    }
    if (!conn->want_write && conn->close_after) {
      close_conn(loop, conn);
      return;
    }
  }
  update_interest(loop, conn);
}

bool HttpAnnounceServer::process_buffer(Conn* conn) {
  for (;;) {
    const auto head_end = conn->rx.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (conn->rx.size() > kMaxHeaderBytes) {
        ++stats_.oversized;
        respond(conn, 431, "Request Header Fields Too Large", "", false);
        return false;
      }
      return true;  // need more bytes
    }
    if (head_end > kMaxHeaderBytes) {
      ++stats_.oversized;
      respond(conn, 431, "Request Header Fields Too Large", "", false);
      return false;
    }
    const std::string_view head(conn->rx.data(), head_end);
    const auto line_end = head.find("\r\n");
    const std::string_view request_line =
        head.substr(0, line_end == std::string_view::npos ? head.size()
                                                          : line_end);
    const std::string_view headers =
        line_end == std::string_view::npos ? std::string_view{}
                                           : head.substr(line_end + 2);

    // METHOD SP TARGET SP VERSION — anything else is unframeable.
    const auto sp1 = request_line.find(' ');
    const auto sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : request_line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos ||
        request_line.find(' ', sp2 + 1) != std::string_view::npos) {
      ++stats_.bad_requests;
      respond(conn, 400, "Bad Request", "", false);
      return false;
    }
    const std::string_view method = request_line.substr(0, sp1);
    const std::string_view target =
        request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = request_line.substr(sp2 + 1);
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
      ++stats_.bad_requests;
      respond(conn, 505, "HTTP Version Not Supported", "", false);
      return false;
    }
    const bool keep_alive = version == "HTTP/1.1" && !wants_close(headers);

    if (method != "GET") {
      ++stats_.bad_requests;
      respond(conn, 405, "Method Not Allowed", "", keep_alive);
    } else if (starts_with(target, "/announce")) {
      ++stats_.requests;
      ++stats_.announces;
      announce_body(target);
      respond(conn, 200, "OK", body_, keep_alive);
    } else if (starts_with(target, "/scrape")) {
      ++stats_.requests;
      if (scrape_body(target)) {
        ++stats_.scrapes;
        respond(conn, 200, "OK", body_, keep_alive);
      } else {
        ++stats_.bad_requests;
        respond(conn, 400, "Bad Request", "", keep_alive);
      }
    } else {
      ++stats_.requests;
      respond(conn, 404, "Not Found", "", keep_alive);
    }

    conn->rx.erase(0, head_end + 4);
    if (!keep_alive) {
      conn->close_after = true;
      return true;  // flush staged responses, then close
    }
  }
}

void HttpAnnounceServer::announce_body(std::string_view target) {
  // Identical decision path to Tracker::handle_get, via the same view
  // parser and announce_into — the body bytes are the protocol contract.
  const auto request = parse_query_string(target);
  if (!request) {
    reply_.ok = false;
    reply_.failure_reason = "malformed request";
    encode_announce_reply_into(reply_, body_);
    return;
  }
  AnnounceRequest fixed = *request;
  // The `t` parameter carries simulated time in-band (the crawler's
  // convention); requests without it get the daemon's clock.
  if (fixed.now == 0) fixed.now = now_fn_();
  tracker_->announce_into(fixed, reply_, scratch_);
  encode_announce_reply_into(reply_, body_);
}

bool HttpAnnounceServer::scrape_body(std::string_view target) {
  const auto qmark = target.find('?');
  if (qmark == std::string_view::npos) return false;
  Sha1Digest infohash{};
  bool have_hash = false;
  for (const std::string_view pair :
       split_views(target.substr(qmark + 1), '&')) {
    const auto eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    if (pair.substr(0, eq) != "info_hash") continue;
    const auto n = url_unescape_into(
        pair.substr(eq + 1), reinterpret_cast<char*>(infohash.bytes.data()),
        infohash.bytes.size());
    if (!n || *n != infohash.bytes.size()) return false;
    have_hash = true;
  }
  if (!have_hash) return false;
  body_ = tracker_->scrape(infohash, now_fn_());
  return true;
}

void HttpAnnounceServer::respond(Conn* conn, int status,
                                 std::string_view reason,
                                 std::string_view body, bool keep_alive) {
  char head[160];
  const int n = std::snprintf(
      head, sizeof head,
      "HTTP/1.1 %d %.*s\r\n"
      "Content-Type: text/plain\r\n"
      "Content-Length: %zu\r\n"
      "Connection: %s\r\n"
      "\r\n",
      status, static_cast<int>(reason.size()), reason.data(), body.size(),
      keep_alive ? "keep-alive" : "close");
  conn->tx.append(head, static_cast<std::size_t>(n));
  conn->tx.append(body);
}

bool HttpAnnounceServer::flush(Conn* conn) {
  while (conn->tx_off < conn->tx.size()) {
    const ssize_t n =
        write(conn->fd.get(), conn->tx.data() + conn->tx_off,
              conn->tx.size() - conn->tx_off);
    if (n > 0) {
      conn->tx_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      conn->want_write = true;
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer went away mid-response
  }
  conn->tx.clear();
  conn->tx_off = 0;
  conn->want_write = false;
  return true;
}

void HttpAnnounceServer::update_interest(EventLoop& loop, Conn* conn) {
  if (!conns_.contains(conn)) return;
  loop.modify(conn->fd.get(),
              EPOLLIN | (conn->want_write ? EPOLLOUT : 0u),
              reinterpret_cast<std::uint64_t>(conn));
}

void HttpAnnounceServer::close_conn(EventLoop& loop, Conn* conn) {
  const auto it = conns_.find(conn);
  if (it == conns_.end()) return;
  loop.remove(conn->fd.get());
  conns_.erase(it);
  ++stats_.closed;
}

void HttpAnnounceServer::close_all(EventLoop& loop) {
  for (auto& [raw, conn] : conns_) {
    flush(conn.get());  // best-effort drain of staged responses
    loop.remove(conn->fd.get());
    ++stats_.closed;
  }
  conns_.clear();
  if (listener_.valid()) {
    loop.remove(listener_.get());
    listener_.reset();
  }
}

}  // namespace btpub::netio
