#include "torrent/bitfield.hpp"

#include <bit>
#include <stdexcept>

namespace btpub {

Bitfield::Bitfield(std::size_t n_pieces)
    : n_pieces_(n_pieces), bytes_((n_pieces + 7) / 8, 0) {}

bool Bitfield::get(std::size_t piece) const {
  if (piece >= n_pieces_) throw std::out_of_range("Bitfield::get");
  return (bytes_[piece / 8] >> (7 - piece % 8)) & 1;
}

void Bitfield::set(std::size_t piece, bool value) {
  if (piece >= n_pieces_) throw std::out_of_range("Bitfield::set");
  const std::uint8_t mask = static_cast<std::uint8_t>(1u << (7 - piece % 8));
  if (value) {
    bytes_[piece / 8] |= mask;
  } else {
    bytes_[piece / 8] &= static_cast<std::uint8_t>(~mask);
  }
}

std::size_t Bitfield::count() const noexcept {
  std::size_t total = 0;
  for (std::uint8_t b : bytes_) total += static_cast<std::size_t>(std::popcount(b));
  return total;
}

bool Bitfield::complete() const noexcept {
  return n_pieces_ > 0 && count() == n_pieces_;
}

double Bitfield::fraction() const noexcept {
  if (n_pieces_ == 0) return 0.0;
  return static_cast<double>(count()) / static_cast<double>(n_pieces_);
}

void Bitfield::set_prefix(std::size_t k) {
  if (k > n_pieces_) k = n_pieces_;
  for (std::size_t i = 0; i < k; ++i) set(i, true);
}

std::string Bitfield::to_bytes() const {
  return std::string(bytes_.begin(), bytes_.end());
}

Bitfield Bitfield::from_bytes(std::string_view bytes, std::size_t n_pieces) {
  const std::size_t expected = (n_pieces + 7) / 8;
  if (bytes.size() != expected) {
    throw std::invalid_argument("Bitfield: wrong byte length");
  }
  Bitfield field(n_pieces);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    field.bytes_[i] = static_cast<std::uint8_t>(bytes[i]);
  }
  // Spare bits beyond the last piece must be zero (protocol requirement).
  const std::size_t spare = expected * 8 - n_pieces;
  if (spare > 0 && expected > 0) {
    const std::uint8_t spare_mask =
        static_cast<std::uint8_t>((1u << spare) - 1);
    if ((field.bytes_.back() & spare_mask) != 0) {
      throw std::invalid_argument("Bitfield: nonzero spare bits");
    }
  }
  return field;
}

}  // namespace btpub
