// magnet.hpp — magnet URIs (BEP 9 metadata links).
//
// By 2010 the portals had started offering magnet links next to .torrent
// downloads; a measurement apparatus has to parse both. A magnet link
// carries the infohash (xt=urn:btih:<40 hex>), a display name (dn=),
// tracker URLs (tr=) and direct peer hints (x.pe=<ip>:<port>, BEP 9) —
// the trackerless entry points a DHT client bootstraps from.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha1.hpp"
#include "net/ip.hpp"

namespace btpub {

struct MagnetLink {
  Sha1Digest infohash{};
  std::string display_name;           // optional
  std::vector<std::string> trackers;  // optional
  std::vector<Endpoint> peers;        // optional x.pe peer hints

  /// Renders "magnet:?xt=urn:btih:<hex>&dn=...&tr=...&x.pe=...".
  std::string to_uri() const;

  /// Parses a magnet URI; nullopt when the scheme or the infohash is
  /// missing/malformed, or an x.pe hint is not a valid <ip>:<port>.
  /// Unknown parameters are ignored.
  static std::optional<MagnetLink> parse(std::string_view uri);
};

}  // namespace btpub
