#include "torrent/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace btpub {
namespace {

constexpr std::string_view kProtocol = "BitTorrent protocol";

void append_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

std::uint32_t read_u32(std::string_view bytes, std::size_t pos) {
  const auto b = [&](std::size_t k) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + k]));
  };
  return (b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3);
}

}  // namespace

std::string Handshake::encode() const {
  std::string out;
  out.reserve(68);
  out.push_back(static_cast<char>(kProtocol.size()));
  out.append(kProtocol);
  out.append(8, '\0');  // reserved bits
  out.append(reinterpret_cast<const char*>(infohash.bytes.data()),
             infohash.bytes.size());
  out.append(reinterpret_cast<const char*>(peer_id.data()), peer_id.size());
  return out;
}

std::optional<Handshake> Handshake::decode(std::string_view bytes) {
  if (bytes.size() != 68) return std::nullopt;
  if (static_cast<unsigned char>(bytes[0]) != kProtocol.size()) return std::nullopt;
  if (bytes.substr(1, kProtocol.size()) != kProtocol) return std::nullopt;
  Handshake h;
  std::memcpy(h.infohash.bytes.data(), bytes.data() + 28, 20);
  std::memcpy(h.peer_id.data(), bytes.data() + 48, 20);
  return h;
}

std::array<std::uint8_t, 20> Handshake::make_peer_id(std::uint64_t seed) {
  std::array<std::uint8_t, 20> id{};
  constexpr std::string_view prefix = "-BP1000-";
  std::memcpy(id.data(), prefix.data(), prefix.size());
  // Fill the remaining 12 bytes from a SplitMix-style expansion of the seed.
  std::uint64_t x = seed;
  for (std::size_t i = prefix.size(); i < id.size(); ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    id[i] = static_cast<std::uint8_t>((z ^ (z >> 31)) & 0xff);
  }
  return id;
}

std::string encode_bitfield_message(const Bitfield& field) {
  const std::string body = field.to_bytes();
  std::string out;
  append_u32(out, static_cast<std::uint32_t>(1 + body.size()));
  out.push_back(static_cast<char>(WireMessageType::Bitfield));
  out += body;
  return out;
}

std::string encode_have_message(std::uint32_t piece) {
  std::string out;
  append_u32(out, 5);
  out.push_back(static_cast<char>(WireMessageType::Have));
  append_u32(out, piece);
  return out;
}

std::string encode_state_message(WireMessageType type) {
  const auto id = static_cast<unsigned char>(type);
  if (id > static_cast<unsigned char>(WireMessageType::NotInterested)) {
    throw std::invalid_argument("wire: not a state message");
  }
  std::string out;
  append_u32(out, 1);
  out.push_back(static_cast<char>(id));
  return out;
}

std::string encode_keepalive() {
  std::string out;
  append_u32(out, 0);
  return out;
}

namespace {

std::string encode_block_body(WireMessageType type, const BlockRequest& r) {
  std::string out;
  append_u32(out, 13);
  out.push_back(static_cast<char>(type));
  append_u32(out, r.piece);
  append_u32(out, r.begin);
  append_u32(out, r.length);
  return out;
}

}  // namespace

std::string encode_request_message(const BlockRequest& request) {
  return encode_block_body(WireMessageType::Request, request);
}

std::string encode_cancel_message(const BlockRequest& request) {
  return encode_block_body(WireMessageType::Cancel, request);
}

BlockRequest parse_block_request(std::string_view payload) {
  if (payload.size() != 12) {
    throw std::invalid_argument("wire: bad request/cancel body");
  }
  BlockRequest r;
  r.piece = read_u32(payload, 0);
  r.begin = read_u32(payload, 4);
  r.length = read_u32(payload, 8);
  return r;
}

std::string encode_piece_message(std::uint32_t piece, std::uint32_t begin,
                                 std::string_view data) {
  std::string out;
  append_u32(out, static_cast<std::uint32_t>(9 + data.size()));
  out.push_back(static_cast<char>(WireMessageType::Piece));
  append_u32(out, piece);
  append_u32(out, begin);
  out += data;
  return out;
}

PieceBlock parse_piece_block(std::string_view payload) {
  if (payload.size() < 8) throw std::invalid_argument("wire: bad piece body");
  PieceBlock block;
  block.piece = read_u32(payload, 0);
  block.begin = read_u32(payload, 4);
  block.data = std::string(payload.substr(8));
  return block;
}

std::string encode_port_message(std::uint16_t port) {
  std::string out;
  append_u32(out, 3);
  out.push_back(static_cast<char>(WireMessageType::Port));
  out.push_back(static_cast<char>((port >> 8) & 0xff));
  out.push_back(static_cast<char>(port & 0xff));
  return out;
}

std::uint16_t parse_port_message(std::string_view payload) {
  if (payload.size() != 2) throw std::invalid_argument("wire: bad port body");
  return static_cast<std::uint16_t>(
      (static_cast<unsigned char>(payload[0]) << 8) |
      static_cast<unsigned char>(payload[1]));
}

std::optional<WireMessage> decode_message(std::string_view bytes, std::size_t& pos) {
  if (pos + 4 > bytes.size()) return std::nullopt;
  const std::uint32_t length = read_u32(bytes, pos);
  if (length == 0) {  // keep-alive
    pos += 4;
    WireMessage msg;
    msg.type = WireMessageType::KeepAlive;
    return msg;
  }
  if (pos + 4 + length > bytes.size()) return std::nullopt;
  const auto id = static_cast<unsigned char>(bytes[pos + 4]);
  if (id > static_cast<unsigned char>(WireMessageType::Port)) {
    throw std::invalid_argument("wire: unknown message id " + std::to_string(id));
  }
  WireMessage msg;
  msg.type = static_cast<WireMessageType>(id);
  msg.payload = std::string(bytes.substr(pos + 5, length - 1));
  pos += 4 + length;
  return msg;
}

}  // namespace btpub
