#include "torrent/magnet.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace btpub {

std::string MagnetLink::to_uri() const {
  std::string uri = "magnet:?xt=urn:btih:" + infohash.hex();
  if (!display_name.empty()) uri += "&dn=" + url_escape(display_name);
  for (const std::string& tracker : trackers) {
    uri += "&tr=" + url_escape(tracker);
  }
  for (const Endpoint& peer : peers) {
    uri += "&x.pe=" + url_escape(peer.to_string());
  }
  return uri;
}

namespace {

std::optional<Endpoint> parse_peer_hint(std::string_view text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return std::nullopt;
  }
  const auto ip = IpAddress::parse(text.substr(0, colon));
  if (!ip) return std::nullopt;
  std::uint32_t port = 0;
  for (const char c : text.substr(colon + 1)) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 0xffff) return std::nullopt;
  }
  if (port == 0) return std::nullopt;
  return Endpoint{*ip, static_cast<std::uint16_t>(port)};
}

}  // namespace

std::optional<MagnetLink> MagnetLink::parse(std::string_view uri) {
  static constexpr std::string_view kScheme = "magnet:?";
  if (!starts_with(uri, kScheme)) return std::nullopt;
  MagnetLink link;
  bool have_hash = false;
  for (const std::string_view pair : split_views(uri.substr(kScheme.size()), '&')) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = pair.substr(0, eq);
    const std::string_view raw = pair.substr(eq + 1);
    try {
      if (key == "xt") {
        static constexpr std::string_view kUrn = "urn:btih:";
        if (!starts_with(raw, kUrn)) return std::nullopt;
        const std::string_view hex = raw.substr(kUrn.size());
        if (hex.size() != 40) return std::nullopt;
        link.infohash = Sha1Digest::from_hex(hex);
        // from_hex yields the zero digest on bad input; reject unless the
        // text really was forty zeros.
        if (link.infohash == Sha1Digest{} && hex != std::string(40, '0')) {
          return std::nullopt;
        }
        have_hash = true;
      } else if (key == "dn") {
        link.display_name = url_unescape(raw);
      } else if (key == "tr") {
        link.trackers.push_back(url_unescape(raw));
      } else if (key == "x.pe") {
        const auto peer = parse_peer_hint(url_unescape(raw));
        if (!peer) return std::nullopt;
        link.peers.push_back(*peer);
      }
      // Other parameters (ws=, xl=, ...) are ignored.
    } catch (const std::invalid_argument&) {
      return std::nullopt;
    }
  }
  if (!have_hash) return std::nullopt;
  return link;
}

}  // namespace btpub
