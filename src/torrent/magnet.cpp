#include "torrent/magnet.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace btpub {

std::string MagnetLink::to_uri() const {
  std::string uri = "magnet:?xt=urn:btih:" + infohash.hex();
  if (!display_name.empty()) uri += "&dn=" + url_escape(display_name);
  for (const std::string& tracker : trackers) {
    uri += "&tr=" + url_escape(tracker);
  }
  return uri;
}

std::optional<MagnetLink> MagnetLink::parse(std::string_view uri) {
  static constexpr std::string_view kScheme = "magnet:?";
  if (!starts_with(uri, kScheme)) return std::nullopt;
  MagnetLink link;
  bool have_hash = false;
  for (const std::string_view pair : split_views(uri.substr(kScheme.size()), '&')) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = pair.substr(0, eq);
    const std::string_view raw = pair.substr(eq + 1);
    try {
      if (key == "xt") {
        static constexpr std::string_view kUrn = "urn:btih:";
        if (!starts_with(raw, kUrn)) return std::nullopt;
        const std::string_view hex = raw.substr(kUrn.size());
        if (hex.size() != 40) return std::nullopt;
        link.infohash = Sha1Digest::from_hex(hex);
        // from_hex yields the zero digest on bad input; reject unless the
        // text really was forty zeros.
        if (link.infohash == Sha1Digest{} && hex != std::string(40, '0')) {
          return std::nullopt;
        }
        have_hash = true;
      } else if (key == "dn") {
        link.display_name = url_unescape(raw);
      } else if (key == "tr") {
        link.trackers.push_back(url_unescape(raw));
      }
      // Other parameters (ws=, xl=, ...) are ignored.
    } catch (const std::invalid_argument&) {
      return std::nullopt;
    }
  }
  if (!have_hash) return std::nullopt;
  return link;
}

}  // namespace btpub
