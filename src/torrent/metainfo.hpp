// metainfo.hpp — .torrent metainfo files (BEP 3).
//
// Torrents in the simulator are genuine bencoded metainfo documents: the
// portal serves these bytes, the crawler parses them, and the infohash is
// the real SHA-1 of the bencoded info dictionary. Multi-file payload
// listings matter to the study because one of the URL-promotion channels
// the paper identifies is "a text file distributed with the actual content"
// (e.g. "Visit-www-divxatope-com.txt").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha1.hpp"

namespace btpub {

/// One payload file inside a torrent.
struct FileEntry {
  std::string path;        // relative path, '/'-joined
  std::int64_t length = 0; // bytes
};

/// Parsed or constructed metainfo document.
class Metainfo {
 public:
  Metainfo() = default;

  /// Builds a (single- or multi-file) metainfo. Piece hashes are derived
  /// deterministically from (name, sizes, salt) rather than from payload
  /// bytes — the simulator never materialises gigabytes of content — but
  /// the document structure and the infohash computation are wire-real.
  static Metainfo make(std::string announce_url, std::string name,
                       std::vector<FileEntry> files,
                       std::int64_t piece_length = 256 * 1024,
                       std::string_view salt = {},
                       std::string comment = {});

  /// Serialises to canonical bencode (the .torrent file bytes).
  std::string encode() const;

  /// Parses .torrent bytes; throws bencode::Error on malformed documents
  /// and std::invalid_argument on missing required fields.
  static Metainfo parse(std::string_view torrent_bytes);

  /// SHA-1 of the bencoded info dictionary.
  const Sha1Digest& infohash() const noexcept { return infohash_; }

  const std::string& announce_url() const noexcept { return announce_; }
  const std::string& name() const noexcept { return name_; }
  const std::string& comment() const noexcept { return comment_; }
  std::int64_t piece_length() const noexcept { return piece_length_; }
  std::size_t piece_count() const noexcept { return n_pieces_; }
  std::int64_t total_size() const noexcept;
  const std::vector<FileEntry>& files() const noexcept { return files_; }
  bool is_multi_file() const noexcept { return multi_file_; }

 private:
  std::string announce_;
  std::string name_;
  std::string comment_;
  std::int64_t piece_length_ = 0;
  std::size_t n_pieces_ = 0;
  std::string pieces_blob_;  // 20 bytes per piece
  std::vector<FileEntry> files_;
  bool multi_file_ = false;
  Sha1Digest infohash_{};
};

}  // namespace btpub
