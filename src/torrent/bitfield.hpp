// bitfield.hpp — BitTorrent piece bitfield (BEP 3 "bitfield" message body).
// The crawler identifies the initial seeder by asking each reachable peer
// for its bitfield and checking which one is complete.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace btpub {

/// Fixed-size bit vector over piece indices. Bit 0 is the most significant
/// bit of byte 0, per the BitTorrent wire format.
class Bitfield {
 public:
  Bitfield() = default;
  explicit Bitfield(std::size_t n_pieces);

  std::size_t size() const noexcept { return n_pieces_; }
  bool get(std::size_t piece) const;
  void set(std::size_t piece, bool value = true);

  /// Number of set bits.
  std::size_t count() const noexcept;
  /// True when every piece bit is set.
  bool complete() const noexcept;
  /// count()/size(); 0 for an empty field.
  double fraction() const noexcept;

  /// Sets the first k pieces (linear download-progress model).
  void set_prefix(std::size_t k);

  /// Wire serialisation: ceil(n/8) bytes, spare bits zero.
  std::string to_bytes() const;
  /// Parses a wire bitfield for a known piece count. Throws
  /// std::invalid_argument on length mismatch or nonzero spare bits.
  static Bitfield from_bytes(std::string_view bytes, std::size_t n_pieces);

  friend bool operator==(const Bitfield&, const Bitfield&) = default;

 private:
  std::size_t n_pieces_ = 0;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace btpub
