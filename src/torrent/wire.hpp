// wire.hpp — the slice of the BitTorrent peer wire protocol (BEP 3) the
// measurement apparatus needs: the handshake and the bitfield message.
// The paper's crawler connects to each reachable peer of a young swarm and
// reads its bitfield to find the (complete) initial seeder; we encode and
// decode the same bytes.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "crypto/sha1.hpp"
#include "torrent/bitfield.hpp"

namespace btpub {

/// The fixed 68-byte BitTorrent handshake.
struct Handshake {
  Sha1Digest infohash{};
  std::array<std::uint8_t, 20> peer_id{};

  std::string encode() const;
  /// nullopt when the bytes are not a well-formed v1 handshake.
  static std::optional<Handshake> decode(std::string_view bytes);

  /// Conventional client-style peer id, e.g. "-BP1000-" + 12 seeded bytes.
  static std::array<std::uint8_t, 20> make_peer_id(std::uint64_t seed);
};

/// Length-prefixed wire messages (the full BEP 3 set).
enum class WireMessageType : std::uint8_t {
  Choke = 0,
  Unchoke = 1,
  Interested = 2,
  NotInterested = 3,
  Have = 4,
  Bitfield = 5,
  Request = 6,
  Piece = 7,
  Cancel = 8,
  Port = 9,          // DHT port (BEP 5)
  KeepAlive = 255,   // zero-length message (no id on the wire)
};

/// Encodes a bitfield message: <len><id=5><bitfield bytes>.
std::string encode_bitfield_message(const Bitfield& field);

/// Encodes a have message: <len=5><id=4><piece index>.
std::string encode_have_message(std::uint32_t piece);

/// The no-payload messages: choke/unchoke/interested/not-interested.
std::string encode_state_message(WireMessageType type);

/// The zero-length keep-alive.
std::string encode_keepalive();

/// A block request/cancel body: <piece><begin><length>.
struct BlockRequest {
  std::uint32_t piece = 0;
  std::uint32_t begin = 0;
  std::uint32_t length = 0;

  friend bool operator==(const BlockRequest&, const BlockRequest&) = default;
};

std::string encode_request_message(const BlockRequest& request);
std::string encode_cancel_message(const BlockRequest& request);
/// Parses a request/cancel payload. Throws std::invalid_argument on a
/// malformed body.
BlockRequest parse_block_request(std::string_view payload);

/// A piece (block transfer) message: <piece><begin><data>.
std::string encode_piece_message(std::uint32_t piece, std::uint32_t begin,
                                 std::string_view data);
struct PieceBlock {
  std::uint32_t piece = 0;
  std::uint32_t begin = 0;
  std::string data;
};
PieceBlock parse_piece_block(std::string_view payload);

/// The DHT port message: <port>.
std::string encode_port_message(std::uint16_t port);
std::uint16_t parse_port_message(std::string_view payload);

/// A decoded wire message (header + raw payload).
struct WireMessage {
  WireMessageType type = WireMessageType::KeepAlive;
  std::string payload;
};

/// Decodes one length-prefixed message from the start of `bytes`,
/// advancing `pos`. nullopt when the buffer is truncated; throws
/// std::invalid_argument on an unknown message id. Zero-length messages
/// decode as KeepAlive.
std::optional<WireMessage> decode_message(std::string_view bytes, std::size_t& pos);

}  // namespace btpub
