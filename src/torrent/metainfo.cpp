#include "torrent/metainfo.hpp"

#include <numeric>
#include <stdexcept>

#include "bencode/bencode.hpp"
#include "util/strings.hpp"

namespace btpub {
namespace {

/// Deterministic fake piece hashes: SHA-1(salted identity || index). The
/// payload itself is never materialised; what matters downstream is that
/// pieces_blob_ has the right shape and feeds a stable infohash.
std::string synthesize_pieces(std::string_view name, std::int64_t total,
                              std::int64_t piece_length, std::string_view salt,
                              std::size_t n_pieces) {
  std::string blob;
  blob.reserve(n_pieces * 20);
  for (std::size_t i = 0; i < n_pieces; ++i) {
    Sha1 ctx;
    ctx.update(name);
    ctx.update(salt);
    ctx.update(std::to_string(total));
    ctx.update(std::to_string(piece_length));
    ctx.update(std::to_string(i));
    const Sha1Digest digest = ctx.finish();
    blob.append(reinterpret_cast<const char*>(digest.bytes.data()),
                digest.bytes.size());
  }
  return blob;
}

bencode::Value build_info_dict(const std::string& name, std::int64_t piece_length,
                               const std::string& pieces_blob,
                               const std::vector<FileEntry>& files,
                               bool multi_file) {
  bencode::Dict info;
  info.emplace("name", name);
  info.emplace("piece length", piece_length);
  info.emplace("pieces", pieces_blob);
  if (multi_file) {
    bencode::List file_list;
    for (const FileEntry& f : files) {
      bencode::List path_parts;
      for (const std::string_view part : split_views(f.path, '/')) {
        path_parts.emplace_back(std::string(part));
      }
      bencode::Dict fd;
      fd.emplace("length", f.length);
      fd.emplace("path", std::move(path_parts));
      file_list.emplace_back(std::move(fd));
    }
    info.emplace("files", std::move(file_list));
  } else {
    info.emplace("length", files.front().length);
  }
  return bencode::Value(std::move(info));
}

}  // namespace

std::int64_t Metainfo::total_size() const noexcept {
  return std::accumulate(files_.begin(), files_.end(), std::int64_t{0},
                         [](std::int64_t acc, const FileEntry& f) {
                           return acc + f.length;
                         });
}

Metainfo Metainfo::make(std::string announce_url, std::string name,
                        std::vector<FileEntry> files, std::int64_t piece_length,
                        std::string_view salt, std::string comment) {
  if (files.empty()) throw std::invalid_argument("Metainfo: no files");
  if (piece_length <= 0) throw std::invalid_argument("Metainfo: bad piece length");
  Metainfo m;
  m.announce_ = std::move(announce_url);
  m.name_ = std::move(name);
  m.comment_ = std::move(comment);
  m.piece_length_ = piece_length;
  m.files_ = std::move(files);
  m.multi_file_ = m.files_.size() > 1;
  const std::int64_t total = m.total_size();
  m.n_pieces_ = static_cast<std::size_t>((total + piece_length - 1) / piece_length);
  if (m.n_pieces_ == 0) m.n_pieces_ = 1;
  m.pieces_blob_ =
      synthesize_pieces(m.name_, total, piece_length, salt, m.n_pieces_);
  const bencode::Value info =
      build_info_dict(m.name_, m.piece_length_, m.pieces_blob_, m.files_,
                      m.multi_file_);
  m.infohash_ = Sha1::hash(bencode::encode(info));
  return m;
}

std::string Metainfo::encode() const {
  bencode::Dict root;
  root.emplace("announce", announce_);
  if (!comment_.empty()) root.emplace("comment", comment_);
  bencode::Value info =
      build_info_dict(name_, piece_length_, pieces_blob_, files_, multi_file_);
  root.emplace("info", std::move(info));
  return bencode::encode(bencode::Value(std::move(root)));
}

Metainfo Metainfo::parse(std::string_view torrent_bytes) {
  const bencode::Value root = bencode::decode(torrent_bytes);
  Metainfo m;
  m.announce_ = root.find_string("announce").value_or("");
  m.comment_ = root.find_string("comment").value_or("");
  const bencode::Value& info = root.at("info");
  m.name_ = info.find_string("name").value_or("");
  if (m.name_.empty()) throw std::invalid_argument("Metainfo: missing name");
  const auto piece_length = info.find_integer("piece length");
  if (!piece_length || *piece_length <= 0) {
    throw std::invalid_argument("Metainfo: missing piece length");
  }
  m.piece_length_ = *piece_length;
  const auto pieces = info.find_string("pieces");
  if (!pieces || pieces->size() % 20 != 0) {
    throw std::invalid_argument("Metainfo: malformed pieces blob");
  }
  m.pieces_blob_ = *pieces;
  m.n_pieces_ = m.pieces_blob_.size() / 20;
  if (const bencode::Value* file_list = info.find("files")) {
    m.multi_file_ = true;
    for (const bencode::Value& entry : file_list->as_list()) {
      FileEntry f;
      f.length = entry.find_integer("length").value_or(0);
      std::vector<std::string> parts;
      for (const bencode::Value& part : entry.at("path").as_list()) {
        parts.push_back(part.as_string());
      }
      f.path = join(parts, "/");
      m.files_.push_back(std::move(f));
    }
    if (m.files_.empty()) throw std::invalid_argument("Metainfo: empty file list");
  } else {
    m.multi_file_ = false;
    FileEntry f;
    f.path = m.name_;
    const auto length = info.find_integer("length");
    if (!length) throw std::invalid_argument("Metainfo: missing length");
    f.length = *length;
    m.files_.push_back(std::move(f));
  }
  m.infohash_ = Sha1::hash(bencode::encode(info));
  return m;
}

}  // namespace btpub
