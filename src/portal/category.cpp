#include "portal/category.hpp"

namespace btpub {

std::string_view to_string(ContentCategory c) {
  switch (c) {
    case ContentCategory::Movies:
      return "Movies";
    case ContentCategory::TvShows:
      return "TV-Shows";
    case ContentCategory::Porn:
      return "Porn";
    case ContentCategory::Music:
      return "Music";
    case ContentCategory::Audiobooks:
      return "Audiobooks";
    case ContentCategory::Games:
      return "Games";
    case ContentCategory::Software:
      return "Software";
    case ContentCategory::Ebooks:
      return "E-books";
    case ContentCategory::Other:
      return "Other";
  }
  return "?";
}

std::string_view to_string(CoarseCategory c) {
  switch (c) {
    case CoarseCategory::Video:
      return "Video";
    case CoarseCategory::Audio:
      return "Audio";
    case CoarseCategory::Games:
      return "Games";
    case CoarseCategory::Software:
      return "Software";
    case CoarseCategory::Books:
      return "Books";
    case CoarseCategory::Other:
      return "Other";
  }
  return "?";
}

CoarseCategory coarse(ContentCategory c) {
  switch (c) {
    case ContentCategory::Movies:
    case ContentCategory::TvShows:
    case ContentCategory::Porn:
      return CoarseCategory::Video;
    case ContentCategory::Music:
    case ContentCategory::Audiobooks:
      return CoarseCategory::Audio;
    case ContentCategory::Games:
      return CoarseCategory::Games;
    case ContentCategory::Software:
      return CoarseCategory::Software;
    case ContentCategory::Ebooks:
      return CoarseCategory::Books;
    case ContentCategory::Other:
      return CoarseCategory::Other;
  }
  return CoarseCategory::Other;
}

std::string_view to_string(Language l) {
  switch (l) {
    case Language::English:
      return "English";
    case Language::Spanish:
      return "Spanish";
    case Language::Italian:
      return "Italian";
    case Language::Dutch:
      return "Dutch";
    case Language::Swedish:
      return "Swedish";
    case Language::Other:
      return "Other";
  }
  return "?";
}

}  // namespace btpub
