#include "portal/portal.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace btpub {

TorrentId Portal::publish(PublishRequest request, SimTime now) {
  if (request.username.empty()) {
    throw std::invalid_argument("Portal::publish: empty username");
  }
  if (now < last_publish_time_) {
    throw std::invalid_argument("Portal::publish: time went backwards");
  }
  last_publish_time_ = now;
  const TorrentId id = static_cast<TorrentId>(listings_.size());
  Listing l;
  l.page.id = id;
  l.page.title = std::move(request.title);
  l.page.category = request.category;
  l.page.language = request.language;
  l.page.username = request.username;
  l.page.textbox = std::move(request.textbox);
  l.page.size_bytes = request.size_bytes;
  l.page.published_at = now;
  l.torrent_bytes = std::move(request.torrent_bytes);
  l.infohash = request.infohash;
  l.payload = request.payload;
  listings_.push_back(std::move(l));
  users_[request.username].publish_times.push_back(now);
  return id;
}

void Portal::record_historical_publish(std::string_view username, SimTime when) {
  auto& state = users_[std::string(username)];
  auto& v = state.publish_times;
  v.insert(std::upper_bound(v.begin(), v.end(), when), when);
}

std::vector<RssItem> Portal::rss_since(TorrentId last_seen, SimTime now,
                                       std::size_t limit) const {
  std::vector<RssItem> items;
  const std::size_t start =
      last_seen == kInvalidTorrent ? 0 : static_cast<std::size_t>(last_seen) + 1;
  for (std::size_t i = start; i < listings_.size() && items.size() < limit; ++i) {
    const Listing& l = listings_[i];
    if (l.page.published_at > now) break;  // not yet published
    if (removed_by(l, now)) continue;
    RssItem item;
    item.id = static_cast<TorrentId>(i);
    item.title = l.page.title;
    item.category = l.page.category;
    item.username = l.page.username;
    item.size_bytes = l.page.size_bytes;
    item.published_at = l.page.published_at;
    items.push_back(std::move(item));
  }
  return items;
}

TorrentId Portal::newest_id() const noexcept {
  return listings_.empty() ? kInvalidTorrent
                           : static_cast<TorrentId>(listings_.size() - 1);
}

std::optional<ContentPage> Portal::page(TorrentId id, SimTime now) const {
  if (id >= listings_.size()) return std::nullopt;
  const Listing& l = listings_[id];
  if (l.page.published_at > now) return std::nullopt;
  ContentPage page = l.page;
  if (removed_by(l, now)) {
    page.removed = true;
    page.textbox.clear();  // tombstone
  }
  return page;
}

std::optional<std::string> Portal::fetch_torrent(TorrentId id, SimTime now) const {
  if (id >= listings_.size()) return std::nullopt;
  const Listing& l = listings_[id];
  if (l.page.published_at > now || removed_by(l, now)) return std::nullopt;
  return l.torrent_bytes;
}

std::optional<PayloadKind> Portal::download_payload(TorrentId id,
                                                    SimTime now) const {
  if (id >= listings_.size()) return std::nullopt;
  const Listing& l = listings_[id];
  if (l.page.published_at > now || removed_by(l, now)) return std::nullopt;
  return l.payload;
}

void Portal::moderate_remove(TorrentId id, SimTime at) {
  if (id >= listings_.size()) return;
  Listing& l = listings_[id];
  if (l.removed_at >= 0 && l.removed_at <= at) return;
  l.removed_at = at;
  auto& user = users_[l.page.username];
  if (user.banned_at < 0 || user.banned_at > at) user.banned_at = at;
}

bool Portal::is_banned(std::string_view username, SimTime now) const {
  const auto it = users_.find(std::string(username));
  return it != users_.end() && it->second.banned_at >= 0 &&
         now >= it->second.banned_at;
}

UserPage Portal::user_page(std::string_view username, SimTime now) const {
  UserPage page;
  page.username = std::string(username);
  const auto it = users_.find(page.username);
  if (it != users_.end()) {
    for (const SimTime t : it->second.publish_times) {
      if (t <= now) page.publish_times.push_back(t);
    }
    std::sort(page.publish_times.begin(), page.publish_times.end());
    page.banned = it->second.banned_at >= 0 && now >= it->second.banned_at;
  }
  return page;
}

std::vector<std::string> Portal::all_usernames() const {
  std::vector<std::string> names;
  names.reserve(users_.size());
  for (const auto& [name, state] : users_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::size_t Portal::removed_count(SimTime now) const {
  std::size_t n = 0;
  for (const Listing& l : listings_) {
    if (removed_by(l, now)) ++n;
  }
  return n;
}

const Portal::Listing& Portal::listing(TorrentId id) const {
  assert(id < listings_.size());
  return listings_[id];
}

}  // namespace btpub
