// portal.hpp — the BitTorrent index portal (The Pirate Bay / Mininova
// substitute).
//
// The portal is the rendezvous the paper crawls: it indexes .torrent files,
// announces new ones over an RSS feed (title, category, size, username),
// serves a per-content web page whose free-text "textbox" is where
// profit-driven publishers drop their promoting URL, serves per-user
// history pages (used for the Table-4 longitudinal study), and moderates —
// removing content reported as fake together with the account that
// published it (footnote 3 of the paper: the removal is the observable the
// authors use to label fake accounts).
//
// All read accessors take the observer's simulated time: a removal
// scheduled for Tuesday is invisible to a crawler reading the page on
// Monday. Removals may be scheduled in any order ahead of the crawl.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "crypto/sha1.hpp"
#include "portal/category.hpp"
#include "util/time.hpp"

namespace btpub {

using TorrentId = std::uint32_t;
inline constexpr TorrentId kInvalidTorrent = ~TorrentId{0};

/// What a downloaded payload would reveal. Ground truth carried with the
/// listing; the crawler only learns it by explicitly "downloading" the
/// content (as the authors did for a sample of files, §5).
enum class PayloadKind : std::uint8_t {
  Genuine,
  FakeAntipiracy,  // broken copy + anti-piracy messages
  FakeMalware,     // decoy that points at malware
};

/// One RSS feed item, mirroring the fields the real feeds expose.
struct RssItem {
  TorrentId id = kInvalidTorrent;
  std::string title;
  ContentCategory category = ContentCategory::Other;
  std::string username;
  std::int64_t size_bytes = 0;
  SimTime published_at = 0;
};

/// The content web page as an observer at time `now` sees it.
struct ContentPage {
  TorrentId id = kInvalidTorrent;
  std::string title;
  ContentCategory category = ContentCategory::Other;
  Language language = Language::English;
  std::string username;
  std::string textbox;  // free-form description; may embed a promoting URL
  std::int64_t size_bytes = 0;
  SimTime published_at = 0;
  bool removed = false;
};

/// Per-user history page (the "username page" of §5.2): every publication
/// timestamp up to the observer's time, including history predating any
/// measurement window.
struct UserPage {
  std::string username;
  std::vector<SimTime> publish_times;  // ascending
  bool banned = false;                 // account removed by moderation
};

/// Parameters of a publish call.
struct PublishRequest {
  std::string title;
  ContentCategory category = ContentCategory::Other;
  Language language = Language::English;
  std::string username;
  std::string textbox;
  std::string torrent_bytes;        // bencoded metainfo served to downloaders
  Sha1Digest infohash;
  std::int64_t size_bytes = 0;
  PayloadKind payload = PayloadKind::Genuine;
};

/// The portal itself.
class Portal {
 public:
  explicit Portal(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Indexes a new torrent at simulated time `now`; returns its id.
  /// Ids are dense and increase with publication time.
  TorrentId publish(PublishRequest request, SimTime now);

  /// Back-fills a publication timestamp that happened before the simulated
  /// window (longitudinal history only; no content page is created).
  void record_historical_publish(std::string_view username, SimTime when);

  /// RSS read at time `now`: items with id > last_seen already published
  /// and not yet removed at `now`, oldest first, at most `limit`.
  std::vector<RssItem> rss_since(TorrentId last_seen, SimTime now,
                                 std::size_t limit = 200) const;

  /// Newest id, or kInvalidTorrent when nothing was ever published.
  TorrentId newest_id() const noexcept;

  /// Content page as seen at `now`; nullopt for unknown or not-yet-
  /// published ids. Pages removed before `now` are tombstones (removed
  /// flag set, textbox emptied).
  std::optional<ContentPage> page(TorrentId id, SimTime now) const;

  /// Serves .torrent bytes; nullopt when unknown, unpublished or removed.
  std::optional<std::string> fetch_torrent(TorrentId id, SimTime now) const;

  /// Emulates downloading & inspecting the payload, as the authors did for
  /// sampled files. nullopt once the content is removed — exactly what the
  /// paper reports for most fake files fetched weeks later.
  std::optional<PayloadKind> download_payload(TorrentId id, SimTime now) const;

  /// Moderation: schedules removal of the content and the ban of its
  /// publishing account at time `at`. May be called in any order; no-op on
  /// unknown ids or already-removed listings with an earlier timestamp.
  void moderate_remove(TorrentId id, SimTime at);

  bool is_banned(std::string_view username, SimTime now) const;

  /// Per-user history page at `now`; usernames never seen yield an empty
  /// page.
  UserPage user_page(std::string_view username, SimTime now) const;

  /// Every username that ever published (including banned ones).
  std::vector<std::string> all_usernames() const;

  std::size_t listing_count() const noexcept { return listings_.size(); }
  /// Removals scheduled at or before `now`.
  std::size_t removed_count(SimTime now) const;

  /// Internal listing access for the ecosystem driver (ground truth side).
  struct Listing {
    ContentPage page;  // `removed` unset here; derived from removed_at
    std::string torrent_bytes;
    Sha1Digest infohash;
    PayloadKind payload = PayloadKind::Genuine;
    SimTime removed_at = -1;  // -1 = never removed
  };
  const Listing& listing(TorrentId id) const;

 private:
  struct UserState {
    std::vector<SimTime> publish_times;
    SimTime banned_at = -1;  // -1 = never banned
  };

  bool removed_by(const Listing& l, SimTime now) const {
    return l.removed_at >= 0 && now >= l.removed_at;
  }

  std::string name_;
  std::vector<Listing> listings_;
  std::unordered_map<std::string, UserState> users_;
  SimTime last_publish_time_ = std::numeric_limits<SimTime>::min();
};

}  // namespace btpub
