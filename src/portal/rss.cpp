#include "portal/rss.hpp"

#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace btpub {

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string xml_unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out.push_back(text[i++]);
      continue;
    }
    const std::size_t end = text.find(';', i);
    if (end == std::string_view::npos) {
      throw std::invalid_argument("xml: unterminated entity");
    }
    const std::string_view entity = text.substr(i + 1, end - i - 1);
    if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else if (!entity.empty() && entity[0] == '#') {
      unsigned code = 0;
      const bool hex = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X');
      const std::string_view digits = entity.substr(hex ? 2 : 1);
      const auto result = std::from_chars(digits.data(), digits.data() + digits.size(),
                                          code, hex ? 16 : 10);
      if (result.ec != std::errc{} || result.ptr != digits.data() + digits.size() ||
          code == 0 || code > 0x10FFFF) {
        throw std::invalid_argument("xml: bad character reference");
      }
      // ASCII is all the feed ever emits; encode higher points as UTF-8.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      throw std::invalid_argument("xml: unknown entity '" + std::string(entity) +
                                  "'");
    }
    i = end + 1;
  }
  return out;
}

std::string render_rss(const std::string& portal_name,
                       std::span<const RssItem> items) {
  std::ostringstream out;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out << "<rss version=\"2.0\" xmlns:btpub=\"urn:btpub:feed\">\n";
  out << "<channel>\n";
  out << "<title>" << xml_escape(portal_name) << "</title>\n";
  out << "<description>" << xml_escape(portal_name)
      << " - new torrents</description>\n";
  for (const RssItem& item : items) {
    out << "<item>\n";
    out << "  <title>" << xml_escape(item.title) << "</title>\n";
    out << "  <guid>" << item.id << "</guid>\n";
    out << "  <category>" << xml_escape(std::string(to_string(item.category)))
        << "</category>\n";
    out << "  <btpub:user>" << xml_escape(item.username) << "</btpub:user>\n";
    out << "  <btpub:size>" << item.size_bytes << "</btpub:size>\n";
    out << "  <pubDate>" << item.published_at << "</pubDate>\n";
    out << "</item>\n";
  }
  out << "</channel>\n";
  out << "</rss>\n";
  return out.str();
}

namespace {

/// Minimal strict parser for the XML subset render_rss emits.
class XmlCursor {
 public:
  explicit XmlCursor(std::string_view text) : text_(text) {}

  /// Skips whitespace, comments, the declaration.
  void skip_misc() {
    while (true) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (match("<?")) {
        const std::size_t end = text_.find("?>", pos_);
        if (end == std::string_view::npos) {
          throw std::invalid_argument("xml: unterminated declaration");
        }
        pos_ = end + 2;
        continue;
      }
      if (match("<!--")) {
        const std::size_t end = text_.find("-->", pos_);
        if (end == std::string_view::npos) {
          throw std::invalid_argument("xml: unterminated comment");
        }
        pos_ = end + 3;
        continue;
      }
      return;
    }
  }

  /// If the next construct is an opening tag, consumes it and returns its
  /// name (attributes are skipped); otherwise returns nullopt.
  std::optional<std::string> open_tag() {
    skip_misc();
    const std::size_t save = pos_;
    if (pos_ >= text_.size() || text_[pos_] != '<' || peek(1) == '/') {
      return std::nullopt;
    }
    ++pos_;
    std::string name = read_name();
    // Skip attributes.
    const std::size_t end = text_.find('>', pos_);
    if (end == std::string_view::npos) {
      pos_ = save;
      throw std::invalid_argument("xml: unterminated tag");
    }
    if (end > 0 && text_[end - 1] == '/') {
      pos_ = save;
      throw std::invalid_argument("xml: unexpected self-closing tag");
    }
    pos_ = end + 1;
    return name;
  }

  /// Consumes a closing tag; throws if it does not match `name`.
  void close_tag(const std::string& name) {
    skip_misc();
    if (!match("</")) throw std::invalid_argument("xml: expected </" + name + ">");
    const std::string got = read_name();
    if (got != name) {
      throw std::invalid_argument("xml: mismatched close tag " + got +
                                  " (expected " + name + ")");
    }
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '>') {
      throw std::invalid_argument("xml: malformed close tag");
    }
    ++pos_;
  }

  /// Reads character data up to the next '<' and unescapes it.
  std::string text_content() {
    const std::size_t end = text_.find('<', pos_);
    if (end == std::string_view::npos) {
      throw std::invalid_argument("xml: unterminated text");
    }
    const std::string raw(text_.substr(pos_, end - pos_));
    pos_ = end;
    return xml_unescape(std::string(trim(raw)));
  }

  /// True when positioned at the closing tag of `name`.
  bool at_close(const std::string& name) {
    skip_misc();
    return text_.substr(pos_).starts_with("</" + name);
  }

  bool done() {
    skip_misc();
    return pos_ >= text_.size();
  }

 private:
  char peek(std::size_t offset) const {
    return pos_ + offset < text_.size() ? text_[pos_ + offset] : '\0';
  }
  bool match(std::string_view prefix) {
    if (text_.substr(pos_).starts_with(prefix)) {
      pos_ += prefix.size();
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  std::string read_name() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == ':' || text_[pos_] == '-' || text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) throw std::invalid_argument("xml: expected a name");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

ContentCategory category_from_label(std::string_view label) {
  for (const ContentCategory c : kAllCategories) {
    if (to_string(c) == label) return c;
  }
  return ContentCategory::Other;
}

template <typename T>
T parse_number(const std::string& text, const char* what) {
  T value{};
  const auto result = std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
    throw std::invalid_argument(std::string("rss: bad number in ") + what);
  }
  return value;
}

}  // namespace

RssDocument parse_rss(std::string_view xml) {
  XmlCursor cursor(xml);
  auto expect = [&cursor](const char* name) {
    const auto tag = cursor.open_tag();
    if (!tag || *tag != name) {
      throw std::invalid_argument(std::string("rss: expected <") + name + ">");
    }
  };
  expect("rss");
  expect("channel");

  RssDocument doc;
  expect("title");
  doc.channel_title = cursor.text_content();
  cursor.close_tag("title");
  expect("description");
  cursor.text_content();
  cursor.close_tag("description");

  while (!cursor.at_close("channel")) {
    expect("item");
    RssItem item;
    bool have_title = false, have_guid = false;
    while (!cursor.at_close("item")) {
      const auto tag = cursor.open_tag();
      if (!tag) throw std::invalid_argument("rss: stray content in <item>");
      const std::string value = cursor.text_content();
      cursor.close_tag(*tag);
      if (*tag == "title") {
        item.title = value;
        have_title = true;
      } else if (*tag == "guid") {
        item.id = parse_number<TorrentId>(value, "guid");
        have_guid = true;
      } else if (*tag == "category") {
        item.category = category_from_label(value);
      } else if (*tag == "btpub:user") {
        item.username = value;
      } else if (*tag == "btpub:size") {
        item.size_bytes = parse_number<std::int64_t>(value, "size");
      } else if (*tag == "pubDate") {
        item.published_at = parse_number<SimTime>(value, "pubDate");
      }
      // Unknown elements are tolerated (skipped) for feed compatibility.
    }
    cursor.close_tag("item");
    if (!have_title || !have_guid) {
      throw std::invalid_argument("rss: item missing title or guid");
    }
    doc.items.push_back(std::move(item));
  }
  cursor.close_tag("channel");
  cursor.close_tag("rss");
  if (!cursor.done()) throw std::invalid_argument("rss: trailing content");
  return doc;
}

}  // namespace btpub
