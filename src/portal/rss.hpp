// rss.hpp — the portal's RSS 2.0 feed as real XML.
//
// The paper's crawler learns about newborn torrents from the portals' RSS
// feeds, which carry the title, category, size and publishing username as
// XML. Portal::rss_since returns structured items; this module renders
// them into an RSS 2.0 document and parses such documents back — so the
// measurement apparatus can consume the same bytes a 2010 feed reader did.
//
// The parser is a small, strict XML subset reader (elements, attributes,
// character data, entity escapes) — enough for RSS, with no external
// dependencies.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "portal/portal.hpp"

namespace btpub {

/// Escapes &, <, >, " and ' for XML character data / attribute values.
std::string xml_escape(std::string_view text);
/// Reverses xml_escape (named entities + decimal/hex character refs).
/// Throws std::invalid_argument on malformed entities.
std::string xml_unescape(std::string_view text);

/// Renders a portal RSS page: channel metadata plus one <item> per entry.
/// Each item carries <title>, <guid> (the portal id), <category>,
/// <btpub:user>, <btpub:size> and <pubDate> (simulated seconds).
std::string render_rss(const std::string& portal_name,
                       std::span<const RssItem> items);

/// Parses a document produced by render_rss (or an equivalent feed).
/// Returns the channel title and the items. Throws std::invalid_argument
/// on malformed XML or missing mandatory elements.
struct RssDocument {
  std::string channel_title;
  std::vector<RssItem> items;
};
RssDocument parse_rss(std::string_view xml);

}  // namespace btpub
