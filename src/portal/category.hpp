// category.hpp — content taxonomy as used by The Pirate Bay / Mininova
// circa 2010 and by the paper's Figure 2 (which groups subcategories into
// Video / Audio / Games / Software / Books / Other).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace btpub {

/// Portal subcategory of a published content.
enum class ContentCategory : std::uint8_t {
  Movies,
  TvShows,
  Porn,
  Music,
  Audiobooks,
  Games,
  Software,
  Ebooks,
  Other,
};

inline constexpr std::array<ContentCategory, 9> kAllCategories = {
    ContentCategory::Movies,  ContentCategory::TvShows, ContentCategory::Porn,
    ContentCategory::Music,   ContentCategory::Audiobooks,
    ContentCategory::Games,   ContentCategory::Software,
    ContentCategory::Ebooks,  ContentCategory::Other,
};

/// Figure-2 coarse grouping.
enum class CoarseCategory : std::uint8_t {
  Video,     // Movies + TvShows + Porn
  Audio,     // Music + Audiobooks
  Games,
  Software,
  Books,
  Other,
};

inline constexpr std::array<CoarseCategory, 6> kAllCoarseCategories = {
    CoarseCategory::Video, CoarseCategory::Audio,    CoarseCategory::Games,
    CoarseCategory::Software, CoarseCategory::Books, CoarseCategory::Other,
};

std::string_view to_string(ContentCategory c);
std::string_view to_string(CoarseCategory c);

CoarseCategory coarse(ContentCategory c);

/// Content language; the paper finds 40% of portal-class publishers focus
/// on a specific non-English language, 66% of those on Spanish.
enum class Language : std::uint8_t {
  English,
  Spanish,
  Italian,
  Dutch,
  Swedish,
  Other,
};

std::string_view to_string(Language l);

}  // namespace btpub
