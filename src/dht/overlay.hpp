// overlay.hpp — the simulated Mainline DHT overlay network.
//
// No sockets: a datagram "sent" to an endpoint is handled synchronously by
// the addressed node at the carried simulated time, mirroring how the
// tracker endpoint answers announce datagrams. Reachability is modelled:
// datagrams to endpoints that are not (or no longer) overlay nodes are
// lost, which the RPC layer reports as a timeout — iterative lookups route
// around departed nodes exactly as a real client would.
//
// Time is driven two ways, both deterministic:
//   * an internal EventQueue carries the scheduled life of the overlay
//     (node joins at session arrival, periodic announce_peer refreshes,
//     departures) — advance_to(t) replays it up to t;
//   * client operations (lookups, announces, the crawler's walks) run
//     synchronously at an explicit `now`, which must be >= the last
//     advance (one monotone sweep, the same discipline Swarm::counts_at
//     imposes).
//
// Determinism: node ids derive from (seed, endpoint); transaction ids come
// from a single sequential counter; the node registry is an ordered map;
// lookups break distance ties on the id bytes. Two overlays built from the
// same seed and fed the same schedule answer every query byte-identically.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dht/node.hpp"
#include "sim/event_queue.hpp"

namespace btpub::dht {

/// Telemetry of one iterative lookup (the dht_perf metrics).
struct LookupStats {
  /// Query rounds until convergence (the O(log n) quantity).
  std::uint32_t hops = 0;
  /// Queries sent, including ones that timed out.
  std::uint32_t messages = 0;
  /// Queries that went unanswered (departed/NATed endpoints).
  std::uint32_t timeouts = 0;
  /// Distinct peers returned by get_peers values.
  std::size_t peers_found = 0;
};

class DhtOverlay {
 public:
  /// Lookup parallelism (the Kademlia alpha).
  static constexpr std::size_t kAlpha = 3;

  explicit DhtOverlay(std::uint64_t seed);

  /// The always-on bootstrap router (a la router.bittorrent.com). It
  /// participates in routing but never stores or announces peers.
  const Endpoint& router() const noexcept { return router_endpoint_; }

  // ---- membership ----------------------------------------------------------

  /// Creates a node at `endpoint` (id derived from the overlay seed) and
  /// joins it through the router: an iterative find_node towards its own
  /// id that fills its routing table and advertises it to the overlay.
  /// Adding an existing endpoint refreshes (re-joins) it. Returns the id.
  NodeId add_node(const Endpoint& endpoint, SimTime now);

  /// Departs a node: it stops answering; other tables shed it on timeout.
  void remove_node(const Endpoint& endpoint);

  bool is_node(const Endpoint& endpoint) const;
  DhtNode* node_at(const Endpoint& endpoint);
  std::size_t node_count() const noexcept { return nodes_.size(); }

  // ---- scheduled life -------------------------------------------------------

  /// The overlay registers itself as the queue's typed-event handler at
  /// construction: schedule_typed NodeJoin/NodeLeave/Announce records drive
  /// add_node/remove_node/announce_peer with zero per-event closures, and
  /// periodic announces re-arm lazily (one pending cursor per session).
  EventQueue& events() noexcept { return events_; }
  /// Replays scheduled events with timestamp <= t. Client operations at
  /// time `now` must be preceded by advance_to(now).
  void advance_to(SimTime t) { events_.run_until(t); }
  SimTime now() const noexcept { return events_.now(); }

  // ---- wire-level ----------------------------------------------------------

  /// Delivers one datagram; nullopt models a timeout (unknown endpoint).
  std::optional<std::string> send(const Endpoint& to, std::string_view datagram,
                                  const Endpoint& from, SimTime now);

  // ---- client operations ----------------------------------------------------

  /// Iterative get_peers from vantage `from` (need not be a node; pass
  /// read_only=true for measurement vantages). Returns the distinct peers
  /// found, in discovery order. `bootstrap` endpoints seed the shortlist;
  /// when empty the router is used.
  std::vector<Endpoint> get_peers(const Sha1Digest& info_hash,
                                  const Endpoint& from, SimTime now,
                                  LookupStats* stats = nullptr,
                                  std::span<const Endpoint> bootstrap = {},
                                  bool read_only = false);

  /// Full BEP 5 announce from a node: iterative get_peers to locate the k
  /// closest nodes (collecting their tokens), then announce_peer to each.
  /// The peer's address is its own endpoint; `port` defaults to it too.
  void announce_peer(const Sha1Digest& info_hash, const Endpoint& peer,
                     SimTime now, LookupStats* stats = nullptr);

  /// Total datagrams delivered (diagnostic).
  std::uint64_t datagrams() const noexcept { return datagrams_; }

 private:
  struct Candidate {
    NodeId id{};
    Endpoint endpoint{};
    bool id_known = false;
    bool queried = false;
    bool responded = false;
  };
  struct LookupResult {
    std::vector<Endpoint> peers;
    /// The closest responding nodes with the tokens they handed out.
    std::vector<std::pair<NodeInfo, std::string>> closest;
  };

  LookupResult iterative_get_peers(const Sha1Digest& info_hash,
                                   const Endpoint& from, SimTime now,
                                   LookupStats* stats,
                                   std::span<const Endpoint> bootstrap,
                                   bool read_only);
  /// Iterative find_node used by joins; routing tables fill as a side
  /// effect of the traffic.
  void iterative_find_node(DhtNode& from, const NodeId& target, SimTime now);
  std::string next_transaction_id();

  std::uint64_t seed_;
  EventQueue events_;
  Endpoint router_endpoint_;
  std::map<Endpoint, std::unique_ptr<DhtNode>> nodes_;
  std::uint64_t next_transaction_ = 0;
  std::uint64_t datagrams_ = 0;
};

}  // namespace btpub::dht
