#include "dht/overlay.hpp"

#include <algorithm>
#include <unordered_set>

namespace btpub::dht {
namespace {

/// The router lives beside the crawler vantages in measurement space,
/// outside the simulated Internet's GeoIP blocks.
constexpr Endpoint kRouterEndpoint{IpAddress(10, 99, 0, 1), 6881};

}  // namespace

DhtOverlay::DhtOverlay(std::uint64_t seed)
    : seed_(seed), router_endpoint_(kRouterEndpoint) {
  auto router = std::make_unique<DhtNode>(
      NodeId::for_endpoint(seed_, router_endpoint_), router_endpoint_,
      derive_seed(seed_, 0xB007));
  nodes_.emplace(router_endpoint_, std::move(router));
  // The one closure of the scheduled overlay life: every join, departure
  // and (lazily re-armed) periodic announce arrives as a POD TypedEvent.
  events_.set_typed_handler([this](const TypedEvent& event, SimTime at) {
    switch (event.kind) {
      case TypedEvent::Kind::NodeJoin:
        add_node(event.endpoint, at);
        break;
      case TypedEvent::Kind::NodeLeave:
        remove_node(event.endpoint);
        break;
      case TypedEvent::Kind::Announce:
        announce_peer(event.infohash, event.endpoint, at);
        break;
    }
  });
}

std::string DhtOverlay::next_transaction_id() {
  const std::uint64_t n = next_transaction_++;
  std::string id(2, '\0');
  id[0] = static_cast<char>((n >> 8) & 0xff);
  id[1] = static_cast<char>(n & 0xff);
  return id;
}

NodeId DhtOverlay::add_node(const Endpoint& endpoint, SimTime now) {
  const NodeId id = NodeId::for_endpoint(seed_, endpoint);
  auto it = nodes_.find(endpoint);
  if (it == nodes_.end()) {
    it = nodes_
             .emplace(endpoint,
                      std::make_unique<DhtNode>(
                          id, endpoint,
                          derive_seed(seed_, id.bytes[0], id.bytes[19],
                                      endpoint.ip.value())))
             .first;
  }
  // Join (or refresh): walk towards the own id through the router. The
  // traffic simultaneously fills this node's table and advertises it to
  // every node on the path.
  iterative_find_node(*it->second, id, now);
  return id;
}

void DhtOverlay::remove_node(const Endpoint& endpoint) {
  if (endpoint == router_endpoint_) return;  // the router never departs
  nodes_.erase(endpoint);
}

bool DhtOverlay::is_node(const Endpoint& endpoint) const {
  return nodes_.contains(endpoint);
}

DhtNode* DhtOverlay::node_at(const Endpoint& endpoint) {
  const auto it = nodes_.find(endpoint);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::optional<std::string> DhtOverlay::send(const Endpoint& to,
                                            std::string_view datagram,
                                            const Endpoint& from, SimTime now) {
  const auto it = nodes_.find(to);
  if (it == nodes_.end()) return std::nullopt;  // lost: timeout
  ++datagrams_;
  return it->second->handle(datagram, from, now);
}

// ---- iterative machinery --------------------------------------------------

DhtOverlay::LookupResult DhtOverlay::iterative_get_peers(
    const Sha1Digest& info_hash, const Endpoint& from, SimTime now,
    LookupStats* stats, std::span<const Endpoint> bootstrap, bool read_only) {
  const NodeId target = NodeId::from_digest(info_hash);
  LookupResult result;
  std::vector<Candidate> candidates;
  std::unordered_set<Endpoint> known_endpoints;
  std::unordered_set<Endpoint> known_peers;

  auto add_candidate = [&](const Endpoint& endpoint, const NodeId* id) {
    if (endpoint == from) return;
    if (!known_endpoints.insert(endpoint).second) return;
    Candidate c;
    c.endpoint = endpoint;
    if (id != nullptr) {
      c.id = *id;
      c.id_known = true;
    }
    candidates.push_back(c);
  };
  for (const Endpoint& hint : bootstrap) add_candidate(hint, nullptr);
  if (candidates.empty()) add_candidate(router_endpoint_, nullptr);

  Query query;
  query.method = Method::GetPeers;
  query.sender_id = NodeId::for_endpoint(seed_, from);
  query.info_hash = info_hash;
  query.read_only = read_only;

  std::vector<std::size_t> round;  // candidate indices queried this round
  while (true) {
    // Query targets: every unqueried id-less bootstrap entry, then the
    // unqueried candidates among the k closest known ones.
    round.clear();
    std::vector<std::size_t> ranked;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Candidate& c = candidates[i];
      if (!c.queried && !c.id_known) round.push_back(i);
      // Dead nodes (queried, no response) are excluded from the ranked
      // window so they cannot clog the k closest slots and stall the walk.
      if (c.id_known && (!c.queried || c.responded)) ranked.push_back(i);
    }
    std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
      return closer(candidates[a].id, candidates[b].id, target);
    });
    for (std::size_t r = 0;
         r < ranked.size() && r < RoutingTable::kBucketSize &&
         round.size() < kAlpha;
         ++r) {
      if (!candidates[ranked[r]].queried) round.push_back(ranked[r]);
    }
    if (round.size() > kAlpha) round.resize(kAlpha);
    if (round.empty()) break;

    if (stats != nullptr) ++stats->hops;
    for (const std::size_t index : round) {
      candidates[index].queried = true;
      query.transaction_id = next_transaction_id();
      const std::string datagram = query.encode();
      if (stats != nullptr) ++stats->messages;
      const auto raw = send(candidates[index].endpoint, datagram, from, now);
      if (!raw) {
        if (stats != nullptr) ++stats->timeouts;
        continue;
      }
      const auto response = Response::decode(*raw);
      if (!response || response->transaction_id != query.transaction_id) {
        if (stats != nullptr) ++stats->timeouts;  // error or bogus reply
        continue;
      }
      Candidate& c = candidates[index];
      c.responded = true;
      c.id = response->sender_id;
      c.id_known = true;
      result.closest.push_back(
          {NodeInfo{c.id, c.endpoint}, response->token});
      for (const NodeInfo& node : response->nodes) {
        add_candidate(node.endpoint, &node.id);
      }
      for (const Endpoint& peer : response->peers) {
        if (known_peers.insert(peer).second) result.peers.push_back(peer);
      }
    }
  }

  // The k closest responders (with their tokens) are the announce targets.
  std::sort(result.closest.begin(), result.closest.end(),
            [&](const auto& a, const auto& b) {
              return closer(a.first.id, b.first.id, target);
            });
  if (result.closest.size() > RoutingTable::kBucketSize) {
    result.closest.resize(RoutingTable::kBucketSize);
  }
  if (stats != nullptr) stats->peers_found = result.peers.size();
  return result;
}

void DhtOverlay::iterative_find_node(DhtNode& origin, const NodeId& target,
                                     SimTime now) {
  std::vector<Candidate> candidates;
  std::unordered_set<Endpoint> known_endpoints;
  auto add_candidate = [&](const Endpoint& endpoint, const NodeId* id) {
    if (endpoint == origin.endpoint()) return;
    if (!known_endpoints.insert(endpoint).second) return;
    Candidate c;
    c.endpoint = endpoint;
    if (id != nullptr) {
      c.id = *id;
      c.id_known = true;
    }
    candidates.push_back(c);
  };
  // Seed with the origin's own table (refresh case) plus the router.
  std::vector<Contact> seeds;
  origin.table().closest(target, RoutingTable::kBucketSize, seeds);
  for (const Contact& contact : seeds) add_candidate(contact.endpoint, &contact.id);
  add_candidate(router_endpoint_, nullptr);

  Query query;
  query.method = Method::FindNode;
  query.sender_id = origin.id();
  query.target = target;

  std::vector<std::size_t> round;
  while (true) {
    round.clear();
    std::vector<std::size_t> ranked;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Candidate& c = candidates[i];
      if (!c.queried && !c.id_known) round.push_back(i);
      if (c.id_known && (!c.queried || c.responded)) ranked.push_back(i);
    }
    std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
      return closer(candidates[a].id, candidates[b].id, target);
    });
    for (std::size_t r = 0;
         r < ranked.size() && r < RoutingTable::kBucketSize &&
         round.size() < kAlpha;
         ++r) {
      if (!candidates[ranked[r]].queried) round.push_back(ranked[r]);
    }
    if (round.size() > kAlpha) round.resize(kAlpha);
    if (round.empty()) break;

    for (const std::size_t index : round) {
      candidates[index].queried = true;
      query.transaction_id = next_transaction_id();
      const auto raw =
          send(candidates[index].endpoint, query.encode(), origin.endpoint(), now);
      if (!raw) continue;
      const auto response = Response::decode(*raw);
      if (!response || response->transaction_id != query.transaction_id) continue;
      Candidate& c = candidates[index];
      c.responded = true;
      c.id = response->sender_id;
      c.id_known = true;
      // A response is direct evidence of liveness: verified contact.
      origin.table().observe(c.id, c.endpoint, now);
      for (const NodeInfo& node : response->nodes) {
        add_candidate(node.endpoint, &node.id);
      }
    }
  }
}

// ---- client operations ----------------------------------------------------

std::vector<Endpoint> DhtOverlay::get_peers(const Sha1Digest& info_hash,
                                            const Endpoint& from, SimTime now,
                                            LookupStats* stats,
                                            std::span<const Endpoint> bootstrap,
                                            bool read_only) {
  return iterative_get_peers(info_hash, from, now, stats, bootstrap, read_only)
      .peers;
}

void DhtOverlay::announce_peer(const Sha1Digest& info_hash,
                               const Endpoint& peer, SimTime now,
                               LookupStats* stats) {
  const LookupResult lookup =
      iterative_get_peers(info_hash, peer, now, stats, {}, false);
  Query announce;
  announce.method = Method::AnnouncePeer;
  announce.sender_id = NodeId::for_endpoint(seed_, peer);
  announce.info_hash = info_hash;
  announce.port = peer.port;
  for (const auto& [node, token] : lookup.closest) {
    announce.token = token;
    announce.transaction_id = next_transaction_id();
    if (stats != nullptr) ++stats->messages;
    send(node.endpoint, announce.encode(), peer, now);
  }
}

}  // namespace btpub::dht
