// node_id.hpp — 160-bit Kademlia node identifiers (BEP 5).
//
// Mainline DHT nodes live in the same SHA-1 space as infohashes; closeness
// between a node and a torrent is the XOR metric interpreted as a
// big-endian 160-bit integer. Keeping NodeId layout-compatible with
// Sha1Digest lets the overlay reuse the existing digest plumbing (hex
// rendering, hashing, infohash targets) without conversions.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "crypto/sha1.hpp"
#include "net/ip.hpp"

namespace btpub::dht {

/// A 160-bit identifier in the infohash space.
struct NodeId {
  std::array<std::uint8_t, 20> bytes{};

  auto operator<=>(const NodeId&) const = default;

  std::string hex() const;

  /// The infohash-as-target view: lookups for a torrent aim at the
  /// infohash bytes directly.
  static NodeId from_digest(const Sha1Digest& digest) noexcept {
    return NodeId{digest.bytes};
  }
  Sha1Digest to_digest() const noexcept { return Sha1Digest{bytes}; }

  /// Deterministic per-endpoint identity: real clients pick a random id
  /// once and keep it; we derive it from (seed, ip, port) so the same
  /// scenario always grows the same overlay.
  static NodeId for_endpoint(std::uint64_t seed, const Endpoint& endpoint);
};

/// XOR distance between two ids (big-endian magnitude order).
NodeId distance(const NodeId& a, const NodeId& b) noexcept;

/// True when |a - target| < |b - target| under the XOR metric.
bool closer(const NodeId& a, const NodeId& b, const NodeId& target) noexcept;

/// Index of the highest set bit of `d` (159 for the farthest half of the
/// space, 0 for adjacent ids); -1 when d is zero. This is the k-bucket
/// index of a node at distance `d`.
int distance_bit(const NodeId& d) noexcept;

}  // namespace btpub::dht

template <>
struct std::hash<btpub::dht::NodeId> {
  std::size_t operator()(const btpub::dht::NodeId& id) const noexcept {
    std::size_t out = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
      out = (out << 8) | id.bytes[i];
    }
    return out;
  }
};
