// node.hpp — one simulated Mainline DHT node: routing table + rotating
// announce tokens + peer store, behind the BEP 5 query handler.
//
// Tokens (BEP 5): a get_peers response carries an opaque token bound to
// the requester's IP; an announce_peer is only accepted with a token this
// node handed to that IP "recently". We rotate the token secret every
// kTokenRotate and accept the current and previous epoch, exactly the
// behaviour BEP 5 prescribes ("tokens up to ten minutes old are
// accepted" with a five-minute rotation).
//
// The peer store keeps announced (infohash -> peers) mappings with a TTL:
// a peer that stops re-announcing ages out after kPeerTtl. Storage order
// is last-announce order (a refresh moves the entry to the recent end),
// so replies are a pure function of the announce history — no hash-map
// iteration order leaks into any datagram — and the reply window always
// covers the most recent announcers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dht/krpc.hpp"
#include "dht/routing_table.hpp"
#include "util/rng.hpp"

namespace btpub::dht {

/// Rotating announce-token dispenser, shared secret per node.
class TokenJar {
 public:
  static constexpr SimDuration kTokenRotate = minutes(5);

  explicit TokenJar(std::uint64_t secret) : secret_(secret) {}

  /// The 8-byte token currently handed to `ip`.
  std::string token_for(IpAddress ip, SimTime now) const;
  /// Accepts the current epoch's token and the previous one.
  bool valid(std::string_view token, IpAddress ip, SimTime now) const;

 private:
  std::string epoch_token(IpAddress ip, std::int64_t epoch) const;

  std::uint64_t secret_;
};

/// Per-node announced-peer storage with expiry.
class PeerStore {
 public:
  /// A stored peer vanishes this long after its last announce_peer.
  static constexpr SimDuration kPeerTtl = minutes(45);
  /// At most this many peers are returned per get_peers (BEP 5 responses
  /// must fit a UDP datagram).
  static constexpr std::size_t kMaxPeersPerReply = 50;

  /// Records (or refreshes) an announce.
  void announce(const Sha1Digest& info_hash, const Endpoint& peer, SimTime now);

  /// Appends the live peers for `info_hash` (the kMaxPeersPerReply most
  /// recently announced, oldest first) to `out`, which is cleared first.
  /// Expired entries are pruned as a side effect.
  void collect(const Sha1Digest& info_hash, SimTime now,
               std::vector<Endpoint>& out);

  /// Drops every expired entry (housekeeping; collect() already prunes
  /// the infohash it serves).
  void expire(SimTime now);

  std::size_t stored_peers() const noexcept { return stored_; }
  std::size_t stored_infohashes() const noexcept { return store_.size(); }

 private:
  struct Entry {
    Endpoint peer;
    SimTime last_announce = 0;
  };

  // std::map: stable, deterministic iteration for expire(); per-infohash
  // vectors preserve announce order for replies.
  std::map<Sha1Digest, std::vector<Entry>> store_;
  std::size_t stored_ = 0;
};

/// One DHT node. Single-threaded; time is carried in-band like everywhere
/// else in the simulator.
class DhtNode {
 public:
  DhtNode(NodeId id, Endpoint endpoint, std::uint64_t token_secret)
      : endpoint_(endpoint), table_(id), tokens_(token_secret) {}

  const NodeId& id() const noexcept { return table_.self(); }
  const Endpoint& endpoint() const noexcept { return endpoint_; }
  RoutingTable& table() noexcept { return table_; }
  const RoutingTable& table() const noexcept { return table_; }
  PeerStore& store() noexcept { return store_; }
  const TokenJar& tokens() const noexcept { return tokens_; }

  /// Handles one query datagram from `from` at time `now`; returns the
  /// response (or error) datagram. Non-query or malformed datagrams yield
  /// a protocol-error message.
  std::string handle(std::string_view datagram, const Endpoint& from,
                     SimTime now);

  std::uint64_t queries_served() const noexcept { return queries_served_; }

 private:
  Endpoint endpoint_;
  RoutingTable table_;
  TokenJar tokens_;
  PeerStore store_;
  std::vector<Contact> closest_scratch_;
  std::uint64_t queries_served_ = 0;
};

}  // namespace btpub::dht
