#include "dht/node_id.hpp"

namespace btpub::dht {

std::string NodeId::hex() const { return to_digest().hex(); }

NodeId NodeId::for_endpoint(std::uint64_t seed, const Endpoint& endpoint) {
  std::uint8_t material[14];
  for (int i = 0; i < 8; ++i) {
    material[i] = static_cast<std::uint8_t>(seed >> (8 * (7 - i)));
  }
  const std::uint32_t ip = endpoint.ip.value();
  material[8] = static_cast<std::uint8_t>(ip >> 24);
  material[9] = static_cast<std::uint8_t>(ip >> 16);
  material[10] = static_cast<std::uint8_t>(ip >> 8);
  material[11] = static_cast<std::uint8_t>(ip);
  material[12] = static_cast<std::uint8_t>(endpoint.port >> 8);
  material[13] = static_cast<std::uint8_t>(endpoint.port);
  return from_digest(Sha1::hash(std::span<const std::uint8_t>(material)));
}

NodeId distance(const NodeId& a, const NodeId& b) noexcept {
  NodeId d;
  for (std::size_t i = 0; i < d.bytes.size(); ++i) {
    d.bytes[i] = static_cast<std::uint8_t>(a.bytes[i] ^ b.bytes[i]);
  }
  return d;
}

bool closer(const NodeId& a, const NodeId& b, const NodeId& target) noexcept {
  // Byte-lexicographic comparison of the XOR'd big-endian magnitudes,
  // without materialising either distance.
  for (std::size_t i = 0; i < target.bytes.size(); ++i) {
    const std::uint8_t da = static_cast<std::uint8_t>(a.bytes[i] ^ target.bytes[i]);
    const std::uint8_t db = static_cast<std::uint8_t>(b.bytes[i] ^ target.bytes[i]);
    if (da != db) return da < db;
  }
  return false;
}

int distance_bit(const NodeId& d) noexcept {
  for (std::size_t i = 0; i < d.bytes.size(); ++i) {
    if (d.bytes[i] == 0) continue;
    int bit = 7;
    while (((d.bytes[i] >> bit) & 1) == 0) --bit;
    return static_cast<int>((d.bytes.size() - 1 - i) * 8) + bit;
  }
  return -1;
}

}  // namespace btpub::dht
