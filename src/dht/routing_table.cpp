#include "dht/routing_table.hpp"

#include <algorithm>

namespace btpub::dht {

void RoutingTable::observe(const NodeId& id, const Endpoint& endpoint,
                           SimTime now) {
  const int bit = distance_bit(distance(self_, id));
  if (bit < 0) return;  // own id
  Bucket& bucket = buckets_[static_cast<std::size_t>(bit)];

  const auto it = std::find_if(bucket.begin(), bucket.end(),
                               [&](const Contact& c) { return c.id == id; });
  if (it != bucket.end()) {
    // Refresh: move to the most-recently-seen end, keeping the rest in
    // last-seen order.
    Contact refreshed = *it;
    refreshed.endpoint = endpoint;
    refreshed.last_seen = now;
    bucket.erase(it);
    bucket.push_back(refreshed);
    return;
  }
  if (bucket.size() < kBucketSize) {
    bucket.push_back(Contact{id, endpoint, now});
    return;
  }
  // Full: the least-recently-seen contact sits at the front. Evict it only
  // when stale; otherwise the newcomer loses.
  if (now - bucket.front().last_seen > kStaleAfter) {
    bucket.erase(bucket.begin());
    bucket.push_back(Contact{id, endpoint, now});
  }
}

void RoutingTable::remove(const NodeId& id) {
  const int bit = distance_bit(distance(self_, id));
  if (bit < 0) return;
  Bucket& bucket = buckets_[static_cast<std::size_t>(bit)];
  const auto it = std::find_if(bucket.begin(), bucket.end(),
                               [&](const Contact& c) { return c.id == id; });
  if (it != bucket.end()) bucket.erase(it);
}

void RoutingTable::closest(const NodeId& target, std::size_t k,
                           std::vector<Contact>& out) const {
  // A full table holds at most 160*k contacts; gathering and sorting them
  // all keeps the selection obviously total-ordered (XOR distances are
  // unique per id, so the order is deterministic).
  out.clear();
  for (const Bucket& bucket : buckets_) {
    out.insert(out.end(), bucket.begin(), bucket.end());
  }
  std::sort(out.begin(), out.end(), [&](const Contact& a, const Contact& b) {
    return closer(a.id, b.id, target);
  });
  if (out.size() > k) out.resize(k);
}

std::size_t RoutingTable::size() const noexcept {
  std::size_t n = 0;
  for (const Bucket& bucket : buckets_) n += bucket.size();
  return n;
}

bool RoutingTable::contains(const NodeId& id) const {
  const int bit = distance_bit(distance(self_, id));
  if (bit < 0) return false;
  const Bucket& bucket = buckets_[static_cast<std::size_t>(bit)];
  return std::any_of(bucket.begin(), bucket.end(),
                     [&](const Contact& c) { return c.id == id; });
}

std::size_t RoutingTable::active_buckets() const noexcept {
  std::size_t n = 0;
  for (const Bucket& bucket : buckets_) n += bucket.empty() ? 0 : 1;
  return n;
}

}  // namespace btpub::dht
