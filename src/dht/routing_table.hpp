// routing_table.hpp — Kademlia k-bucket routing table (BEP 5).
//
// 160 buckets indexed by the bit length of the XOR distance to the owning
// node's id; bucket i holds up to k contacts whose distance has its highest
// set bit at position i. Within a bucket, contacts are kept ordered by
// last-seen time (most recently seen last — the classic Kademlia LRU
// discipline). A full bucket evicts its least-recently-seen contact only
// when that contact has gone stale (no traffic for kStaleAfter); otherwise
// the newcomer is dropped, which is what gives the DHT its resistance to
// table-flushing churn. All policies are deterministic: no liveness pings,
// no randomised replacement.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "dht/node_id.hpp"
#include "util/time.hpp"

namespace btpub::dht {

/// One routing-table contact.
struct Contact {
  NodeId id{};
  Endpoint endpoint{};
  SimTime last_seen = 0;
};

class RoutingTable {
 public:
  /// Contacts per bucket (the Mainline k).
  static constexpr std::size_t kBucketSize = 8;
  /// A contact this quiet may be evicted in favour of a newcomer.
  static constexpr SimDuration kStaleAfter = minutes(15);

  explicit RoutingTable(NodeId self) : self_(self) {}

  const NodeId& self() const noexcept { return self_; }

  /// Records traffic from a node: refreshes its last-seen slot or inserts
  /// it, applying the full-bucket eviction policy. The own id is ignored.
  void observe(const NodeId& id, const Endpoint& endpoint, SimTime now);

  /// Removes a contact (used when an RPC to it times out).
  void remove(const NodeId& id);

  /// Appends up to `k` contacts closest to `target` (XOR order, closest
  /// first) to `out`, which is cleared first.
  void closest(const NodeId& target, std::size_t k,
               std::vector<Contact>& out) const;

  std::size_t size() const noexcept;
  bool contains(const NodeId& id) const;

  /// Number of non-empty buckets (diagnostic; the perf bench reports it).
  std::size_t active_buckets() const noexcept;

 private:
  using Bucket = std::vector<Contact>;  // last-seen ascending

  NodeId self_;
  std::array<Bucket, 160> buckets_;
};

}  // namespace btpub::dht
