#include "dht/krpc.hpp"

#include <cstring>

#include "bencode/bencode.hpp"

namespace btpub::dht {
namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
}

std::string_view bytes_view(const std::array<std::uint8_t, 20>& bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

/// Reads a 20-byte string value into an id/digest array; false on any
/// type or length mismatch.
bool read_id(const bencode::Value* value, std::array<std::uint8_t, 20>& out) {
  if (value == nullptr || !value->is_string()) return false;
  const std::string& s = value->as_string();
  if (s.size() != out.size()) return false;
  std::memcpy(out.data(), s.data(), out.size());
  return true;
}

}  // namespace

std::string_view to_string(Method method) {
  switch (method) {
    case Method::Ping: return "ping";
    case Method::FindNode: return "find_node";
    case Method::GetPeers: return "get_peers";
    case Method::AnnouncePeer: return "announce_peer";
  }
  return "ping";
}

// ---- compact encodings ----------------------------------------------------

void append_compact_node(std::string& out, const NodeInfo& node) {
  out.append(bytes_view(node.id.bytes));
  append_compact_peer(out, node.endpoint);
}

std::vector<NodeInfo> parse_compact_nodes(std::string_view blob) {
  std::vector<NodeInfo> nodes;
  if (blob.size() % 26 != 0) return nodes;
  nodes.reserve(blob.size() / 26);
  for (std::size_t at = 0; at < blob.size(); at += 26) {
    NodeInfo node;
    std::memcpy(node.id.bytes.data(), blob.data() + at, 20);
    const auto endpoint = parse_compact_peer(blob.substr(at + 20, 6));
    node.endpoint = *endpoint;  // always present: the slice is 6 bytes
    nodes.push_back(node);
  }
  return nodes;
}

void append_compact_peer(std::string& out, const Endpoint& peer) {
  put_u32(out, peer.ip.value());
  put_u16(out, peer.port);
}

std::optional<Endpoint> parse_compact_peer(std::string_view blob) {
  if (blob.size() != 6) return std::nullopt;
  const auto u8 = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(blob[i]));
  };
  Endpoint peer;
  peer.ip = IpAddress((u8(0) << 24) | (u8(1) << 16) | (u8(2) << 8) | u8(3));
  peer.port = static_cast<std::uint16_t>((u8(4) << 8) | u8(5));
  return peer;
}

// ---- query ----------------------------------------------------------------

std::string Query::encode() const {
  std::string out;
  encode_into(out);
  return out;
}

void Query::encode_into(std::string& out) const {
  out.clear();
  bencode::Writer w(out);
  w.begin_dict();
  w.key("a");
  {
    w.begin_dict();
    w.key("id");
    w.string(bytes_view(sender_id.bytes));
    if (method == Method::GetPeers || method == Method::AnnouncePeer) {
      w.key("info_hash");
      w.string(bytes_view(info_hash.bytes));
    }
    if (method == Method::AnnouncePeer) {
      w.key("port");
      w.integer(port);
    }
    if (method == Method::FindNode) {
      w.key("target");
      w.string(bytes_view(target.bytes));
    }
    if (method == Method::AnnouncePeer) {
      w.key("token");
      w.string(token);
    }
    w.end();
  }
  w.key("q");
  w.string(to_string(method));
  if (read_only) {
    w.key("ro");
    w.integer(1);
  }
  w.key("t");
  w.string(transaction_id);
  w.key("y");
  w.string("q");
  w.end();
}

std::optional<Query> Query::decode(std::string_view datagram) {
  bencode::Value root;
  try {
    root = bencode::decode(datagram);
  } catch (const bencode::Error&) {
    return std::nullopt;
  }
  if (!root.is_dict()) return std::nullopt;
  const auto y = root.find_string("y");
  if (!y || *y != "q") return std::nullopt;
  const auto t = root.find_string("t");
  const auto q = root.find_string("q");
  if (!t || !q) return std::nullopt;

  Query query;
  query.transaction_id = *t;
  if (*q == "ping") {
    query.method = Method::Ping;
  } else if (*q == "find_node") {
    query.method = Method::FindNode;
  } else if (*q == "get_peers") {
    query.method = Method::GetPeers;
  } else if (*q == "announce_peer") {
    query.method = Method::AnnouncePeer;
  } else {
    return std::nullopt;
  }
  if (const auto ro = root.find_integer("ro")) query.read_only = *ro != 0;

  const bencode::Value* args = root.find("a");
  if (args == nullptr || !args->is_dict()) return std::nullopt;
  if (!read_id(args->find("id"), query.sender_id.bytes)) return std::nullopt;
  switch (query.method) {
    case Method::Ping:
      break;
    case Method::FindNode:
      if (!read_id(args->find("target"), query.target.bytes)) return std::nullopt;
      break;
    case Method::GetPeers:
      if (!read_id(args->find("info_hash"), query.info_hash.bytes)) {
        return std::nullopt;
      }
      break;
    case Method::AnnouncePeer: {
      if (!read_id(args->find("info_hash"), query.info_hash.bytes)) {
        return std::nullopt;
      }
      const auto port = args->find_integer("port");
      if (!port || *port < 0 || *port > 0xffff) return std::nullopt;
      query.port = static_cast<std::uint16_t>(*port);
      const auto token = args->find_string("token");
      if (!token) return std::nullopt;
      query.token = *token;
      break;
    }
  }
  return query;
}

// ---- response -------------------------------------------------------------

std::string Response::encode() const {
  std::string out;
  encode_into(out);
  return out;
}

void Response::encode_into(std::string& out) const {
  out.clear();
  bencode::Writer w(out);
  w.begin_dict();
  w.key("r");
  {
    w.begin_dict();
    w.key("id");
    w.string(bytes_view(sender_id.bytes));
    if (!nodes.empty()) {
      w.key("nodes");
      w.string_header(nodes.size() * 26);
      for (const NodeInfo& node : nodes) append_compact_node(out, node);
    }
    if (!token.empty()) {
      w.key("token");
      w.string(token);
    }
    if (!peers.empty()) {
      w.key("values");
      w.begin_list();
      for (const Endpoint& peer : peers) {
        w.string_header(6);
        append_compact_peer(out, peer);
      }
      w.end();
    }
    w.end();
  }
  w.key("t");
  w.string(transaction_id);
  w.key("y");
  w.string("r");
  w.end();
}

std::optional<Response> Response::decode(std::string_view datagram) {
  bencode::Value root;
  try {
    root = bencode::decode(datagram);
  } catch (const bencode::Error&) {
    return std::nullopt;
  }
  if (!root.is_dict()) return std::nullopt;
  const auto y = root.find_string("y");
  if (!y || *y != "r") return std::nullopt;
  const auto t = root.find_string("t");
  if (!t) return std::nullopt;
  const bencode::Value* body = root.find("r");
  if (body == nullptr || !body->is_dict()) return std::nullopt;

  Response response;
  response.transaction_id = *t;
  if (!read_id(body->find("id"), response.sender_id.bytes)) return std::nullopt;
  if (const auto nodes = body->find_string("nodes")) {
    if (nodes->size() % 26 != 0) return std::nullopt;
    response.nodes = parse_compact_nodes(*nodes);
  }
  if (const auto token = body->find_string("token")) response.token = *token;
  if (const bencode::Value* values = body->find("values")) {
    if (!values->is_list()) return std::nullopt;
    for (const bencode::Value& entry : values->as_list()) {
      if (!entry.is_string()) return std::nullopt;
      const auto peer = parse_compact_peer(entry.as_string());
      if (!peer) return std::nullopt;
      response.peers.push_back(*peer);
    }
  }
  return response;
}

// ---- error ----------------------------------------------------------------

std::string ErrorMessage::encode() const {
  std::string out;
  bencode::Writer w(out);
  w.begin_dict();
  w.key("e");
  w.begin_list();
  w.integer(code);
  w.string(message);
  w.end();
  w.key("t");
  w.string(transaction_id);
  w.key("y");
  w.string("e");
  w.end();
  return out;
}

std::optional<ErrorMessage> ErrorMessage::decode(std::string_view datagram) {
  bencode::Value root;
  try {
    root = bencode::decode(datagram);
  } catch (const bencode::Error&) {
    return std::nullopt;
  }
  if (!root.is_dict()) return std::nullopt;
  const auto y = root.find_string("y");
  if (!y || *y != "e") return std::nullopt;
  const auto t = root.find_string("t");
  if (!t) return std::nullopt;
  const bencode::Value* e = root.find("e");
  if (e == nullptr || !e->is_list()) return std::nullopt;
  const bencode::List& list = e->as_list();
  if (list.size() != 2 || !list[0].is_integer() || !list[1].is_string()) {
    return std::nullopt;
  }
  ErrorMessage error;
  error.transaction_id = *t;
  error.code = list[0].as_integer();
  error.message = list[1].as_string();
  return error;
}

std::optional<char> message_kind(std::string_view datagram) {
  try {
    const bencode::Value root = bencode::decode(datagram);
    if (!root.is_dict()) return std::nullopt;
    const auto y = root.find_string("y");
    if (!y || y->size() != 1) return std::nullopt;
    const char kind = (*y)[0];
    if (kind != 'q' && kind != 'r' && kind != 'e') return std::nullopt;
    return kind;
  } catch (const bencode::Error&) {
    return std::nullopt;
  }
}

}  // namespace btpub::dht
