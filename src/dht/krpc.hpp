// krpc.hpp — the KRPC message layer of Mainline DHT (BEP 5).
//
// Every DHT datagram is a single bencoded dictionary: a query ("y":"q"
// carrying "q" = ping/find_node/get_peers/announce_peer and its arguments),
// a response ("y":"r") or an error ("y":"e" with [code, message]).
// Transaction ids correlate a response with its query; the overlay's RPC
// layer enforces the echo. Encoding goes through bencode::Writer so a warm
// buffer makes the hot lookup path allocation-light, exactly like the
// tracker's announce fast path; decoding reuses the tree parser because
// queries arrive from untrusted peers and need full validation anyway.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dht/node_id.hpp"
#include "net/ip.hpp"

namespace btpub::dht {

/// The four BEP 5 query methods.
enum class Method : std::uint8_t { Ping, FindNode, GetPeers, AnnouncePeer };

std::string_view to_string(Method method);

/// (id, endpoint) pair as carried in "nodes" compact node info.
struct NodeInfo {
  NodeId id{};
  Endpoint endpoint{};

  friend bool operator==(const NodeInfo&, const NodeInfo&) = default;
};

/// 26-byte-per-node compact node info (BEP 5): 20 id bytes, 4 ip, 2 port.
void append_compact_node(std::string& out, const NodeInfo& node);
std::vector<NodeInfo> parse_compact_nodes(std::string_view blob);

/// 6-byte compact peer info (same layout the tracker uses).
void append_compact_peer(std::string& out, const Endpoint& peer);
std::optional<Endpoint> parse_compact_peer(std::string_view blob);

/// A KRPC query message.
struct Query {
  std::string transaction_id;
  Method method = Method::Ping;
  NodeId sender_id{};
  /// find_node: "target" — the id being located.
  NodeId target{};
  /// get_peers / announce_peer: "info_hash".
  Sha1Digest info_hash{};
  /// announce_peer arguments.
  std::uint16_t port = 0;
  std::string token;
  /// BEP 43 read-only flag: receivers must not add the sender to their
  /// routing tables. The crawler vantage sets it so repeated measurement
  /// walks never pollute the overlay they observe.
  bool read_only = false;

  std::string encode() const;
  void encode_into(std::string& out) const;
  static std::optional<Query> decode(std::string_view datagram);
};

/// A KRPC response message.
struct Response {
  std::string transaction_id;
  NodeId sender_id{};
  /// find_node / get_peers: compact nodes closer to the target.
  std::vector<NodeInfo> nodes;
  /// get_peers: stored peers ("values"), when the node has any.
  std::vector<Endpoint> peers;
  /// get_peers: write token for a later announce_peer.
  std::string token;

  std::string encode() const;
  void encode_into(std::string& out) const;
  static std::optional<Response> decode(std::string_view datagram);
};

/// A KRPC error message ([code, message]).
struct ErrorMessage {
  std::string transaction_id;
  std::int64_t code = 201;
  std::string message;

  std::string encode() const;
  static std::optional<ErrorMessage> decode(std::string_view datagram);
};

/// BEP 5 error codes used by the node implementation.
inline constexpr std::int64_t kErrorGeneric = 201;
inline constexpr std::int64_t kErrorProtocol = 203;
inline constexpr std::int64_t kErrorUnknownMethod = 204;

/// Peeks at the message kind ('q', 'r' or 'e') without a full decode;
/// nullopt for malformed bencode or a missing/invalid "y" key.
std::optional<char> message_kind(std::string_view datagram);

}  // namespace btpub::dht
