#include "dht/node.hpp"

#include <algorithm>

namespace btpub::dht {

// ---- tokens ---------------------------------------------------------------

std::string TokenJar::epoch_token(IpAddress ip, std::int64_t epoch) const {
  const std::uint64_t value = derive_seed(
      secret_, static_cast<std::uint64_t>(epoch), ip.value());
  std::string token(8, '\0');
  for (int i = 0; i < 8; ++i) {
    token[static_cast<std::size_t>(i)] =
        static_cast<char>(value >> (8 * (7 - i)));
  }
  return token;
}

std::string TokenJar::token_for(IpAddress ip, SimTime now) const {
  return epoch_token(ip, now / kTokenRotate);
}

bool TokenJar::valid(std::string_view token, IpAddress ip, SimTime now) const {
  const std::int64_t epoch = now / kTokenRotate;
  if (token == epoch_token(ip, epoch)) return true;
  return epoch > 0 && token == epoch_token(ip, epoch - 1);
}

// ---- peer store -----------------------------------------------------------

void PeerStore::announce(const Sha1Digest& info_hash, const Endpoint& peer,
                         SimTime now) {
  std::vector<Entry>& entries = store_[info_hash];
  const auto it = std::find_if(entries.begin(), entries.end(),
                               [&](const Entry& e) { return e.peer == peer; });
  if (it != entries.end()) {
    // Refresh moves the entry to the recent end, keeping the vector in
    // last-announce order — the reply window below depends on it.
    entries.erase(it);
  } else {
    ++stored_;
  }
  entries.push_back(Entry{peer, now});
}

void PeerStore::collect(const Sha1Digest& info_hash, SimTime now,
                        std::vector<Endpoint>& out) {
  out.clear();
  const auto it = store_.find(info_hash);
  if (it == store_.end()) return;
  std::vector<Entry>& entries = it->second;
  const std::size_t before = entries.size();
  std::erase_if(entries, [&](const Entry& entry) {
    return now - entry.last_announce > kPeerTtl;
  });
  stored_ -= before - entries.size();
  if (entries.empty()) {
    store_.erase(it);
    return;
  }
  // Reply with the *most recently announced* peers (entries are kept in
  // last-announce order): a fresh arrival is always visible to the next
  // lookup even when the swarm outgrows the reply cap, and peers that
  // stopped re-announcing fall out of the window before they expire.
  const std::size_t n = std::min(entries.size(), kMaxPeersPerReply);
  out.reserve(n);
  for (std::size_t i = entries.size() - n; i < entries.size(); ++i) {
    out.push_back(entries[i].peer);
  }
}

void PeerStore::expire(SimTime now) {
  for (auto it = store_.begin(); it != store_.end();) {
    std::vector<Entry>& entries = it->second;
    const std::size_t before = entries.size();
    std::erase_if(entries, [&](const Entry& entry) {
      return now - entry.last_announce > kPeerTtl;
    });
    stored_ -= before - entries.size();
    it = entries.empty() ? store_.erase(it) : std::next(it);
  }
}

// ---- node -----------------------------------------------------------------

std::string DhtNode::handle(std::string_view datagram, const Endpoint& from,
                            SimTime now) {
  const auto query = Query::decode(datagram);
  if (!query) {
    ErrorMessage error;
    error.code = kErrorProtocol;
    error.message = "malformed query";
    // Best effort at echoing a transaction id so the sender can correlate.
    if (const auto kind = message_kind(datagram); kind == 'q') {
      error.code = kErrorUnknownMethod;
      error.message = "unknown method";
    }
    return error.encode();
  }
  ++queries_served_;
  // Every well-formed query is evidence the sender is alive; BEP 43
  // read-only senders are explicitly not added.
  if (!query->read_only) table_.observe(query->sender_id, from, now);

  Response response;
  response.transaction_id = query->transaction_id;
  response.sender_id = id();
  switch (query->method) {
    case Method::Ping:
      break;
    case Method::FindNode: {
      table_.closest(query->target, RoutingTable::kBucketSize, closest_scratch_);
      for (const Contact& contact : closest_scratch_) {
        response.nodes.push_back(NodeInfo{contact.id, contact.endpoint});
      }
      break;
    }
    case Method::GetPeers: {
      const NodeId target = NodeId::from_digest(query->info_hash);
      store_.collect(query->info_hash, now, response.peers);
      // Nodes are returned alongside any values (the BEP 5 errata modern
      // clients implement): withholding them would terminate every lookup
      // at the first node holding peers, so announces would pile up there
      // instead of spreading to the k genuinely closest nodes.
      table_.closest(target, RoutingTable::kBucketSize, closest_scratch_);
      for (const Contact& contact : closest_scratch_) {
        response.nodes.push_back(NodeInfo{contact.id, contact.endpoint});
      }
      response.token = tokens_.token_for(from.ip, now);
      break;
    }
    case Method::AnnouncePeer: {
      if (!tokens_.valid(query->token, from.ip, now)) {
        ErrorMessage error;
        error.transaction_id = query->transaction_id;
        error.code = kErrorProtocol;
        error.message = "bad token";
        return error.encode();
      }
      // The announced peer is the sender's IP at the port it asked for —
      // BEP 5 stores the source address, which is what defeats the
      // spoofed-IP trick that works on trackers (the paper's fake
      // publishers): you cannot announce an address you don't hold.
      store_.announce(query->info_hash, Endpoint{from.ip, query->port}, now);
      break;
    }
  }
  return response.encode();
}

}  // namespace btpub::dht
