// scenario.hpp — everything that configures one simulated ecosystem plus
// the preset scenarios used by the benches.
//
// Presets:
//   * pb10()      — the paper's main dataset: month-long Pirate-Bay-style
//                   crawl with usernames, IPs and periodic monitoring, at
//                   roughly 1:7 of the real portal's publishing volume.
//   * pb09()      — same portal, single tracker query per torrent.
//   * mn08()      — Mininova-style: no usernames, periodic monitoring.
//   * signature() — full-scale publishing *rates* with a reduced publisher
//                   head-count and a shorter window; used for the Figure-4
//                   seeding-signature study, where per-publisher temporal
//                   density (parallel torrents, aggregated sessions) must
//                   match the paper rather than the portal's total volume.
//   * quick()     — small and fast; unit/integration tests and examples.
//   * spoofed()   — quick() plus fake publishers that inject spoofed decoy
//                   addresses into their tracker announces; the DHT
//                   cross-check study's scenario.
#pragma once

#include <cstdint>
#include <string>

#include "crawler/crawler.hpp"
#include "crawler/dht_crawler.hpp"
#include "publisher/population.hpp"
#include "tracker/tracker.hpp"
#include "util/time.hpp"

namespace btpub {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  std::string name = "pb10";
  SimDuration window = days(30);

  /// Worker threads for the ecosystem build (publication preparation:
  /// metainfo hashing, swarm generation, seed-session planning); 0 =
  /// hardware concurrency. The generated world is byte-identical for every
  /// value — each publication event draws from its own derive_seed
  /// substream and results merge back in event order. The crawl has its
  /// own knob (crawler.threads).
  std::size_t threads = 0;

  PopulationConfig population;
  TrackerConfig tracker;
  CrawlerConfig crawler;
  DhtCrawlerConfig dht_crawler;

  // Swarm demand model.
  double downloader_nat_fraction = 0.35;
  SimDuration decay_tau = days(1.5);
  /// Fake swarms: catchy titles attract their victims fast, and the portal
  /// removes the listing within a day or two, so the arrival process both
  /// decays quicker and is truncated earlier.
  SimDuration fake_decay_tau = hours(14);
  SimDuration median_download_time = hours(2.5);
  double abort_probability = 0.15;
  double seed_probability = 0.45;
  SimDuration mean_seed_time = hours(3);
  /// Fraction of downloader draws taken from the sticky consumer pool.
  double sticky_consumer_bias = 0.02;

  // Moderation of fake content.
  SimDuration moderation_mean_delay = hours(30);
  SimDuration moderation_min_delay = hours(2);
  /// Fraction of fake listings moderation never catches (the paper notes
  /// the portals' countermeasure "does not seem to be enough effective").
  double moderation_miss_probability = 0.0;

  /// How many "other seeders" top publishers wait for is a per-class
  /// seeding-policy knob; this global floor keeps every genuine swarm
  /// seeded long enough to bootstrap.
  SimDuration cross_post_lead_min = hours(12);
  SimDuration cross_post_lead_max = hours(72);

  /// Spoofed decoy addresses a fake-farm publisher injects into the
  /// tracker per torrent (claimed seeders drawn from a hosting-style
  /// block). The addresses are not actually held: unreachable to probes
  /// and absent from the DHT, whose nodes store the announce *source*
  /// address — the disagreement the cross-check report flags. 0 disables
  /// (the default; every preexisting scenario is bit-unchanged).
  std::size_t fake_spoofed_peers = 0;

  static ScenarioConfig pb10(std::uint64_t seed = 42);
  static ScenarioConfig pb09(std::uint64_t seed = 42);
  static ScenarioConfig mn08(std::uint64_t seed = 42);
  static ScenarioConfig signature(std::uint64_t seed = 42);
  static ScenarioConfig quick(std::uint64_t seed = 42);
  static ScenarioConfig spoofed(std::uint64_t seed = 42);
};

}  // namespace btpub
