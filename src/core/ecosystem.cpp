#include "core/ecosystem.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "crawler/crawler.hpp"
#include "crawler/dht_crawler.hpp"
#include "torrent/metainfo.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace btpub {
namespace {

/// Wall-clock seconds since `start` — the BuildStats phase clock.
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// BEP 5 clients refresh their announce well inside the peer store's TTL
/// (dht::PeerStore::kPeerTtl); this is the simulated cadence.
constexpr SimDuration kDhtReannounce = minutes(30);
static_assert(kDhtReannounce < dht::PeerStore::kPeerTtl);

/// Safety clamp on one publisher's backfilled history (a runaway
/// historical_rate * lifetime product would otherwise stall the build).
/// Hitting it is recorded in BuildStats and warned about — a silently
/// truncated history would skew the Table-4 longitudinal study.
constexpr std::size_t kBackfillEventCap = 200000;

// Substream tags: every random stream the ecosystem owns is keyed off the
// scenario seed through derive_seed with one of these, so no two phases
// can correlate and no phase's draw count perturbs another. The spoof,
// overlay and DHT-crawl tags predate this scheme and are kept verbatim.
constexpr std::uint64_t kTagPublicationEvents = 0x9E17ull;  ///< + publisher id
constexpr std::uint64_t kTagPublication = 0x6B01ull;        ///< + event index
constexpr std::uint64_t kTagSpoofedDecoys = 0x5F00Full;     ///< + event index
constexpr std::uint64_t kTagDhtOverlay = 0xD47ull;
constexpr std::uint64_t kTagDhtCrawl = 0xDC13ull;
constexpr std::uint64_t kTagTrackerCrawlState = 0x7214CBull;
constexpr std::uint64_t kTagCrawler = 0xC4A37E5ull;

}  // namespace

Ecosystem::Ecosystem(ScenarioConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      catalog_(IspCatalog::standard()),
      portal_("the-sim-bay"),
      panel_(AppraisalPanel::standard()) {}

void Ecosystem::build() {
  if (built_) throw std::logic_error("Ecosystem::build called twice");
  built_ = true;

  auto clock = std::chrono::steady_clock::now();
  Rng population_rng = rng_.fork();
  population_ = build_population(config_.population, catalog_, population_rng);

  tracker_ = std::make_unique<Tracker>(config_.tracker, rng_.fork());

  consumers_ = std::make_unique<ConsumerPool>(catalog_);
  consumers_->set_sticky_bias(config_.sticky_consumer_bias);
  for (const auto& [endpoint, weight] : population_.sticky_consumers) {
    consumers_->add_sticky(endpoint, weight);
  }
  swarm_generator_ = std::make_unique<SwarmGenerator>(*consumers_);
  build_stats_.seconds_population = seconds_since(clock);

  clock = std::chrono::steady_clock::now();
  backfill_history();
  build_stats_.seconds_backfill = seconds_since(clock);

  generate_publications();
}

void Ecosystem::backfill_history() {
  // Longitudinal history (§5.2): publishers existed before the window; the
  // portal's user pages carry their full record. Fake accounts need no
  // history — their pages are purged after detection anyway.
  const double window_days = to_days(config_.window);
  for (const Publisher& p : population_.publishers) {
    if (p.is_fake_farm()) continue;
    const double days_before = p.lifetime_days - window_days;
    if (days_before <= 0.0) continue;
    const double mean = p.historical_rate * days_before;
    const std::size_t drawn = sample_poisson(mean, rng_);
    const std::size_t n = std::min(drawn, kBackfillEventCap);
    if (drawn > n) {
      ++build_stats_.backfill_clamped_publishers;
      build_stats_.backfill_clamped_events += drawn - n;
      std::fprintf(stderr,
                   "[btpub] warning: publisher %u backfill clamped "
                   "(%zu of %zu historical events kept)\n",
                   p.id, n, drawn);
    }
    std::vector<SimTime> times;
    times.reserve(n + 1);
    for (std::size_t i = 0; i < n; ++i) {
      times.push_back(-static_cast<SimTime>(rng_.uniform() * days_before *
                                            static_cast<double>(kDay)));
    }
    // Pin the very first appearance so the lifetime is exact.
    times.push_back(-static_cast<SimTime>(days_before * static_cast<double>(kDay)));
    std::sort(times.begin(), times.end());
    for (const SimTime t : times) {
      portal_.record_historical_publish(p.usernames.front(), t);
    }
  }
}

void Ecosystem::generate_publications() {
  const std::size_t n_threads = ThreadPool::resolve_threads(config_.threads);
  build_stats_.build_threads = n_threads;

  // Phase 1 — parallel draw: every publisher owns a derive_seed substream,
  // so its event count and times depend on nothing but (scenario seed,
  // publisher id). Shards cover contiguous publisher spans and concatenate
  // in span order, reproducing the serial iteration's pre-sort sequence —
  // so the sort (a total order over its deterministic input) and the
  // ordinals below come out byte-identical at any thread count.
  auto clock = std::chrono::steady_clock::now();
  std::vector<PublicationEvent> events;
  const double window_days = to_days(config_.window);
  {
    const auto shards = sharded_scan(
        population_.publishers.size(), n_threads,
        [this, window_days](std::size_t begin, std::size_t end) {
          std::vector<PublicationEvent> out;
          for (std::size_t p = begin; p < end; ++p) {
            const Publisher& publisher = population_.publishers[p];
            Rng event_rng(derive_seed(config_.seed, kTagPublicationEvents,
                                      static_cast<std::uint64_t>(publisher.id)));
            const double mean = publisher.window_rate * window_days;
            const std::size_t n = sample_poisson(mean, event_rng);
            for (std::size_t i = 0; i < n; ++i) {
              const SimTime at = static_cast<SimTime>(
                  event_rng.uniform() * static_cast<double>(config_.window));
              out.push_back(PublicationEvent{at, publisher.id, 0});
            }
          }
          return out;
        });
    for (const auto& shard : shards) {
      events.insert(events.end(), shard.begin(), shard.end());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const PublicationEvent& a, const PublicationEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.publisher < b.publisher;
            });
  // The per-publisher publication ordinal (IP rotation, username cycling)
  // is a function of the sorted order, fixed before any parallel work.
  std::unordered_map<PublisherId, std::uint32_t> ordinals;
  for (PublicationEvent& event : events) {
    event.ordinal = ordinals[event.publisher]++;
  }
  build_stats_.publication_events = events.size();
  build_stats_.seconds_draw = seconds_since(clock);

  // Phase 2 — parallel, heavy: prepare every publication (metainfo
  // hashing, swarm generation, seed-session planning, decoy injection,
  // finalize). prepare_publication is a pure function of (event, index)
  // given the frozen population/config, drawing only from the event's own
  // substream — every draft lands in its own slot, so completion order is
  // irrelevant and any thread count yields identical drafts. Spans are
  // oversubscribed 16x so one monster swarm cannot serialise a shard's
  // worth of events behind it.
  clock = std::chrono::steady_clock::now();
  std::vector<PublicationDraft> drafts(events.size());
  parallel_for_each_index(
      events.size(), n_threads,
      [this, &events, &drafts](std::size_t i) {
        drafts[i] = prepare_publication(events[i], i);
      },
      n_threads * 16);
  build_stats_.seconds_prepare = seconds_since(clock);

  // Phase 3 — serial, cheap: commit in event order. Portal ids, tracker
  // registration and the truth table are assigned here, so they come out
  // exactly as a sequential build would produce them.
  clock = std::chrono::steady_clock::now();
  swarms_.reserve(events.size());
  truths_.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    commit_publication(events[i], drafts[i]);
  }
  build_stats_.seconds_commit = seconds_since(clock);
}

Ecosystem::PublicationDraft Ecosystem::prepare_publication(
    const PublicationEvent& event, std::size_t index) const {
  const Publisher& publisher = population_.by_id(event.publisher);
  const SimTime when = event.at;
  Rng rng(derive_seed(config_.seed, kTagPublication,
                      static_cast<std::uint64_t>(index)));

  PublicationDraft draft;
  PublishedWork work = publisher.make_work(when, event.ordinal, rng);

  Metainfo metainfo = Metainfo::make(
      tracker_->announce_url(), work.title, work.files,
      /*piece_length=*/256 * 1024,
      /*salt=*/std::to_string(index) + "|" + work.username);

  draft.request.title = work.title;
  draft.request.category = work.category;
  draft.request.language = work.language;
  draft.request.username = work.username;
  draft.request.textbox = work.textbox;
  draft.request.torrent_bytes = metainfo.encode();
  draft.request.infohash = metainfo.infohash();
  draft.request.size_bytes = metainfo.total_size();
  draft.request.payload = work.payload;

  // Moderation: fake content gets spotted and removed after a delay —
  // unless it slips through entirely.
  draft.removal = -1;
  if (work.payload != PayloadKind::Genuine &&
      !rng.chance(config_.moderation_miss_probability)) {
    const auto delay = std::max<SimDuration>(
        config_.moderation_min_delay,
        static_cast<SimDuration>(
            rng.exponential(static_cast<double>(config_.moderation_mean_delay))));
    draft.removal = when + delay;
  }

  // Swarm birth: cross-posted content already lives on another portal.
  SimTime birth = when;
  if (work.cross_posted) {
    birth = when - static_cast<SimDuration>(
                       rng.uniform(static_cast<double>(config_.cross_post_lead_min),
                                    static_cast<double>(config_.cross_post_lead_max)));
  }

  const SimTime hard_end = config_.window + days(2);
  SwarmSpec spec;
  spec.birth = birth;
  spec.expected_downloads = work.expected_downloads;
  spec.decay_tau = work.payload != PayloadKind::Genuine ? config_.fake_decay_tau
                                                         : config_.decay_tau;
  spec.arrivals_end = draft.removal >= 0
                          ? std::min<SimTime>(draft.removal, config_.window)
                          : config_.window;
  spec.fake = work.payload != PayloadKind::Genuine;
  spec.nat_fraction = config_.downloader_nat_fraction;
  spec.median_download_time = config_.median_download_time;
  spec.abort_probability = config_.abort_probability;
  spec.seed_probability = config_.seed_probability;
  spec.mean_seed_time = config_.mean_seed_time;

  auto swarm = std::make_unique<Swarm>(metainfo.infohash(), metainfo.piece_count(),
                                       birth);
  swarm_generator_->generate(*swarm, spec, rng);

  // When does the k-th non-publisher seeder appear? (the publisher's
  // leave condition)
  constexpr SimTime kNever = std::numeric_limits<SimTime>::max();
  SimTime enough_seeders_at = kNever;
  const std::uint32_t k = publisher.seeding.leave_after_other_seeders;
  if (k > 0 && !spec.fake) {
    std::vector<SimTime> completions;
    for (const PeerSession& s : swarm->sessions()) {
      if (s.complete_at < s.depart) completions.push_back(s.complete_at);
    }
    if (completions.size() >= k) {
      std::nth_element(completions.begin(), completions.begin() + (k - 1),
                       completions.end());
      enough_seeders_at = completions[k - 1];
    }
  }

  draft.seed_sessions =
      plan_seed_sessions(publisher.seeding, birth, enough_seeders_at,
                         draft.removal, hard_end, publisher.online_start, rng);
  for (const Interval& session : draft.seed_sessions) {
    PeerSession s;
    s.endpoint = work.endpoint;
    s.arrive = session.start;
    s.depart = session.end;
    s.complete_at = session.start;  // the publisher always holds all pieces
    s.nat = work.endpoint_nat;
    s.is_publisher = true;
    swarm->add_session(s);
  }

  // Decoy injection: a fake-farm announcer claims extra "seeders" at
  // addresses it does not hold — sequential IPs from a hosting-style
  // block, the pattern the paper's spoofed swarms showed. The tracker
  // believes them; probes and the DHT (source-address storage) never see
  // them. Drawn from an own substream so enabling the knob leaves every
  // other draw untouched.
  if (publisher.is_fake_farm() && config_.fake_spoofed_peers > 0) {
    Rng spoof_rng(derive_seed(config_.seed, kTagSpoofedDecoys,
                              static_cast<std::uint64_t>(index)));
    const SimTime stop = draft.removal >= 0 ? draft.removal : hard_end;
    const auto base = static_cast<std::uint32_t>(
        spoof_rng.uniform_int(0x0B000000, 0xDF000000));
    for (std::size_t i = 0; i < config_.fake_spoofed_peers; ++i) {
      PeerSession s;
      s.endpoint = Endpoint{IpAddress(base + static_cast<std::uint32_t>(i)),
                            static_cast<std::uint16_t>(
                                6881 + spoof_rng.uniform_int(0, 8))};
      s.arrive = birth + static_cast<SimDuration>(spoof_rng.uniform_int(
                             0, static_cast<std::int64_t>(minutes(30))));
      s.depart = std::max<SimTime>(stop, s.arrive + hours(1));
      s.complete_at = s.arrive;  // decoys pose as seeders
      s.nat = true;              // unreachable, like any address not held
      s.spoofed = true;
      swarm->add_session(s);
    }
  }

  swarm->finalize();

  draft.publisher_ip = work.endpoint.ip;
  draft.publisher_nat = work.endpoint_nat;
  draft.cross_posted = work.cross_posted;
  draft.swarm = std::move(swarm);
  return draft;
}

TorrentId Ecosystem::commit_publication(const PublicationEvent& event,
                                        PublicationDraft& draft) {
  const Publisher& publisher = population_.by_id(event.publisher);
  const TorrentId id = portal_.publish(std::move(draft.request), event.at);
  if (draft.removal >= 0) portal_.moderate_remove(id, draft.removal);

  tracker_->host_swarm(*draft.swarm);
  network_.register_swarm(*draft.swarm);

  TorrentTruth truth;
  truth.portal_id = id;
  truth.publisher = publisher.id;
  truth.publisher_class = publisher.cls;
  truth.publisher_ip = draft.publisher_ip;
  truth.publisher_nat = draft.publisher_nat;
  truth.cross_posted = draft.cross_posted;
  truth.removal_time = draft.removal;
  truth.true_downloads = draft.swarm->distinct_downloader_ips();
  truth.seed_sessions = std::move(draft.seed_sessions);
  truths_.push_back(std::move(truth));
  swarms_.push_back(std::move(draft.swarm));
  return id;
}

std::unique_ptr<dht::DhtOverlay> Ecosystem::build_dht_overlay(
    SimTime horizon) const {
  if (!built_) throw std::logic_error("Ecosystem::build_dht_overlay before build");
  auto overlay =
      std::make_unique<dht::DhtOverlay>(derive_seed(config_.seed, kTagDhtOverlay));
  dht::DhtOverlay* net = overlay.get();

  // Node lifetime = union of an endpoint's connectable sessions across all
  // swarms (a client runs one DHT node however many torrents it is on).
  // NAT peers never serve as nodes; spoofed decoys do not exist at all.
  std::map<Endpoint, std::vector<Interval>> lifetimes;
  for (const auto& swarm : swarms_) {
    for (const PeerSession& s : swarm->sessions()) {
      if (s.nat || s.spoofed) continue;
      lifetimes[s.endpoint].push_back(
          Interval{std::max<SimTime>(s.arrive, 0), std::min(s.depart, horizon)});
    }
  }
  for (auto& [endpoint, intervals] : lifetimes) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.end < b.end;
              });
    Interval merged = intervals.front();
    auto emit = [net, endpoint = endpoint](const Interval& iv) {
      if (iv.end <= iv.start) return;
      TypedEvent join;
      join.kind = TypedEvent::Kind::NodeJoin;
      join.endpoint = endpoint;
      net->events().schedule_typed(iv.start, join);
      TypedEvent leave;
      leave.kind = TypedEvent::Kind::NodeLeave;
      leave.endpoint = endpoint;
      net->events().schedule_typed(iv.end, leave);
    };
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].start <= merged.end) {
        merged.end = std::max(merged.end, intervals[i].end);
      } else {
        emit(merged);
        merged = intervals[i];
      }
    }
    emit(merged);
  }

  // Announces: every real session announce_peer-s on arrival and every
  // kDhtReannounce until departure. NAT peers announce too — the node they
  // hit stores the datagram's source address, exactly like a tracker sees
  // their IP. Fake-farm publishers run tracker-only announcer software;
  // their absence from the DHT is the signature the cross-check hunts.
  // One lazy cursor per session: the queue re-arms the next occurrence
  // when the previous one fires, so pending memory is O(live sessions),
  // not O(sessions x window/kDhtReannounce). Cursors are scheduled after
  // the joins, so at equal timestamps (shared FIFO sequence) a node's
  // join precedes its first announce.
  for (std::size_t i = 0; i < swarms_.size(); ++i) {
    const Sha1Digest infohash = swarms_[i]->infohash();
    const bool fake_publisher = is_fake(truths_[i].publisher_class);
    for (const PeerSession& s : swarms_[i]->sessions()) {
      if (s.spoofed) continue;
      if (s.is_publisher && fake_publisher) continue;
      const SimTime stop = std::min(s.depart, horizon);
      SimTime at = s.arrive;
      if (at < 0) {
        // First in-window announce of a pre-window arrival: ceiling
        // division keeps the session's 30-minute cadence, so an arrival
        // at exactly -kDhtReannounce announces at 0, not kDhtReannounce.
        at += ((-at + kDhtReannounce - 1) / kDhtReannounce) * kDhtReannounce;
      }
      if (at >= stop) continue;
      TypedEvent announce;
      announce.kind = TypedEvent::Kind::Announce;
      announce.endpoint = s.endpoint;
      announce.infohash = infohash;
      announce.every = kDhtReannounce;
      announce.until = stop;
      net->events().schedule_typed(at, announce);
    }
  }
  return overlay;
}

Dataset Ecosystem::dht_crawl() {
  if (!built_) throw std::logic_error("Ecosystem::dht_crawl before build");
  // A fresh overlay per crawl: repeated dht_crawl() calls replay the same
  // schedule from scratch and return byte-identical datasets.
  const auto overlay = build_dht_overlay(config_.window + config_.dht_crawler.grace);
  DhtCrawler crawler(portal_, *overlay, config_.dht_crawler,
                     derive_seed(config_.seed, kTagDhtCrawl));
  return crawler.crawl_window(0, config_.window);
}

Dataset Ecosystem::crawl() {
  if (!built_) throw std::logic_error("Ecosystem::crawl before build");
  // Fixed derive_seed substreams keyed off the scenario seed keep repeated
  // crawls of the same ecosystem identical — and structurally uncorrelated
  // with every build substream (the old XOR-offset seeds could in
  // principle collide with a derive_seed output). The tracker's
  // client-side state (rate limits, sampling key) is reset so a crawl
  // never observes a previous one.
  tracker_->reset_state(derive_seed(config_.seed, kTagTrackerCrawlState));
  Crawler crawler(portal_, *tracker_, network_, geo(), config_.crawler,
                  derive_seed(config_.seed, kTagCrawler));
  return crawler.crawl_window(0, config_.window);
}

}  // namespace btpub
