#include "core/ecosystem.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "crawler/crawler.hpp"
#include "crawler/dht_crawler.hpp"
#include "torrent/metainfo.hpp"

namespace btpub {
namespace {

/// BEP 5 clients refresh their announce well inside the peer store's TTL
/// (dht::PeerStore::kPeerTtl); this is the simulated cadence.
constexpr SimDuration kDhtReannounce = minutes(30);
static_assert(kDhtReannounce < dht::PeerStore::kPeerTtl);

std::size_t sample_poisson_count(double mean, Rng& rng) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::size_t k = 0;
    double product = rng.uniform();
    while (product > limit) {
      ++k;
      product *= rng.uniform();
    }
    return k;
  }
  const double draw = rng.normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::size_t>(std::llround(draw));
}

}  // namespace

Ecosystem::Ecosystem(ScenarioConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      catalog_(IspCatalog::standard()),
      portal_("the-sim-bay"),
      panel_(AppraisalPanel::standard()) {}

void Ecosystem::build() {
  if (built_) throw std::logic_error("Ecosystem::build called twice");
  built_ = true;

  Rng population_rng = rng_.fork();
  population_ = build_population(config_.population, catalog_, population_rng);

  tracker_ = std::make_unique<Tracker>(config_.tracker, rng_.fork());

  consumers_ = std::make_unique<ConsumerPool>(catalog_, rng_.fork());
  consumers_->set_sticky_bias(config_.sticky_consumer_bias);
  for (const auto& [endpoint, weight] : population_.sticky_consumers) {
    consumers_->add_sticky(endpoint, weight);
  }
  swarm_generator_ = std::make_unique<SwarmGenerator>(*consumers_);

  backfill_history();
  generate_publications();
}

void Ecosystem::backfill_history() {
  // Longitudinal history (§5.2): publishers existed before the window; the
  // portal's user pages carry their full record. Fake accounts need no
  // history — their pages are purged after detection anyway.
  const double window_days = to_days(config_.window);
  for (const Publisher& p : population_.publishers) {
    if (p.is_fake_farm()) continue;
    const double days_before = p.lifetime_days - window_days;
    if (days_before <= 0.0) continue;
    const double mean = p.historical_rate * days_before;
    const std::size_t n =
        std::min<std::size_t>(sample_poisson_count(mean, rng_), 200000);
    std::vector<SimTime> times;
    times.reserve(n + 1);
    for (std::size_t i = 0; i < n; ++i) {
      times.push_back(-static_cast<SimTime>(rng_.uniform() * days_before *
                                            static_cast<double>(kDay)));
    }
    // Pin the very first appearance so the lifetime is exact.
    times.push_back(-static_cast<SimTime>(days_before * static_cast<double>(kDay)));
    std::sort(times.begin(), times.end());
    for (const SimTime t : times) {
      portal_.record_historical_publish(p.usernames.front(), t);
    }
  }
}

void Ecosystem::generate_publications() {
  struct Event {
    SimTime at;
    PublisherId publisher;
  };
  std::vector<Event> events;
  const double window_days = to_days(config_.window);
  for (const Publisher& p : population_.publishers) {
    const double mean = p.window_rate * window_days;
    const std::size_t n = sample_poisson_count(mean, rng_);
    for (std::size_t i = 0; i < n; ++i) {
      const SimTime at = static_cast<SimTime>(rng_.uniform() *
                                              static_cast<double>(config_.window));
      events.push_back(Event{at, p.id});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.publisher < b.publisher;
  });
  swarms_.reserve(events.size());
  truths_.reserve(events.size());
  for (const Event& event : events) {
    publish_one(population_.by_id(event.publisher), event.at);
  }
}

TorrentId Ecosystem::publish_one(Publisher& publisher, SimTime when) {
  PublishedWork work = publisher.make_work(when, rng_);

  Metainfo metainfo = Metainfo::make(
      tracker_->announce_url(), work.title, work.files,
      /*piece_length=*/256 * 1024,
      /*salt=*/std::to_string(truths_.size()) + "|" + work.username);

  PublishRequest request;
  request.title = work.title;
  request.category = work.category;
  request.language = work.language;
  request.username = work.username;
  request.textbox = work.textbox;
  request.torrent_bytes = metainfo.encode();
  request.infohash = metainfo.infohash();
  request.size_bytes = metainfo.total_size();
  request.payload = work.payload;
  const TorrentId id = portal_.publish(std::move(request), when);

  // Moderation: fake content gets spotted and removed after a delay —
  // unless it slips through entirely.
  SimTime removal = -1;
  if (work.payload != PayloadKind::Genuine &&
      !rng_.chance(config_.moderation_miss_probability)) {
    const auto delay = std::max<SimDuration>(
        config_.moderation_min_delay,
        static_cast<SimDuration>(
            rng_.exponential(static_cast<double>(config_.moderation_mean_delay))));
    removal = when + delay;
    portal_.moderate_remove(id, removal);
  }

  // Swarm birth: cross-posted content already lives on another portal.
  SimTime birth = when;
  if (work.cross_posted) {
    birth = when - static_cast<SimDuration>(
                       rng_.uniform(static_cast<double>(config_.cross_post_lead_min),
                                    static_cast<double>(config_.cross_post_lead_max)));
  }

  const SimTime hard_end = config_.window + days(2);
  SwarmSpec spec;
  spec.birth = birth;
  spec.expected_downloads = work.expected_downloads;
  spec.decay_tau = work.payload != PayloadKind::Genuine ? config_.fake_decay_tau
                                                         : config_.decay_tau;
  spec.arrivals_end = removal >= 0 ? std::min<SimTime>(removal, config_.window)
                                   : config_.window;
  spec.fake = work.payload != PayloadKind::Genuine;
  spec.nat_fraction = config_.downloader_nat_fraction;
  spec.median_download_time = config_.median_download_time;
  spec.abort_probability = config_.abort_probability;
  spec.seed_probability = config_.seed_probability;
  spec.mean_seed_time = config_.mean_seed_time;

  auto swarm = std::make_unique<Swarm>(metainfo.infohash(), metainfo.piece_count(),
                                       birth);
  swarm_generator_->generate(*swarm, spec, rng_);

  // When does the k-th non-publisher seeder appear? (the publisher's
  // leave condition)
  constexpr SimTime kNever = std::numeric_limits<SimTime>::max();
  SimTime enough_seeders_at = kNever;
  const std::uint32_t k = publisher.seeding.leave_after_other_seeders;
  if (k > 0 && !spec.fake) {
    std::vector<SimTime> completions;
    for (const PeerSession& s : swarm->sessions()) {
      if (s.complete_at < s.depart) completions.push_back(s.complete_at);
    }
    if (completions.size() >= k) {
      std::nth_element(completions.begin(), completions.begin() + (k - 1),
                       completions.end());
      enough_seeders_at = completions[k - 1];
    }
  }

  const std::vector<Interval> seed_sessions =
      plan_seed_sessions(publisher.seeding, birth, enough_seeders_at, removal,
                         hard_end, publisher.online_start, rng_);
  for (const Interval& session : seed_sessions) {
    PeerSession s;
    s.endpoint = work.endpoint;
    s.arrive = session.start;
    s.depart = session.end;
    s.complete_at = session.start;  // the publisher always holds all pieces
    s.nat = work.endpoint_nat;
    s.is_publisher = true;
    swarm->add_session(s);
  }

  // Decoy injection: a fake-farm announcer claims extra "seeders" at
  // addresses it does not hold — sequential IPs from a hosting-style
  // block, the pattern the paper's spoofed swarms showed. The tracker
  // believes them; probes and the DHT (source-address storage) never see
  // them. Drawn from an own substream so enabling the knob leaves every
  // other draw untouched.
  if (publisher.is_fake_farm() && config_.fake_spoofed_peers > 0) {
    Rng spoof_rng(derive_seed(config_.seed, 0x5F00Full,
                              static_cast<std::uint64_t>(truths_.size())));
    const SimTime stop = removal >= 0 ? removal : hard_end;
    const auto base = static_cast<std::uint32_t>(
        spoof_rng.uniform_int(0x0B000000, 0xDF000000));
    for (std::size_t i = 0; i < config_.fake_spoofed_peers; ++i) {
      PeerSession s;
      s.endpoint = Endpoint{IpAddress(base + static_cast<std::uint32_t>(i)),
                            static_cast<std::uint16_t>(
                                6881 + spoof_rng.uniform_int(0, 8))};
      s.arrive = birth + static_cast<SimDuration>(spoof_rng.uniform_int(
                             0, static_cast<std::int64_t>(minutes(30))));
      s.depart = std::max<SimTime>(stop, s.arrive + hours(1));
      s.complete_at = s.arrive;  // decoys pose as seeders
      s.nat = true;              // unreachable, like any address not held
      s.spoofed = true;
      swarm->add_session(s);
    }
  }

  swarm->finalize();
  tracker_->host_swarm(*swarm);
  network_.register_swarm(*swarm);

  TorrentTruth truth;
  truth.portal_id = id;
  truth.publisher = publisher.id;
  truth.publisher_class = publisher.cls;
  truth.publisher_ip = work.endpoint.ip;
  truth.publisher_nat = work.endpoint_nat;
  truth.cross_posted = work.cross_posted;
  truth.removal_time = removal;
  truth.true_downloads = swarm->distinct_downloader_ips();
  truth.seed_sessions = seed_sessions;
  truths_.push_back(std::move(truth));
  swarms_.push_back(std::move(swarm));
  return id;
}

std::unique_ptr<dht::DhtOverlay> Ecosystem::build_dht_overlay(
    SimTime horizon) const {
  if (!built_) throw std::logic_error("Ecosystem::build_dht_overlay before build");
  auto overlay =
      std::make_unique<dht::DhtOverlay>(derive_seed(config_.seed, 0xD47ull));
  dht::DhtOverlay* net = overlay.get();

  // Node lifetime = union of an endpoint's connectable sessions across all
  // swarms (a client runs one DHT node however many torrents it is on).
  // NAT peers never serve as nodes; spoofed decoys do not exist at all.
  std::map<Endpoint, std::vector<Interval>> lifetimes;
  for (const auto& swarm : swarms_) {
    for (const PeerSession& s : swarm->sessions()) {
      if (s.nat || s.spoofed) continue;
      lifetimes[s.endpoint].push_back(
          Interval{std::max<SimTime>(s.arrive, 0), std::min(s.depart, horizon)});
    }
  }
  for (auto& [endpoint, intervals] : lifetimes) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.end < b.end;
              });
    Interval merged = intervals.front();
    auto emit = [net, endpoint = endpoint](const Interval& iv) {
      if (iv.end <= iv.start) return;
      net->events().schedule_at(
          iv.start, [net, endpoint, at = iv.start] { net->add_node(endpoint, at); });
      net->events().schedule_at(iv.end,
                                [net, endpoint] { net->remove_node(endpoint); });
    };
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].start <= merged.end) {
        merged.end = std::max(merged.end, intervals[i].end);
      } else {
        emit(merged);
        merged = intervals[i];
      }
    }
    emit(merged);
  }

  // Announces: every real session announce_peer-s on arrival and every
  // kDhtReannounce until departure. NAT peers announce too — the node they
  // hit stores the datagram's source address, exactly like a tracker sees
  // their IP. Fake-farm publishers run tracker-only announcer software;
  // their absence from the DHT is the signature the cross-check hunts.
  // Scheduled after the joins, so at equal timestamps (FIFO queue) a
  // node's join precedes its first announce.
  for (std::size_t i = 0; i < swarms_.size(); ++i) {
    const Sha1Digest infohash = swarms_[i]->infohash();
    const bool fake_publisher = is_fake(truths_[i].publisher_class);
    for (const PeerSession& s : swarms_[i]->sessions()) {
      if (s.spoofed) continue;
      if (s.is_publisher && fake_publisher) continue;
      const SimTime stop = std::min(s.depart, horizon);
      SimTime at = s.arrive;
      if (at < 0) at += ((-at) / kDhtReannounce + 1) * kDhtReannounce;
      for (; at < stop; at += kDhtReannounce) {
        net->events().schedule_at(at, [net, infohash, endpoint = s.endpoint, at] {
          net->announce_peer(infohash, endpoint, at);
        });
      }
    }
  }
  return overlay;
}

Dataset Ecosystem::dht_crawl() {
  if (!built_) throw std::logic_error("Ecosystem::dht_crawl before build");
  // A fresh overlay per crawl: repeated dht_crawl() calls replay the same
  // schedule from scratch and return byte-identical datasets.
  const auto overlay = build_dht_overlay(config_.window + config_.dht_crawler.grace);
  DhtCrawler crawler(portal_, *overlay, config_.dht_crawler,
                     derive_seed(config_.seed, 0xDC13ull));
  return crawler.crawl_window(0, config_.window);
}

Dataset Ecosystem::crawl() {
  if (!built_) throw std::logic_error("Ecosystem::crawl before build");
  // Fixed seeds keyed off the scenario seed keep repeated crawls of the
  // same ecosystem identical; the tracker's client-side state (rate limits,
  // sampling key) is reset so a crawl never observes a previous one.
  tracker_->reset_state(config_.seed ^ 0x7214CBull);
  Crawler crawler(portal_, *tracker_, network_, geo(), config_.crawler,
                  config_.seed ^ 0xC4A37E5ull);
  return crawler.crawl_window(0, config_.window);
}

}  // namespace btpub
