#include "core/scenario.hpp"

namespace btpub {

ScenarioConfig ScenarioConfig::pb10(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.name = "pb10";
  config.window = days(30);
  config.crawler.style = DatasetStyle::Pb10;
  return config;
}

ScenarioConfig ScenarioConfig::pb09(std::uint64_t seed) {
  ScenarioConfig config = pb10(seed);
  config.name = "pb09";
  config.window = days(21);
  config.crawler.style = DatasetStyle::Pb09;
  return config;
}

ScenarioConfig ScenarioConfig::mn08(std::uint64_t seed) {
  ScenarioConfig config = pb10(seed);
  config.name = "mn08";
  config.window = days(39);
  config.crawler.style = DatasetStyle::Mn08;
  return config;
}

ScenarioConfig ScenarioConfig::signature(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.name = "signature";
  // Full-scale publishing rates, reduced head-count, shorter window: the
  // per-publisher temporal density (Figure 4) matches the paper while the
  // run stays laptop-sized.
  config.window = days(8);
  config.population.rate_scale = 1.0;
  // Regular users must dominate the username population so the "All"
  // sample behaves like the paper's (mostly ordinary publishers).
  config.population.regular_publishers = 2200;
  config.population.portal_owners = 14;
  config.population.other_web = 12;
  config.population.top_altruistic = 22;
  config.population.fake_farms = 8;
  config.population.fake_usernames = 40;
  config.population.compromised_usernames = 4;
  config.population.popularity_scale = 0.6;
  config.crawler.style = DatasetStyle::Pb10;
  return config;
}

ScenarioConfig ScenarioConfig::quick(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.name = "quick";
  config.window = days(7);
  config.population.regular_publishers = 700;
  config.population.portal_owners = 6;
  config.population.other_web = 5;
  config.population.top_altruistic = 8;
  config.population.fake_farms = 6;
  config.population.fake_usernames = 50;
  config.population.compromised_usernames = 3;
  config.population.rate_scale = 0.6;
  config.population.popularity_scale = 0.5;
  config.crawler.style = DatasetStyle::Pb10;
  return config;
}

ScenarioConfig ScenarioConfig::spoofed(std::uint64_t seed) {
  ScenarioConfig config = quick(seed);
  config.name = "spoofed";
  config.fake_spoofed_peers = 25;
  return config;
}

}  // namespace btpub
