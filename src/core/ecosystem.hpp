// ecosystem.hpp — assembles and runs one complete simulated BitTorrent
// ecosystem: synthetic Internet (GeoIP + ISPs), portal, tracker, publisher
// population with websites, per-torrent swarms, moderation — then runs the
// measurement crawler over it.
//
// The ecosystem keeps generator-side ground truth (who published what,
// true seeding sessions, true download counts) strictly separate from the
// crawler's Dataset; validation benches compare the two.
#pragma once

#include <memory>
#include <vector>

#include "core/scenario.hpp"
#include "crawler/dataset.hpp"
#include "dht/overlay.hpp"
#include "geo/isp_catalog.hpp"
#include "portal/portal.hpp"
#include "publisher/population.hpp"
#include "swarm/generator.hpp"
#include "swarm/network.hpp"
#include "tracker/tracker.hpp"
#include "websim/appraisal.hpp"

namespace btpub {

/// What the build actually did — the observability hook for the safety
/// clamps and the parallel engine (benches and tests read it; nothing in
/// the generated world depends on it).
struct BuildStats {
  /// Publishers whose historical backfill hit the event-cap clamp, and how
  /// many events the clamp dropped in total. Non-zero means the Table-4
  /// longitudinal view under-counts those publishers' pre-window record.
  std::size_t backfill_clamped_publishers = 0;
  std::size_t backfill_clamped_events = 0;
  /// Publication events generated inside the window.
  std::size_t publication_events = 0;
  /// Resolved worker-thread count the build ran with.
  std::size_t build_threads = 1;
  /// Per-phase wall-clock seconds — the Amdahl diagnosis. population and
  /// backfill run before publication generation; draw/prepare/commit are
  /// its three phases. draw and prepare scale with build_threads; the
  /// others are serial, so (population + backfill + commit) / total bounds
  /// the achievable build speedup.
  double seconds_population = 0.0;  ///< population + component setup (serial)
  double seconds_backfill = 0.0;    ///< historical user-page backfill (serial)
  double seconds_draw = 0.0;        ///< publication event drawing (parallel)
  double seconds_prepare = 0.0;     ///< per-event prepare fan-out (parallel)
  double seconds_commit = 0.0;      ///< in-order commit replay (serial)
};

/// Generator-side truth for one published torrent.
struct TorrentTruth {
  TorrentId portal_id = kInvalidTorrent;
  PublisherId publisher = 0;
  PublisherClass publisher_class = PublisherClass::Regular;
  IpAddress publisher_ip{};  // the address used for this publication
  bool publisher_nat = false;
  bool cross_posted = false;
  SimTime removal_time = -1;  // -1: never moderated away
  std::size_t true_downloads = 0;
  std::vector<Interval> seed_sessions;
};

class Ecosystem {
 public:
  explicit Ecosystem(ScenarioConfig config);

  /// Generates the world: population, listings, swarms, moderation.
  /// Must be called exactly once, before crawl().
  void build();

  /// Runs the measurement crawler over the window; deterministic.
  Dataset crawl();

  /// Runs the trackerless (DHT) vantage over the same window;
  /// deterministic and byte-identical across repeated calls — every call
  /// rebuilds a fresh overlay from the generated swarms.
  Dataset dht_crawl();

  /// Builds the Mainline DHT overlay the swarms populate: connectable
  /// (non-NAT) peers join as nodes for the union of their sessions, every
  /// real session announce_peer-s periodically (NAT peers announce without
  /// serving), and spoofed decoys plus fake-farm publishers never take
  /// part — their absence is the cross-check signature. Nothing past
  /// `horizon` is scheduled. The overlay seed derives from the scenario
  /// seed alone, so this never perturbs the generator's RNG streams.
  std::unique_ptr<dht::DhtOverlay> build_dht_overlay(SimTime horizon) const;

  // --- components (valid after build()) ---
  const ScenarioConfig& config() const noexcept { return config_; }
  const IspCatalog& catalog() const noexcept { return catalog_; }
  const GeoDb& geo() const noexcept { return catalog_.db(); }
  const Portal& portal() const noexcept { return portal_; }
  Portal& portal() noexcept { return portal_; }
  Tracker& tracker() noexcept { return *tracker_; }
  SwarmNetwork& network() noexcept { return network_; }
  const Population& population() const noexcept { return population_; }
  const WebsiteDirectory& websites() const noexcept { return population_.websites; }
  const AppraisalPanel& appraisal_panel() const noexcept { return panel_; }

  // --- ground truth ---
  const std::vector<TorrentTruth>& truths() const noexcept { return truths_; }
  const TorrentTruth& truth(TorrentId id) const { return truths_.at(id); }
  const Swarm& swarm_of(TorrentId id) const { return *swarms_.at(id); }
  std::size_t torrent_count() const noexcept { return truths_.size(); }
  const BuildStats& build_stats() const noexcept { return build_stats_; }

 private:
  /// One publish action drawn in phase 1 of generate_publications.
  struct PublicationEvent {
    SimTime at;
    PublisherId publisher;
    /// The publisher's zero-based publication index in event order.
    std::uint32_t ordinal;
  };

  /// Everything prepare_publication produces off the serial path; committed
  /// in event order by commit_publication.
  struct PublicationDraft {
    PublishRequest request;
    SimTime removal = -1;  // -1: never moderated away
    IpAddress publisher_ip{};
    bool publisher_nat = false;
    bool cross_posted = false;
    std::vector<Interval> seed_sessions;
    std::unique_ptr<Swarm> swarm;
  };

  void backfill_history();
  /// Three phases: serial event drawing (per-publisher substreams), a
  /// parallel prepare fan-out over config_.threads workers (per-event
  /// substreams; byte-identical for any thread count), and a serial
  /// in-event-order commit into portal/tracker/network/truths.
  void generate_publications();
  /// Heavy per-publication work: metainfo hashing, swarm generation,
  /// seed-session planning, decoy injection, finalize. Pure function of
  /// (event, index) given the frozen population and config — draws only
  /// from derive_seed(seed, tag, index) substreams. Thread-safe.
  PublicationDraft prepare_publication(const PublicationEvent& event,
                                       std::size_t index) const;
  /// Serial registration of a prepared publication; assigns the portal id.
  TorrentId commit_publication(const PublicationEvent& event,
                               PublicationDraft& draft);

  ScenarioConfig config_;
  Rng rng_;
  IspCatalog catalog_;
  Portal portal_;
  std::unique_ptr<Tracker> tracker_;
  SwarmNetwork network_;
  Population population_;
  std::unique_ptr<ConsumerPool> consumers_;
  std::unique_ptr<SwarmGenerator> swarm_generator_;
  AppraisalPanel panel_;
  std::vector<std::unique_ptr<Swarm>> swarms_;  // indexed by TorrentId
  std::vector<TorrentTruth> truths_;            // indexed by TorrentId
  BuildStats build_stats_;
  bool built_ = false;
};

}  // namespace btpub
