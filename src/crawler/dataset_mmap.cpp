#include "crawler/dataset_mmap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace btpub {
namespace {

// The arrays are written and reinterpreted verbatim; the format is defined
// little-endian, which every supported target already is.
static_assert(std::endian::native == std::endian::little,
              "the mmap snapshot format is little-endian");

constexpr int kVersion = 1;
constexpr char kMagic[8] = {'B', 'T', 'P', 'U', 'B', 'M', 'A', 'P'};
constexpr std::size_t kSectionAlign = 64;

enum class SectionId : std::uint32_t {
  Meta = 1,
  TorrentPods = 2,
  Text = 3,
  FilenameRefs = 4,
  PeerBlob = 5,
  Sightings = 6,
  UserPods = 7,
  UserTimes = 8,
};
constexpr std::uint32_t kSectionCount = 8;

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t section_count;
  std::uint64_t file_bytes;
  std::uint8_t reserved[40];
};
static_assert(sizeof(FileHeader) == 64);
static_assert(std::is_trivially_copyable_v<FileHeader>);

struct SectionEntry {
  std::uint32_t id;
  std::uint32_t reserved;
  std::uint64_t offset;
  std::uint64_t size;
};
static_assert(sizeof(SectionEntry) == 24);

/// Fixed front of the Meta section; the dataset name follows it.
struct MetaFixed {
  std::int64_t window_start;
  std::int64_t window_end;
  std::uint32_t style;
  std::uint32_t name_length;
};
static_assert(sizeof(MetaFixed) == 24);

constexpr std::size_t align_up(std::size_t n) {
  return (n + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("dataset_mmap: " + what);
}

void write_bytes(std::ostream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!out) fail("write failed");
}

void pad_to(std::ostream& out, std::size_t& written, std::size_t target) {
  static constexpr char zeros[kSectionAlign] = {};
  while (written < target) {
    const std::size_t chunk = std::min(target - written, sizeof zeros);
    write_bytes(out, zeros, chunk);
    written += chunk;
  }
}

}  // namespace

int mmap_format_version() noexcept { return kVersion; }

std::string mmap_sibling_path(const std::string& path) { return path + ".mmap"; }

void save_mmap_snapshot(const CompactDataset& dataset, std::ostream& out) {
  // Section payloads in table order.
  const std::size_t meta_size = sizeof(MetaFixed) + dataset.name.size();
  const std::pair<SectionId, std::pair<const void*, std::size_t>> sections[] = {
      {SectionId::Meta, {nullptr, meta_size}},
      {SectionId::TorrentPods,
       {dataset.torrents.data(),
        dataset.torrents.size() * sizeof(TorrentRecordPod)}},
      {SectionId::Text, {dataset.text.data(), dataset.text.size()}},
      {SectionId::FilenameRefs,
       {dataset.filename_refs.data(),
        dataset.filename_refs.size() * sizeof(StrRef)}},
      {SectionId::PeerBlob, {dataset.peer_blob.data(), dataset.peer_blob.size()}},
      {SectionId::Sightings,
       {dataset.sightings.data(), dataset.sightings.size() * sizeof(SimTime)}},
      {SectionId::UserPods,
       {dataset.user_pages.data(),
        dataset.user_pages.size() * sizeof(UserPagePod)}},
      {SectionId::UserTimes,
       {dataset.user_publish_times.data(),
        dataset.user_publish_times.size() * sizeof(SimTime)}},
  };

  // Lay out offsets: header, table, then 64-byte aligned sections.
  std::vector<SectionEntry> table(kSectionCount);
  std::size_t offset =
      align_up(sizeof(FileHeader) + kSectionCount * sizeof(SectionEntry));
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    table[i].id = static_cast<std::uint32_t>(sections[i].first);
    table[i].reserved = 0;
    table[i].offset = offset;
    table[i].size = sections[i].second.second;
    offset = align_up(offset + sections[i].second.second);
  }

  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.version = kVersion;
  header.section_count = kSectionCount;
  header.file_bytes = offset;

  std::size_t written = 0;
  write_bytes(out, &header, sizeof header);
  written += sizeof header;
  write_bytes(out, table.data(), table.size() * sizeof(SectionEntry));
  written += table.size() * sizeof(SectionEntry);

  for (std::size_t i = 0; i < kSectionCount; ++i) {
    pad_to(out, written, table[i].offset);
    if (sections[i].first == SectionId::Meta) {
      MetaFixed meta{};
      meta.window_start = dataset.window_start;
      meta.window_end = dataset.window_end;
      meta.style = static_cast<std::uint32_t>(dataset.style);
      meta.name_length = static_cast<std::uint32_t>(dataset.name.size());
      write_bytes(out, &meta, sizeof meta);
      write_bytes(out, dataset.name.data(), dataset.name.size());
    } else if (table[i].size > 0) {
      write_bytes(out, sections[i].second.first, table[i].size);
    }
    written += table[i].size;
  }
  pad_to(out, written, offset);  // trailing pad so file_bytes is exact
  out.flush();
  if (!out) fail("write failed");
}

void save_mmap_snapshot(const CompactDataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("cannot open " + path + " for writing");
  save_mmap_snapshot(dataset, out);
}

void save_mmap_snapshot(const Dataset& dataset, const std::string& path) {
  save_mmap_snapshot(compact_dataset(dataset), path);
}

MappedDataset::MappedDataset(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open " + path + ": " + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    fail("cannot stat " + path + ": " + std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ < sizeof(FileHeader)) {
    ::close(fd);
    fail(path + ": truncated (smaller than the header)");
  }
  map_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    fail("mmap of " + path + " failed: " + std::strerror(errno));
  }
  // A validation throw must not leak the mapping: the destructor does not
  // run when the constructor exits by exception.
  try {
    validate_and_fixup(path);
  } catch (...) {
    ::munmap(map_, size_);
    map_ = nullptr;
    throw;
  }
}

void MappedDataset::validate_and_fixup(const std::string& path) {
  const auto* base = static_cast<const std::byte*>(map_);
  const auto* header = reinterpret_cast<const FileHeader*>(base);
  if (std::memcmp(header->magic, kMagic, sizeof kMagic) != 0) {
    fail(path + ": bad magic (not a dataset snapshot)");
  }
  if (header->version != static_cast<std::uint32_t>(kVersion)) {
    fail(path + ": format version " + std::to_string(header->version) +
         ", loader supports " + std::to_string(kVersion));
  }
  if (header->file_bytes > size_) {
    fail(path + ": truncated (header records " +
         std::to_string(header->file_bytes) + " bytes, file has " +
         std::to_string(size_) + ")");
  }
  if (header->section_count != kSectionCount) {
    fail(path + ": unexpected section count " +
         std::to_string(header->section_count));
  }
  const std::size_t table_end =
      sizeof(FileHeader) + kSectionCount * sizeof(SectionEntry);
  if (table_end > size_) fail(path + ": truncated section table");
  const auto* table =
      reinterpret_cast<const SectionEntry*>(base + sizeof(FileHeader));

  // Pointer fixup: locate each section, check bounds / alignment /
  // element-size divisibility, and point the view's spans at the mapping.
  auto section = [&](SectionId id, std::size_t elem_size,
                     std::size_t elem_align) -> std::pair<const std::byte*, std::size_t> {
    for (std::uint32_t i = 0; i < kSectionCount; ++i) {
      if (table[i].id != static_cast<std::uint32_t>(id)) continue;
      if (table[i].offset + table[i].size > size_ ||
          table[i].offset + table[i].size < table[i].offset) {
        fail(path + ": section " + std::to_string(table[i].id) +
             " exceeds the file");
      }
      if (table[i].offset % elem_align != 0) {
        fail(path + ": section " + std::to_string(table[i].id) + " misaligned");
      }
      if (elem_size > 1 && table[i].size % elem_size != 0) {
        fail(path + ": section " + std::to_string(table[i].id) +
             " size not a multiple of its row size");
      }
      return {base + table[i].offset, static_cast<std::size_t>(table[i].size)};
    }
    fail(path + ": missing section " +
         std::to_string(static_cast<std::uint32_t>(id)));
  };

  const auto [meta_ptr, meta_size] = section(SectionId::Meta, 1, alignof(MetaFixed));
  if (meta_size < sizeof(MetaFixed)) fail(path + ": meta section too small");
  const auto* meta = reinterpret_cast<const MetaFixed*>(meta_ptr);
  if (sizeof(MetaFixed) + meta->name_length > meta_size) {
    fail(path + ": dataset name exceeds the meta section");
  }
  view_.name = std::string_view(
      reinterpret_cast<const char*>(meta_ptr + sizeof(MetaFixed)),
      meta->name_length);
  view_.style = static_cast<DatasetStyle>(meta->style);
  view_.window_start = meta->window_start;
  view_.window_end = meta->window_end;

  const auto pods = section(SectionId::TorrentPods, sizeof(TorrentRecordPod),
                            alignof(TorrentRecordPod));
  view_.torrents = {reinterpret_cast<const TorrentRecordPod*>(pods.first),
                    pods.second / sizeof(TorrentRecordPod)};
  const auto text = section(SectionId::Text, 1, 1);
  view_.text = {reinterpret_cast<const char*>(text.first), text.second};
  const auto refs = section(SectionId::FilenameRefs, sizeof(StrRef), alignof(StrRef));
  view_.filename_refs = {reinterpret_cast<const StrRef*>(refs.first),
                         refs.second / sizeof(StrRef)};
  const auto blob = section(SectionId::PeerBlob, 6, 1);
  view_.peer_blob = {reinterpret_cast<const char*>(blob.first), blob.second};
  const auto sightings = section(SectionId::Sightings, sizeof(SimTime),
                                 alignof(SimTime));
  view_.sightings = {reinterpret_cast<const SimTime*>(sightings.first),
                     sightings.second / sizeof(SimTime)};
  const auto users = section(SectionId::UserPods, sizeof(UserPagePod),
                             alignof(UserPagePod));
  view_.user_pages = {reinterpret_cast<const UserPagePod*>(users.first),
                      users.second / sizeof(UserPagePod)};
  const auto times = section(SectionId::UserTimes, sizeof(SimTime),
                             alignof(SimTime));
  view_.user_publish_times = {reinterpret_cast<const SimTime*>(times.first),
                              times.second / sizeof(SimTime)};
}

MappedDataset::~MappedDataset() {
  if (map_ != nullptr) ::munmap(map_, size_);
}

MappedDataset::MappedDataset(MappedDataset&& other) noexcept
    : map_(other.map_), size_(other.size_), view_(other.view_) {
  other.map_ = nullptr;
  other.size_ = 0;
  other.view_ = CompactDatasetView{};
}

MappedDataset& MappedDataset::operator=(MappedDataset&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, size_);
    map_ = other.map_;
    size_ = other.size_;
    view_ = other.view_;
    other.map_ = nullptr;
    other.size_ = 0;
    other.view_ = CompactDatasetView{};
  }
  return *this;
}

}  // namespace btpub
