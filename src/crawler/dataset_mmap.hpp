// dataset_mmap.hpp — versioned zero-copy snapshot format for datasets.
//
// The stream format (dataset_io.hpp) re-parses every record on load:
// millions of length-prefixed reads and one heap allocation per string /
// vector. This file defines the mmap-native alternative: the seven flat
// CompactDataset arrays written verbatim into a sectioned little-endian
// file, each section 64-byte aligned, fronted by a header (magic + format
// version + section table). Loading is open + mmap + O(sections) pointer
// fixup — no per-record work at all; the OS pages data in lazily as the
// analysis touches it.
//
// Layout (all integers little-endian):
//
//   [0, 64)    FileHeader   magic "BTPUBMAP", version, section count,
//                           total file bytes
//   [64, ...)  section table: {id, reserved, offset, size} x count
//   ...        sections, each starting on a 64-byte boundary:
//                Meta         style/window/name header fields
//                TorrentPods  TorrentRecordPod[]   (fixed 136-byte rows)
//                Text         interned string arena
//                FilenameRefs StrRef[]
//                PeerBlob     6-byte compact peer entries
//                Sightings    SimTime[]
//                UserPods     UserPagePod[]        (sorted by username)
//                UserTimes    SimTime[]
//
// The 64-byte section alignment over-satisfies every element type's
// natural alignment (max 8) and keeps rows cacheline-aligned, so the
// mapped arrays can be reinterpreted in place on any little-endian host.
//
// Validation on load is O(1) in the dataset size: magic/version/section
// bounds/alignment/divisibility. Per-record references are validated by
// the consumers that walk them (inflate() bounds-checks everything), so a
// zero-copy open stays zero-copy.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "crawler/compact_dataset.hpp"

namespace btpub {

/// On-disk format version; bump on any layout change. Distinct from the
/// stream format's version (the two formats evolve independently).
int mmap_format_version() noexcept;

/// Conventional sibling path for a stream-format cache file: the snapshot
/// `load_or_generate` prefers ("<path>.mmap").
std::string mmap_sibling_path(const std::string& path);

/// Writes the snapshot. The ostream overload exists for deterministic
/// byte-level tests; the file overload is the normal path. Throws
/// std::runtime_error on I/O failure.
void save_mmap_snapshot(const CompactDataset& dataset, std::ostream& out);
void save_mmap_snapshot(const CompactDataset& dataset, const std::string& path);
/// Convenience: compacts then writes.
void save_mmap_snapshot(const Dataset& dataset, const std::string& path);

/// A loaded snapshot: the file stays mapped for the object's lifetime and
/// view() exposes the arrays in place. Move-only.
class MappedDataset {
 public:
  /// Opens, maps and validates. Throws std::runtime_error with a specific
  /// message on missing/truncated/corrupt/version-mismatched files.
  explicit MappedDataset(const std::string& path);
  ~MappedDataset();

  MappedDataset(MappedDataset&& other) noexcept;
  MappedDataset& operator=(MappedDataset&& other) noexcept;
  MappedDataset(const MappedDataset&) = delete;
  MappedDataset& operator=(const MappedDataset&) = delete;

  /// Zero-copy view into the mapping; valid while this object lives.
  const CompactDatasetView& view() const noexcept { return view_; }

  /// Inflates to the pointer-heavy Dataset (compatibility path). Deep-
  /// validates every record reference; throws on corruption.
  Dataset to_dataset() const { return inflate(view_); }

  std::size_t mapped_bytes() const noexcept { return size_; }

 private:
  void validate_and_fixup(const std::string& path);

  void* map_ = nullptr;
  std::size_t size_ = 0;
  CompactDatasetView view_;
};

}  // namespace btpub
