#include "crawler/cross_check.hpp"

#include <algorithm>
#include <unordered_set>

namespace btpub {

std::size_t CrossCheckReport::flagged_count() const {
  return static_cast<std::size_t>(
      std::count_if(torrents.begin(), torrents.end(),
                    [](const TorrentCrossCheck& t) { return t.flagged; }));
}

CrossCheckReport cross_check(const Dataset& tracker, const Dataset& dht,
                             const CrossCheckConfig& config) {
  CrossCheckReport report;
  // Both vantages emit torrents in portal-id order; a single merge walk
  // pairs them up.
  std::size_t di = 0;
  for (std::size_t ti = 0; ti < tracker.torrents.size(); ++ti) {
    const TorrentRecord& tr = tracker.torrents[ti];
    while (di < dht.torrents.size() &&
           dht.torrents[di].portal_id < tr.portal_id) {
      ++di;
    }
    if (di >= dht.torrents.size() ||
        dht.torrents[di].portal_id != tr.portal_id) {
      continue;
    }

    std::unordered_set<IpAddress> dht_ips(dht.downloaders[di].begin(),
                                          dht.downloaders[di].end());
    TorrentCrossCheck check;
    check.portal_id = tr.portal_id;
    check.dht_peers = dht_ips.size();
    check.tracker_publisher_ip = tr.publisher_ip;

    // The tracker dataset keeps the identified publisher out of
    // `downloaders`; fold it back in so both sides describe the same
    // quantity (every IP the vantage observed in the swarm).
    std::size_t tracker_peers = tracker.downloaders[ti].size();
    std::size_t common = 0;
    for (const IpAddress& ip : tracker.downloaders[ti]) {
      if (dht_ips.contains(ip)) ++common;
    }
    if (tr.publisher_ip) {
      ++tracker_peers;
      check.publisher_in_dht = dht_ips.contains(*tr.publisher_ip);
      if (check.publisher_in_dht) ++common;
    }
    check.tracker_peers = tracker_peers;
    check.common = common;
    check.overlap = tracker_peers == 0
                        ? 1.0
                        : static_cast<double>(common) /
                              static_cast<double>(tracker_peers);

    const bool publisher_missing =
        tr.publisher_ip.has_value() && !check.publisher_in_dht;
    const bool low_overlap = tracker_peers >= config.min_tracker_peers &&
                             check.overlap < config.min_overlap;
    check.flagged = publisher_missing || low_overlap;
    report.torrents.push_back(check);
  }
  return report;
}

}  // namespace btpub
