#include "crawler/compact_dataset.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "net/compact.hpp"

namespace btpub {
namespace {

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

[[noreturn]] void corrupt(const char* what) {
  throw std::runtime_error(std::string("compact_dataset: corrupt view: ") + what);
}

std::string_view checked_str(const CompactDatasetView& view, StrRef ref,
                             const char* what) {
  if (std::uint64_t{ref.offset} + ref.length > view.text.size()) corrupt(what);
  return view.str(ref);
}

void check_span(Span32 span, std::size_t limit, const char* what) {
  if (span.begin > span.end || span.end > limit) corrupt(what);
}

}  // namespace

// ---------------------------------------------------------------- view --

const UserPagePod* CompactDatasetView::find_user(std::string_view username) const
    noexcept {
  const auto it = std::partition_point(
      user_pages.begin(), user_pages.end(),
      [&](const UserPagePod& p) { return str(p.username) < username; });
  if (it == user_pages.end() || str(it->username) != username) return nullptr;
  return &*it;
}

std::size_t CompactDatasetView::with_username() const noexcept {
  std::size_t n = 0;
  for (const TorrentRecordPod& r : torrents) n += r.username.length > 0;
  return n;
}

std::size_t CompactDatasetView::with_publisher_ip() const noexcept {
  std::size_t n = 0;
  for (const TorrentRecordPod& r : torrents) {
    n += (r.flags & TorrentRecordPod::kHasPublisherIp) != 0;
  }
  return n;
}

std::size_t CompactDatasetView::distinct_ips_global() const {
  std::unordered_set<IpAddress> ips;
  for (const TorrentRecordPod& r : torrents) {
    for (std::uint32_t i = 0; i < r.downloaders.size(); ++i) {
      ips.insert(downloader_ip(r, i));
    }
  }
  return ips.size();
}

std::size_t CompactDatasetView::ip_observations_total() const noexcept {
  std::size_t n = 0;
  for (const TorrentRecordPod& r : torrents) n += r.downloaders.size();
  return n;
}

CompactDatasetView CompactDataset::view() const& noexcept {
  CompactDatasetView v;
  v.name = name;
  v.style = style;
  v.window_start = window_start;
  v.window_end = window_end;
  v.torrents = torrents;
  v.text = std::string_view(text.data(), text.size());
  v.filename_refs = filename_refs;
  v.peer_blob = std::string_view(peer_blob.data(), peer_blob.size());
  v.sightings = sightings;
  v.user_pages = user_pages;
  v.user_publish_times = user_publish_times;
  return v;
}

std::size_t CompactDataset::byte_size() const noexcept {
  return name.size() + torrents.size() * sizeof(TorrentRecordPod) + text.size() +
         filename_refs.size() * sizeof(StrRef) + peer_blob.size() +
         sightings.size() * sizeof(SimTime) +
         user_pages.size() * sizeof(UserPagePod) +
         user_publish_times.size() * sizeof(SimTime);
}

// ------------------------------------------------------------- builder --

CompactDatasetBuilder::CompactDatasetBuilder() { rehash_interns(1024); }

void CompactDatasetBuilder::rehash_interns(std::size_t capacity) {
  std::vector<std::pair<std::uint64_t, StrRef>> old = std::move(intern_index_);
  intern_index_.assign(capacity, {0, StrRef{}});
  intern_mask_ = capacity - 1;
  for (const auto& [hash, ref] : old) {
    if (ref.length == 0) continue;
    std::size_t i = static_cast<std::size_t>(hash) & intern_mask_;
    while (intern_index_[i].second.length != 0) i = (i + 1) & intern_mask_;
    intern_index_[i] = {hash, ref};
  }
}

StrRef CompactDatasetBuilder::intern(std::string_view s) {
  if (s.empty()) return StrRef{};
  if (s.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::runtime_error("compact_dataset: string too large to intern");
  }
  if ((interned_ + 1) * 4 > (intern_mask_ + 1) * 3) {
    rehash_interns((intern_mask_ + 1) * 2);
  }
  const std::uint64_t hash = fnv1a(s);
  std::size_t i = static_cast<std::size_t>(hash) & intern_mask_;
  for (;;) {
    auto& slot = intern_index_[i];
    if (slot.second.length == 0) break;  // free slot: new string
    if (slot.first == hash) {
      const std::string_view held(out_.text.data() + slot.second.offset,
                                  slot.second.length);
      if (held == s) return slot.second;
    }
    i = (i + 1) & intern_mask_;
  }
  if (out_.text.size() + s.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::runtime_error("compact_dataset: text arena exceeds 4 GiB");
  }
  const StrRef ref{static_cast<std::uint32_t>(out_.text.size()),
                   static_cast<std::uint32_t>(s.size())};
  out_.text.insert(out_.text.end(), s.begin(), s.end());
  intern_index_[i] = {hash, ref};
  ++interned_;
  return ref;
}

void CompactDatasetBuilder::set_header(std::string name, DatasetStyle style,
                                       SimTime window_start, SimTime window_end) {
  out_.name = std::move(name);
  out_.style = style;
  out_.window_start = window_start;
  out_.window_end = window_end;
}

void CompactDatasetBuilder::add_torrent(const TorrentRecord& record,
                                        std::span<const IpAddress> downloaders,
                                        std::span<const SimTime> sightings) {
  TorrentRecordPod pod;
  pod.size_bytes = record.size_bytes;
  pod.published_at = record.published_at;
  pod.first_seen = record.first_seen;
  pod.observed_removed_at = record.observed_removed_at;
  pod.piece_count = record.piece_count;
  pod.title = intern(record.title);
  pod.username = intern(record.username);
  pod.textbox = intern(record.textbox);
  pod.portal_id = record.portal_id;
  pod.initial_seeders = record.initial_seeders;
  pod.initial_peers = record.initial_peers;
  pod.query_count = record.query_count;
  pod.max_concurrent = record.max_concurrent;
  pod.infohash = record.infohash.bytes;
  pod.category = static_cast<std::uint8_t>(record.category);
  pod.language = static_cast<std::uint8_t>(record.language);
  if (record.publisher_ip) {
    pod.flags |= TorrentRecordPod::kHasPublisherIp;
    pod.publisher_ip = record.publisher_ip->value();
  }
  if (record.observed_removed) pod.flags |= TorrentRecordPod::kObservedRemoved;

  pod.payload_filenames.begin = static_cast<std::uint32_t>(out_.filename_refs.size());
  for (const std::string& f : record.payload_filenames) {
    out_.filename_refs.push_back(intern(f));
  }
  pod.payload_filenames.end = static_cast<std::uint32_t>(out_.filename_refs.size());

  pod.downloaders.begin = static_cast<std::uint32_t>(out_.peer_blob.size() / 6);
  // 6-byte BEP-23 entries (net/compact layout); the dataset records
  // addresses only, so the port half is zero.
  std::string entry;
  for (const IpAddress& ip : downloaders) {
    entry.clear();
    append_compact_peer(entry, Endpoint{ip, 0});
    out_.peer_blob.insert(out_.peer_blob.end(), entry.begin(), entry.end());
  }
  pod.downloaders.end = static_cast<std::uint32_t>(out_.peer_blob.size() / 6);

  pod.sightings.begin = static_cast<std::uint32_t>(out_.sightings.size());
  out_.sightings.insert(out_.sightings.end(), sightings.begin(), sightings.end());
  pod.sightings.end = static_cast<std::uint32_t>(out_.sightings.size());

  out_.torrents.push_back(pod);
}

void CompactDatasetBuilder::add_user_page(const UserPage& page) {
  UserPagePod pod;
  pod.username = intern(page.username);
  if (page.banned) pod.flags |= UserPagePod::kBanned;
  pod.publish_times.begin = static_cast<std::uint32_t>(out_.user_publish_times.size());
  out_.user_publish_times.insert(out_.user_publish_times.end(),
                                 page.publish_times.begin(),
                                 page.publish_times.end());
  pod.publish_times.end = static_cast<std::uint32_t>(out_.user_publish_times.size());
  out_.user_pages.push_back(pod);
}

CompactDataset CompactDatasetBuilder::finish() {
  // Sorted pages make find_user a binary search and the layout independent
  // of insertion order (the determinism requirement the stream serializer
  // already honours for Dataset::user_pages).
  const std::vector<char>& text = out_.text;
  std::sort(out_.user_pages.begin(), out_.user_pages.end(),
            [&text](const UserPagePod& a, const UserPagePod& b) {
              return std::string_view(text.data() + a.username.offset,
                                      a.username.length) <
                     std::string_view(text.data() + b.username.offset,
                                      b.username.length);
            });
  CompactDataset done = std::move(out_);
  out_ = CompactDataset{};
  // Discard (don't rehash) the intern index: its refs point into the text
  // arena that was just moved out, and reinserting more entries than the
  // fresh table holds would never find a free slot.
  intern_index_.assign(1024, {0, StrRef{}});
  intern_mask_ = 1023;
  interned_ = 0;
  return done;
}

// --------------------------------------------------------- conversions --

CompactDataset compact_dataset(const Dataset& dataset) {
  CompactDatasetBuilder builder;
  builder.set_header(dataset.name, dataset.style, dataset.window_start,
                     dataset.window_end);
  for (std::size_t i = 0; i < dataset.torrents.size(); ++i) {
    builder.add_torrent(dataset.torrents[i], dataset.downloaders[i],
                        dataset.publisher_sightings[i]);
  }
  for (const auto& [name, page] : dataset.user_pages) {
    builder.add_user_page(page);
  }
  return builder.finish();
}

Dataset inflate(const CompactDatasetView& view) {
  Dataset dataset;
  dataset.name = std::string(view.name);
  dataset.style = view.style;
  dataset.window_start = view.window_start;
  dataset.window_end = view.window_end;

  const std::size_t n = view.torrents.size();
  dataset.torrents.reserve(n);
  dataset.downloaders.reserve(n);
  dataset.publisher_sightings.reserve(n);
  const std::size_t peer_entries = view.peer_blob.size() / 6;
  for (const TorrentRecordPod& pod : view.torrents) {
    TorrentRecord r;
    r.portal_id = pod.portal_id;
    r.infohash.bytes = pod.infohash;
    r.title = std::string(checked_str(view, pod.title, "title ref"));
    r.category = static_cast<ContentCategory>(pod.category);
    r.language = static_cast<Language>(pod.language);
    r.size_bytes = pod.size_bytes;
    r.username = std::string(checked_str(view, pod.username, "username ref"));
    if (pod.flags & TorrentRecordPod::kHasPublisherIp) {
      r.publisher_ip = IpAddress(pod.publisher_ip);
    }
    r.published_at = pod.published_at;
    r.first_seen = pod.first_seen;
    r.textbox = std::string(checked_str(view, pod.textbox, "textbox ref"));
    check_span(pod.payload_filenames, view.filename_refs.size(), "filename span");
    r.payload_filenames.reserve(pod.payload_filenames.size());
    for (const StrRef ref : view.filenames_of(pod)) {
      r.payload_filenames.emplace_back(checked_str(view, ref, "filename ref"));
    }
    r.piece_count = static_cast<std::size_t>(pod.piece_count);
    r.observed_removed = (pod.flags & TorrentRecordPod::kObservedRemoved) != 0;
    r.observed_removed_at = pod.observed_removed_at;
    r.initial_seeders = pod.initial_seeders;
    r.initial_peers = pod.initial_peers;
    r.query_count = pod.query_count;
    r.max_concurrent = pod.max_concurrent;
    dataset.torrents.push_back(std::move(r));

    check_span(pod.downloaders, peer_entries, "downloader span");
    std::vector<IpAddress> ips;
    ips.reserve(pod.downloaders.size());
    for (std::uint32_t i = 0; i < pod.downloaders.size(); ++i) {
      ips.push_back(view.downloader_ip(pod, i));
    }
    dataset.downloaders.push_back(std::move(ips));

    check_span(pod.sightings, view.sightings.size(), "sighting span");
    const auto sightings = view.sightings_of(pod);
    dataset.publisher_sightings.emplace_back(sightings.begin(), sightings.end());
  }

  dataset.user_pages.reserve(view.user_pages.size());
  for (const UserPagePod& pod : view.user_pages) {
    UserPage page;
    page.username = std::string(checked_str(view, pod.username, "user-page name"));
    page.banned = (pod.flags & UserPagePod::kBanned) != 0;
    check_span(pod.publish_times, view.user_publish_times.size(),
               "publish-times span");
    const auto times =
        view.user_publish_times.subspan(pod.publish_times.begin,
                                        pod.publish_times.size());
    page.publish_times.assign(times.begin(), times.end());
    dataset.user_pages.emplace(page.username, std::move(page));
  }
  return dataset;
}

}  // namespace btpub
