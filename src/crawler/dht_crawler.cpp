#include "crawler/dht_crawler.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "torrent/magnet.hpp"
#include "torrent/metainfo.hpp"
#include "util/rng.hpp"

namespace btpub {

DhtCrawler::DhtCrawler(const Portal& portal, dht::DhtOverlay& overlay,
                       DhtCrawlerConfig config, std::uint64_t seed)
    : portal_(&portal),
      overlay_(&overlay),
      config_(std::move(config)),
      seed_(seed) {
  if (!config_.bootstrap_magnet.empty()) {
    if (const auto link = MagnetLink::parse(config_.bootstrap_magnet)) {
      bootstrap_ = link->peers;
    }
  }
}

Endpoint DhtCrawler::vantage() const {
  // 10.88.0.0/16: the DHT measurement box, distinct from both the tracker
  // vantages (10.77/16) and the overlay router (10.99/16).
  return Endpoint{IpAddress(10, 88, 0, 1), 6881};
}

Dataset DhtCrawler::crawl_window(SimTime window_start, SimTime window_end) {
  Dataset dataset;
  dataset.style = config_.style;
  dataset.name = std::string(to_string(config_.style)) + "-dht";
  dataset.window_start = window_start;
  dataset.window_end = window_end;
  totals_ = DhtCrawlTotals{};

  const SimTime hard_stop = window_end + config_.grace;

  // Same discovery rule as the tracker crawler: the dense id space stands
  // in for having tailed the RSS feed; discovery lands on the next poll
  // tick plus a per-torrent jittered handling delay.
  struct Monitor {
    TorrentId id = kInvalidTorrent;
    TorrentRecord record;
    std::vector<IpAddress> ips;
    std::unordered_set<IpAddress> seen;
    std::uint32_t consecutive_empty = 0;
    bool discovered = false;
    bool ok = false;
  };
  std::vector<Monitor> monitors;

  struct Poll {
    SimTime at;
    std::size_t monitor;
  };
  struct LaterPoll {
    bool operator()(const Poll& a, const Poll& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.monitor > b.monitor;  // portal-id order within a timestamp
    }
  };
  std::priority_queue<Poll, std::vector<Poll>, LaterPoll> schedule;

  const TorrentId newest = portal_->newest_id();
  if (newest == kInvalidTorrent) return dataset;
  for (TorrentId id = 0; id <= newest; ++id) {
    const auto page = portal_->page(id, hard_stop);
    if (!page) continue;
    if (page->published_at < window_start || page->published_at >= window_end) {
      continue;
    }
    Rng rng(derive_seed(seed_, static_cast<std::uint64_t>(id)));
    const SimTime poll_tick =
        ((page->published_at / config_.rss_poll) + 1) * config_.rss_poll;
    const SimTime discovery =
        poll_tick + static_cast<SimDuration>(rng.uniform_int(5, 60));
    Monitor monitor;
    monitor.id = id;
    schedule.push(Poll{discovery, monitors.size()});
    monitors.push_back(std::move(monitor));
  }

  // One global polling loop: every pop advances the overlay monotonically,
  // so the scheduled overlay life (joins, announces, departures) interleaves
  // with the measurement exactly once, in time order.
  while (!schedule.empty()) {
    const Poll poll = schedule.top();
    schedule.pop();
    Monitor& m = monitors[poll.monitor];
    const SimTime now = poll.at;

    if (!m.discovered) {
      const auto page = portal_->page(m.id, now);
      if (!page || page->removed) continue;  // gone before the first fetch
      const auto torrent_bytes = portal_->fetch_torrent(m.id, now);
      if (!torrent_bytes) continue;
      Metainfo metainfo;
      try {
        metainfo = Metainfo::parse(*torrent_bytes);
      } catch (const std::exception&) {
        continue;  // malformed .torrent: skip
      }
      m.record.portal_id = m.id;
      m.record.title = page->title;
      m.record.category = page->category;
      m.record.language = page->language;
      m.record.size_bytes = page->size_bytes;
      m.record.published_at = page->published_at;
      m.record.textbox = page->textbox;
      if (config_.style != DatasetStyle::Mn08) m.record.username = page->username;
      m.record.infohash = metainfo.infohash();
      m.record.piece_count = metainfo.piece_count();
      for (const FileEntry& f : metainfo.files()) {
        m.record.payload_filenames.push_back(f.path);
      }
      m.record.first_seen = now;
      m.discovered = true;
      m.ok = true;
      if (observer_) observer_->on_discover(m.record, now);
    } else if (!m.record.observed_removed) {
      const auto page = portal_->page(m.id, now);
      if (page && page->removed) {
        m.record.observed_removed = true;
        m.record.observed_removed_at = now;
        if (observer_) observer_->on_removal(m.id, now);
      }
    }

    overlay_->advance_to(now);
    dht::LookupStats stats;
    const std::vector<Endpoint> peers = overlay_->get_peers(
        m.record.infohash, vantage(), now, &stats, bootstrap_,
        /*read_only=*/true);
    ++m.record.query_count;
    ++totals_.lookups;
    totals_.messages += stats.messages;
    totals_.timeouts += stats.timeouts;
    totals_.hops += stats.hops;
    totals_.max_hops = std::max(totals_.max_hops, stats.hops);
    if (m.record.query_count == 1) {
      m.record.initial_peers = static_cast<std::uint32_t>(peers.size());
    }
    m.record.max_concurrent = std::max(
        m.record.max_concurrent, static_cast<std::uint32_t>(peers.size()));
    for (const Endpoint& peer : peers) {
      if (m.seen.insert(peer.ip).second) m.ips.push_back(peer.ip);
    }
    if (observer_ && !peers.empty()) {
      observed_.clear();
      for (const Endpoint& peer : peers) observed_.push_back(peer.ip);
      observer_->on_downloaders(m.id, observed_, now);
    }
    if (peers.empty()) {
      if (++m.consecutive_empty >= config_.empty_lookups_to_stop) continue;
    } else {
      m.consecutive_empty = 0;
    }
    const SimTime next = now + config_.poll_interval;
    if (next <= hard_stop) schedule.push(Poll{next, poll.monitor});
  }

  for (Monitor& m : monitors) {
    if (!m.ok) continue;
    dataset.torrents.push_back(std::move(m.record));
    dataset.downloaders.push_back(std::move(m.ips));
    dataset.publisher_sightings.emplace_back();  // no probe at this vantage
  }
  if (config_.style != DatasetStyle::Mn08) {
    for (const TorrentRecord& record : dataset.torrents) {
      if (record.username.empty()) continue;
      if (!dataset.user_pages.contains(record.username)) {
        const auto [it, inserted] = dataset.user_pages.emplace(
            record.username, portal_->user_page(record.username, hard_stop));
        if (observer_ && inserted) {
          observer_->on_user_page(record.username, it->second);
        }
      }
    }
  }
  return dataset;
}

}  // namespace btpub
