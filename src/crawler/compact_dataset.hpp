// compact_dataset.hpp — struct-of-arrays form of a crawl Dataset.
//
// The pointer-heavy Dataset (per-torrent std::strings, vector-of-vectors
// of downloader IPs, an unordered_map of user pages) costs a heap block —
// often several — per torrent, which caps the in-memory world size well
// short of the 500K-torrent / 10M-session target. CompactDataset stores
// the same information as seven flat arrays:
//
//   torrents            fixed-width TorrentRecordPod rows
//   text                one string arena; all strings are interned
//                       (identical strings share bytes) and referenced by
//                       (offset, length)
//   filename_refs       flattened payload-filename StrRefs
//   peer_blob           every downloader IP in 6-byte BEP-23 compact form
//                       (net/compact encoding, port 0 — the crawler's
//                       dataset keeps addresses, not ports), one
//                       contiguous blob with per-torrent [begin, end)
//                       entry spans
//   sightings           publisher sighting times, flattened
//   user_pages          UserPagePod rows sorted by username
//   user_publish_times  user-page publish times, flattened
//
// Conversion Dataset ⇄ CompactDataset is lossless, and CompactDatasetView
// exposes the arrays as spans without owning them — the same view type
// reads an in-memory CompactDataset or an mmap-ed snapshot
// (dataset_mmap.hpp) byte-for-byte identically, so analysis consumers
// (IdentityAnalysis distinct-IP counting) run with zero inflation.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "crawler/dataset.hpp"

namespace btpub {

/// (offset, length) into the interned text arena.
struct StrRef {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
};

/// [begin, end) element indices into one of the flattened arrays.
struct Span32 {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;

  std::uint32_t size() const noexcept { return end - begin; }
};

/// Fixed-width row mirroring TorrentRecord; strings and variable-length
/// payloads live in the shared arenas. 8-byte fields lead so the row packs
/// without internal padding; the layout is pinned by the static_asserts
/// below because the mmap snapshot memcpy-s rows verbatim.
struct TorrentRecordPod {
  static constexpr std::uint8_t kHasPublisherIp = 1u << 0;
  static constexpr std::uint8_t kObservedRemoved = 1u << 1;

  std::int64_t size_bytes = 0;
  std::int64_t published_at = 0;
  std::int64_t first_seen = 0;
  std::int64_t observed_removed_at = -1;
  std::uint64_t piece_count = 0;
  StrRef title{};
  StrRef username{};
  StrRef textbox{};
  Span32 payload_filenames{};  // into filename_refs
  Span32 downloaders{};        // 6-byte entries in peer_blob
  Span32 sightings{};          // into sightings
  TorrentId portal_id = kInvalidTorrent;
  std::uint32_t publisher_ip = 0;  // valid iff flags & kHasPublisherIp
  std::uint32_t initial_seeders = 0;
  std::uint32_t initial_peers = 0;
  std::uint32_t query_count = 0;
  std::uint32_t max_concurrent = 0;
  std::array<std::uint8_t, 20> infohash{};
  std::uint8_t category = 0;
  std::uint8_t language = 0;
  std::uint8_t flags = 0;
  std::uint8_t reserved = 0;
};
static_assert(sizeof(TorrentRecordPod) == 136, "layout is part of the format");
static_assert(alignof(TorrentRecordPod) == 8);
static_assert(std::is_trivially_copyable_v<TorrentRecordPod>);

/// Fixed-width row mirroring UserPage.
struct UserPagePod {
  static constexpr std::uint32_t kBanned = 1u << 0;

  StrRef username{};
  Span32 publish_times{};  // into user_publish_times
  std::uint32_t flags = 0;
};
static_assert(sizeof(UserPagePod) == 20, "layout is part of the format");
static_assert(std::is_trivially_copyable_v<UserPagePod>);

/// Non-owning view over the seven arrays plus the dataset header. Produced
/// by CompactDataset::view() and by MappedDataset (dataset_mmap.hpp).
struct CompactDatasetView {
  std::string_view name;
  DatasetStyle style = DatasetStyle::Pb10;
  SimTime window_start = 0;
  SimTime window_end = 0;

  std::span<const TorrentRecordPod> torrents;
  std::string_view text;
  std::span<const StrRef> filename_refs;
  std::string_view peer_blob;  // size = 6 x downloader entries
  std::span<const SimTime> sightings;
  std::span<const UserPagePod> user_pages;  // sorted by username
  std::span<const SimTime> user_publish_times;

  std::string_view str(StrRef ref) const noexcept {
    return text.substr(ref.offset, ref.length);
  }
  std::string_view title(const TorrentRecordPod& r) const noexcept { return str(r.title); }
  std::string_view username(const TorrentRecordPod& r) const noexcept {
    return str(r.username);
  }
  std::string_view textbox(const TorrentRecordPod& r) const noexcept {
    return str(r.textbox);
  }

  /// Decodes downloader entry `i` of a torrent's span (BEP-23 big-endian).
  IpAddress downloader_ip(const TorrentRecordPod& r, std::uint32_t i) const noexcept {
    const auto* p = reinterpret_cast<const unsigned char*>(
        peer_blob.data() + std::size_t{6} * (r.downloaders.begin + i));
    return IpAddress((std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
                     (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]});
  }
  std::size_t downloader_count(const TorrentRecordPod& r) const noexcept {
    return r.downloaders.size();
  }
  std::span<const SimTime> sightings_of(const TorrentRecordPod& r) const noexcept {
    return sightings.subspan(r.sightings.begin, r.sightings.size());
  }
  std::span<const StrRef> filenames_of(const TorrentRecordPod& r) const noexcept {
    return filename_refs.subspan(r.payload_filenames.begin,
                                 r.payload_filenames.size());
  }

  /// Binary search over the username-sorted user pages.
  const UserPagePod* find_user(std::string_view username) const noexcept;

  // ---- Table-1 summary helpers, span-native (match Dataset's). ----
  std::size_t torrent_count() const noexcept { return torrents.size(); }
  std::size_t with_username() const noexcept;
  std::size_t with_publisher_ip() const noexcept;
  std::size_t distinct_ips_global() const;
  std::size_t ip_observations_total() const noexcept;
};

/// Owning struct-of-arrays dataset.
struct CompactDataset {
  std::string name;
  DatasetStyle style = DatasetStyle::Pb10;
  SimTime window_start = 0;
  SimTime window_end = 0;

  std::vector<TorrentRecordPod> torrents;
  std::vector<char> text;
  std::vector<StrRef> filename_refs;
  std::vector<char> peer_blob;
  std::vector<SimTime> sightings;
  std::vector<UserPagePod> user_pages;
  std::vector<SimTime> user_publish_times;

  /// Ref-qualified: a view borrows this object's arrays, so taking one
  /// from a temporary would dangle immediately.
  CompactDatasetView view() const& noexcept;
  CompactDatasetView view() const&& = delete;

  /// Total bytes across all arrays (the RSS story, modulo vector slack).
  std::size_t byte_size() const noexcept;
};

/// Incremental builder: appends one torrent at a time, interning strings
/// as it goes. Lets bulk producers (the snapshot bench's synthetic worlds,
/// streaming converters) assemble the compact form without ever holding a
/// pointer-heavy Dataset.
class CompactDatasetBuilder {
 public:
  CompactDatasetBuilder();

  void set_header(std::string name, DatasetStyle style, SimTime window_start,
                  SimTime window_end);

  /// Appends one torrent row. `downloaders` and `sightings` are copied into
  /// the flat arrays; record fields are interned/flattened.
  void add_torrent(const TorrentRecord& record,
                   std::span<const IpAddress> downloaders,
                   std::span<const SimTime> sightings);

  /// Appends one user page; pages may arrive in any order (sorted on
  /// finish()).
  void add_user_page(const UserPage& page);

  /// Sorts user pages and releases the finished dataset. The builder is
  /// reusable afterwards (empty state).
  CompactDataset finish();

 private:
  StrRef intern(std::string_view s);

  CompactDataset out_;
  // Dedup index: FNV-1a hash -> interned ref. On the (astronomically rare)
  // hash collision with different bytes the string is stored twice, which
  // costs bytes, never correctness.
  std::vector<std::pair<std::uint64_t, StrRef>> intern_index_;
  std::size_t intern_mask_ = 0;
  std::size_t interned_ = 0;
  void rehash_interns(std::size_t capacity);
};

/// Lossless conversions. inflate() bounds-checks every reference and
/// throws std::runtime_error on a corrupt view (the mmap loader relies on
/// this as its deep-validation pass).
CompactDataset compact_dataset(const Dataset& dataset);
Dataset inflate(const CompactDatasetView& view);

}  // namespace btpub
