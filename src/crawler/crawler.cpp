#include "crawler/crawler.hpp"

#include <algorithm>
#include <future>
#include <stdexcept>
#include <utility>

#include "torrent/metainfo.hpp"
#include "torrent/wire.hpp"
#include "util/thread_pool.hpp"

namespace btpub {

Crawler::Crawler(const Portal& portal, Tracker& tracker, SwarmNetwork& network,
                 const GeoDb& geo, CrawlerConfig config, std::uint64_t seed)
    : portal_(&portal),
      tracker_(&tracker),
      network_(&network),
      geo_(&geo),
      config_(std::move(config)),
      seed_(seed) {}

Endpoint Crawler::vantage(std::size_t index) const {
  // Measurement machines live in 10.77.0.0/16, outside the simulated
  // Internet's GeoIP space, so they never collide with peers.
  return Endpoint{IpAddress(10, 77, static_cast<std::uint8_t>(index >> 8),
                            static_cast<std::uint8_t>(index & 0xff)),
                  6881};
}

void Crawler::record_reply(const AnnounceReply& reply, TorrentRecord& record,
                           std::vector<IpAddress>& ips,
                           std::vector<SimTime>& sightings,
                           CrawlScratch& scratch, SimTime now) {
  record.max_concurrent =
      std::max(record.max_concurrent, reply.complete + reply.incomplete);
  scratch.observed.clear();
  for (const Endpoint& peer : reply.peers) {
    if (record.publisher_ip && peer.ip == *record.publisher_ip) {
      sightings.push_back(now);
      if (observer_) observer_->on_publisher_sighting(record.portal_id, now);
      continue;
    }
    if (scratch.seen.insert(peer.ip).second) ips.push_back(peer.ip);
    if (observer_) scratch.observed.push_back(peer.ip);
  }
  if (observer_ && !scratch.observed.empty()) {
    observer_->on_downloaders(record.portal_id, scratch.observed, now);
  }
}

void Crawler::first_contact(TorrentRecord& record, std::vector<IpAddress>& ips,
                            std::vector<SimTime>& sightings,
                            CrawlScratch& scratch, SimTime now) {
  AnnounceRequest request;
  request.infohash = record.infohash;
  request.client = vantage(0);
  request.numwant = config_.numwant;
  request.now = now;
  // Struct-level announce: same observable reply as the HTTP string round
  // trip (handle_get + decode), minus the encode/parse work — the golden
  // response test pins the wire bytes the shim still produces.
  tracker_->announce_into(request, scratch.reply, scratch.announce);
  const AnnounceReply& reply = scratch.reply;
  record.first_seen = now;
  ++record.query_count;
  if (reply.ok) {
    record.initial_seeders = reply.complete;
    record.initial_peers = reply.complete + reply.incomplete;

    // Initial-seeder identification: only feasible in a young swarm with a
    // single seeder and few participants (§2). Probe every returned peer and
    // look for the complete bitfield.
    if (reply.complete == 1 && record.initial_peers < config_.max_probe_peers) {
      for (const Endpoint& peer : reply.peers) {
        const auto probe = network_->probe(record.infohash, peer, now);
        if (!probe) continue;  // NAT or gone
        const auto handshake = Handshake::decode(probe->handshake);
        if (!handshake || handshake->infohash != record.infohash) continue;
        std::size_t pos = 0;
        const auto message = decode_message(probe->bitfield, pos);
        if (!message || message->type != WireMessageType::Bitfield) continue;
        Bitfield field;
        try {
          field = Bitfield::from_bytes(message->payload, record.piece_count);
        } catch (const std::invalid_argument&) {
          continue;
        }
        if (field.complete()) {
          record.publisher_ip = peer.ip;
          break;
        }
      }
    }
  }
  // Discovery streams out after the probe so the observer learns the
  // identified publisher with the record, and before any peer push so
  // on_discover always precedes the per-peer hooks.
  if (observer_) observer_->on_discover(record, now);
  if (reply.ok) record_reply(reply, record, ips, sightings, scratch, now);
}

void Crawler::monitor(TorrentRecord& record, std::vector<IpAddress>& ips,
                      std::vector<SimTime>& sightings, CrawlScratch& scratch,
                      SimTime hard_stop) {
  // Each vantage machine queries at the fastest allowed cadence; their
  // schedules are staggered so aggregated resolution is gap/vantage_points.
  const SimDuration gap = tracker_->enforced_gap() + kSecond;
  const std::size_t n_vantage = std::max<std::size_t>(config_.vantage_points, 1);
  const SimDuration stagger = gap / static_cast<SimDuration>(n_vantage);

  std::uint32_t consecutive_empty = 0;
  SimTime next_page_check = record.first_seen + config_.page_recheck;
  std::uint64_t tick = 1;
  while (true) {
    const std::size_t machine = tick % n_vantage;
    const SimTime now = record.first_seen +
                        static_cast<SimTime>(tick / n_vantage) * gap +
                        static_cast<SimTime>(machine) * stagger;
    ++tick;
    if (now > hard_stop) break;

    AnnounceRequest request;
    request.infohash = record.infohash;
    request.client = vantage(machine);
    request.numwant = config_.numwant;
    request.now = now;
    tracker_->announce_into(request, scratch.reply, scratch.announce);
    const AnnounceReply& reply = scratch.reply;
    ++record.query_count;
    if (reply.ok) {
      record_reply(reply, record, ips, sightings, scratch, now);
      if (reply.peers.empty()) {
        if (++consecutive_empty >= config_.empty_replies_to_stop) break;
      } else {
        consecutive_empty = 0;
      }
    }

    if (now >= next_page_check && !record.observed_removed) {
      const auto page = portal_->page(record.portal_id, now);
      if (page && page->removed) {
        record.observed_removed = true;
        record.observed_removed_at = now;
        if (observer_) observer_->on_removal(record.portal_id, now);
      }
      next_page_check = now + config_.page_recheck;
    }
  }
}

std::optional<TorrentRecord> Crawler::discover(TorrentId id, SimTime now,
                                               std::vector<IpAddress>& downloaders,
                                               std::vector<SimTime>& sightings) {
  CrawlScratch scratch;
  return discover_with(id, now, downloaders, sightings, scratch);
}

std::optional<TorrentRecord> Crawler::discover_with(
    TorrentId id, SimTime now, std::vector<IpAddress>& downloaders,
    std::vector<SimTime>& sightings, CrawlScratch& scratch) {
  const auto page = portal_->page(id, now);
  if (!page || page->removed) return std::nullopt;
  const auto torrent_bytes = portal_->fetch_torrent(id, now);
  if (!torrent_bytes) return std::nullopt;

  TorrentRecord record;
  record.portal_id = id;
  record.title = page->title;
  record.category = page->category;
  record.language = page->language;
  record.size_bytes = page->size_bytes;
  record.published_at = page->published_at;
  record.textbox = page->textbox;
  if (config_.style != DatasetStyle::Mn08) record.username = page->username;

  Metainfo metainfo;
  try {
    metainfo = Metainfo::parse(*torrent_bytes);
  } catch (const std::exception&) {
    return std::nullopt;  // malformed .torrent: skip, as a real crawler would
  }
  record.infohash = metainfo.infohash();
  record.piece_count = metainfo.piece_count();
  for (const FileEntry& f : metainfo.files()) {
    record.payload_filenames.push_back(f.path);
  }

  first_contact(record, downloaders, sightings, scratch, now);
  return record;
}

Crawler::CrawlResult Crawler::crawl_one(TorrentId id, SimTime published_at,
                                        SimTime window_end,
                                        CrawlScratch& scratch) {
  CrawlResult result;
  scratch.seen.clear();  // per-torrent dedup; capacity is kept
  // Per-torrent substream: the jitter (and any future per-torrent draw)
  // depends only on (seed, portal id), never on how many torrents were
  // crawled before this one or on which worker runs it.
  Rng rng(derive_seed(seed_, static_cast<std::uint64_t>(id)));

  // Discovery happens at the next RSS poll tick plus a small handling
  // delay for the .torrent download.
  const SimTime poll_tick =
      ((published_at / config_.rss_poll) + 1) * config_.rss_poll;
  const SimTime discovery =
      poll_tick + static_cast<SimDuration>(rng.uniform_int(5, 60));

  auto record = discover_with(id, discovery, result.downloaders,
                              result.sightings, scratch);
  if (!record) return result;  // removed before we could fetch it

  if (config_.style != DatasetStyle::Pb09) {
    monitor(*record, result.downloaders, result.sightings, scratch,
            window_end + config_.grace);
  }
  result.record = std::move(*record);
  result.ok = true;
  return result;
}

Dataset Crawler::crawl_window(SimTime window_start, SimTime window_end) {
  Dataset dataset;
  dataset.style = config_.style;
  dataset.name = std::string(to_string(config_.style));
  dataset.window_start = window_start;
  dataset.window_end = window_end;

  // Walk the portal's dense id space; ids are publication-ordered, so this
  // is equivalent to having tailed the RSS feed throughout the window.
  const TorrentId newest = portal_->newest_id();
  if (newest == kInvalidTorrent) return dataset;

  struct Candidate {
    TorrentId id;
    SimTime published_at;
  };
  std::vector<Candidate> candidates;
  for (TorrentId id = 0; id <= newest; ++id) {
    // Peek only at the publication timestamp — equivalent to having read
    // the RSS item when it appeared; all content access goes through
    // discover_with() at the discovery time.
    const auto page = portal_->page(id, window_end + config_.grace);
    if (!page) continue;
    if (page->published_at < window_start || page->published_at >= window_end) {
      continue;
    }
    candidates.push_back(Candidate{id, page->published_at});
  }

  // Fan the per-torrent crawls out; merge in portal-id order (candidates
  // are already id-ascending) so the dataset layout is independent of
  // completion order.
  std::vector<CrawlResult> results(candidates.size());
  const std::size_t n_threads = ThreadPool::resolve_threads(config_.threads);
  if (n_threads <= 1 || candidates.size() <= 1) {
    CrawlScratch scratch;  // one warm scratch for the whole window
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      results[i] = crawl_one(candidates[i].id, candidates[i].published_at,
                             window_end, scratch);
    }
  } else {
    ThreadPool pool(n_threads);
    std::vector<std::future<CrawlResult>> futures;
    futures.reserve(candidates.size());
    for (const Candidate& candidate : candidates) {
      futures.push_back(pool.submit([this, candidate, window_end] {
        // One scratch per pool thread, reused across every torrent that
        // worker picks up. Scratch never influences results, so which
        // worker crawls which torrent stays irrelevant to the output.
        thread_local CrawlScratch scratch;
        return crawl_one(candidate.id, candidate.published_at, window_end,
                         scratch);
      }));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      results[i] = futures[i].get();  // rethrows any worker exception
    }
  }

  for (CrawlResult& result : results) {
    if (!result.ok) continue;  // removed before we could fetch it
    dataset.torrents.push_back(std::move(result.record));
    dataset.downloaders.push_back(std::move(result.downloaders));
    dataset.publisher_sightings.push_back(std::move(result.sightings));
  }

  // Snapshot user pages at the end of the crawl (§5.2's longitudinal view).
  if (config_.style != DatasetStyle::Mn08) {
    for (const TorrentRecord& record : dataset.torrents) {
      if (record.username.empty()) continue;
      if (!dataset.user_pages.contains(record.username)) {
        const auto [it, inserted] = dataset.user_pages.emplace(
            record.username,
            portal_->user_page(record.username, window_end + config_.grace));
        if (observer_ && inserted) {
          observer_->on_user_page(record.username, it->second);
        }
      }
    }
  }
  return dataset;
}

}  // namespace btpub
