#include "crawler/dataset_io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>
#include <filesystem>
#include <fstream>
#include <functional>
#include <stdexcept>

#include "crawler/dataset_mmap.hpp"

namespace btpub {
namespace {

// Bump kFormatVersion (and only it) on any layout change; the magic and
// the cache keys derived from dataset_format_version() follow.
constexpr int kFormatVersion = 3;
constexpr char kMagic[8] = {'B', 'T', 'P', 'U', 'B', 'D',
                            'S', static_cast<char>('0' + kFormatVersion)};

void write_bytes(std::ostream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!out) throw std::runtime_error("dataset_io: write failed");
}

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_bytes(out, &value, sizeof value);
}

void write_string(std::ostream& out, const std::string& s) {
  write_pod(out, static_cast<std::uint32_t>(s.size()));
  write_bytes(out, s.data(), s.size());
}

void read_bytes(std::istream& in, void* data, std::size_t size) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(in.gcount()) != size) {
    throw std::runtime_error("dataset_io: truncated input");
  }
}

template <typename T>
T read_pod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  read_bytes(in, &value, sizeof value);
  return value;
}

std::string read_string(std::istream& in) {
  const auto size = read_pod<std::uint32_t>(in);
  if (size > (1u << 28)) throw std::runtime_error("dataset_io: bogus string size");
  std::string s(size, '\0');
  if (size > 0) read_bytes(in, s.data(), size);
  return s;
}

void write_record(std::ostream& out, const TorrentRecord& r) {
  write_pod(out, r.portal_id);
  write_bytes(out, r.infohash.bytes.data(), r.infohash.bytes.size());
  write_string(out, r.title);
  write_pod(out, static_cast<std::uint8_t>(r.category));
  write_pod(out, static_cast<std::uint8_t>(r.language));
  write_pod(out, r.size_bytes);
  write_string(out, r.username);
  write_pod(out, static_cast<std::uint8_t>(r.publisher_ip.has_value()));
  write_pod(out, r.publisher_ip ? r.publisher_ip->value() : 0u);
  write_pod(out, r.published_at);
  write_pod(out, r.first_seen);
  write_string(out, r.textbox);
  write_pod(out, static_cast<std::uint32_t>(r.payload_filenames.size()));
  for (const std::string& name : r.payload_filenames) write_string(out, name);
  write_pod(out, static_cast<std::uint64_t>(r.piece_count));
  write_pod(out, static_cast<std::uint8_t>(r.observed_removed));
  write_pod(out, r.observed_removed_at);
  write_pod(out, r.initial_seeders);
  write_pod(out, r.initial_peers);
  write_pod(out, r.query_count);
  write_pod(out, r.max_concurrent);
}

TorrentRecord read_record(std::istream& in) {
  TorrentRecord r;
  r.portal_id = read_pod<TorrentId>(in);
  read_bytes(in, r.infohash.bytes.data(), r.infohash.bytes.size());
  r.title = read_string(in);
  r.category = static_cast<ContentCategory>(read_pod<std::uint8_t>(in));
  r.language = static_cast<Language>(read_pod<std::uint8_t>(in));
  r.size_bytes = read_pod<std::int64_t>(in);
  r.username = read_string(in);
  const bool has_ip = read_pod<std::uint8_t>(in) != 0;
  const auto raw_ip = read_pod<std::uint32_t>(in);
  if (has_ip) r.publisher_ip = IpAddress(raw_ip);
  r.published_at = read_pod<SimTime>(in);
  r.first_seen = read_pod<SimTime>(in);
  r.textbox = read_string(in);
  const auto n_files = read_pod<std::uint32_t>(in);
  r.payload_filenames.reserve(n_files);
  for (std::uint32_t i = 0; i < n_files; ++i) {
    r.payload_filenames.push_back(read_string(in));
  }
  r.piece_count = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  r.observed_removed = read_pod<std::uint8_t>(in) != 0;
  r.observed_removed_at = read_pod<SimTime>(in);
  r.initial_seeders = read_pod<std::uint32_t>(in);
  r.initial_peers = read_pod<std::uint32_t>(in);
  r.query_count = read_pod<std::uint32_t>(in);
  r.max_concurrent = read_pod<std::uint32_t>(in);
  return r;
}

}  // namespace

void save_dataset(const Dataset& dataset, std::ostream& out) {
  write_bytes(out, kMagic, sizeof kMagic);
  write_string(out, dataset.name);
  write_pod(out, static_cast<std::uint8_t>(dataset.style));
  write_pod(out, dataset.window_start);
  write_pod(out, dataset.window_end);
  write_pod(out, static_cast<std::uint64_t>(dataset.torrents.size()));
  for (std::size_t i = 0; i < dataset.torrents.size(); ++i) {
    write_record(out, dataset.torrents[i]);
    const auto& ips = dataset.downloaders[i];
    write_pod(out, static_cast<std::uint32_t>(ips.size()));
    for (const IpAddress& ip : ips) write_pod(out, ip.value());
    const auto& sightings = dataset.publisher_sightings[i];
    write_pod(out, static_cast<std::uint32_t>(sightings.size()));
    for (const SimTime t : sightings) write_pod(out, t);
  }
  // Emit user pages in sorted username order: the in-memory container is an
  // unordered_map, and byte-identical serialization (the parallel-crawl
  // determinism invariant) must not hinge on its iteration order.
  std::vector<const std::string*> usernames;
  usernames.reserve(dataset.user_pages.size());
  for (const auto& [name, page] : dataset.user_pages) usernames.push_back(&name);
  std::sort(usernames.begin(), usernames.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  write_pod(out, static_cast<std::uint64_t>(dataset.user_pages.size()));
  for (const std::string* name : usernames) {
    const UserPage& page = dataset.user_pages.at(*name);
    write_string(out, *name);
    write_pod(out, static_cast<std::uint8_t>(page.banned));
    write_pod(out, static_cast<std::uint32_t>(page.publish_times.size()));
    for (const SimTime t : page.publish_times) write_pod(out, t);
  }
}

void save_dataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("dataset_io: cannot open " + path);
  save_dataset(dataset, out);
}

Dataset load_dataset(std::istream& in) {
  char magic[8];
  read_bytes(in, magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("dataset_io: bad magic / version");
  }
  Dataset dataset;
  dataset.name = read_string(in);
  dataset.style = static_cast<DatasetStyle>(read_pod<std::uint8_t>(in));
  dataset.window_start = read_pod<SimTime>(in);
  dataset.window_end = read_pod<SimTime>(in);
  const auto n = read_pod<std::uint64_t>(in);
  dataset.torrents.reserve(n);
  dataset.downloaders.reserve(n);
  dataset.publisher_sightings.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    dataset.torrents.push_back(read_record(in));
    const auto n_ips = read_pod<std::uint32_t>(in);
    std::vector<IpAddress> ips;
    ips.reserve(n_ips);
    for (std::uint32_t k = 0; k < n_ips; ++k) {
      ips.emplace_back(read_pod<std::uint32_t>(in));
    }
    dataset.downloaders.push_back(std::move(ips));
    const auto n_sightings = read_pod<std::uint32_t>(in);
    std::vector<SimTime> sightings;
    sightings.reserve(n_sightings);
    for (std::uint32_t k = 0; k < n_sightings; ++k) {
      sightings.push_back(read_pod<SimTime>(in));
    }
    dataset.publisher_sightings.push_back(std::move(sightings));
  }
  const auto n_pages = read_pod<std::uint64_t>(in);
  for (std::uint64_t i = 0; i < n_pages; ++i) {
    UserPage page;
    page.username = read_string(in);
    page.banned = read_pod<std::uint8_t>(in) != 0;
    const auto n_times = read_pod<std::uint32_t>(in);
    page.publish_times.reserve(n_times);
    for (std::uint32_t k = 0; k < n_times; ++k) {
      page.publish_times.push_back(read_pod<SimTime>(in));
    }
    dataset.user_pages.emplace(page.username, std::move(page));
  }
  return dataset;
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("dataset_io: cannot open " + path);
  return load_dataset(in);
}

int dataset_format_version() noexcept { return kFormatVersion; }

Dataset load_or_generate(const std::string& path,
                         const std::function<Dataset()>& generate) {
  // Prefer the mmap snapshot: no per-record parsing, and inflation is a
  // bulk copy out of the mapping.
  const std::string snapshot = mmap_sibling_path(path);
  if (std::filesystem::exists(snapshot)) {
    try {
      return MappedDataset(snapshot).to_dataset();
    } catch (const std::exception&) {
      // Stale or corrupt snapshot: fall through to the stream file.
    }
  }
  if (std::filesystem::exists(path)) {
    try {
      return load_dataset(path);
    } catch (const std::exception&) {
      // Stale or corrupt cache: fall through and regenerate.
    }
  }
  Dataset dataset = generate();
  // Caching is best effort — the dataset is returned either way — but a
  // silent failure makes every run a cold cache, so say why it failed.
  auto warn = [](const char* what, const std::string& p,
                 const std::exception& e, int err) {
    std::fprintf(stderr,
                 "[btpub] warning: could not cache %s to %s: %s (errno %d: %s)\n",
                 what, p.c_str(), e.what(), err,
                 err != 0 ? std::strerror(err) : "-");
  };
  try {
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    errno = 0;
    save_dataset(dataset, path);
  } catch (const std::exception& e) {
    warn("dataset", path, e, errno);
  }
  try {
    errno = 0;
    save_mmap_snapshot(dataset, snapshot);
  } catch (const std::exception& e) {
    warn("mmap snapshot", snapshot, e, errno);
  }
  return dataset;
}

}  // namespace btpub
