// dht_crawler.hpp — the trackerless measurement vantage: iterative
// get_peers walks over the simulated Mainline DHT, emitting the same
// Dataset schema as the tracker crawler so the analysis pipeline (and the
// cross-check report) can consume either vantage unchanged.
//
// Methodology differences from the tracker vantage:
//   * peers come from iterative DHT lookups instead of announce replies,
//     so there are no seeder/leecher counts and no numwant cap — a lookup
//     returns whatever the k closest nodes stored;
//   * no peer-wire probing: the DHT vantage never identifies the initial
//     publisher itself (publisher_ip stays unset) — identifying who is
//     *missing* from the DHT relative to the tracker is exactly the
//     cross-check's job (see cross_check.hpp);
//   * `downloaders` therefore holds every distinct IP the DHT returned,
//     publisher included.
//
// Determinism: the crawler runs one global polling loop ordered by
// (time, portal id), so the overlay — whose scheduled life (joins,
// announces, departures) is replayed by advance_to — is driven by a single
// monotone time sweep. Two crawls of identically-seeded overlays are
// byte-identical.
#pragma once

#include <cstdint>
#include <string>

#include "crawler/dataset.hpp"
#include "crawler/observer.hpp"
#include "dht/overlay.hpp"
#include "portal/portal.hpp"

namespace btpub {

struct DhtCrawlerConfig {
  DatasetStyle style = DatasetStyle::Pb10;
  /// RSS polling period (how fast a birth is detected).
  SimDuration rss_poll = minutes(5);
  /// Period between get_peers walks on a monitored torrent. DHT lookups
  /// cost ~20 messages each, so the cadence is coarser than the tracker's.
  SimDuration poll_interval = minutes(30);
  /// Stop monitoring after this many consecutive peerless lookups.
  std::uint32_t empty_lookups_to_stop = 10;
  /// Monitoring continues at most this long past the window end.
  SimDuration grace = days(3);
  /// Optional magnet URI whose x.pe peer hints seed every lookup's
  /// shortlist (the operator's bootstrap entry points). Empty, absent or
  /// malformed x.pe-less magnets fall back to the overlay router.
  std::string bootstrap_magnet;
};

/// Aggregate lookup telemetry for one crawl (feeds BENCH_dht.json).
struct DhtCrawlTotals {
  std::uint64_t lookups = 0;
  std::uint64_t messages = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t hops = 0;       // summed over lookups
  std::uint32_t max_hops = 0;
};

class DhtCrawler {
 public:
  DhtCrawler(const Portal& portal, dht::DhtOverlay& overlay,
             DhtCrawlerConfig config, std::uint64_t seed);

  /// Crawls every torrent published in [window_start, window_end) from the
  /// DHT vantage. Deterministic given (overlay seed+schedule, seed).
  Dataset crawl_window(SimTime window_start, SimTime window_end);

  const DhtCrawlerConfig& config() const noexcept { return config_; }
  const DhtCrawlTotals& totals() const noexcept { return totals_; }

  /// Attaches the crawl-time observation stream (§4.5). The DHT vantage
  /// never identifies publishers, so on_downloaders carries every returned
  /// IP and on_publisher_sighting never fires — mirroring the vantage's
  /// Dataset semantics. Single-threaded: hooks fire from the polling loop.
  void set_observer(CrawlObserver* observer) noexcept { observer_ = observer; }

 private:
  /// The single measurement box; read-only (BEP 43), so the vantage never
  /// enters any routing table.
  Endpoint vantage() const;

  const Portal* portal_;
  dht::DhtOverlay* overlay_;
  CrawlObserver* observer_ = nullptr;
  DhtCrawlerConfig config_;
  std::uint64_t seed_;
  std::vector<Endpoint> bootstrap_;
  DhtCrawlTotals totals_;
  /// Per-lookup IP batch for the observer push (capacity reused).
  std::vector<IpAddress> observed_;
};

}  // namespace btpub
