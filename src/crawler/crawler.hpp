// crawler.hpp — the paper's measurement methodology (§2), end to end:
//
//   1. poll the portal RSS feed to learn about a newborn torrent;
//   2. download the .torrent, parse it, contact the tracker immediately;
//   3. if the young swarm has a single seeder and few peers, probe every
//      returned peer over the peer-wire protocol and identify the complete
//      bitfield — that peer's IP is the initial publisher;
//   4. keep querying the tracker (always soliciting the maximum number of
//      peers, respecting the tracker's rate limit) from one or more vantage
//      machines until ten consecutive empty replies;
//   5. map addresses with the GeoIP database; snapshot content pages and,
//      at the end of the crawl, user pages.
//
// The crawler sees only public interfaces: RSS items, page snapshots,
// bencoded tracker replies and peer-wire bytes. It never touches simulator
// ground truth.
//
// Parallel crawl engine: crawl_window fans the per-torrent monitoring loop
// out over a fixed-size thread pool (the paper ran 14 vantage machines over
// ~55K torrents concurrently). Three properties make the parallel crawl
// byte-identical to the sequential one:
//   * every torrent draws from its own RNG substream derived from
//     (seed, portal id), never from a shared sequential stream;
//   * the tracker's announce path is thread-safe with stateless peer
//     sampling keyed on the query identity (see tracker.hpp);
//   * results are merged in portal-id order regardless of completion order.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>

#include "crawler/dataset.hpp"
#include "crawler/observer.hpp"
#include "geo/geo_db.hpp"
#include "portal/portal.hpp"
#include "swarm/network.hpp"
#include "tracker/tracker.hpp"
#include "util/rng.hpp"

namespace btpub {

struct CrawlerConfig {
  DatasetStyle style = DatasetStyle::Pb10;
  /// RSS polling period (how fast a birth is detected).
  SimDuration rss_poll = minutes(5);
  /// Geographically-distributed query machines.
  std::size_t vantage_points = 1;
  /// Peers solicited per query (the tracker caps at its own maximum).
  std::size_t numwant = 200;
  /// Stop monitoring a swarm after this many consecutive empty replies.
  std::uint32_t empty_replies_to_stop = 10;
  /// Only attempt seeder identification when the swarm has fewer
  /// participants than this (paper: 20) and exactly one seeder.
  std::uint32_t max_probe_peers = 20;
  /// How often the content page is re-checked for moderation removals.
  SimDuration page_recheck = hours(12);
  /// Monitoring continues at most this long past the window end.
  SimDuration grace = days(3);
  /// Worker threads for crawl_window; 0 = hardware concurrency. The
  /// resulting dataset is identical for every thread count.
  std::size_t threads = 0;
};

class Crawler {
 public:
  Crawler(const Portal& portal, Tracker& tracker, SwarmNetwork& network,
          const GeoDb& geo, CrawlerConfig config, std::uint64_t seed);

  /// Crawls every torrent published in [window_start, window_end); returns
  /// the dataset. Deterministic given the seed, independent of
  /// config.threads and of scheduling order.
  Dataset crawl_window(SimTime window_start, SimTime window_end);

  /// Discovery + first tracker contact for a single torrent (the pb09
  /// behaviour, also used by the live monitor). `downloaders` and
  /// `sightings` receive the first-contact observations.
  std::optional<TorrentRecord> discover(TorrentId id, SimTime now,
                                        std::vector<IpAddress>& downloaders,
                                        std::vector<SimTime>& sightings);

  const CrawlerConfig& config() const noexcept { return config_; }

  /// Attaches the crawl-time observation stream (§4.5). The observer
  /// outlives the crawl and receives hooks from every worker thread —
  /// see observer.hpp for the threading contract. Null detaches.
  void set_observer(CrawlObserver* observer) noexcept { observer_ = observer; }

 private:
  /// Everything one torrent's crawl produces; merged in portal-id order.
  struct CrawlResult {
    TorrentRecord record;
    std::vector<IpAddress> downloaders;
    std::vector<SimTime> sightings;
    bool ok = false;
  };

  /// Per-worker reusable state for the announce fast path: the decoded
  /// reply, the tracker's sampling scratch and the per-torrent seen-IP
  /// dedup set all keep their capacity across torrents, so the monitor
  /// loop's inner announce is allocation-free at steady state. Owned by
  /// exactly one worker; `seen` is cleared at the start of each torrent.
  struct CrawlScratch {
    AnnounceReply reply;
    Tracker::AnnounceScratch announce;
    std::unordered_set<IpAddress> seen;
    /// Per-reply non-publisher IPs batched into one observer push.
    std::vector<IpAddress> observed;
  };

  /// Full per-torrent crawl (discovery + monitoring). Pure function of
  /// (id, published_at, window_end) given the construction-time seed —
  /// safe to run concurrently for distinct ids as long as each worker owns
  /// its scratch.
  CrawlResult crawl_one(TorrentId id, SimTime published_at, SimTime window_end,
                        CrawlScratch& scratch);

  /// Discovery with externally-owned scratch (so monitoring can keep
  /// extending the dedup set).
  std::optional<TorrentRecord> discover_with(TorrentId id, SimTime now,
                                             std::vector<IpAddress>& downloaders,
                                             std::vector<SimTime>& sightings,
                                             CrawlScratch& scratch);

  /// First tracker contact + (conditional) initial-seeder identification.
  void first_contact(TorrentRecord& record, std::vector<IpAddress>& ips,
                     std::vector<SimTime>& sightings, CrawlScratch& scratch,
                     SimTime now);
  /// Periodic monitoring until the empty-reply stop rule fires.
  void monitor(TorrentRecord& record, std::vector<IpAddress>& ips,
               std::vector<SimTime>& sightings, CrawlScratch& scratch,
               SimTime hard_stop);
  Endpoint vantage(std::size_t index) const;
  /// Dedup-inserts the peers of a reply; records publisher sightings and
  /// streams both to the attached observer.
  void record_reply(const AnnounceReply& reply, TorrentRecord& record,
                    std::vector<IpAddress>& ips, std::vector<SimTime>& sightings,
                    CrawlScratch& scratch, SimTime now);

  const Portal* portal_;
  Tracker* tracker_;
  SwarmNetwork* network_;
  const GeoDb* geo_;
  CrawlObserver* observer_ = nullptr;
  CrawlerConfig config_;
  /// Root seed; per-torrent substreams are derive_seed(seed_, portal_id).
  std::uint64_t seed_;
};

}  // namespace btpub
