#include "crawler/dataset.hpp"

#include <unordered_set>

namespace btpub {

std::string_view to_string(DatasetStyle style) {
  switch (style) {
    case DatasetStyle::Mn08:
      return "mn08";
    case DatasetStyle::Pb09:
      return "pb09";
    case DatasetStyle::Pb10:
      return "pb10";
  }
  return "?";
}

std::size_t Dataset::with_username() const {
  std::size_t n = 0;
  for (const TorrentRecord& t : torrents) {
    if (!t.username.empty()) ++n;
  }
  return n;
}

std::size_t Dataset::with_publisher_ip() const {
  std::size_t n = 0;
  for (const TorrentRecord& t : torrents) {
    if (t.publisher_ip.has_value()) ++n;
  }
  return n;
}

std::size_t Dataset::distinct_ips_global() const {
  std::unordered_set<IpAddress> ips;
  for (const auto& torrent_ips : downloaders) {
    ips.insert(torrent_ips.begin(), torrent_ips.end());
  }
  return ips.size();
}

std::size_t Dataset::ip_observations_total() const {
  std::size_t n = 0;
  for (const auto& torrent_ips : downloaders) n += torrent_ips.size();
  return n;
}

}  // namespace btpub
