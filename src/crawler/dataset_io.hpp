// dataset_io.hpp — binary persistence for crawl datasets.
//
// A month-long crawl takes a while to simulate; persisting the resulting
// Dataset lets the analysis benches (and downstream users) reload it
// instantly. The format is a small versioned little-endian binary layout —
// not meant for interchange, only for caching on the same machine.
#pragma once

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>

#include "crawler/dataset.hpp"

namespace btpub {

/// Serialises a dataset to a stream. Throws std::runtime_error on I/O
/// failure.
void save_dataset(const Dataset& dataset, std::ostream& out);
void save_dataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset back. Throws std::runtime_error on corrupt or
/// version-mismatched input.
Dataset load_dataset(std::istream& in);
Dataset load_dataset(const std::string& path);

/// Convenience used by the bench harnesses: load `path` if it exists and
/// parses, otherwise run `generate`, save the result to `path` (best
/// effort) and return it.
Dataset load_or_generate(const std::string& path,
                         const std::function<Dataset()>& generate);

/// The on-disk format version baked into the file magic. Cache-key
/// builders include it so stale cache files are regenerated instead of
/// silently deserializing an old layout.
int dataset_format_version() noexcept;

}  // namespace btpub
