// cross_check.hpp — tracker-vs-DHT vantage comparison.
//
// A tracker believes whatever address an announce *claims*; a DHT node
// stores the announce datagram's *source* address. A publisher that feeds
// the tracker spoofed peers (decoy injection, the fake-publisher playbook)
// therefore produces a swarm whose tracker view and DHT view disagree:
// the claimed addresses never show up in any get_peers walk. The
// cross-check lines the two datasets up per torrent and flags exactly that
// signature.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "crawler/dataset.hpp"

namespace btpub {

struct CrossCheckConfig {
  /// A torrent is only judged on set overlap once the tracker saw at least
  /// this many distinct peers (tiny swarms disagree by chance).
  std::size_t min_tracker_peers = 5;
  /// Flag when fewer than this fraction of tracker-observed IPs were also
  /// returned by the DHT.
  double min_overlap = 0.5;
};

/// One torrent's comparison, matched by portal id.
struct TorrentCrossCheck {
  TorrentId portal_id = kInvalidTorrent;
  /// Publisher IP the tracker vantage identified (bitfield probe), if any.
  std::optional<IpAddress> tracker_publisher_ip;
  /// Whether that IP appeared in any DHT lookup for this torrent.
  bool publisher_in_dht = false;
  std::size_t tracker_peers = 0;  // distinct IPs, publisher included
  std::size_t dht_peers = 0;      // distinct IPs from get_peers walks
  std::size_t common = 0;
  /// |common| / |tracker_peers|; 1.0 when the tracker saw nothing.
  double overlap = 1.0;
  /// The fake-publisher signature: an identified publisher missing from
  /// the DHT, or a tracker peer set the DHT largely cannot confirm.
  bool flagged = false;
};

struct CrossCheckReport {
  std::vector<TorrentCrossCheck> torrents;  // portal-id ascending
  std::size_t flagged_count() const;
  /// Torrents present in both datasets.
  std::size_t matched_count() const noexcept { return torrents.size(); }
};

/// Compares a tracker-vantage dataset with a DHT-vantage dataset of the
/// same window. Torrents are matched by portal id; ones seen by only one
/// vantage are skipped.
CrossCheckReport cross_check(const Dataset& tracker, const Dataset& dht,
                             const CrossCheckConfig& config = {});

}  // namespace btpub
