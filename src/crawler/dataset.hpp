// dataset.hpp — what a crawl produces: per-torrent records, per-torrent
// distinct downloader IPs, publisher sighting timelines, and user-page
// snapshots. This is the *observed* world; the analysis pipeline consumes
// nothing else.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/sha1.hpp"
#include "net/ip.hpp"
#include "portal/portal.hpp"
#include "util/time.hpp"

namespace btpub {

/// Which of the paper's three crawls a dataset emulates (Table 1).
enum class DatasetStyle : std::uint8_t {
  Mn08,  // Mininova 2008: IP-identified publishers only (no RSS username),
         // periodic tracker monitoring
  Pb09,  // Pirate Bay 2009: username from RSS, a single tracker query
  Pb10,  // Pirate Bay 2010: username + IP + full periodic monitoring
};

std::string_view to_string(DatasetStyle style);

/// One crawled torrent.
struct TorrentRecord {
  TorrentId portal_id = kInvalidTorrent;
  Sha1Digest infohash{};
  std::string title;
  ContentCategory category = ContentCategory::Other;
  Language language = Language::English;
  std::int64_t size_bytes = 0;
  /// Username from the RSS item; empty in mn08 style.
  std::string username;
  /// Initial publisher's IP when the bitfield probe identified it.
  std::optional<IpAddress> publisher_ip;
  SimTime published_at = 0;  // RSS timestamp
  SimTime first_seen = 0;    // first tracker contact
  /// Portal page snapshot taken at discovery (classification input).
  std::string textbox;
  /// Payload file names from the parsed metainfo (URL-promotion channel).
  std::vector<std::string> payload_filenames;
  /// Piece count from the parsed metainfo (needed to read peer bitfields).
  std::size_t piece_count = 0;
  /// Moderation observed during monitoring.
  bool observed_removed = false;
  SimTime observed_removed_at = -1;
  /// First-contact swarm state.
  std::uint32_t initial_seeders = 0;
  std::uint32_t initial_peers = 0;
  /// Monitoring aggregates.
  std::uint32_t query_count = 0;
  std::uint32_t max_concurrent = 0;
};

/// A full crawl result.
struct Dataset {
  std::string name;
  DatasetStyle style = DatasetStyle::Pb10;
  SimTime window_start = 0;
  SimTime window_end = 0;

  std::vector<TorrentRecord> torrents;
  /// Distinct downloader IPs per torrent (parallel to `torrents`); the
  /// identified publisher IP is excluded.
  std::vector<std::vector<IpAddress>> downloaders;
  /// Times the identified publisher IP was returned by the tracker
  /// (parallel to `torrents`; empty when the publisher was never
  /// identified). Input to the Appendix-A session estimator.
  std::vector<std::vector<SimTime>> publisher_sightings;
  /// User pages snapshotted at the end of the crawl (username -> page).
  std::unordered_map<std::string, UserPage> user_pages;

  // ---- Table-1 style summary helpers. ----
  std::size_t torrent_count() const noexcept { return torrents.size(); }
  std::size_t with_username() const;
  std::size_t with_publisher_ip() const;
  /// Distinct downloader IPs across all torrents.
  std::size_t distinct_ips_global() const;
  /// Sum over torrents of per-torrent distinct downloader IPs.
  std::size_t ip_observations_total() const;
};

}  // namespace btpub
