// observer.hpp — the crawl-time observation stream (§4.5).
//
// Both measurement vantages (the tracker crawler and the DHT crawler) can
// push what they see — discoveries, announce-reply peers, publisher
// sightings, moderation removals, end-of-crawl user pages — into an
// attached CrawlObserver *while crawling*, instead of only materializing a
// Dataset afterwards. The streaming analysis layer
// (analysis/streaming/streaming_classifier.hpp) is the production
// implementation; tests attach recording stubs.
//
// Threading contract: crawl_window fans torrents out over a worker pool, so
// hooks fire concurrently from multiple threads — implementations must be
// thread-safe. Per-torrent ordering is guaranteed (one torrent is crawled
// by exactly one worker, time-ordered): on_discover precedes every other
// hook for that id. Cross-torrent ordering is unspecified; observers that
// want thread-count-independent results must keep their cross-torrent state
// commutative (see analysis/streaming/sketch.hpp). on_user_page is called
// serially after all workers have joined.
#pragma once

#include <span>
#include <string>

#include "crawler/dataset.hpp"

namespace btpub {

class CrawlObserver {
 public:
  virtual ~CrawlObserver() = default;

  /// A torrent entered monitoring. For the tracker vantage the record
  /// already carries the first-contact swarm state and the identified
  /// publisher IP (when the bitfield probe succeeded); the DHT vantage
  /// never identifies publishers. Fires before any per-peer hook for `id`.
  virtual void on_discover(const TorrentRecord& record, SimTime now) = 0;

  /// One query's returned peers, publisher excluded (tracker vantage) or
  /// all returned IPs (DHT vantage, which cannot exclude what it cannot
  /// identify — mirroring Dataset::downloaders semantics per vantage).
  /// Raw per-reply observations: the same IP reappears across replies.
  virtual void on_downloaders(TorrentId id, std::span<const IpAddress> ips,
                              SimTime now) = 0;

  /// The identified publisher IP appeared in a reply (tracker vantage only).
  virtual void on_publisher_sighting(TorrentId id, SimTime now) = 0;

  /// Monitoring observed the portal page's moderation removal.
  virtual void on_removal(TorrentId id, SimTime now) = 0;

  /// End-of-crawl user-page snapshot (ban state); serial, portal-id order.
  virtual void on_user_page(const std::string& username,
                            const UserPage& page) = 0;
};

}  // namespace btpub
