#include "crypto/sha1.hpp"

#include <cstring>

namespace btpub {
namespace {

std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string Sha1Digest::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

Sha1Digest Sha1Digest::from_hex(std::string_view hex) {
  Sha1Digest d;
  if (hex.size() != 40) return d;
  for (std::size_t i = 0; i < 20; ++i) {
    const int hi = hex_value(hex[2 * i]);
    const int lo = hex_value(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return Sha1Digest{};
    d.bytes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return d;
}

Sha1::Sha1() noexcept {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t need = 64 - buffered_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Sha1::update(std::string_view data) noexcept {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Sha1Digest Sha1::finish() noexcept {
  const std::uint64_t bit_length = total_bytes_ * 8;
  // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit big-endian length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  update(std::span<const std::uint8_t>(pad, pad_len));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  // Bypass update()'s total_bytes_ accounting for the length field itself.
  std::memcpy(buffer_.data() + buffered_, len_bytes, 8);
  process_block(buffer_.data());
  buffered_ = 0;

  Sha1Digest d;
  for (int i = 0; i < 5; ++i) {
    d.bytes[4 * i + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
    d.bytes[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    d.bytes[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    d.bytes[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return d;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1Digest Sha1::hash(std::string_view data) noexcept {
  Sha1 ctx;
  ctx.update(data);
  return ctx.finish();
}

Sha1Digest Sha1::hash(std::span<const std::uint8_t> data) noexcept {
  Sha1 ctx;
  ctx.update(data);
  return ctx.finish();
}

}  // namespace btpub
