// sha1.hpp — SHA-1 (RFC 3174). BitTorrent infohashes are the SHA-1 of the
// bencoded "info" dictionary; we implement the real digest so that torrents
// produced by the simulator are wire-accurate and infohash equality behaves
// exactly as in deployed BitTorrent.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace btpub {

/// 20-byte SHA-1 digest value type. Ordered & hashable so it can key maps
/// (the tracker's swarm registry keys on infohash).
struct Sha1Digest {
  std::array<std::uint8_t, 20> bytes{};

  auto operator<=>(const Sha1Digest&) const = default;

  /// Lowercase hex rendering ("da39a3ee...").
  std::string hex() const;

  /// Parses 40 hex chars; returns all-zero digest on malformed input.
  static Sha1Digest from_hex(std::string_view hex);
};

/// Streaming SHA-1 context.
class Sha1 {
 public:
  Sha1() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept;

  /// Finalises and returns the digest. The context must not be reused
  /// afterwards without reassignment.
  Sha1Digest finish() noexcept;

  /// One-shot convenience.
  static Sha1Digest hash(std::string_view data) noexcept;
  static Sha1Digest hash(std::span<const std::uint8_t> data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 5> h_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

}  // namespace btpub

template <>
struct std::hash<btpub::Sha1Digest> {
  std::size_t operator()(const btpub::Sha1Digest& d) const noexcept {
    // The digest is already uniformly distributed; fold the first 8 bytes.
    std::size_t out = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t) && i < d.bytes.size(); ++i) {
      out = (out << 8) | d.bytes[i];
    }
    return out;
  }
};
