#include "bencode/bencode.hpp"

#include <charconv>

namespace btpub::bencode {

Value::Value(std::int64_t v) : type_(Type::Integer), integer_(v) {}
Value::Value(std::string v) : type_(Type::String), string_(std::move(v)) {}
Value::Value(List v) : type_(Type::List), list_(std::make_shared<List>(std::move(v))) {}
Value::Value(Dict v) : type_(Type::Dict), dict_(std::make_shared<Dict>(std::move(v))) {}

std::int64_t Value::as_integer() const {
  if (!is_integer()) throw Error("bencode: value is not an integer");
  return integer_;
}

const std::string& Value::as_string() const {
  if (!is_string()) throw Error("bencode: value is not a string");
  return string_;
}

const List& Value::as_list() const {
  if (!is_list()) throw Error("bencode: value is not a list");
  return *list_;
}

const Dict& Value::as_dict() const {
  if (!is_dict()) throw Error("bencode: value is not a dict");
  return *dict_;
}

List& Value::as_list() {
  if (!is_list()) throw Error("bencode: value is not a list");
  return *list_;
}

Dict& Value::as_dict() {
  if (!is_dict()) throw Error("bencode: value is not a dict");
  return *dict_;
}

const Value* Value::find(std::string_view key) const {
  if (!is_dict()) return nullptr;
  const auto it = dict_->find(std::string(key));
  return it == dict_->end() ? nullptr : &it->second;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) throw Error("bencode: missing key '" + std::string(key) + "'");
  return *v;
}

std::optional<std::int64_t> Value::find_integer(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_integer()) return std::nullopt;
  return v->as_integer();
}

std::optional<std::string> Value::find_string(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->as_string();
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Value::Type::Integer:
      return a.integer_ == b.integer_;
    case Value::Type::String:
      return a.string_ == b.string_;
    case Value::Type::List:
      return *a.list_ == *b.list_;
    case Value::Type::Dict:
      return *a.dict_ == *b.dict_;
  }
  return false;
}

namespace {

/// Appends the decimal digits of `v` without going through std::to_string
/// (keeps the writer allocation-free regardless of SSO limits).
void append_decimal(std::int64_t v, std::string& out) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

}  // namespace

void Writer::integer(std::int64_t v) {
  *out_ += 'i';
  append_decimal(v, *out_);
  *out_ += 'e';
}

void Writer::string_header(std::size_t n) {
  append_decimal(static_cast<std::int64_t>(n), *out_);
  *out_ += ':';
}

void Writer::string(std::string_view bytes) {
  string_header(bytes.size());
  out_->append(bytes);
}

namespace {

void encode_into(const Value& v, std::string& out) {
  switch (v.type()) {
    case Value::Type::Integer:
      out += 'i';
      out += std::to_string(v.as_integer());
      out += 'e';
      break;
    case Value::Type::String: {
      const std::string& s = v.as_string();
      out += std::to_string(s.size());
      out += ':';
      out += s;
      break;
    }
    case Value::Type::List:
      out += 'l';
      for (const Value& item : v.as_list()) encode_into(item, out);
      out += 'e';
      break;
    case Value::Type::Dict:
      out += 'd';
      for (const auto& [key, val] : v.as_dict()) {
        out += std::to_string(key.size());
        out += ':';
        out += key;
        encode_into(val, out);
      }
      out += 'e';
      break;
  }
}

class Parser {
 public:
  Parser(std::string_view data, std::size_t pos) : data_(data), pos_(pos) {}

  Value parse_value(int depth = 0) {
    if (depth > kMaxDepth) throw Error("bencode: nesting too deep");
    const char c = peek();
    if (c == 'i') return parse_integer();
    if (c == 'l') return parse_list(depth);
    if (c == 'd') return parse_dict(depth);
    if (c >= '0' && c <= '9') return Value(parse_string());
    throw Error("bencode: unexpected byte at offset " + std::to_string(pos_));
  }

  std::size_t pos() const noexcept { return pos_; }

 private:
  static constexpr int kMaxDepth = 64;

  char peek() const {
    if (pos_ >= data_.size()) throw Error("bencode: truncated input");
    return data_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  std::int64_t parse_raw_integer(char terminator) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < data_.size() && data_[pos_] >= '0' && data_[pos_] <= '9') ++pos_;
    if (pos_ == start || (data_[start] == '-' && pos_ == start + 1)) {
      throw Error("bencode: malformed integer");
    }
    // i-0e and leading zeroes are invalid per BEP 3.
    const std::string_view digits = data_.substr(start, pos_ - start);
    if (digits == "-0" ||
        (digits.size() > 1 && digits[0] == '0') ||
        (digits.size() > 2 && digits[0] == '-' && digits[1] == '0')) {
      throw Error("bencode: non-canonical integer");
    }
    std::int64_t value = 0;
    const auto result =
        std::from_chars(digits.data(), digits.data() + digits.size(), value);
    if (result.ec != std::errc{}) throw Error("bencode: integer out of range");
    if (take() != terminator) throw Error("bencode: bad integer terminator");
    return value;
  }

  Value parse_integer() {
    take();  // 'i'
    return Value(parse_raw_integer('e'));
  }

  std::string parse_string() {
    const std::int64_t len = parse_raw_integer(':');
    if (len < 0) throw Error("bencode: negative string length");
    const auto n = static_cast<std::size_t>(len);
    if (pos_ + n > data_.size()) throw Error("bencode: string exceeds input");
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  Value parse_list(int depth) {
    take();  // 'l'
    List list;
    while (peek() != 'e') list.push_back(parse_value(depth + 1));
    take();  // 'e'
    return Value(std::move(list));
  }

  Value parse_dict(int depth) {
    take();  // 'd'
    Dict dict;
    std::string prev_key;
    bool first = true;
    while (peek() != 'e') {
      std::string key = parse_string();
      if (!first && key <= prev_key) {
        throw Error("bencode: dict keys not strictly ascending");
      }
      Value value = parse_value(depth + 1);
      prev_key = key;
      first = false;
      dict.emplace(std::move(key), std::move(value));
    }
    take();  // 'e'
    return Value(std::move(dict));
  }

  std::string_view data_;
  std::size_t pos_;
};

}  // namespace

std::string encode(const Value& v) {
  std::string out;
  encode_into(v, out);
  return out;
}

Value decode(std::string_view data) {
  std::size_t pos = 0;
  Value v = decode_prefix(data, pos);
  if (pos != data.size()) throw Error("bencode: trailing bytes after value");
  return v;
}

Value decode_prefix(std::string_view data, std::size_t& pos) {
  Parser p(data, pos);
  Value v = p.parse_value();
  pos = p.pos();
  return v;
}

}  // namespace btpub::bencode
