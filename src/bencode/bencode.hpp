// bencode.hpp — encoder/decoder for the bencode format (BEP 3).
//
// The simulator keeps the *formats* real even though no sockets are opened:
// .torrent metainfo files and tracker announce responses are produced and
// consumed as genuine bencoded byte strings, so the crawler exercises the
// same parsing path a real measurement apparatus would.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace btpub::bencode {

class Value;

using List = std::vector<Value>;
// Bencode dictionaries are ordered by raw byte string; std::map matches the
// canonical-encoding requirement (keys sorted) for free.
using Dict = std::map<std::string, Value>;

/// Error thrown on malformed bencode input or on type-mismatched access.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A bencode value: integer, byte string, list or dictionary.
class Value {
 public:
  enum class Type { Integer, String, List, Dict };

  Value() : Value(std::int64_t{0}) {}
  Value(std::int64_t v);                 // NOLINT(google-explicit-constructor)
  Value(std::string v);                  // NOLINT(google-explicit-constructor)
  Value(const char* v) : Value(std::string(v)) {}  // NOLINT
  Value(List v);                         // NOLINT(google-explicit-constructor)
  Value(Dict v);                         // NOLINT(google-explicit-constructor)

  Type type() const noexcept { return type_; }
  bool is_integer() const noexcept { return type_ == Type::Integer; }
  bool is_string() const noexcept { return type_ == Type::String; }
  bool is_list() const noexcept { return type_ == Type::List; }
  bool is_dict() const noexcept { return type_ == Type::Dict; }

  /// Checked accessors; throw Error on type mismatch.
  std::int64_t as_integer() const;
  const std::string& as_string() const;
  const List& as_list() const;
  const Dict& as_dict() const;
  List& as_list();
  Dict& as_dict();

  /// Dictionary lookup returning nullptr when the key is absent.
  const Value* find(std::string_view key) const;
  /// Dictionary lookup that throws when the key is absent.
  const Value& at(std::string_view key) const;

  /// Typed optional lookups for the common tracker/metainfo fields.
  std::optional<std::int64_t> find_integer(std::string_view key) const;
  std::optional<std::string> find_string(std::string_view key) const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  Type type_;
  std::int64_t integer_ = 0;
  std::string string_;
  // Indirection keeps Value small and breaks the recursive type.
  std::shared_ptr<List> list_;
  std::shared_ptr<Dict> dict_;
};

/// Streaming encoder that appends canonical bencoding directly into a
/// caller-owned buffer — no Value tree, no intermediate strings. Once the
/// buffer's capacity has grown to the steady-state reply size, encoding is
/// allocation-free, which is what the tracker's announce fast path relies
/// on. The writer does not validate nesting; callers are expected to emit
/// well-formed sequences (dict keys in ascending byte order, every begin_*
/// matched by an end).
class Writer {
 public:
  /// Appends to `out`; the buffer is NOT cleared (callers that want a
  /// fresh message clear it themselves and keep the capacity).
  explicit Writer(std::string& out) : out_(&out) {}

  void integer(std::int64_t v);
  void string(std::string_view bytes);
  /// Dict key — identical encoding to string(), named for call-site
  /// clarity.
  void key(std::string_view k) { string(k); }

  /// Emits the "<n>:" header of a byte string whose n payload bytes the
  /// caller will append directly to buffer() (e.g. a compact-peer blob
  /// written in place).
  void string_header(std::size_t n);

  void begin_list() { *out_ += 'l'; }
  void begin_dict() { *out_ += 'd'; }
  void end() { *out_ += 'e'; }

  std::string& buffer() noexcept { return *out_; }

 private:
  std::string* out_;
};

/// Serialises a value to its canonical bencoding.
std::string encode(const Value& v);

/// Parses exactly one value; throws Error on malformed input or trailing
/// garbage.
Value decode(std::string_view data);

/// Parses one value starting at `pos`, advancing `pos` past it. Allows
/// streaming several concatenated values.
Value decode_prefix(std::string_view data, std::size_t& pos);

}  // namespace btpub::bencode
