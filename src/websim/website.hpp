// website.hpp — the web estate of profit-driven publishers.
//
// Each promoting URL the classifier discovers resolves, through this
// directory, to a page whose *content* is observable (signup forms, galler-
// ies, ad banners, donation buttons, VIP offers) and whose true economics
// (value, daily income, daily visits) are ground truth that only the
// appraisal services (appraisal.hpp) estimate — mirroring how the authors
// characterised business profiles by visiting sites and estimated incomes
// via six third-party monitoring services.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace btpub {

/// Business profile behind a promoting URL (§5.1's classification).
enum class BusinessType : std::uint8_t {
  PrivateBtPortal,  // own BitTorrent index, often with a private tracker
  ImageHosting,     // adult picture hosting promoted through porn torrents
  Forum,
  ReligiousSite,
  None,             // no site / purely altruistic publisher
};

std::string_view to_string(BusinessType type);

/// A registered website with ground-truth economics.
struct Website {
  std::string domain;
  BusinessType type = BusinessType::None;
  // Ground truth (USD, visits/day) — only estimable via AppraisalPanel.
  double value_usd = 0.0;
  double daily_income_usd = 0.0;
  double daily_visits = 0.0;
  // Observable page features.
  bool has_ads = false;
  bool seeks_donations = false;
  bool offers_vip = false;
  bool requires_registration = false;  // private-tracker seeding-ratio model
  bool has_private_tracker = false;
  std::vector<std::string> ad_networks;  // third parties in the HTTP exchange
};

/// What a visit renders (no economics, only page features).
struct PageView {
  std::string domain;
  BusinessType apparent_type = BusinessType::None;
  bool signup_form = false;
  bool tracker_links = false;
  bool torrent_index = false;  // the page lists .torrent files
  bool image_galleries = false;
  bool ad_banners = false;
  bool donation_button = false;
  bool vip_offer = false;
};

/// One HTTP response header line.
struct HttpHeader {
  std::string name;
  std::string value;
};

/// Domain -> website registry plus the visit/HTTP surface.
class WebsiteDirectory {
 public:
  /// Registers a site; throws std::invalid_argument on duplicate domain.
  void add(Website site);

  const Website* find(std::string_view domain) const;
  std::size_t size() const noexcept { return sites_.size(); }

  /// Renders the page a visitor sees; nullopt for unknown domains.
  std::optional<PageView> visit(std::string_view domain) const;

  /// The response headers a browser exchange would show, including
  /// Set-Cookie redirections to third-party ad networks (the detection
  /// technique of Krishnamurthy & Wills the paper borrows).
  std::vector<HttpHeader> http_exchange(std::string_view domain) const;

  /// Third-party hosts contacted when loading the page (ads networks).
  std::vector<std::string> third_parties(std::string_view domain) const;

  std::vector<std::string> all_domains() const;

 private:
  std::unordered_map<std::string, Website> sites_;
};

}  // namespace btpub
