#include "websim/appraisal.hpp"

#include <cmath>

#include "crypto/sha1.hpp"
#include "util/rng.hpp"

namespace btpub {

AppraisalService::AppraisalService(std::string name, double bias,
                                   double noise_sigma)
    : name_(std::move(name)), bias_(bias), noise_sigma_(noise_sigma) {}

SiteEstimate AppraisalService::estimate(const Website& site) const {
  // Deterministic per (service, domain): seed a private stream from a hash
  // of both so repeat queries agree and services disagree with each other.
  const Sha1Digest digest = Sha1::hash(name_ + "|" + site.domain);
  std::uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) seed = (seed << 8) | digest.bytes[i];
  Rng rng(seed);

  auto perturb = [&](double truth) {
    if (truth <= 0.0) return 0.0;
    const double factor = bias_ * std::exp(noise_sigma_ * rng.normal());
    return truth * factor;
  };
  SiteEstimate e;
  e.value_usd = perturb(site.value_usd);
  e.daily_income_usd = perturb(site.daily_income_usd);
  e.daily_visits = perturb(site.daily_visits);
  return e;
}

AppraisalPanel AppraisalPanel::standard() {
  AppraisalPanel panel;
  // Names are generic stand-ins for the six real monitoring services; the
  // bias/noise spread is what matters to the averaging methodology.
  panel.services_.emplace_back("siteworthmeter", 1.10, 0.35);
  panel.services_.emplace_back("webvaluator", 0.85, 0.30);
  panel.services_.emplace_back("trafficounter", 1.00, 0.25);
  panel.services_.emplace_back("domainappraisr", 1.25, 0.40);
  panel.services_.emplace_back("adrevenuewatch", 0.75, 0.30);
  panel.services_.emplace_back("rankmetrics", 1.05, 0.20);
  return panel;
}

std::vector<SiteEstimate> AppraisalPanel::all_estimates(const Website& site) const {
  std::vector<SiteEstimate> estimates;
  estimates.reserve(services_.size());
  for (const AppraisalService& service : services_) {
    estimates.push_back(service.estimate(site));
  }
  return estimates;
}

SiteEstimate AppraisalPanel::average(const Website& site) const {
  SiteEstimate avg;
  if (services_.empty()) return avg;
  for (const SiteEstimate& e : all_estimates(site)) {
    avg.value_usd += e.value_usd;
    avg.daily_income_usd += e.daily_income_usd;
    avg.daily_visits += e.daily_visits;
  }
  const auto n = static_cast<double>(services_.size());
  avg.value_usd /= n;
  avg.daily_income_usd /= n;
  avg.daily_visits /= n;
  return avg;
}

std::optional<SiteEstimate> AppraisalPanel::average(
    const WebsiteDirectory& directory, std::string_view domain) const {
  const Website* site = directory.find(domain);
  if (site == nullptr) return std::nullopt;
  return average(*site);
}

}  // namespace btpub
