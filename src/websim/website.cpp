#include "websim/website.hpp"

#include <algorithm>
#include <stdexcept>

namespace btpub {

std::string_view to_string(BusinessType type) {
  switch (type) {
    case BusinessType::PrivateBtPortal:
      return "BT Portal";
    case BusinessType::ImageHosting:
      return "Image Hosting";
    case BusinessType::Forum:
      return "Forum";
    case BusinessType::ReligiousSite:
      return "Religious Site";
    case BusinessType::None:
      return "None";
  }
  return "?";
}

void WebsiteDirectory::add(Website site) {
  if (site.domain.empty()) {
    throw std::invalid_argument("WebsiteDirectory: empty domain");
  }
  const auto [it, inserted] = sites_.emplace(site.domain, std::move(site));
  if (!inserted) {
    throw std::invalid_argument("WebsiteDirectory: duplicate domain '" +
                                it->first + "'");
  }
}

const Website* WebsiteDirectory::find(std::string_view domain) const {
  const auto it = sites_.find(std::string(domain));
  return it == sites_.end() ? nullptr : &it->second;
}

std::optional<PageView> WebsiteDirectory::visit(std::string_view domain) const {
  const Website* site = find(domain);
  if (site == nullptr) return std::nullopt;
  PageView view;
  view.domain = site->domain;
  view.apparent_type = site->type;
  view.signup_form = site->requires_registration;
  view.tracker_links = site->has_private_tracker;
  view.torrent_index = site->type == BusinessType::PrivateBtPortal;
  view.image_galleries = site->type == BusinessType::ImageHosting;
  view.ad_banners = site->has_ads;
  view.donation_button = site->seeks_donations;
  view.vip_offer = site->offers_vip;
  return view;
}

std::vector<HttpHeader> WebsiteDirectory::http_exchange(
    std::string_view domain) const {
  std::vector<HttpHeader> headers;
  const Website* site = find(domain);
  if (site == nullptr) {
    headers.push_back({"Status", "404 Not Found"});
    return headers;
  }
  headers.push_back({"Status", "200 OK"});
  headers.push_back({"Server", "nginx/0.7.65"});
  headers.push_back({"Content-Type", "text/html; charset=utf-8"});
  for (const std::string& network : site->ad_networks) {
    // Third-party requests surface as Set-Cookie / Location pairs naming
    // the ad host, which is what header-level PII-leak analysis keys on.
    headers.push_back({"X-Third-Party-Request", "http://" + network + "/adserve"});
    headers.push_back({"Set-Cookie", "adtrk=1; Domain=." + network});
  }
  return headers;
}

std::vector<std::string> WebsiteDirectory::third_parties(
    std::string_view domain) const {
  const Website* site = find(domain);
  if (site == nullptr) return {};
  return site->ad_networks;
}

std::vector<std::string> WebsiteDirectory::all_domains() const {
  std::vector<std::string> domains;
  domains.reserve(sites_.size());
  for (const auto& [domain, site] : sites_) domains.push_back(domain);
  std::sort(domains.begin(), domains.end());
  return domains;
}

}  // namespace btpub
