// appraisal.hpp — the six independent website-statistics services.
//
// The paper estimates each promoting site's value, daily income and daily
// visits by querying six web monitoring services and averaging. Each
// simulated service reports the ground truth perturbed by a service-
// specific multiplicative bias and per-domain noise, deterministic in
// (service, domain) so repeated queries agree — like cached estimates on
// the real services.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "websim/website.hpp"

namespace btpub {

/// One service's (or the panel-averaged) estimate for a site.
struct SiteEstimate {
  double value_usd = 0.0;
  double daily_income_usd = 0.0;
  double daily_visits = 0.0;
};

/// A single monitoring service with its own systematic bias.
class AppraisalService {
 public:
  AppraisalService(std::string name, double bias, double noise_sigma);

  const std::string& name() const noexcept { return name_; }

  /// Deterministic noisy estimate of a site's economics.
  SiteEstimate estimate(const Website& site) const;

 private:
  std::string name_;
  double bias_;
  double noise_sigma_;
};

/// The panel of six services used by the income analysis (Table 5).
class AppraisalPanel {
 public:
  /// Builds the standard six-service panel.
  static AppraisalPanel standard();

  std::size_t size() const noexcept { return services_.size(); }
  const std::vector<AppraisalService>& services() const noexcept { return services_; }

  /// Per-service estimates for one site.
  std::vector<SiteEstimate> all_estimates(const Website& site) const;

  /// The cross-service average the paper uses "to reduce any potential
  /// error in the provided statistics".
  SiteEstimate average(const Website& site) const;

  /// Convenience: look up the domain and average; nullopt when unknown.
  std::optional<SiteEstimate> average(const WebsiteDirectory& directory,
                                      std::string_view domain) const;

 private:
  std::vector<AppraisalService> services_;
};

}  // namespace btpub
