#include "net/ip.hpp"

#include <cassert>
#include <charconv>

#include "util/strings.hpp"

namespace btpub {

std::string IpAddress::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  const auto parts = split_views(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const std::string_view part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    const auto res = std::from_chars(part.data(), part.data() + part.size(), octet);
    if (res.ec != std::errc{} || res.ptr != part.data() + part.size() || octet > 255) {
      return std::nullopt;
    }
    value = (value << 8) | octet;
  }
  return IpAddress(value);
}

std::string Prefix16::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.0.0/16", (hi_ >> 8) & 0xff, hi_ & 0xff);
  return buf;
}

CidrBlock::CidrBlock(IpAddress base, int len) : len_(len) {
  assert(len >= 0 && len <= 32);
  const std::uint32_t mask =
      len == 0 ? 0u : (~std::uint32_t{0}) << (32 - len);
  base_ = IpAddress(base.value() & mask);
}

bool CidrBlock::contains(IpAddress ip) const noexcept {
  const std::uint32_t mask =
      len_ == 0 ? 0u : (~std::uint32_t{0}) << (32 - len_);
  return (ip.value() & mask) == base_.value();
}

std::uint64_t CidrBlock::size() const noexcept {
  return std::uint64_t{1} << (32 - len_);
}

IpAddress CidrBlock::at(std::uint64_t offset) const noexcept {
  assert(offset < size());
  return IpAddress(base_.value() + static_cast<std::uint32_t>(offset));
}

std::string CidrBlock::to_string() const {
  return base_.to_string() + "/" + std::to_string(len_);
}

std::optional<CidrBlock> CidrBlock::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto ip = IpAddress::parse(text.substr(0, slash));
  if (!ip) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  int len = -1;
  const auto res =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (res.ec != std::errc{} || res.ptr != len_text.data() + len_text.size() ||
      len < 0 || len > 32) {
    return std::nullopt;
  }
  return CidrBlock(*ip, len);
}

std::string Endpoint::to_string() const {
  return ip.to_string() + ":" + std::to_string(port);
}

}  // namespace btpub
