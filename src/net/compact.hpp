// compact.hpp — BEP 23 compact peer-list encoding: each peer is 6 bytes
// (4-byte big-endian IPv4 + 2-byte big-endian port). Trackers answer
// announces with this format; the crawler decodes it.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "net/ip.hpp"

namespace btpub {

/// Appends one peer's 6-byte compact form to `out` in place (the
/// announce fast path writes the peers blob directly into the reply
/// buffer instead of building an intermediate string).
void append_compact_peer(std::string& out, const Endpoint& peer);

/// Encodes endpoints into a compact peers byte string.
std::string encode_compact_peers(std::span<const Endpoint> peers);

/// Decodes a compact peers byte string. Throws std::invalid_argument when
/// the length is not a multiple of 6.
std::vector<Endpoint> decode_compact_peers(std::string_view data);

}  // namespace btpub
