// ip.hpp — IPv4 value types. The study is IPv4-only (2008-2010 datasets);
// addresses, /16 prefixes (Table 3 counts distinct /16s per ISP) and CIDR
// blocks (the GeoIP database maps blocks to ISPs) are strong types rather
// than raw integers.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace btpub {

/// An IPv4 address stored in host byte order.
class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(std::uint32_t value) : value_(value) {}
  constexpr IpAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const noexcept { return value_; }

  /// "a.b.c.d" rendering.
  std::string to_string() const;

  /// Parses dotted-quad; nullopt on malformed input.
  static std::optional<IpAddress> parse(std::string_view text);

  auto operator<=>(const IpAddress&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// A /16 prefix, the granularity the paper uses to contrast hosting
/// providers (few prefixes) with residential ISPs (many prefixes).
class Prefix16 {
 public:
  constexpr Prefix16() = default;
  constexpr explicit Prefix16(IpAddress ip) : hi_(static_cast<std::uint16_t>(ip.value() >> 16)) {}

  constexpr std::uint16_t value() const noexcept { return hi_; }
  std::string to_string() const;  // "a.b.0.0/16"

  auto operator<=>(const Prefix16&) const = default;

 private:
  std::uint16_t hi_ = 0;
};

/// CIDR block [base, base + 2^(32-len)).
class CidrBlock {
 public:
  constexpr CidrBlock() = default;
  /// Requires len in [0, 32]; base is masked to the prefix.
  CidrBlock(IpAddress base, int len);

  constexpr IpAddress base() const noexcept { return base_; }
  constexpr int length() const noexcept { return len_; }

  bool contains(IpAddress ip) const noexcept;
  /// Number of addresses in the block (2^(32-len)).
  std::uint64_t size() const noexcept;
  /// ip at `offset` within the block; offset must be < size().
  IpAddress at(std::uint64_t offset) const noexcept;

  std::string to_string() const;  // "a.b.c.d/len"

  /// Parses "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<CidrBlock> parse(std::string_view text);

  auto operator<=>(const CidrBlock&) const = default;

 private:
  IpAddress base_;
  int len_ = 0;
};

/// ip:port endpoint, the identity a tracker stores per peer.
struct Endpoint {
  IpAddress ip;
  std::uint16_t port = 0;

  std::string to_string() const;
  auto operator<=>(const Endpoint&) const = default;
};

}  // namespace btpub

template <>
struct std::hash<btpub::IpAddress> {
  std::size_t operator()(const btpub::IpAddress& ip) const noexcept {
    // Fibonacci hashing spreads sequential addresses (common in our
    // synthetic blocks) across buckets.
    return static_cast<std::size_t>(ip.value() * 0x9E3779B97F4A7C15ULL);
  }
};

template <>
struct std::hash<btpub::Endpoint> {
  std::size_t operator()(const btpub::Endpoint& e) const noexcept {
    const auto h = std::hash<btpub::IpAddress>{}(e.ip);
    return h ^ (static_cast<std::size_t>(e.port) << 1);
  }
};
