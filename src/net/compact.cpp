#include "net/compact.hpp"

#include <stdexcept>

namespace btpub {

void append_compact_peer(std::string& out, const Endpoint& peer) {
  const std::uint32_t ip = peer.ip.value();
  const char bytes[6] = {static_cast<char>((ip >> 24) & 0xff),
                         static_cast<char>((ip >> 16) & 0xff),
                         static_cast<char>((ip >> 8) & 0xff),
                         static_cast<char>(ip & 0xff),
                         static_cast<char>((peer.port >> 8) & 0xff),
                         static_cast<char>(peer.port & 0xff)};
  out.append(bytes, sizeof bytes);
}

std::string encode_compact_peers(std::span<const Endpoint> peers) {
  std::string out;
  out.reserve(peers.size() * 6);
  for (const Endpoint& p : peers) append_compact_peer(out, p);
  return out;
}

std::vector<Endpoint> decode_compact_peers(std::string_view data) {
  if (data.size() % 6 != 0) {
    throw std::invalid_argument("compact peers: length not a multiple of 6");
  }
  std::vector<Endpoint> peers;
  peers.reserve(data.size() / 6);
  for (std::size_t i = 0; i < data.size(); i += 6) {
    const auto b = [&](std::size_t k) {
      return static_cast<std::uint32_t>(static_cast<unsigned char>(data[i + k]));
    };
    Endpoint e;
    e.ip = IpAddress((b(0) << 24) | (b(1) << 16) | (b(2) << 8) | b(3));
    e.port = static_cast<std::uint16_t>((b(4) << 8) | b(5));
    peers.push_back(e);
  }
  return peers;
}

}  // namespace btpub
