#include "util/parallel.hpp"

namespace btpub {

std::vector<std::pair<std::size_t, std::size_t>> shard_spans(std::size_t n,
                                                             std::size_t shards) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  if (n == 0) return spans;
  if (shards == 0) shards = 1;
  const std::size_t count = std::min(n, shards);
  spans.reserve(count);
  const std::size_t base = n / count;
  const std::size_t extra = n % count;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    spans.emplace_back(begin, begin + size);
    begin += size;
  }
  return spans;
}

}  // namespace btpub
