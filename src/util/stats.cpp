#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/rng.hpp"

namespace btpub {
namespace {

std::vector<double> sorted_copy(std::span<const double> values) {
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  return v;
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double percentile(std::span<const double> values, double q) {
  const auto sorted = sorted_copy(values);
  return percentile_sorted(sorted, q);
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  const double sum = std::accumulate(values.begin(), values.end(), 0.0);
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

BoxStats box_stats(std::span<const double> values) {
  BoxStats b;
  if (values.empty()) return b;
  const auto sorted = sorted_copy(values);
  b.min = sorted.front();
  b.p25 = percentile_sorted(sorted, 25.0);
  b.median = percentile_sorted(sorted, 50.0);
  b.p75 = percentile_sorted(sorted, 75.0);
  b.max = sorted.back();
  b.count = sorted.size();
  return b;
}

SummaryRow summary_row(std::span<const double> values) {
  SummaryRow s;
  if (values.empty()) return s;
  const auto sorted = sorted_copy(values);
  s.min = sorted.front();
  s.median = percentile_sorted(sorted, 50.0);
  s.avg = mean(values);
  s.max = sorted.back();
  s.count = sorted.size();
  return s;
}

double gini(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const auto sorted = sorted_copy(values);
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0.0) return 0.0;
  // G = (2 * sum(i * x_i) / (n * sum(x)) ) - (n + 1) / n, x ascending, i from 1.
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  const double n = static_cast<double>(sorted.size());
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

std::vector<LorenzPoint> top_share_curve(std::span<const double> contributions,
                                         std::span<const double> top_percents) {
  std::vector<LorenzPoint> curve;
  curve.reserve(top_percents.size());
  std::vector<double> desc(contributions.begin(), contributions.end());
  std::sort(desc.begin(), desc.end(), std::greater<>());
  const double total = std::accumulate(desc.begin(), desc.end(), 0.0);
  std::vector<double> cum(desc.size());
  std::partial_sum(desc.begin(), desc.end(), cum.begin());
  for (double x : top_percents) {
    LorenzPoint p;
    p.top_percent = x;
    if (total > 0.0 && !desc.empty()) {
      auto k = static_cast<std::size_t>(
          std::ceil(x / 100.0 * static_cast<double>(desc.size())));
      k = std::clamp<std::size_t>(k, 0, desc.size());
      p.content_percent = k == 0 ? 0.0 : cum[k - 1] / total * 100.0;
    }
    curve.push_back(p);
  }
  return curve;
}

double top_k_share(std::span<const double> contributions, std::size_t k) {
  if (contributions.empty() || k == 0) return 0.0;
  std::vector<double> desc(contributions.begin(), contributions.end());
  std::sort(desc.begin(), desc.end(), std::greater<>());
  const double total = std::accumulate(desc.begin(), desc.end(), 0.0);
  if (total <= 0.0) return 0.0;
  k = std::min(k, desc.size());
  const double top = std::accumulate(desc.begin(), desc.begin() + static_cast<std::ptrdiff_t>(k), 0.0);
  return top / total;
}

Histogram::Histogram(double lo_, double hi_, std::size_t bins) : lo(lo_), hi(hi_) {
  assert(hi_ > lo_ && bins > 0);
  counts.assign(bins, 0);
}

void Histogram::add(double v) {
  if (std::isnan(v)) {
    ++nan_count;
    return;
  }
  if (v < lo) {
    ++underflow;
    return;
  }
  if (v >= hi) {
    ++overflow;
    return;
  }
  const double span = hi - lo;
  auto idx = static_cast<std::size_t>((v - lo) / span *
                                      static_cast<double>(counts.size()));
  // v just below hi can still round up to bins due to floating point.
  if (idx >= counts.size()) idx = counts.size() - 1;
  ++counts[idx];
}

std::size_t Histogram::total() const {
  return std::accumulate(counts.begin(), counts.end(), std::size_t{0});
}

std::size_t Histogram::observed() const {
  return total() + underflow + overflow + nan_count;
}

double Histogram::fraction(std::size_t i) const {
  const std::size_t t = observed();
  if (t == 0 || i >= counts.size()) return 0.0;
  return static_cast<double>(counts[i]) / static_cast<double>(t);
}

std::string to_string(const BoxStats& b) {
  std::ostringstream os;
  os << "min=" << b.min << " p25=" << b.p25 << " med=" << b.median << " p75=" << b.p75
     << " max=" << b.max << " (n=" << b.count << ")";
  return os.str();
}

std::string to_string(const SummaryRow& s) {
  std::ostringstream os;
  os << s.min << "/" << s.median << "/" << s.avg << "/" << s.max << " (n=" << s.count
     << ")";
  return os.str();
}

std::size_t sample_poisson(double mean, Rng& rng) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < kPoissonNormalCutoff) {
    const double limit = std::exp(-mean);
    std::size_t k = 0;
    double product = rng.uniform();
    while (product > limit) {
      ++k;
      product *= rng.uniform();
    }
    return k;
  }
  const double draw = rng.normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::size_t>(std::llround(draw));
}

}  // namespace btpub
