// table.hpp — ASCII table renderer. Every bench binary prints its
// reproduction of a paper table/figure through this, so the output is
// uniform and diffable against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace btpub {

/// Column-aligned ASCII table with a title, header row and body rows.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title) : title_(std::move(title)) {}

  AsciiTable& header(std::vector<std::string> columns);
  AsciiTable& row(std::vector<std::string> cells);
  /// Inserts a horizontal separator before the next row.
  AsciiTable& separator();

  /// Free-form note printed under the table (e.g. "paper: 30% / ours: 29%").
  AsciiTable& note(std::string text);

  std::string render() const;
  /// render() + std::fputs to stdout.
  void print() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
};

}  // namespace btpub
