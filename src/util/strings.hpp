// strings.hpp — small string utilities shared across modules.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace btpub {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Like split, but the fields are views into `s` — no per-field copies.
/// The views are only valid while the underlying buffer is.
std::vector<std::string_view> split_views(std::string_view s, char sep);

/// Appends the fields of `s` split on `sep` to `out` (which is cleared
/// first). Reusing one vector across calls makes repeated parsing
/// allocation-free once its capacity has grown.
void split_views(std::string_view s, char sep, std::vector<std::string_view>& out);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains_icase(std::string_view haystack, std::string_view needle);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Percent-encodes arbitrary bytes for use in URLs/query strings.
std::string url_escape(std::string_view bytes);
/// Inverse of url_escape; throws std::invalid_argument on malformed input.
std::string url_unescape(std::string_view text);

/// Non-throwing url_unescape into a caller-provided buffer (e.g. a fixed
/// 20-byte info_hash). Returns the decoded length, or nullopt when the
/// input is malformed or decodes to more than `capacity` bytes.
std::optional<std::size_t> url_unescape_into(std::string_view text, char* out,
                                             std::size_t capacity);

/// printf-lite double formatting with fixed decimals.
std::string format_double(double v, int decimals);

/// Formats 1234567 as "1.23M", 54321 as "54.3K" etc. (used in Table 5
/// where the paper prints "33K", "2.8M").
std::string humanize(double v);

/// Percent with one decimal: 0.3012 -> "30.1%".
std::string percent(double fraction, int decimals = 1);

}  // namespace btpub
