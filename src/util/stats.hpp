// stats.hpp — descriptive statistics used by the analysis pipeline and the
// bench harnesses: percentiles, box-plot summaries (Figures 3 and 4),
// min/median/avg/max rows (Tables 4 and 5), Gini coefficient and CDF points
// (Figure 1 skewness), and simple histograms.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace btpub {

/// Five-number summary backing a box plot (the paper's Figures 3 & 4 report
/// 25th/50th/75th percentiles; we also keep the whiskers).
struct BoxStats {
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// min/median/avg/max row as printed in the paper's Tables 4 and 5.
struct SummaryRow {
  double min = 0.0;
  double median = 0.0;
  double avg = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Linear-interpolated percentile, q in [0, 100]. Returns 0 for empty input.
double percentile(std::span<const double> values, double q);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> values);

/// Sample standard deviation; 0 for fewer than two values.
double stddev(std::span<const double> values);

double median(std::span<const double> values);

BoxStats box_stats(std::span<const double> values);

SummaryRow summary_row(std::span<const double> values);

/// Gini coefficient of a non-negative distribution (0 = perfectly equal,
/// -> 1 = maximally skewed). Used to quantify Figure 1's contribution skew.
double gini(std::span<const double> values);

/// One point of the "top x% of publishers contribute y% of content" curve.
struct LorenzPoint {
  double top_percent = 0.0;      // x: top share of the population, in percent
  double content_percent = 0.0;  // y: share of total mass they account for
};

/// Computes the Figure-1 curve: sorts contributions descending and reports
/// the cumulative share held by the top x% for each requested x.
std::vector<LorenzPoint> top_share_curve(std::span<const double> contributions,
                                         std::span<const double> top_percents);

/// Share of total mass held by the k largest contributors.
double top_k_share(std::span<const double> contributions, std::size_t k);

/// Fixed-width histogram over [lo, hi) with `bins` buckets. Samples outside
/// the range are NOT clamped into the edge buckets (that silently corrupts
/// the distribution tails) — they are tallied in the explicit `underflow` /
/// `overflow` counters; NaN samples land in `nan_count`.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;
  std::size_t underflow = 0;   // samples with v < lo
  std::size_t overflow = 0;    // samples with v >= hi
  std::size_t nan_count = 0;   // NaN samples (neither under nor over)

  Histogram(double lo_, double hi_, std::size_t bins);
  void add(double v);
  /// In-range samples only.
  std::size_t total() const;
  /// Every add() call, including out-of-range and NaN samples.
  std::size_t observed() const;
  /// Fraction of all observed samples in bucket i (out-of-range samples
  /// dilute the in-range mass, as they should).
  double fraction(std::size_t i) const;
};

/// Renders a BoxStats line like "min=1 p25=3 med=7 p75=12 max=40 (n=84)".
std::string to_string(const BoxStats& b);
std::string to_string(const SummaryRow& s);

class Rng;

/// Poisson sample with the given mean: exact multiplicative inversion for
/// mean < kPoissonNormalCutoff, normal approximation above it (the error is
/// irrelevant at the population sizes involved). mean <= 0 (including NaN
/// guards upstream) yields 0. Shared by the publication-event and
/// swarm-arrival generators so the two cannot drift apart.
inline constexpr double kPoissonNormalCutoff = 64.0;
std::size_t sample_poisson(double mean, Rng& rng) noexcept;

}  // namespace btpub
