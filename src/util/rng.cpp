#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace btpub {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t key) noexcept {
  // Feed the pair through one SplitMix64 step each so that both arguments
  // diffuse into the result; xor alone would make (a, b) and (b, a) collide.
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL;
  std::uint64_t mixed = splitmix64(x);
  x = mixed ^ key;
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork() noexcept { return Rng{next()}; }

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to kill modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) noexcept {
  assert(median > 0.0);
  return std::exp(std::log(median) + sigma * normal());
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::pareto(double x_min, double alpha) noexcept {
  assert(x_min > 0.0 && alpha > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return x_min / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  assert(n > 0);
  // One-off inversion without a cached CDF: walk the harmonic sum.
  // Only used for small n; large-n callers should hold a ZipfSampler.
  double h = 0.0;
  for (std::size_t k = 1; k <= n; ++k) h += 1.0 / std::pow(static_cast<double>(k), s);
  double target = uniform() * h;
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (acc >= target) return k;
  }
  return n;
}

std::size_t Rng::index(std::size_t size) noexcept {
  assert(size > 0);
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) noexcept {
  if (k >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    shuffle(all);
    return all;
  }
  // Reservoir sampling (Algorithm R) followed by a shuffle of the reservoir.
  std::vector<std::size_t> reservoir(k);
  for (std::size_t i = 0; i < k; ++i) reservoir[i] = i;
  for (std::size_t i = k; i < n; ++i) {
    const std::size_t j = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(i)));
    if (j < k) reservoir[j] = i;
  }
  shuffle(reservoir);
  return reservoir;
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) : exponent_(exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), exponent);
    cdf_[k - 1] = acc;
  }
  for (double& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;  // ranks are 1-based
}

}  // namespace btpub
