#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace btpub {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

void split_views(std::string_view s, char sep,
                 std::vector<std::string_view>& out) {
  out.clear();
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_views(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  split_views(s, sep, out);
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool contains_icase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  const std::string h = to_lower(haystack);
  const std::string n = to_lower(needle);
  return h.find(n) != std::string::npos;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

namespace {

bool is_unreserved(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' || c == '~';
}

int url_hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string url_escape(std::string_view bytes) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(bytes.size() * 3);
  for (char c : bytes) {
    if (is_unreserved(c)) {
      out.push_back(c);
    } else {
      const auto b = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[b >> 4]);
      out.push_back(kHex[b & 0xf]);
    }
  }
  return out;
}

std::string url_unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') {
      out.push_back(text[i]);
      continue;
    }
    if (i + 2 >= text.size()) throw std::invalid_argument("url: truncated escape");
    const int hi = url_hex_value(text[i + 1]);
    const int lo = url_hex_value(text[i + 2]);
    if (hi < 0 || lo < 0) throw std::invalid_argument("url: bad escape");
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

std::optional<std::size_t> url_unescape_into(std::string_view text, char* out,
                                             std::size_t capacity) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char decoded;
    if (text[i] != '%') {
      decoded = text[i];
    } else {
      if (i + 2 >= text.size()) return std::nullopt;
      const int hi = url_hex_value(text[i + 1]);
      const int lo = url_hex_value(text[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      decoded = static_cast<char>((hi << 4) | lo);
      i += 2;
    }
    if (n >= capacity) return std::nullopt;
    out[n++] = decoded;
  }
  return n;
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string humanize(double v) {
  const double a = std::fabs(v);
  char buf[64];
  if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2gB", v / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3gM", v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3gK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.3g", v);
  }
  return buf;
}

std::string percent(double fraction, int decimals) {
  return format_double(fraction * 100.0, decimals) + "%";
}

}  // namespace btpub
