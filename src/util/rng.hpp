// rng.hpp — deterministic pseudo-random number generation for the simulator.
//
// Everything in btpub that needs randomness draws from an explicitly-passed
// Rng so that a single seed reproduces an entire ecosystem, crawl and
// analysis run bit-for-bit. The generator is xoshiro256** (Blackman/Vigna),
// which is fast, has a 2^256-1 period and passes BigCrush.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace btpub {

/// Stateless substream derivation: maps a (seed, key) pair onto a child
/// seed through SplitMix64 finalisation. Two different keys give unrelated
/// streams; the same pair always gives the same stream, independent of any
/// generator state. This is what makes the parallel crawl deterministic —
/// every per-torrent and per-announce generator is keyed by identity
/// (portal id, infohash, query time...) rather than drawn from a shared
/// sequential stream whose output would depend on scheduling order.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t key) noexcept;

/// Variadic form: folds every key into the seed left to right.
template <typename... Keys>
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t key,
                          Keys... rest) noexcept {
  return derive_seed(derive_seed(seed, key), static_cast<std::uint64_t>(rest)...);
}

/// Deterministic random number generator plus the distributions the
/// ecosystem model needs (uniform, normal, lognormal, exponential,
/// Zipf, Pareto). Satisfies UniformRandomBitGenerator so it can also be
/// used with <random> adaptors if ever required.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state via SplitMix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Forks an independent child stream; used to give each subsystem its
  /// own generator so adding draws in one module does not perturb others.
  Rng fork() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial.
  bool chance(double p) noexcept;

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;
  /// Lognormal parameterised by the *median* and sigma of log-space:
  /// exp(log(median) + sigma * N(0,1)). Heavy-tail workhorse for website
  /// value / income / visits (Table 5) and content popularity.
  double lognormal_median(double median, double sigma) noexcept;
  /// Exponential with the given mean (mean = 1/lambda).
  double exponential(double mean) noexcept;
  /// Pareto with scale x_min and shape alpha (alpha > 0).
  double pareto(double x_min, double alpha) noexcept;

  /// Zipf-distributed rank in [1, n] with exponent s, by inversion on the
  /// precomputed CDF held by ZipfSampler; this method is the slow O(log n)
  /// one-off variant.
  std::size_t zipf(std::size_t n, double s) noexcept;

  /// Picks a uniformly random element index of a non-empty span.
  std::size_t index(std::size_t size) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Reservoir-samples k distinct indices out of [0, n). Order is random.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) noexcept;

  /// Picks an index with probability proportional to weights[i].
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// Precomputed-CDF Zipf sampler: O(n) setup, O(log n) per draw. Used for
/// content-popularity ranks where millions of draws share one (n, s).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Rank in [1, n]; rank 1 is the most probable.
  std::size_t sample(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }
  double exponent() const noexcept { return exponent_; }

 private:
  std::vector<double> cdf_;
  double exponent_;
};

}  // namespace btpub
