// thread_pool.hpp — fixed-size worker pool for the parallel crawl engine.
//
// The pool is deliberately minimal: submit() hands a callable to a FIFO
// queue and returns a std::future for its result; workers drain the queue
// until the pool is destroyed. Exceptions thrown by a task are captured in
// its future and rethrown at get(), never swallowed. Determinism is the
// caller's job — tasks must not share mutable state unless it is
// synchronised, and result ordering must be reimposed by the caller (the
// crawler keys results by portal id, so completion order is irrelevant).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace btpub {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (or 1 when that reports 0, as it may in containers).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; its result (or exception) is delivered through the
  /// returned future. Must not be called after the destructor has begun.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Resolves a user-facing thread-count knob: 0 -> hardware concurrency,
  /// floor of 1.
  static std::size_t resolve_threads(std::size_t requested) noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace btpub
