// parallel.hpp — deterministic shard/merge primitives for the batch
// analysis engine and the ecosystem build.
//
// The contract every consumer relies on (the same invariant the crawl and
// build engines established): results are byte-identical to a serial run
// at any thread count. The primitives here guarantee the easy half —
// partial results always come back in shard order (shard i covers a
// contiguous [begin, end) slice of the input, and shard i's result
// precedes shard i+1's) — so a caller whose merge is order-preserving
// (concatenation, first-occurrence dedup, commutative sums) reproduces
// the serial left-to-right scan exactly. Worker exceptions propagate to
// the caller through the futures, never swallowed.
#pragma once

#include <cstddef>
#include <future>
#include <utility>
#include <vector>

#include "util/thread_pool.hpp"

namespace btpub {

/// Splits [0, n) into at most `shards` contiguous, non-empty [begin, end)
/// spans of near-equal size, in ascending order. Returns an empty vector
/// when n == 0.
std::vector<std::pair<std::size_t, std::size_t>> shard_spans(std::size_t n,
                                                             std::size_t shards);

/// Runs `scan(begin, end)` over each span of [0, n) and returns the partial
/// results **in span order** — the property deterministic merges build on.
/// `threads` counts pool workers (0 = hardware concurrency); `shards_hint`
/// requests finer-grained spans for load balancing when per-item cost is
/// uneven (0 = one span per worker, the cheapest-merge default). With one
/// span (or one thread) the scan runs inline on the caller's thread.
template <typename Scan>
auto sharded_scan(std::size_t n, std::size_t threads, Scan&& scan,
                  std::size_t shards_hint = 0)
    -> std::vector<decltype(scan(std::size_t{}, std::size_t{}))> {
  using Partial = decltype(scan(std::size_t{}, std::size_t{}));
  const std::size_t workers = ThreadPool::resolve_threads(threads);
  const auto spans =
      shard_spans(n, shards_hint != 0 && workers > 1 ? shards_hint : workers);
  std::vector<Partial> partials;
  partials.reserve(spans.size());
  if (workers <= 1 || spans.size() <= 1) {
    for (const auto& [begin, end] : spans) partials.push_back(scan(begin, end));
    return partials;
  }
  ThreadPool pool(std::min(workers, spans.size()));
  std::vector<std::future<Partial>> futures;
  futures.reserve(spans.size());
  for (const auto& [begin, end] : spans) {
    futures.push_back(
        pool.submit([&scan, begin = begin, end = end] { return scan(begin, end); }));
  }
  for (auto& future : futures) partials.push_back(future.get());
  return partials;
}

/// Runs `body(i)` for every i in [0, n) across `threads` workers. The body
/// must only touch state owned by index i (typically writing result slot i
/// of a preallocated vector) — which makes the result independent of both
/// interleaving and shard boundaries. Spans are oversubscribed 4x by
/// default so one expensive item cannot serialise a whole shard's worth of
/// work behind it.
template <typename Body>
void parallel_for_each_index(std::size_t n, std::size_t threads, Body&& body,
                             std::size_t shards_hint = 0) {
  const std::size_t workers = ThreadPool::resolve_threads(threads);
  sharded_scan(
      n, threads,
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
        return 0;
      },
      shards_hint != 0 ? shards_hint : workers * 4);
}

}  // namespace btpub
