#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace btpub {

AsciiTable& AsciiTable::header(std::vector<std::string> columns) {
  header_ = std::move(columns);
  return *this;
}

AsciiTable& AsciiTable::row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
  return *this;
}

AsciiTable& AsciiTable::separator() {
  rows_.push_back(Row{{}, true});
  return *this;
}

AsciiTable& AsciiTable::note(std::string text) {
  notes_.push_back(std::move(text));
  return *this;
}

std::string AsciiTable::render() const {
  // Compute column widths over header + all rows.
  std::vector<std::size_t> widths;
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) {
    if (!r.is_separator) widen(r.cells);
  }

  auto render_line = [&widths](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    return os.str();
  };
  auto rule = [&widths]() {
    std::ostringstream os;
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    return os.str();
  };

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  if (!widths.empty()) {
    out << rule() << "\n";
    if (!header_.empty()) {
      out << render_line(header_) << "\n" << rule() << "\n";
    }
    for (const auto& r : rows_) {
      if (r.is_separator) {
        out << rule() << "\n";
      } else {
        out << render_line(r.cells) << "\n";
      }
    }
    out << rule() << "\n";
  }
  for (const auto& n : notes_) out << "  " << n << "\n";
  return out.str();
}

void AsciiTable::print() const {
  const std::string s = render();
  std::fputs(s.c_str(), stdout);
  std::fputs("\n", stdout);
}

}  // namespace btpub
