// time.hpp — simulated-time value types. The whole ecosystem runs on a
// simulated clock measured in whole seconds since the start of a scenario;
// wall-clock time is never consulted (determinism requirement).
#pragma once

#include <cstdint>
#include <string>

namespace btpub {

/// Seconds on the simulated clock. Plain integral type wrapped in helpers
/// rather than <chrono> so the dataset records stay trivially serialisable.
using SimTime = std::int64_t;
using SimDuration = std::int64_t;

inline constexpr SimDuration kSecond = 1;
inline constexpr SimDuration kMinute = 60;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;

constexpr SimDuration minutes(double m) noexcept {
  return static_cast<SimDuration>(m * static_cast<double>(kMinute));
}
constexpr SimDuration hours(double h) noexcept {
  return static_cast<SimDuration>(h * static_cast<double>(kHour));
}
constexpr SimDuration days(double d) noexcept {
  return static_cast<SimDuration>(d * static_cast<double>(kDay));
}

constexpr double to_minutes(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMinute);
}
constexpr double to_hours(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kHour);
}
constexpr double to_days(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kDay);
}

/// "3d 04:05:09"-style rendering for logs and reports.
inline std::string format_duration(SimDuration d) {
  const bool neg = d < 0;
  if (neg) d = -d;
  const auto dd = d / kDay;
  const auto hh = (d % kDay) / kHour;
  const auto mm = (d % kHour) / kMinute;
  const auto ss = d % kMinute;
  char buf[64];
  if (dd > 0) {
    std::snprintf(buf, sizeof buf, "%s%lldd %02lld:%02lld:%02lld", neg ? "-" : "",
                  static_cast<long long>(dd), static_cast<long long>(hh),
                  static_cast<long long>(mm), static_cast<long long>(ss));
  } else {
    std::snprintf(buf, sizeof buf, "%s%02lld:%02lld:%02lld", neg ? "-" : "",
                  static_cast<long long>(hh), static_cast<long long>(mm),
                  static_cast<long long>(ss));
  }
  return buf;
}

/// Half-open time interval [start, end). Used for peer/seeder sessions.
struct Interval {
  SimTime start = 0;
  SimTime end = 0;

  constexpr SimDuration length() const noexcept { return end - start; }
  constexpr bool contains(SimTime t) const noexcept { return t >= start && t < end; }
  constexpr bool overlaps(const Interval& o) const noexcept {
    return start < o.end && o.start < end;
  }
  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

}  // namespace btpub
