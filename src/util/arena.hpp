// arena.hpp — bump-pointer arena allocation for build-time data that lives
// and dies together.
//
// A Swarm owns ~3 parallel arrays (sessions, sweep events, endpoint index)
// whose sizes are known at finalize() and whose lifetime is the swarm's.
// Allocating each from the general-purpose heap costs a malloc per array
// (plus, historically, one hash-map node per distinct endpoint); at the
// 10M-session world that is tens of millions of allocator round trips. An
// arena turns the whole lot into a handful of block allocations and a
// pointer bump per array, and frees everything at once in the destructor.
//
// Not thread-safe: each arena belongs to exactly one owner (one Swarm, one
// build worker). The parallel ecosystem fan-out gives every draft its own
// swarm and therefore its own arena, so no sharing ever occurs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace btpub {

class Arena {
 public:
  /// Blocks grow geometrically from `first_block_bytes` up to kMaxBlock;
  /// requests larger than the next block get a dedicated block.
  explicit Arena(std::size_t first_block_bytes = kDefaultFirstBlock) noexcept
      : next_block_bytes_(first_block_bytes ? first_block_bytes
                                            : kDefaultFirstBlock) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned allocation. `align` must be a power of two. Never returns
  /// nullptr (throws std::bad_alloc on exhaustion like operator new).
  void* allocate(std::size_t bytes, std::size_t align) {
    auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned = (addr + (align - 1)) & ~(align - 1);
    const std::size_t padding = static_cast<std::size_t>(aligned - addr);
    if (bytes + padding > remaining_) {
      grow(bytes, align);  // leaves cursor_ aligned for `align`
      return take(cursor_, bytes);
    }
    cursor_ += padding;
    remaining_ -= padding;
    return take(cursor_, bytes);
  }

  /// Uninitialised storage for `count` objects of T. T must be trivially
  /// destructible — the arena never runs destructors.
  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is freed without running destructors");
    if (count == 0) return nullptr;
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Copies a range into the arena and returns the arena-owned copy.
  template <typename T>
  T* copy_array(const T* data, std::size_t count) {
    T* out = alloc_array<T>(count);
    for (std::size_t i = 0; i < count; ++i) out[i] = data[i];
    return out;
  }

  /// Drops the bump state but keeps the largest block for reuse, so a
  /// reset-and-refill cycle (a worker arena across publications) settles
  /// into zero allocator traffic.
  void reset() noexcept {
    if (blocks_.empty()) return;
    // Keep only the biggest block; it is the steady-state working set.
    std::size_t biggest = 0;
    for (std::size_t i = 1; i < blocks_.size(); ++i) {
      if (blocks_[i].size > blocks_[biggest].size) biggest = i;
    }
    if (biggest != 0) std::swap(blocks_[0], blocks_[biggest]);
    blocks_.resize(1);
    cursor_ = blocks_[0].data.get();
    remaining_ = blocks_[0].size;
    bytes_used_ = 0;
  }

  /// Bytes handed out since construction/reset (excluding padding).
  std::size_t bytes_used() const noexcept { return bytes_used_; }
  /// Bytes reserved from the system allocator.
  std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  std::size_t block_count() const noexcept { return blocks_.size(); }

  static constexpr std::size_t kDefaultFirstBlock = 4 * 1024;
  static constexpr std::size_t kMaxBlock = 4 * 1024 * 1024;

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* take(std::byte*& cursor, std::size_t bytes) noexcept {
    void* out = cursor;
    cursor += bytes;
    remaining_ -= bytes;
    bytes_used_ += bytes;
    return out;
  }

  void grow(std::size_t bytes, std::size_t align) {
    // operator new[] storage is aligned for every fundamental type; pad the
    // request so an extended-alignment ask can still be satisfied inline.
    const std::size_t need = bytes + (align > alignof(std::max_align_t)
                                          ? align
                                          : 0);
    std::size_t size = next_block_bytes_;
    while (size < need) size *= 2;
    Block block{std::make_unique<std::byte[]>(size), size};
    cursor_ = block.data.get();
    const auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
    const std::uintptr_t aligned = (addr + (align - 1)) & ~(align - 1);
    cursor_ += aligned - addr;
    remaining_ = size - static_cast<std::size_t>(aligned - addr);
    blocks_.push_back(std::move(block));
    if (next_block_bytes_ < kMaxBlock) next_block_bytes_ *= 2;
  }

  std::vector<Block> blocks_;
  std::byte* cursor_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t bytes_used_ = 0;
  std::size_t next_block_bytes_;
};

}  // namespace btpub
