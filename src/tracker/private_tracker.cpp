#include "tracker/private_tracker.hpp"

#include <cmath>

namespace btpub {

PrivateTracker::PrivateTracker(PrivateTrackerConfig config, Rng rng)
    : config_(config), tracker_(config.tracker, rng.fork()), rng_(rng) {}

std::optional<std::string> PrivateTracker::register_user(
    const std::string& username) {
  if (username.empty() || passkey_by_username_.contains(username)) {
    return std::nullopt;
  }
  // 32-hex-char passkey, as the real sites issue.
  static constexpr char kHex[] = "0123456789abcdef";
  std::string passkey;
  do {
    passkey.clear();
    for (int i = 0; i < 32; ++i) {
      passkey.push_back(kHex[rng_.index(16)]);
    }
  } while (by_passkey_.contains(passkey));
  Account account;
  account.username = username;
  by_passkey_.emplace(passkey, std::move(account));
  passkey_by_username_.emplace(username, passkey);
  return passkey;
}

bool PrivateTracker::grant_vip(const std::string& username) {
  const auto it = passkey_by_username_.find(username);
  if (it == passkey_by_username_.end()) return false;
  by_passkey_.at(it->second).vip = true;
  return true;
}

AnnounceReply PrivateTracker::announce(const PrivateAnnounce& request) {
  const auto it = by_passkey_.find(request.passkey);
  if (it == by_passkey_.end()) {
    ++stats_.denied_auth;
    AnnounceReply reply;
    reply.ok = false;
    reply.failure_reason = "unregistered passkey";
    return reply;
  }
  Account& account = it->second;
  account.uploaded += request.uploaded_delta;
  account.downloaded += request.downloaded_delta;

  const bool over_grace =
      account.downloaded > static_cast<std::uint64_t>(config_.grace_bytes);
  const double ratio =
      account.downloaded == 0
          ? HUGE_VAL
          : static_cast<double>(account.uploaded) /
                static_cast<double>(account.downloaded);
  if (over_grace && ratio < config_.min_ratio) {
    if (account.vip) {
      ++stats_.vip_bypasses;
    } else {
      ++stats_.denied_ratio;
      AnnounceReply reply;
      reply.ok = false;
      reply.failure_reason = "share ratio too low";
      return reply;
    }
  }
  return tracker_.announce(request.request);
}

std::optional<double> PrivateTracker::ratio(const std::string& username) const {
  const auto it = passkey_by_username_.find(username);
  if (it == passkey_by_username_.end()) return std::nullopt;
  const Account& account = by_passkey_.at(it->second);
  if (account.downloaded == 0) return HUGE_VAL;
  return static_cast<double>(account.uploaded) /
         static_cast<double>(account.downloaded);
}

std::optional<bool> PrivateTracker::is_vip(const std::string& username) const {
  const auto it = passkey_by_username_.find(username);
  if (it == passkey_by_username_.end()) return std::nullopt;
  return by_passkey_.at(it->second).vip;
}

}  // namespace btpub
