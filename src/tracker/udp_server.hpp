// udp_server.hpp — the tracker's BEP 15 datagram endpoint: the
// connect-handshake state machine (connection ids, expiry) in front of the
// same announce engine the HTTP endpoint uses.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "tracker/tracker.hpp"
#include "tracker/udp.hpp"

namespace btpub {

/// Wraps a Tracker with the UDP protocol front end. Connection ids are
/// issued on connect and honoured for two minutes, per BEP 15.
class UdpTrackerEndpoint {
 public:
  explicit UdpTrackerEndpoint(Tracker& tracker, Rng rng)
      : tracker_(&tracker), rng_(rng) {}

  /// Handles one request datagram from `from` at simulated time `now` and
  /// returns the response datagram (connect / announce / scrape / error).
  std::string handle(std::string_view datagram, const Endpoint& from,
                     SimTime now);

  /// Connection ids still honoured right now; stale ids are pruned on
  /// connect, so this cannot grow beyond the live client population.
  std::size_t active_connections() const noexcept {
    return connections_.size();
  }

  static constexpr SimDuration kConnectionTtl = minutes(2);

 private:
  struct Connection {
    SimTime issued = 0;
    std::uint32_t ip = 0;
  };

  std::string error(std::uint32_t transaction_id, std::string message) const;
  /// A connection id is valid up to and INCLUDING kConnectionTtl after
  /// issue, and only from the address it was issued to.
  bool connection_valid(std::uint64_t id, const Endpoint& from,
                        SimTime now) const;
  void prune_expired(SimTime now);

  Tracker* tracker_;
  Rng rng_;
  std::unordered_map<std::uint64_t, Connection> connections_;
};

}  // namespace btpub
