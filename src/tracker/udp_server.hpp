// udp_server.hpp — the tracker's BEP 15 datagram endpoint: the
// connect-handshake state machine (connection ids, expiry) in front of the
// same announce engine the HTTP endpoint uses.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>

#include "tracker/tracker.hpp"
#include "tracker/udp.hpp"

namespace btpub {

/// Wraps a Tracker with the UDP protocol front end. Connection ids are
/// issued on connect and honoured for two minutes, per BEP 15.
class UdpTrackerEndpoint {
 public:
  explicit UdpTrackerEndpoint(Tracker& tracker, Rng rng)
      : tracker_(&tracker), rng_(rng) {}

  /// Handles one request datagram from `from` at simulated time `now` and
  /// returns the response datagram (connect / announce / scrape / error).
  std::string handle(std::string_view datagram, const Endpoint& from,
                     SimTime now);

  /// Same protocol state machine, but the response is written into `out`
  /// (cleared first; capacity kept) and announces run through the
  /// tracker's announce_into fast path with endpoint-owned scratch —
  /// allocation-free once buffers have warmed up, except on connect (the
  /// connection table inserts) and on a reply whose peer list outgrows
  /// every previous one. This is the per-packet path the wire server
  /// (src/netio/) drives; handle() is a thin shim over it.
  void handle_into(std::string_view datagram, const Endpoint& from,
                   SimTime now, std::string& out);

  /// Per-action counters, bumped by handle_into/handle. `announces` counts
  /// protocol-level announce datagrams; `announce_failures` the subset the
  /// tracker refused (rate limit, unknown torrent, ban).
  struct Stats {
    std::uint64_t connects = 0;
    std::uint64_t announces = 0;
    std::uint64_t announce_failures = 0;
    std::uint64_t scrapes = 0;
    std::uint64_t bad_connection_id = 0;
    std::uint64_t malformed = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

  /// Connection ids still honoured right now; stale ids are pruned on
  /// connect, so this cannot grow beyond the live client population.
  std::size_t active_connections() const noexcept {
    return connections_.size();
  }

  static constexpr SimDuration kConnectionTtl = minutes(2);

  /// Encodes the BEP-15 announce response for `reply` straight into `out`
  /// — byte-identical to filling a UdpAnnounceResponse and encode(), minus
  /// the peer-list copy.
  static void encode_announce_response_into(std::uint32_t transaction_id,
                                            const AnnounceReply& reply,
                                            std::string& out);

 private:
  struct Connection {
    SimTime issued = 0;
    std::uint32_t ip = 0;
  };

  std::string error(std::uint32_t transaction_id, std::string message) const;
  void error_into(std::uint32_t transaction_id, std::string_view message,
                  std::string& out) const;
  /// A connection id is valid up to and INCLUDING kConnectionTtl after
  /// issue, and only from the address it was issued to.
  bool connection_valid(std::uint64_t id, const Endpoint& from,
                        SimTime now) const;
  void prune_expired(SimTime now);

  Tracker* tracker_;
  Rng rng_;
  std::unordered_map<std::uint64_t, Connection> connections_;
  Stats stats_;
  // Reused across handle_into calls (the zero-allocation contract).
  AnnounceReply reply_;
  Tracker::AnnounceScratch scratch_;
};

}  // namespace btpub
