// tracker.hpp — the BitTorrent tracker (OpenBitTorrent substitute).
//
// Serves announce queries over swarms hosted as interval schedules: a query
// at time t returns the seeder/leecher counts and a uniform random subset
// of at most `max_numwant` present peers, bencoded with compact peer lists,
// exactly the view the paper's crawler aggregates. The tracker enforces the
// query-rate limit the authors had to respect (one query per 10–15 minutes
// per client and torrent) and blacklists abusive clients.
//
// Threading contract (the parallel crawl engine relies on this):
//   * host_swarm() is build-time only — the swarm registry is read-only
//     once announces begin.
//   * Per-client mutable state (rate-limit timestamps, violation counters,
//     the blacklist, stats) is sharded by client IP under striped mutexes,
//     so announces from different crawl workers never race.
//   * Peer sampling is stateless: each reply draws from a generator keyed
//     on (sample seed, infohash, query time, client IP), never from a
//     shared stream, so the sampled subset is a pure function of the query
//     and is identical under any thread interleaving.
//   * A given swarm's time sweep is single-threaded: concurrent announces
//     for the SAME infohash are not supported (the crawler fans out
//     per-torrent, so each swarm is only ever queried by one worker).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "swarm/swarm.hpp"
#include "swarm/swarm_map.hpp"
#include "tracker/announce.hpp"
#include "util/rng.hpp"

namespace btpub {

struct TrackerConfig {
  /// Hard cap on peers per reply (the paper: at most 200).
  std::size_t max_numwant = 200;
  /// Minimum gap between two queries from one client for one torrent.
  /// The actual enforced gap is drawn per tracker in [min, max] to model
  /// load-dependent throttling.
  SimDuration min_query_gap = minutes(10);
  SimDuration max_query_gap = minutes(15);
  /// Number of rate violations before the client IP is blacklisted.
  std::uint32_t blacklist_after = 50;
  /// The announce URL advertised in metainfo files.
  std::string announce_url = "http://tracker.btpub.example/announce";
};

/// The tracker. Announces are thread-safe across distinct infohashes; see
/// the threading contract above.
class Tracker {
 public:
  explicit Tracker(TrackerConfig config, Rng rng);

  const TrackerConfig& config() const noexcept { return config_; }
  const std::string& announce_url() const noexcept { return config_.announce_url; }

  /// Hosts a finalized swarm; the swarm must outlive the tracker.
  /// Build-time only — not safe concurrently with announce().
  void host_swarm(Swarm& swarm);
  bool hosts(const Sha1Digest& infohash) const;
  std::size_t swarm_count() const noexcept { return swarms_.size(); }

  /// Reusable per-caller scratch for the announce fast path. Each crawl
  /// worker owns one; the tracker never stores state in it beyond the
  /// duration of one announce_into call. See DESIGN.md, "Announce fast
  /// path", for the ownership rules.
  struct AnnounceScratch {
    std::vector<const PeerSession*> sampled;
    Swarm::SampleScratch sample;
  };

  /// Full protocol round trip: takes the bencoded-over-HTTP GET query
  /// string, returns the bencoded response body. Thin shim over
  /// announce_into kept for protocol-level tests and wire-format callers.
  std::string handle_get(std::string_view query_string);

  /// Struct-level announce (used by simulator-internal callers and by
  /// handle_get). Applies rate limiting and blacklisting.
  AnnounceReply announce(const AnnounceRequest& request);

  /// The steady-state fast path: identical semantics to announce(), but
  /// writes into a caller-owned reply (whose peers vector is cleared, not
  /// shrunk) and samples through caller-owned scratch — allocation-free
  /// once reply/scratch capacities have warmed up. All reply fields are
  /// overwritten; nothing from a previous query leaks through.
  void announce_into(const AnnounceRequest& request, AnnounceReply& reply,
                     AnnounceScratch& scratch);

  /// Scrape counters for one swarm at time `now`; nullopt when the
  /// infohash is not hosted. `downloaded` follows the convention the
  /// bencoded scrape established: total sessions ever seen by the swarm.
  struct ScrapeCounts {
    std::uint32_t complete = 0;    // seeders
    std::uint32_t downloaded = 0;  // snatches
    std::uint32_t incomplete = 0;  // leechers
  };
  std::optional<ScrapeCounts> scrape_counts(const Sha1Digest& infohash,
                                            SimTime now);

  /// Scrape: bencoded per-infohash {complete, incomplete} counters at
  /// time `now`. Shares its counters with the UDP scrape action via
  /// scrape_counts().
  std::string scrape(const Sha1Digest& infohash, SimTime now);

  bool is_blacklisted(IpAddress client) const;

  /// Clears per-client rate-limit/blacklist state and re-keys the
  /// stateless peer-sampling draw; hosted swarms, stats and the enforced
  /// gap are kept. Lets one tracker serve repeated identical crawls
  /// deterministically.
  void reset_state(std::uint64_t sample_seed);

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t rejected_rate = 0;
    std::uint64_t rejected_blacklist = 0;
    std::uint64_t rejected_unknown = 0;
  };
  /// Aggregated over all shards; a consistent snapshot only while no
  /// announce is in flight.
  Stats stats() const;

  /// The gap this tracker actually enforces (drawn once at construction).
  SimDuration enforced_gap() const noexcept { return enforced_gap_; }

 private:
  struct ClientKey {
    std::uint32_t ip;
    Sha1Digest infohash;
    bool operator==(const ClientKey&) const = default;
  };
  struct ClientKeyHash {
    std::size_t operator()(const ClientKey& k) const noexcept {
      return std::hash<Sha1Digest>{}(k.infohash) ^
             (static_cast<std::size_t>(k.ip) * 0x9E3779B97F4A7C15ULL);
    }
  };

  /// All mutable per-client state for one stripe of the IP space. Keying
  /// every map in the shard by the client IP keeps one announce's rate
  /// check, violation bump and blacklist lookup under a single lock.
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<ClientKey, SimTime, ClientKeyHash> last_query;
    std::unordered_map<std::uint32_t, std::uint32_t> violations;
    std::unordered_set<std::uint32_t> blacklist;
    Stats stats;
  };
  static constexpr std::size_t kShards = 16;

  Shard& shard_for(std::uint32_t ip) noexcept {
    return shards_[(ip * 0x9E3779B9u) >> 28];  // top 4 bits of a Fibonacci hash
  }
  const Shard& shard_for(std::uint32_t ip) const noexcept {
    return shards_[(ip * 0x9E3779B9u) >> 28];
  }

  TrackerConfig config_;
  SimDuration enforced_gap_;
  std::uint64_t sample_seed_;
  ShardedSwarmMap<Swarm> swarms_;
  std::array<Shard, kShards> shards_;
};

}  // namespace btpub
