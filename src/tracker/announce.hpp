// announce.hpp — the tracker HTTP announce protocol surface: request
// query-string encoding (BEP 3 over HTTP GET) and the bencoded response.
// Kept wire-real so the crawler parses exactly what a deployed tracker
// would emit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha1.hpp"
#include "net/ip.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace btpub {

/// An announce request as issued by a client (or by the crawler, which
/// always asks for the maximum number of peers, §2 of the paper).
struct AnnounceRequest {
  Sha1Digest infohash{};
  Endpoint client{};
  std::size_t numwant = 200;
  SimTime now = 0;  // simulated clock carried in-band instead of wall time
};

/// Decoded announce response.
struct AnnounceReply {
  bool ok = false;
  std::string failure_reason;     // set when !ok
  SimDuration interval = 0;       // tracker-mandated min re-announce gap
  std::uint32_t complete = 0;     // seeders
  std::uint32_t incomplete = 0;   // leechers
  std::vector<Endpoint> peers;    // compact-decoded
};

/// Renders "/announce?info_hash=...&ip=...&port=...&numwant=...".
std::string to_query_string(const AnnounceRequest& request);
/// Parses a query string produced by to_query_string. nullopt when any
/// required field is missing or malformed. Duplicate keys follow
/// last-one-wins semantics (matching common tracker behaviour).
std::optional<AnnounceRequest> parse_query_string(std::string_view query);

/// Bencodes a reply (success or failure form).
std::string encode_announce_reply(const AnnounceReply& reply);
/// Same encoding, but clears `out` and writes into it so the caller can
/// reuse one buffer across queries. The emitted bytes are identical to
/// encode_announce_reply — byte-identity of announce responses is part of
/// the protocol contract (see DESIGN.md, "Announce fast path").
void encode_announce_reply_into(const AnnounceReply& reply, std::string& out);
/// Parses a bencoded reply. Throws bencode::Error on malformed bytes.
AnnounceReply decode_announce_reply(std::string_view bytes);

}  // namespace btpub
