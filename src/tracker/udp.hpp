// udp.hpp — the UDP tracker protocol (BEP 15).
//
// OpenBitTorrent — the tracker behind most of the paper's torrents — served
// announces over UDP as well as HTTP. The packet formats here are
// wire-exact (big-endian, the 0x41727101980 magic, the connect/announce/
// error actions); the simulated tracker answers datagrams through
// Tracker::handle_udp (udp_server.hpp), including the connection-id
// handshake and expiry.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha1.hpp"
#include "net/ip.hpp"
#include "util/time.hpp"

namespace btpub {

inline constexpr std::uint64_t kUdpProtocolMagic = 0x41727101980ULL;

enum class UdpAction : std::uint32_t {
  Connect = 0,
  Announce = 1,
  Scrape = 2,
  Error = 3,
};

struct UdpConnectRequest {
  std::uint32_t transaction_id = 0;

  std::string encode() const;
  /// Clears `out` and writes the datagram into it; reusing one buffer
  /// across calls makes steady-state encoding allocation-free (the wire
  /// server and load generator both rely on this — see src/netio/).
  /// Byte-identical to encode(); every encode() below delegates here.
  void encode_into(std::string& out) const;
  static std::optional<UdpConnectRequest> decode(std::string_view datagram);
};

struct UdpConnectResponse {
  std::uint32_t transaction_id = 0;
  std::uint64_t connection_id = 0;

  std::string encode() const;
  void encode_into(std::string& out) const;
  static std::optional<UdpConnectResponse> decode(std::string_view datagram);
};

struct UdpAnnounceRequest {
  std::uint64_t connection_id = 0;
  std::uint32_t transaction_id = 0;
  Sha1Digest infohash{};
  std::array<std::uint8_t, 20> peer_id{};
  std::uint64_t downloaded = 0;
  std::uint64_t left = 0;
  std::uint64_t uploaded = 0;
  std::uint32_t event = 0;  // 0 none, 1 completed, 2 started, 3 stopped
  std::uint32_t ip = 0;     // 0 = use sender address
  std::uint32_t key = 0;
  std::uint32_t num_want = ~0u;  // default: tracker decides
  std::uint16_t port = 0;

  std::string encode() const;
  void encode_into(std::string& out) const;
  static std::optional<UdpAnnounceRequest> decode(std::string_view datagram);
};

struct UdpAnnounceResponse {
  std::uint32_t transaction_id = 0;
  std::uint32_t interval = 0;
  std::uint32_t leechers = 0;
  std::uint32_t seeders = 0;
  std::vector<Endpoint> peers;

  std::string encode() const;
  void encode_into(std::string& out) const;
  static std::optional<UdpAnnounceResponse> decode(std::string_view datagram);
};

/// Scrape request: connection id, action=2, transaction id, then 1..74
/// infohashes of 20 bytes each (BEP 15's packet-size cap).
struct UdpScrapeRequest {
  std::uint64_t connection_id = 0;
  std::uint32_t transaction_id = 0;
  std::vector<Sha1Digest> infohashes;

  static constexpr std::size_t kMaxInfohashes = 74;

  std::string encode() const;
  void encode_into(std::string& out) const;
  static std::optional<UdpScrapeRequest> decode(std::string_view datagram);
};

/// Scrape response: one {seeders, completed, leechers} triple per
/// requested infohash, in request order.
struct UdpScrapeEntry {
  std::uint32_t seeders = 0;
  std::uint32_t completed = 0;
  std::uint32_t leechers = 0;

  bool operator==(const UdpScrapeEntry&) const = default;
};

struct UdpScrapeResponse {
  std::uint32_t transaction_id = 0;
  std::vector<UdpScrapeEntry> entries;

  std::string encode() const;
  void encode_into(std::string& out) const;
  static std::optional<UdpScrapeResponse> decode(std::string_view datagram);
};

struct UdpErrorResponse {
  std::uint32_t transaction_id = 0;
  std::string message;

  std::string encode() const;
  void encode_into(std::string& out) const;
  static std::optional<UdpErrorResponse> decode(std::string_view datagram);
};

/// Peeks at the action field of a response datagram (offset 0).
std::optional<UdpAction> udp_response_action(std::string_view datagram);

/// Peeks at the transaction id of a response datagram (offset 4); response
/// datagrams of every action carry it there. nullopt when too short.
std::optional<std::uint32_t> udp_response_transaction_id(std::string_view datagram);

}  // namespace btpub
