// private_tracker.hpp — the private-tracker business model (paper §5.1).
//
// A quarter of the top publishers run their own BitTorrent portals, "in
// some cases associated with private trackers [that] require clients to
// maintain a certain seeding ratio": users must register, authenticate
// every announce with a passkey, and keep uploaded/downloaded above a
// threshold — or buy VIP access, one of the documented income channels.
// This class implements that economy on top of the ordinary Tracker.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "tracker/tracker.hpp"

namespace btpub {

struct PrivateTrackerConfig {
  /// Accounts whose ratio falls below this are refused new downloads...
  double min_ratio = 0.5;
  /// ...once they have downloaded more than this many bytes (newcomers get
  /// a grace allowance).
  std::int64_t grace_bytes = std::int64_t{2} * 1024 * 1024 * 1024;
  TrackerConfig tracker;
};

/// An authenticated announce: the ordinary request plus the account's
/// passkey and its cumulative transfer counters for this torrent.
struct PrivateAnnounce {
  std::string passkey;
  AnnounceRequest request;
  std::uint64_t uploaded_delta = 0;    // bytes uploaded since last announce
  std::uint64_t downloaded_delta = 0;  // bytes downloaded since last announce
};

class PrivateTracker {
 public:
  PrivateTracker(PrivateTrackerConfig config, Rng rng);

  /// Registers an account; returns its passkey (the announce credential).
  /// Duplicate usernames are rejected with std::nullopt.
  std::optional<std::string> register_user(const std::string& username);

  /// VIP accounts (paid) bypass the ratio requirement (§5.1: "collecting a
  /// fee for VIP access that allows the client to download any content
  /// without sustaining any kind of seeding ratio").
  bool grant_vip(const std::string& username);

  /// Authenticated announce. Fails with "unregistered passkey" or
  /// "share ratio too low" before ever reaching the swarm.
  AnnounceReply announce(const PrivateAnnounce& request);

  /// uploaded/downloaded for an account; infinity-like (HUGE_VAL) while
  /// nothing was downloaded. nullopt for unknown users.
  std::optional<double> ratio(const std::string& username) const;
  std::optional<bool> is_vip(const std::string& username) const;

  /// The underlying swarm-serving tracker (host swarms through this).
  Tracker& tracker() noexcept { return tracker_; }

  struct Stats {
    std::uint64_t denied_ratio = 0;
    std::uint64_t denied_auth = 0;
    std::uint64_t vip_bypasses = 0;
  };
  const Stats& stats() const noexcept { return stats_; }
  std::size_t account_count() const noexcept { return by_passkey_.size(); }

 private:
  struct Account {
    std::string username;
    std::uint64_t uploaded = 0;
    std::uint64_t downloaded = 0;
    bool vip = false;
  };

  PrivateTrackerConfig config_;
  Tracker tracker_;
  Rng rng_;
  std::unordered_map<std::string, Account> by_passkey_;
  std::unordered_map<std::string, std::string> passkey_by_username_;
  Stats stats_;
};

}  // namespace btpub
