#include "tracker/announce.hpp"

#include <charconv>
#include <stdexcept>

#include "bencode/bencode.hpp"
#include "net/compact.hpp"
#include "util/strings.hpp"

namespace btpub {

std::string to_query_string(const AnnounceRequest& request) {
  std::string hash_bytes(reinterpret_cast<const char*>(request.infohash.bytes.data()),
                         request.infohash.bytes.size());
  std::string out = "/announce?info_hash=" + url_escape(hash_bytes);
  out += "&ip=" + request.client.ip.to_string();
  out += "&port=" + std::to_string(request.client.port);
  out += "&numwant=" + std::to_string(request.numwant);
  out += "&t=" + std::to_string(request.now);
  return out;
}

std::optional<AnnounceRequest> parse_query_string(std::string_view query) {
  const auto qmark = query.find('?');
  if (qmark == std::string_view::npos) return std::nullopt;
  AnnounceRequest req;
  bool have_hash = false, have_ip = false, have_port = false;
  for (const std::string_view pair : split_views(query.substr(qmark + 1), '&')) {
    const auto eq = pair.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = pair.substr(0, eq);
    const std::string_view raw = pair.substr(eq + 1);
    if (key == "info_hash") {
      // In-place unescape into the fixed 20-byte digest — no temporary
      // string and no exceptions on the hot parse path.
      const auto n = url_unescape_into(
          raw, reinterpret_cast<char*>(req.infohash.bytes.data()),
          req.infohash.bytes.size());
      if (!n || *n != req.infohash.bytes.size()) return std::nullopt;
      have_hash = true;
    } else if (key == "ip") {
      const auto ip = IpAddress::parse(raw);
      if (!ip) return std::nullopt;
      req.client.ip = *ip;
      have_ip = true;
    } else if (key == "port") {
      unsigned port = 0;
      const auto res = std::from_chars(raw.data(), raw.data() + raw.size(), port);
      if (res.ec != std::errc{} || port > 65535) return std::nullopt;
      req.client.port = static_cast<std::uint16_t>(port);
      have_port = true;
    } else if (key == "numwant") {
      std::size_t numwant = 0;
      const auto res =
          std::from_chars(raw.data(), raw.data() + raw.size(), numwant);
      if (res.ec != std::errc{}) return std::nullopt;
      req.numwant = numwant;
    } else if (key == "t") {
      SimTime t = 0;
      const auto res = std::from_chars(raw.data(), raw.data() + raw.size(), t);
      if (res.ec != std::errc{}) return std::nullopt;
      req.now = t;
    }
  }
  if (!have_hash || !have_ip || !have_port) return std::nullopt;
  return req;
}

void encode_announce_reply_into(const AnnounceReply& reply, std::string& out) {
  out.clear();
  bencode::Writer writer(out);
  writer.begin_dict();
  if (!reply.ok) {
    writer.key("failure reason");
    writer.string(reply.failure_reason);
    writer.end();
    return;
  }
  // Keys in ascending byte order — the canonical-dict encoding the
  // tree-based encoder produced via std::map.
  writer.key("complete");
  writer.integer(static_cast<std::int64_t>(reply.complete));
  writer.key("incomplete");
  writer.integer(static_cast<std::int64_t>(reply.incomplete));
  writer.key("interval");
  writer.integer(static_cast<std::int64_t>(reply.interval));
  writer.key("peers");
  writer.string_header(reply.peers.size() * 6);
  for (const Endpoint& peer : reply.peers) append_compact_peer(out, peer);
  writer.end();
}

std::string encode_announce_reply(const AnnounceReply& reply) {
  std::string out;
  encode_announce_reply_into(reply, out);
  return out;
}

AnnounceReply decode_announce_reply(std::string_view bytes) {
  const bencode::Value root = bencode::decode(bytes);
  AnnounceReply reply;
  if (const auto failure = root.find_string("failure reason")) {
    reply.ok = false;
    reply.failure_reason = *failure;
    return reply;
  }
  reply.ok = true;
  reply.interval = root.find_integer("interval").value_or(0);
  reply.complete = static_cast<std::uint32_t>(root.find_integer("complete").value_or(0));
  reply.incomplete =
      static_cast<std::uint32_t>(root.find_integer("incomplete").value_or(0));
  if (const auto peers = root.find_string("peers")) {
    reply.peers = decode_compact_peers(*peers);
  }
  return reply;
}

}  // namespace btpub
