#include "tracker/announce.hpp"

#include <charconv>
#include <stdexcept>

#include "bencode/bencode.hpp"
#include "net/compact.hpp"
#include "util/strings.hpp"

namespace btpub {

std::string to_query_string(const AnnounceRequest& request) {
  std::string hash_bytes(reinterpret_cast<const char*>(request.infohash.bytes.data()),
                         request.infohash.bytes.size());
  std::string out = "/announce?info_hash=" + url_escape(hash_bytes);
  out += "&ip=" + request.client.ip.to_string();
  out += "&port=" + std::to_string(request.client.port);
  out += "&numwant=" + std::to_string(request.numwant);
  out += "&t=" + std::to_string(request.now);
  return out;
}

std::optional<AnnounceRequest> parse_query_string(std::string_view query) {
  const auto qmark = query.find('?');
  if (qmark == std::string_view::npos) return std::nullopt;
  AnnounceRequest req;
  bool have_hash = false, have_ip = false, have_port = false;
  for (const std::string& pair : split(query.substr(qmark + 1), '&')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = pair.substr(0, eq);
    const std::string raw = pair.substr(eq + 1);
    try {
      if (key == "info_hash") {
        const std::string bytes = url_unescape(raw);
        if (bytes.size() != 20) return std::nullopt;
        for (std::size_t i = 0; i < 20; ++i) {
          req.infohash.bytes[i] = static_cast<std::uint8_t>(bytes[i]);
        }
        have_hash = true;
      } else if (key == "ip") {
        const auto ip = IpAddress::parse(raw);
        if (!ip) return std::nullopt;
        req.client.ip = *ip;
        have_ip = true;
      } else if (key == "port") {
        unsigned port = 0;
        const auto res = std::from_chars(raw.data(), raw.data() + raw.size(), port);
        if (res.ec != std::errc{} || port > 65535) return std::nullopt;
        req.client.port = static_cast<std::uint16_t>(port);
        have_port = true;
      } else if (key == "numwant") {
        std::size_t numwant = 0;
        const auto res =
            std::from_chars(raw.data(), raw.data() + raw.size(), numwant);
        if (res.ec != std::errc{}) return std::nullopt;
        req.numwant = numwant;
      } else if (key == "t") {
        SimTime t = 0;
        const auto res = std::from_chars(raw.data(), raw.data() + raw.size(), t);
        if (res.ec != std::errc{}) return std::nullopt;
        req.now = t;
      }
    } catch (const std::invalid_argument&) {
      return std::nullopt;
    }
  }
  if (!have_hash || !have_ip || !have_port) return std::nullopt;
  return req;
}

std::string encode_announce_reply(const AnnounceReply& reply) {
  bencode::Dict dict;
  if (!reply.ok) {
    dict.emplace("failure reason", reply.failure_reason);
    return bencode::encode(bencode::Value(std::move(dict)));
  }
  dict.emplace("interval", static_cast<std::int64_t>(reply.interval));
  dict.emplace("complete", static_cast<std::int64_t>(reply.complete));
  dict.emplace("incomplete", static_cast<std::int64_t>(reply.incomplete));
  dict.emplace("peers", encode_compact_peers(reply.peers));
  return bencode::encode(bencode::Value(std::move(dict)));
}

AnnounceReply decode_announce_reply(std::string_view bytes) {
  const bencode::Value root = bencode::decode(bytes);
  AnnounceReply reply;
  if (const auto failure = root.find_string("failure reason")) {
    reply.ok = false;
    reply.failure_reason = *failure;
    return reply;
  }
  reply.ok = true;
  reply.interval = root.find_integer("interval").value_or(0);
  reply.complete = static_cast<std::uint32_t>(root.find_integer("complete").value_or(0));
  reply.incomplete =
      static_cast<std::uint32_t>(root.find_integer("incomplete").value_or(0));
  if (const auto peers = root.find_string("peers")) {
    reply.peers = decode_compact_peers(*peers);
  }
  return reply;
}

}  // namespace btpub
