#include "tracker/udp_server.hpp"

namespace btpub {

std::string UdpTrackerEndpoint::error(std::uint32_t transaction_id,
                                      std::string message) const {
  UdpErrorResponse res;
  res.transaction_id = transaction_id;
  res.message = std::move(message);
  return res.encode();
}

std::string UdpTrackerEndpoint::handle(std::string_view datagram,
                                       const Endpoint& from, SimTime now) {
  // Connect?
  if (const auto connect = UdpConnectRequest::decode(datagram)) {
    std::uint64_t id = rng_.next();
    while (connections_.contains(id)) id = rng_.next();
    connections_.emplace(id, Connection{now, from.ip.value()});
    UdpConnectResponse res;
    res.transaction_id = connect->transaction_id;
    res.connection_id = id;
    return res.encode();
  }
  // Announce?
  if (const auto announce = UdpAnnounceRequest::decode(datagram)) {
    const auto it = connections_.find(announce->connection_id);
    if (it == connections_.end() || now - it->second.issued > kConnectionTtl ||
        it->second.ip != from.ip.value()) {
      return error(announce->transaction_id, "invalid connection id");
    }
    AnnounceRequest request;
    request.infohash = announce->infohash;
    request.client.ip =
        announce->ip != 0 ? IpAddress(announce->ip) : from.ip;
    request.client.port = announce->port;
    request.numwant = announce->num_want == ~0u
                          ? tracker_->config().max_numwant
                          : announce->num_want;
    request.now = now;
    const AnnounceReply reply = tracker_->announce(request);
    if (!reply.ok) return error(announce->transaction_id, reply.failure_reason);
    UdpAnnounceResponse res;
    res.transaction_id = announce->transaction_id;
    res.interval = static_cast<std::uint32_t>(reply.interval);
    res.leechers = reply.incomplete;
    res.seeders = reply.complete;
    res.peers = reply.peers;
    return res.encode();
  }
  // Anything else: protocol violation. BEP 15 says to ignore, but an error
  // datagram with transaction id 0 is friendlier to diagnose.
  return error(0, "malformed datagram");
}

}  // namespace btpub
