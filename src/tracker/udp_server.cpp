#include "tracker/udp_server.hpp"

namespace btpub {

std::string UdpTrackerEndpoint::error(std::uint32_t transaction_id,
                                      std::string message) const {
  UdpErrorResponse res;
  res.transaction_id = transaction_id;
  res.message = std::move(message);
  return res.encode();
}

bool UdpTrackerEndpoint::connection_valid(std::uint64_t id,
                                          const Endpoint& from,
                                          SimTime now) const {
  const auto it = connections_.find(id);
  return it != connections_.end() && now - it->second.issued <= kConnectionTtl &&
         it->second.ip == from.ip.value();
}

void UdpTrackerEndpoint::prune_expired(SimTime now) {
  std::erase_if(connections_, [&](const auto& entry) {
    return now - entry.second.issued > kConnectionTtl;
  });
}

std::string UdpTrackerEndpoint::handle(std::string_view datagram,
                                       const Endpoint& from, SimTime now) {
  // Connect?
  if (const auto connect = UdpConnectRequest::decode(datagram)) {
    // Amortized cleanup: every handshake sweeps out ids past their TTL, so
    // the table tracks the live client population instead of growing with
    // the total number of handshakes ever made.
    prune_expired(now);
    std::uint64_t id = rng_.next();
    while (connections_.contains(id)) id = rng_.next();
    connections_.emplace(id, Connection{now, from.ip.value()});
    UdpConnectResponse res;
    res.transaction_id = connect->transaction_id;
    res.connection_id = id;
    return res.encode();
  }
  // Announce?
  if (const auto announce = UdpAnnounceRequest::decode(datagram)) {
    if (!connection_valid(announce->connection_id, from, now)) {
      return error(announce->transaction_id, "invalid connection id");
    }
    AnnounceRequest request;
    request.infohash = announce->infohash;
    request.client.ip =
        announce->ip != 0 ? IpAddress(announce->ip) : from.ip;
    request.client.port = announce->port;
    request.numwant = announce->num_want == ~0u
                          ? tracker_->config().max_numwant
                          : announce->num_want;
    request.now = now;
    const AnnounceReply reply = tracker_->announce(request);
    if (!reply.ok) return error(announce->transaction_id, reply.failure_reason);
    UdpAnnounceResponse res;
    res.transaction_id = announce->transaction_id;
    res.interval = static_cast<std::uint32_t>(reply.interval);
    res.leechers = reply.incomplete;
    res.seeders = reply.complete;
    res.peers = reply.peers;
    return res.encode();
  }
  // Scrape?
  if (const auto scrape = UdpScrapeRequest::decode(datagram)) {
    if (!connection_valid(scrape->connection_id, from, now)) {
      return error(scrape->transaction_id, "invalid connection id");
    }
    UdpScrapeResponse res;
    res.transaction_id = scrape->transaction_id;
    res.entries.reserve(scrape->infohashes.size());
    for (const Sha1Digest& infohash : scrape->infohashes) {
      // Unhosted infohashes scrape as all-zero rows; the datagram must
      // keep one entry per request entry so positions line up.
      UdpScrapeEntry entry;
      if (const auto counts = tracker_->scrape_counts(infohash, now)) {
        entry.seeders = counts->complete;
        entry.completed = counts->downloaded;
        entry.leechers = counts->incomplete;
      }
      res.entries.push_back(entry);
    }
    return res.encode();
  }
  // Anything else: protocol violation. BEP 15 says to ignore, but an error
  // datagram with transaction id 0 is friendlier to diagnose.
  return error(0, "malformed datagram");
}

}  // namespace btpub
