#include "tracker/udp_server.hpp"

namespace btpub {
namespace {

// Big-endian appenders shared with udp.cpp's codec (duplicated rather than
// exported: three lines each, and the codec's namespace is private).
void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
}

}  // namespace

std::string UdpTrackerEndpoint::error(std::uint32_t transaction_id,
                                      std::string message) const {
  UdpErrorResponse res;
  res.transaction_id = transaction_id;
  res.message = std::move(message);
  return res.encode();
}

void UdpTrackerEndpoint::error_into(std::uint32_t transaction_id,
                                    std::string_view message,
                                    std::string& out) const {
  // Same bytes as UdpErrorResponse::encode without routing the message
  // text through a std::string member.
  out.clear();
  put_u32(out, static_cast<std::uint32_t>(UdpAction::Error));
  put_u32(out, transaction_id);
  out.append(message);
}

void UdpTrackerEndpoint::encode_announce_response_into(
    std::uint32_t transaction_id, const AnnounceReply& reply,
    std::string& out) {
  out.clear();
  put_u32(out, static_cast<std::uint32_t>(UdpAction::Announce));
  put_u32(out, transaction_id);
  put_u32(out, static_cast<std::uint32_t>(reply.interval));
  put_u32(out, reply.incomplete);
  put_u32(out, reply.complete);
  for (const Endpoint& p : reply.peers) {
    put_u32(out, p.ip.value());
    put_u16(out, p.port);
  }
}

bool UdpTrackerEndpoint::connection_valid(std::uint64_t id,
                                          const Endpoint& from,
                                          SimTime now) const {
  const auto it = connections_.find(id);
  return it != connections_.end() && now - it->second.issued <= kConnectionTtl &&
         it->second.ip == from.ip.value();
}

void UdpTrackerEndpoint::prune_expired(SimTime now) {
  std::erase_if(connections_, [&](const auto& entry) {
    return now - entry.second.issued > kConnectionTtl;
  });
}

std::string UdpTrackerEndpoint::handle(std::string_view datagram,
                                       const Endpoint& from, SimTime now) {
  std::string out;
  handle_into(datagram, from, now, out);
  return out;
}

void UdpTrackerEndpoint::handle_into(std::string_view datagram,
                                     const Endpoint& from, SimTime now,
                                     std::string& out) {
  // Connect?
  if (const auto connect = UdpConnectRequest::decode(datagram)) {
    // Amortized cleanup: every handshake sweeps out ids past their TTL, so
    // the table tracks the live client population instead of growing with
    // the total number of handshakes ever made.
    prune_expired(now);
    std::uint64_t id = rng_.next();
    while (connections_.contains(id)) id = rng_.next();
    connections_.emplace(id, Connection{now, from.ip.value()});
    ++stats_.connects;
    UdpConnectResponse res;
    res.transaction_id = connect->transaction_id;
    res.connection_id = id;
    res.encode_into(out);
    return;
  }
  // Announce?
  if (const auto announce = UdpAnnounceRequest::decode(datagram)) {
    ++stats_.announces;
    if (!connection_valid(announce->connection_id, from, now)) {
      ++stats_.bad_connection_id;
      ++stats_.announce_failures;
      error_into(announce->transaction_id, "invalid connection id", out);
      return;
    }
    AnnounceRequest request;
    request.infohash = announce->infohash;
    request.client.ip =
        announce->ip != 0 ? IpAddress(announce->ip) : from.ip;
    request.client.port = announce->port;
    request.numwant = announce->num_want == ~0u
                          ? tracker_->config().max_numwant
                          : announce->num_want;
    request.now = now;
    tracker_->announce_into(request, reply_, scratch_);
    if (!reply_.ok) {
      ++stats_.announce_failures;
      error_into(announce->transaction_id, reply_.failure_reason, out);
      return;
    }
    encode_announce_response_into(announce->transaction_id, reply_, out);
    return;
  }
  // Scrape?
  if (const auto scrape = UdpScrapeRequest::decode(datagram)) {
    ++stats_.scrapes;
    if (!connection_valid(scrape->connection_id, from, now)) {
      ++stats_.bad_connection_id;
      error_into(scrape->transaction_id, "invalid connection id", out);
      return;
    }
    out.clear();
    put_u32(out, static_cast<std::uint32_t>(UdpAction::Scrape));
    put_u32(out, scrape->transaction_id);
    for (const Sha1Digest& infohash : scrape->infohashes) {
      // Unhosted infohashes scrape as all-zero rows; the datagram must
      // keep one entry per request entry so positions line up.
      UdpScrapeEntry entry;
      if (const auto counts = tracker_->scrape_counts(infohash, now)) {
        entry.seeders = counts->complete;
        entry.completed = counts->downloaded;
        entry.leechers = counts->incomplete;
      }
      put_u32(out, entry.seeders);
      put_u32(out, entry.completed);
      put_u32(out, entry.leechers);
    }
    return;
  }
  // Anything else: protocol violation. BEP 15 says to ignore, but an error
  // datagram with transaction id 0 is friendlier to diagnose. (The wire
  // server additionally drops datagrams too short to carry a header — see
  // netio::UdpShard — so this reply is never an amplification vector.)
  ++stats_.malformed;
  error_into(0, "malformed datagram", out);
}

}  // namespace btpub
