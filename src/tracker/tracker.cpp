#include "tracker/tracker.hpp"

#include <stdexcept>

#include "bencode/bencode.hpp"

namespace btpub {

Tracker::Tracker(TrackerConfig config, Rng rng)
    : config_(std::move(config)) {
  if (config_.max_query_gap < config_.min_query_gap) {
    throw std::invalid_argument("Tracker: max_query_gap < min_query_gap");
  }
  enforced_gap_ = config_.min_query_gap +
                  static_cast<SimDuration>(
                      rng.uniform() *
                      static_cast<double>(config_.max_query_gap -
                                          config_.min_query_gap));
  sample_seed_ = rng.next();
}

void Tracker::host_swarm(Swarm& swarm) {
  if (!swarm.finalized()) {
    throw std::logic_error("Tracker: swarm must be finalized before hosting");
  }
  swarms_.insert(swarm.infohash(), &swarm);
}

bool Tracker::hosts(const Sha1Digest& infohash) const {
  return swarms_.contains(infohash);
}

bool Tracker::is_blacklisted(IpAddress client) const {
  const Shard& shard = shard_for(client.value());
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.blacklist.contains(client.value());
}

void Tracker::reset_state(std::uint64_t sample_seed) {
  sample_seed_ = sample_seed;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.last_query.clear();
    shard.violations.clear();
    shard.blacklist.clear();
  }
}

Tracker::Stats Tracker::stats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.queries += shard.stats.queries;
    total.rejected_rate += shard.stats.rejected_rate;
    total.rejected_blacklist += shard.stats.rejected_blacklist;
    total.rejected_unknown += shard.stats.rejected_unknown;
  }
  return total;
}

std::string Tracker::handle_get(std::string_view query_string) {
  const auto request = parse_query_string(query_string);
  AnnounceReply reply;
  std::string body;
  if (!request) {
    reply.ok = false;
    reply.failure_reason = "malformed request";
    encode_announce_reply_into(reply, body);
    return body;
  }
  AnnounceScratch scratch;
  announce_into(*request, reply, scratch);
  encode_announce_reply_into(reply, body);
  return body;
}

AnnounceReply Tracker::announce(const AnnounceRequest& request) {
  AnnounceReply reply;
  AnnounceScratch scratch;
  announce_into(request, reply, scratch);
  return reply;
}

void Tracker::announce_into(const AnnounceRequest& request, AnnounceReply& reply,
                            AnnounceScratch& scratch) {
  const std::uint32_t client_ip = request.client.ip.value();
  Shard& shard = shard_for(client_ip);
  reply.ok = false;
  reply.failure_reason.clear();
  reply.interval = enforced_gap_;
  reply.complete = 0;
  reply.incomplete = 0;
  reply.peers.clear();

  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.stats.queries;

    if (shard.blacklist.contains(client_ip)) {
      ++shard.stats.rejected_blacklist;
      reply.failure_reason = "client banned";
      return;
    }

    const ClientKey key{client_ip, request.infohash};
    const auto last = shard.last_query.find(key);
    if (last != shard.last_query.end() &&
        request.now - last->second < enforced_gap_) {
      ++shard.stats.rejected_rate;
      auto& count = shard.violations[client_ip];
      if (++count >= config_.blacklist_after) {
        shard.blacklist.insert(client_ip);
      }
      reply.failure_reason = "slow down";
      return;
    }
    shard.last_query[key] = request.now;
  }

  Swarm* const found = swarms_.find(request.infohash);
  if (found == nullptr) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.stats.rejected_unknown;
    reply.failure_reason = "unregistered torrent";
    return;
  }

  Swarm& swarm = *found;
  const SwarmCounts counts = swarm.counts_at(request.now);
  reply.ok = true;
  reply.complete = counts.seeders;
  reply.incomplete = counts.leechers;
  const std::size_t want = std::min(request.numwant, config_.max_numwant);
  // Stateless sampling stream: the draw is a pure function of the query
  // identity, so replies do not depend on announce ordering across swarms.
  Rng sample_rng(derive_seed(
      sample_seed_,
      static_cast<std::uint64_t>(std::hash<Sha1Digest>{}(request.infohash)),
      static_cast<std::uint64_t>(request.now), client_ip));
  swarm.sample_peers(request.now, want, sample_rng, scratch.sampled,
                     scratch.sample);
  reply.peers.reserve(scratch.sampled.size());
  for (const PeerSession* session : scratch.sampled) {
    reply.peers.push_back(session->endpoint);
  }
}

std::optional<Tracker::ScrapeCounts> Tracker::scrape_counts(
    const Sha1Digest& infohash, SimTime now) {
  Swarm* const swarm = swarms_.find(infohash);
  if (swarm == nullptr) return std::nullopt;
  const SwarmCounts counts = swarm->counts_at(now);
  ScrapeCounts out;
  out.complete = static_cast<std::uint32_t>(counts.seeders);
  out.incomplete = static_cast<std::uint32_t>(counts.leechers);
  out.downloaded = static_cast<std::uint32_t>(swarm->session_count());
  return out;
}

std::string Tracker::scrape(const Sha1Digest& infohash, SimTime now) {
  bencode::Dict files;
  if (const auto counts = scrape_counts(infohash, now)) {
    bencode::Dict entry;
    entry.emplace("complete", static_cast<std::int64_t>(counts->complete));
    entry.emplace("incomplete", static_cast<std::int64_t>(counts->incomplete));
    entry.emplace("downloaded", static_cast<std::int64_t>(counts->downloaded));
    files.emplace(
        std::string(reinterpret_cast<const char*>(infohash.bytes.data()),
                    infohash.bytes.size()),
        bencode::Value(std::move(entry)));
  }
  bencode::Dict root;
  root.emplace("files", bencode::Value(std::move(files)));
  return bencode::encode(bencode::Value(std::move(root)));
}

}  // namespace btpub
