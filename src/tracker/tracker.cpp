#include "tracker/tracker.hpp"

#include <stdexcept>

#include "bencode/bencode.hpp"

namespace btpub {

Tracker::Tracker(TrackerConfig config, Rng rng)
    : config_(std::move(config)), rng_(rng) {
  if (config_.max_query_gap < config_.min_query_gap) {
    throw std::invalid_argument("Tracker: max_query_gap < min_query_gap");
  }
  enforced_gap_ = config_.min_query_gap +
                  static_cast<SimDuration>(
                      rng_.uniform() *
                      static_cast<double>(config_.max_query_gap -
                                          config_.min_query_gap));
}

void Tracker::host_swarm(Swarm& swarm) {
  if (!swarm.finalized()) {
    throw std::logic_error("Tracker: swarm must be finalized before hosting");
  }
  swarms_[swarm.infohash()] = &swarm;
}

bool Tracker::hosts(const Sha1Digest& infohash) const {
  return swarms_.contains(infohash);
}

bool Tracker::is_blacklisted(IpAddress client) const {
  return blacklist_.contains(client.value());
}

void Tracker::reset_state(Rng rng) {
  rng_ = rng;
  last_query_.clear();
  violations_.clear();
  blacklist_.clear();
}

std::string Tracker::handle_get(std::string_view query_string) {
  const auto request = parse_query_string(query_string);
  AnnounceReply reply;
  if (!request) {
    reply.ok = false;
    reply.failure_reason = "malformed request";
    return encode_announce_reply(reply);
  }
  return encode_announce_reply(announce(*request));
}

AnnounceReply Tracker::announce(const AnnounceRequest& request) {
  ++stats_.queries;
  AnnounceReply reply;
  reply.interval = enforced_gap_;

  if (blacklist_.contains(request.client.ip.value())) {
    ++stats_.rejected_blacklist;
    reply.ok = false;
    reply.failure_reason = "client banned";
    return reply;
  }

  const ClientKey key{request.client.ip.value(), request.infohash};
  const auto last = last_query_.find(key);
  if (last != last_query_.end() && request.now - last->second < enforced_gap_) {
    ++stats_.rejected_rate;
    auto& count = violations_[request.client.ip.value()];
    if (++count >= config_.blacklist_after) {
      blacklist_.insert(request.client.ip.value());
    }
    reply.ok = false;
    reply.failure_reason = "slow down";
    return reply;
  }
  last_query_[key] = request.now;

  const auto it = swarms_.find(request.infohash);
  if (it == swarms_.end()) {
    ++stats_.rejected_unknown;
    reply.ok = false;
    reply.failure_reason = "unregistered torrent";
    return reply;
  }

  Swarm& swarm = *it->second;
  const SwarmCounts counts = swarm.counts_at(request.now);
  reply.ok = true;
  reply.complete = counts.seeders;
  reply.incomplete = counts.leechers;
  const std::size_t want = std::min(request.numwant, config_.max_numwant);
  for (const PeerSession* session : swarm.sample_peers(request.now, want, rng_)) {
    reply.peers.push_back(session->endpoint);
  }
  return reply;
}

std::string Tracker::scrape(const Sha1Digest& infohash, SimTime now) {
  bencode::Dict files;
  const auto it = swarms_.find(infohash);
  if (it != swarms_.end()) {
    const SwarmCounts counts = it->second->counts_at(now);
    bencode::Dict entry;
    entry.emplace("complete", static_cast<std::int64_t>(counts.seeders));
    entry.emplace("incomplete", static_cast<std::int64_t>(counts.leechers));
    entry.emplace("downloaded",
                  static_cast<std::int64_t>(it->second->session_count()));
    files.emplace(
        std::string(reinterpret_cast<const char*>(infohash.bytes.data()),
                    infohash.bytes.size()),
        bencode::Value(std::move(entry)));
  }
  bencode::Dict root;
  root.emplace("files", bencode::Value(std::move(files)));
  return bencode::encode(bencode::Value(std::move(root)));
}

}  // namespace btpub
