#include "tracker/udp.hpp"

#include <cstring>

namespace btpub {
namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffff));
}

std::uint16_t get_u16(std::string_view d, std::size_t at) {
  return static_cast<std::uint16_t>(
      (static_cast<unsigned char>(d[at]) << 8) |
      static_cast<unsigned char>(d[at + 1]));
}

std::uint32_t get_u32(std::string_view d, std::size_t at) {
  return (static_cast<std::uint32_t>(get_u16(d, at)) << 16) | get_u16(d, at + 2);
}

std::uint64_t get_u64(std::string_view d, std::size_t at) {
  return (static_cast<std::uint64_t>(get_u32(d, at)) << 32) | get_u32(d, at + 4);
}

}  // namespace

// ---- connect --------------------------------------------------------------

std::string UdpConnectRequest::encode() const {
  std::string out;
  encode_into(out);
  return out;
}

void UdpConnectRequest::encode_into(std::string& out) const {
  out.clear();
  out.reserve(16);
  put_u64(out, kUdpProtocolMagic);
  put_u32(out, static_cast<std::uint32_t>(UdpAction::Connect));
  put_u32(out, transaction_id);
}

std::optional<UdpConnectRequest> UdpConnectRequest::decode(
    std::string_view datagram) {
  if (datagram.size() != 16) return std::nullopt;
  if (get_u64(datagram, 0) != kUdpProtocolMagic) return std::nullopt;
  if (get_u32(datagram, 8) != static_cast<std::uint32_t>(UdpAction::Connect)) {
    return std::nullopt;
  }
  UdpConnectRequest req;
  req.transaction_id = get_u32(datagram, 12);
  return req;
}

std::string UdpConnectResponse::encode() const {
  std::string out;
  encode_into(out);
  return out;
}

void UdpConnectResponse::encode_into(std::string& out) const {
  out.clear();
  out.reserve(16);
  put_u32(out, static_cast<std::uint32_t>(UdpAction::Connect));
  put_u32(out, transaction_id);
  put_u64(out, connection_id);
}

std::optional<UdpConnectResponse> UdpConnectResponse::decode(
    std::string_view datagram) {
  if (datagram.size() != 16) return std::nullopt;
  if (get_u32(datagram, 0) != static_cast<std::uint32_t>(UdpAction::Connect)) {
    return std::nullopt;
  }
  UdpConnectResponse res;
  res.transaction_id = get_u32(datagram, 4);
  res.connection_id = get_u64(datagram, 8);
  return res;
}

// ---- announce -------------------------------------------------------------

std::string UdpAnnounceRequest::encode() const {
  std::string out;
  encode_into(out);
  return out;
}

void UdpAnnounceRequest::encode_into(std::string& out) const {
  out.clear();
  out.reserve(98);
  put_u64(out, connection_id);
  put_u32(out, static_cast<std::uint32_t>(UdpAction::Announce));
  put_u32(out, transaction_id);
  out.append(reinterpret_cast<const char*>(infohash.bytes.data()), 20);
  out.append(reinterpret_cast<const char*>(peer_id.data()), 20);
  put_u64(out, downloaded);
  put_u64(out, left);
  put_u64(out, uploaded);
  put_u32(out, event);
  put_u32(out, ip);
  put_u32(out, key);
  put_u32(out, num_want);
  put_u16(out, port);
}

std::optional<UdpAnnounceRequest> UdpAnnounceRequest::decode(
    std::string_view datagram) {
  if (datagram.size() != 98) return std::nullopt;
  if (get_u32(datagram, 8) != static_cast<std::uint32_t>(UdpAction::Announce)) {
    return std::nullopt;
  }
  UdpAnnounceRequest req;
  req.connection_id = get_u64(datagram, 0);
  req.transaction_id = get_u32(datagram, 12);
  std::memcpy(req.infohash.bytes.data(), datagram.data() + 16, 20);
  std::memcpy(req.peer_id.data(), datagram.data() + 36, 20);
  req.downloaded = get_u64(datagram, 56);
  req.left = get_u64(datagram, 64);
  req.uploaded = get_u64(datagram, 72);
  req.event = get_u32(datagram, 80);
  req.ip = get_u32(datagram, 84);
  req.key = get_u32(datagram, 88);
  req.num_want = get_u32(datagram, 92);
  req.port = get_u16(datagram, 96);
  return req;
}

std::string UdpAnnounceResponse::encode() const {
  std::string out;
  encode_into(out);
  return out;
}

void UdpAnnounceResponse::encode_into(std::string& out) const {
  out.clear();
  out.reserve(20 + peers.size() * 6);
  put_u32(out, static_cast<std::uint32_t>(UdpAction::Announce));
  put_u32(out, transaction_id);
  put_u32(out, interval);
  put_u32(out, leechers);
  put_u32(out, seeders);
  for (const Endpoint& p : peers) {
    put_u32(out, p.ip.value());
    put_u16(out, p.port);
  }
}

std::optional<UdpAnnounceResponse> UdpAnnounceResponse::decode(
    std::string_view datagram) {
  if (datagram.size() < 20 || (datagram.size() - 20) % 6 != 0) {
    return std::nullopt;
  }
  if (get_u32(datagram, 0) != static_cast<std::uint32_t>(UdpAction::Announce)) {
    return std::nullopt;
  }
  UdpAnnounceResponse res;
  res.transaction_id = get_u32(datagram, 4);
  res.interval = get_u32(datagram, 8);
  res.leechers = get_u32(datagram, 12);
  res.seeders = get_u32(datagram, 16);
  for (std::size_t at = 20; at < datagram.size(); at += 6) {
    Endpoint peer;
    peer.ip = IpAddress(get_u32(datagram, at));
    peer.port = get_u16(datagram, at + 4);
    res.peers.push_back(peer);
  }
  return res;
}

// ---- scrape ---------------------------------------------------------------

std::string UdpScrapeRequest::encode() const {
  std::string out;
  encode_into(out);
  return out;
}

void UdpScrapeRequest::encode_into(std::string& out) const {
  out.clear();
  out.reserve(16 + infohashes.size() * 20);
  put_u64(out, connection_id);
  put_u32(out, static_cast<std::uint32_t>(UdpAction::Scrape));
  put_u32(out, transaction_id);
  for (const Sha1Digest& infohash : infohashes) {
    out.append(reinterpret_cast<const char*>(infohash.bytes.data()), 20);
  }
}

std::optional<UdpScrapeRequest> UdpScrapeRequest::decode(
    std::string_view datagram) {
  if (datagram.size() < 36 || (datagram.size() - 16) % 20 != 0) {
    return std::nullopt;
  }
  if (get_u32(datagram, 8) != static_cast<std::uint32_t>(UdpAction::Scrape)) {
    return std::nullopt;
  }
  const std::size_t n = (datagram.size() - 16) / 20;
  if (n > kMaxInfohashes) return std::nullopt;
  UdpScrapeRequest req;
  req.connection_id = get_u64(datagram, 0);
  req.transaction_id = get_u32(datagram, 12);
  req.infohashes.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(req.infohashes[i].bytes.data(), datagram.data() + 16 + i * 20,
                20);
  }
  return req;
}

std::string UdpScrapeResponse::encode() const {
  std::string out;
  encode_into(out);
  return out;
}

void UdpScrapeResponse::encode_into(std::string& out) const {
  out.clear();
  out.reserve(8 + entries.size() * 12);
  put_u32(out, static_cast<std::uint32_t>(UdpAction::Scrape));
  put_u32(out, transaction_id);
  for (const UdpScrapeEntry& entry : entries) {
    put_u32(out, entry.seeders);
    put_u32(out, entry.completed);
    put_u32(out, entry.leechers);
  }
}

std::optional<UdpScrapeResponse> UdpScrapeResponse::decode(
    std::string_view datagram) {
  if (datagram.size() < 8 || (datagram.size() - 8) % 12 != 0) {
    return std::nullopt;
  }
  if (get_u32(datagram, 0) != static_cast<std::uint32_t>(UdpAction::Scrape)) {
    return std::nullopt;
  }
  UdpScrapeResponse res;
  res.transaction_id = get_u32(datagram, 4);
  for (std::size_t at = 8; at < datagram.size(); at += 12) {
    UdpScrapeEntry entry;
    entry.seeders = get_u32(datagram, at);
    entry.completed = get_u32(datagram, at + 4);
    entry.leechers = get_u32(datagram, at + 8);
    res.entries.push_back(entry);
  }
  return res;
}

// ---- error ----------------------------------------------------------------

std::string UdpErrorResponse::encode() const {
  std::string out;
  encode_into(out);
  return out;
}

void UdpErrorResponse::encode_into(std::string& out) const {
  out.clear();
  out.reserve(8 + message.size());
  put_u32(out, static_cast<std::uint32_t>(UdpAction::Error));
  put_u32(out, transaction_id);
  out += message;
}

std::optional<UdpErrorResponse> UdpErrorResponse::decode(
    std::string_view datagram) {
  if (datagram.size() < 8) return std::nullopt;
  if (get_u32(datagram, 0) != static_cast<std::uint32_t>(UdpAction::Error)) {
    return std::nullopt;
  }
  UdpErrorResponse res;
  res.transaction_id = get_u32(datagram, 4);
  res.message = std::string(datagram.substr(8));
  return res;
}

std::optional<UdpAction> udp_response_action(std::string_view datagram) {
  if (datagram.size() < 4) return std::nullopt;
  const std::uint32_t action = get_u32(datagram, 0);
  if (action > static_cast<std::uint32_t>(UdpAction::Error)) return std::nullopt;
  return static_cast<UdpAction>(action);
}

std::optional<std::uint32_t> udp_response_transaction_id(
    std::string_view datagram) {
  if (datagram.size() < 8) return std::nullopt;
  return get_u32(datagram, 4);
}

}  // namespace btpub
