#include "geo/geo_db.hpp"

#include <cassert>
#include <stdexcept>

namespace btpub {

std::string_view to_string(IspType type) {
  switch (type) {
    case IspType::HostingProvider:
      return "Hosting Provider";
    case IspType::CommercialIsp:
      return "Commercial ISP";
  }
  return "?";
}

IspId GeoDb::add_isp(std::string name, IspType type, std::string country) {
  if (isp_by_name_.contains(name)) {
    throw std::invalid_argument("GeoDb: duplicate ISP name '" + name + "'");
  }
  const IspId id = static_cast<IspId>(isps_.size());
  isp_by_name_.emplace(name, id);
  isps_.push_back(IspInfo{id, std::move(name), type, std::move(country)});
  return id;
}

std::uint32_t GeoDb::intern_city(std::string city) {
  const auto it = city_index_.find(city);
  if (it != city_index_.end()) return it->second;
  const auto index = static_cast<std::uint32_t>(cities_.size());
  city_index_.emplace(city, index);
  cities_.push_back(std::move(city));
  return index;
}

void GeoDb::add_block(CidrBlock block, IspId isp, std::string city) {
  if (isp >= isps_.size()) throw std::invalid_argument("GeoDb: unknown ISP id");
  BlockRecord rec;
  rec.isp = isp;
  rec.city_index = intern_city(std::move(city));
  by_length_[static_cast<std::size_t>(block.length())]
      .insert_or_assign(block.base().value(), rec);
  ++n_blocks_;
}

std::optional<GeoLocation> GeoDb::lookup(IpAddress ip) const {
  for (int len = 32; len >= 0; --len) {
    const auto& table = by_length_[static_cast<std::size_t>(len)];
    if (table.empty()) continue;
    const std::uint32_t mask = len == 0 ? 0u : (~std::uint32_t{0}) << (32 - len);
    const auto it = table.find(ip.value() & mask);
    if (it == table.end()) continue;
    const BlockRecord& rec = it->second;
    const IspInfo& info = isps_[rec.isp];
    GeoLocation loc;
    loc.isp = rec.isp;
    loc.isp_name = info.name;
    loc.isp_type = info.type;
    loc.country = info.country;
    loc.city = cities_[rec.city_index];
    return loc;
  }
  return std::nullopt;
}

const IspInfo& GeoDb::isp(IspId id) const {
  assert(id < isps_.size());
  return isps_[id];
}

std::optional<IspId> GeoDb::find_isp(std::string_view name) const {
  const auto it = isp_by_name_.find(std::string(name));
  if (it == isp_by_name_.end()) return std::nullopt;
  return it->second;
}

}  // namespace btpub
