// isp_catalog.hpp — builds the synthetic Internet the ecosystem lives in.
//
// The catalog registers the ISPs that actually appear in the paper's
// Tables 2 and 3 (OVH, Comcast, tzulo, FDCservers, 4RWEB, SoftLayer, ...)
// plus a long tail of generic eyeball ISPs, and carves /16 blocks for each
// with the structural contrast the paper measures:
//   * hosting providers: few /16s, one or two data-center cities;
//   * commercial ISPs: many /16s scattered over many cities.
// It also provides IP allocation policies: stable server addresses for
// rented boxes and churning residential addresses for home users.
#pragma once

#include <string>
#include <vector>

#include "geo/geo_db.hpp"
#include "net/ip.hpp"
#include "util/rng.hpp"

namespace btpub {

/// Allocation handle for one ISP's address space.
class IpPool {
 public:
  IpPool() = default;
  IpPool(IspId isp, std::vector<CidrBlock> blocks);

  IspId isp() const noexcept { return isp_; }
  const std::vector<CidrBlock>& blocks() const noexcept { return blocks_; }

  /// A stable server address: sequential allocation from the first blocks,
  /// so a hosting customer keeps one address for its lifetime and servers
  /// cluster into few /16s. Distinct across calls.
  IpAddress allocate_server();

  /// A residential address: uniform over all blocks. Dynamic-IP churn is
  /// modelled by calling this again for the same user.
  IpAddress random_residential(Rng& rng) const;

 private:
  IspId isp_ = kUnknownIsp;
  std::vector<CidrBlock> blocks_;
  std::uint64_t next_server_offset_ = 1;  // skip .0
};

/// The assembled synthetic Internet.
class IspCatalog {
 public:
  /// Builds the standard catalog used by all experiments. `extra_isps` adds
  /// generic eyeball ISPs for the downloader long tail.
  static IspCatalog standard(std::size_t extra_isps = 40);

  const GeoDb& db() const noexcept { return db_; }

  /// Pool for a named ISP; throws std::out_of_range when absent.
  IpPool& pool(std::string_view isp_name);
  const IpPool& pool(std::string_view isp_name) const;
  bool has(std::string_view isp_name) const;

  /// All hosting-provider / commercial pools (for random placement).
  const std::vector<std::string>& hosting_names() const noexcept { return hosting_names_; }
  const std::vector<std::string>& commercial_names() const noexcept {
    return commercial_names_;
  }
  /// Generic eyeball ISPs for the downloader population.
  const std::vector<std::string>& eyeball_names() const noexcept { return eyeball_names_; }

 private:
  /// Registers one ISP and carves `n_blocks` /16s over `n_cities` cities.
  void add(const std::string& name, IspType type, const std::string& country,
           std::size_t n_blocks, std::size_t n_cities,
           const std::vector<std::string>& city_names = {});

  GeoDb db_;
  std::vector<IpPool> pools_;
  std::unordered_map<std::string, std::size_t> pool_index_;
  std::vector<std::string> hosting_names_;
  std::vector<std::string> commercial_names_;
  std::vector<std::string> eyeball_names_;
  std::uint32_t next_slash16_ = (20u << 8);  // start carving at 20.0.0.0/16
};

}  // namespace btpub
