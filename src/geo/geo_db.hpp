// geo_db.hpp — the MaxMind-GeoIP substitute.
//
// The paper maps every publisher and downloader IP to an ISP and a
// geographical location with the commercial MaxMind database. We build a
// synthetic database with the same query interface (longest-prefix match
// from IP to {ISP, ISP type, country, city}) over address space we allocate
// ourselves, which preserves the contrasts the paper measures: hosting
// providers own a handful of /16s in one or two cities, residential ISPs
// own hundreds of prefixes across hundreds of cities.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ip.hpp"

namespace btpub {

/// Whether an autonomous system sells servers or eyeball connectivity —
/// the axis the paper's Tables 2 and 3 pivot on.
enum class IspType : std::uint8_t {
  HostingProvider,
  CommercialIsp,
};

std::string_view to_string(IspType type);

using IspId = std::uint32_t;
inline constexpr IspId kUnknownIsp = ~IspId{0};

/// Static facts about one ISP.
struct IspInfo {
  IspId id = kUnknownIsp;
  std::string name;
  IspType type = IspType::CommercialIsp;
  std::string country;
};

/// Result of a GeoIP lookup.
struct GeoLocation {
  IspId isp = kUnknownIsp;
  std::string_view isp_name;
  IspType isp_type = IspType::CommercialIsp;
  std::string_view country;
  std::string_view city;
};

/// Longest-prefix-match IP → location database.
class GeoDb {
 public:
  /// Registers an ISP; names must be unique. Returns its id.
  IspId add_isp(std::string name, IspType type, std::string country);

  /// Maps a CIDR block to (isp, city). Blocks may nest; the longest prefix
  /// wins at lookup time. The ISP id must exist.
  void add_block(CidrBlock block, IspId isp, std::string city);

  /// Longest-prefix lookup; nullopt when no block covers the address.
  std::optional<GeoLocation> lookup(IpAddress ip) const;

  const IspInfo& isp(IspId id) const;
  /// nullopt when no ISP has that name.
  std::optional<IspId> find_isp(std::string_view name) const;
  std::size_t isp_count() const noexcept { return isps_.size(); }
  std::size_t block_count() const noexcept { return n_blocks_; }

 private:
  struct BlockRecord {
    IspId isp = kUnknownIsp;
    std::uint32_t city_index = 0;
  };

  std::vector<IspInfo> isps_;
  std::unordered_map<std::string, IspId> isp_by_name_;
  std::vector<std::string> cities_;
  std::unordered_map<std::string, std::uint32_t> city_index_;
  // One exact-match table per prefix length; lookup probes /32 .. /0.
  std::array<std::unordered_map<std::uint32_t, BlockRecord>, 33> by_length_{};
  std::size_t n_blocks_ = 0;

  std::uint32_t intern_city(std::string city);
};

}  // namespace btpub
