#include "geo/isp_catalog.hpp"

#include <cassert>
#include <stdexcept>

namespace btpub {

IpPool::IpPool(IspId isp, std::vector<CidrBlock> blocks)
    : isp_(isp), blocks_(std::move(blocks)) {}

IpAddress IpPool::allocate_server() {
  assert(!blocks_.empty());
  // Stripe across the provider's blocks: racks live in every data centre,
  // so rented servers span all of its /16s and cities (the contrast
  // Table 3 measures against residential ISPs).
  const std::uint64_t index = next_server_offset_++;
  const CidrBlock& block = blocks_[index % blocks_.size()];
  const std::uint64_t offset = 1 + index / blocks_.size();
  if (offset >= block.size()) {
    throw std::runtime_error("IpPool: server address space exhausted");
  }
  return block.at(offset);
}

IpAddress IpPool::random_residential(Rng& rng) const {
  assert(!blocks_.empty());
  const CidrBlock& block = blocks_[rng.index(blocks_.size())];
  // Skip network/broadcast-looking offsets for cosmetic realism.
  const auto offset = static_cast<std::uint64_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(block.size()) - 2));
  return block.at(offset);
}

void IspCatalog::add(const std::string& name, IspType type,
                     const std::string& country, std::size_t n_blocks,
                     std::size_t n_cities,
                     const std::vector<std::string>& city_names) {
  assert(n_blocks > 0 && n_cities > 0);
  const IspId id = db_.add_isp(name, type, country);
  std::vector<CidrBlock> blocks;
  blocks.reserve(n_blocks);
  for (std::size_t i = 0; i < n_blocks; ++i) {
    const CidrBlock block(IpAddress(next_slash16_ << 16), 16);
    ++next_slash16_;
    std::string city;
    if (i < city_names.size()) {
      city = city_names[i % city_names.size()];
    } else if (!city_names.empty()) {
      city = city_names[i % city_names.size()];
    } else {
      city = name + "-city-" + std::to_string(i % n_cities);
    }
    // When fewer named cities than blocks, cycle; when more cities than
    // blocks requested, n_cities governs the synthetic names above.
    db_.add_block(block, id, std::move(city));
    blocks.push_back(block);
  }
  pool_index_.emplace(name, pools_.size());
  pools_.emplace_back(id, std::move(blocks));
  switch (type) {
    case IspType::HostingProvider:
      hosting_names_.push_back(name);
      break;
    case IspType::CommercialIsp:
      commercial_names_.push_back(name);
      break;
  }
}

IspCatalog IspCatalog::standard(std::size_t extra_isps) {
  IspCatalog cat;
  // --- Hosting providers (paper: Table 2/3 actors). Few /16s, data-center
  // cities only. OVH is deliberately the largest, with its European DCs.
  cat.add("OVH", IspType::HostingProvider, "FR", 7, 4,
          {"Roubaix", "Paris", "Gravelines", "Strasbourg", "Roubaix", "Roubaix",
           "Paris"});
  cat.add("SoftLayer Tech.", IspType::HostingProvider, "US", 8, 3,
          {"Dallas", "Seattle", "Washington"});
  cat.add("FDCservers", IspType::HostingProvider, "US", 4, 2, {"Chicago", "Denver"});
  cat.add("tzulo", IspType::HostingProvider, "US", 3, 2, {"Chicago", "Los Angeles"});
  cat.add("4RWEB", IspType::HostingProvider, "RU", 3, 2, {"Moscow", "Moscow"});
  cat.add("Keyweb", IspType::HostingProvider, "DE", 3, 1, {"Erfurt"});
  cat.add("NetDirect", IspType::HostingProvider, "DE", 3, 2, {"Frankfurt", "Berlin"});
  cat.add("NetWork Operations Center", IspType::HostingProvider, "US", 4, 2,
          {"Scranton", "Philadelphia"});
  cat.add("LeaseWeb", IspType::HostingProvider, "NL", 4, 2, {"Amsterdam", "Haarlem"});

  // --- Commercial / eyeball ISPs. Many /16s, many cities.
  cat.add("Comcast", IspType::CommercialIsp, "US", 300, 400);
  cat.add("Road Runner", IspType::CommercialIsp, "US", 200, 250);
  cat.add("Virgin Media", IspType::CommercialIsp, "GB", 120, 150);
  cat.add("SBC", IspType::CommercialIsp, "US", 150, 200);
  cat.add("Verizon", IspType::CommercialIsp, "US", 200, 250);
  cat.add("Telefonica", IspType::CommercialIsp, "ES", 150, 180);
  cat.add("Jazz Telecom.", IspType::CommercialIsp, "ES", 60, 80);
  cat.add("Open Computer Network", IspType::CommercialIsp, "JP", 100, 120);
  cat.add("Telecom Italia", IspType::CommercialIsp, "IT", 140, 160);
  cat.add("Romania DS", IspType::CommercialIsp, "RO", 50, 60);
  cat.add("MTT Network", IspType::CommercialIsp, "RU", 40, 50);
  cat.add("NIB", IspType::CommercialIsp, "DK", 30, 40);
  cat.add("Cosema", IspType::CommercialIsp, "SE", 20, 30);
  cat.add("Comcor-TV", IspType::CommercialIsp, "RU", 30, 40);

  // --- Long tail of eyeball ISPs for the download population.
  static constexpr const char* kCountries[] = {"US", "GB", "DE", "FR", "ES", "IT",
                                               "NL", "SE", "PL", "BR", "CA", "AU",
                                               "JP", "KR", "IN", "RU"};
  for (std::size_t i = 0; i < extra_isps; ++i) {
    const std::string name = "EyeballNet-" + std::to_string(i);
    const std::string country = kCountries[i % std::size(kCountries)];
    cat.add(name, IspType::CommercialIsp, country, 12, 20);
    cat.eyeball_names_.push_back(name);
  }
  // The named commercial ISPs also serve downloaders.
  for (const auto& name : {"Comcast", "Road Runner", "Virgin Media", "SBC",
                           "Verizon", "Telefonica", "Jazz Telecom.",
                           "Open Computer Network", "Telecom Italia",
                           "Romania DS", "MTT Network", "NIB", "Cosema",
                           "Comcor-TV"}) {
    cat.eyeball_names_.emplace_back(name);
  }
  return cat;
}

IpPool& IspCatalog::pool(std::string_view isp_name) {
  const auto it = pool_index_.find(std::string(isp_name));
  if (it == pool_index_.end()) {
    throw std::out_of_range("IspCatalog: unknown ISP '" + std::string(isp_name) + "'");
  }
  return pools_[it->second];
}

const IpPool& IspCatalog::pool(std::string_view isp_name) const {
  const auto it = pool_index_.find(std::string(isp_name));
  if (it == pool_index_.end()) {
    throw std::out_of_range("IspCatalog: unknown ISP '" + std::string(isp_name) + "'");
  }
  return pools_[it->second];
}

bool IspCatalog::has(std::string_view isp_name) const {
  return pool_index_.contains(std::string(isp_name));
}

}  // namespace btpub
