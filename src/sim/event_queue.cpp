#include "sim/event_queue.hpp"

#include <utility>

namespace btpub {

void EventQueue::schedule_at(SimTime at, Callback cb) {
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(cb)});
}

void EventQueue::schedule_in(SimDuration delay, Callback cb) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(cb));
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately — but stay clean and copy the handle.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++dispatched_;
  ev.cb();
  return true;
}

void EventQueue::run() {
  while (step()) {
  }
}

void EventQueue::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace btpub
