#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace btpub {

void EventQueue::schedule_at(SimTime at, Callback cb) {
  if (at < now_) at = now_;
  ++callbacks_scheduled_;
  queue_.push(Event{at, next_seq_++, std::move(cb)});
}

void EventQueue::schedule_in(SimDuration delay, Callback cb) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(cb));
}

void EventQueue::schedule_typed(SimTime at, const TypedEvent& event) {
  if (at < now_) at = now_;
  ++typed_scheduled_;
  typed_queue_.push(TypedEntry{at, next_seq_++, event});
}

bool EventQueue::typed_is_next() const noexcept {
  if (typed_queue_.empty()) return false;
  if (queue_.empty()) return true;
  const TypedEntry& t = typed_queue_.top();
  const Event& c = queue_.top();
  if (t.at != c.at) return t.at < c.at;
  return t.seq < c.seq;  // the shared counter interleaves the lanes FIFO
}

bool EventQueue::step() {
  if (typed_is_next()) {
    TypedEntry entry = typed_queue_.top();
    typed_queue_.pop();
    now_ = entry.at;
    ++dispatched_;
    // Lazy cursor: re-arm the next occurrence before dispatch so the
    // handler observes a consistent pending() and may itself reschedule.
    if (entry.event.every > 0 && entry.at + entry.event.every < entry.event.until) {
      schedule_typed(entry.at + entry.event.every, entry.event);
    }
    if (!typed_handler_) {
      throw std::logic_error("EventQueue: typed event without a handler");
    }
    typed_handler_(entry.event, entry.at);
    return true;
  }
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately — but stay clean and copy the handle.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.at;
  ++dispatched_;
  ev.cb();
  return true;
}

void EventQueue::run() {
  while (step()) {
  }
}

void EventQueue::run_until(SimTime deadline) {
  while (true) {
    SimTime next;
    if (typed_is_next()) {
      next = typed_queue_.top().at;
    } else if (!queue_.empty()) {
      next = queue_.top().at;
    } else {
      break;
    }
    if (next > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace btpub
