// event_queue.hpp — minimal discrete-event simulation engine.
//
// The ecosystem driver and the live-monitor example schedule callbacks on a
// simulated clock (publisher "publish" events, crawler RSS polls, tracker
// query ticks). Events at equal timestamps run in scheduling order, which
// keeps runs deterministic.
//
// Two lanes share one clock and one FIFO sequence counter:
//   * the callback lane holds arbitrary std::function closures — flexible,
//     but every entry is a heap allocation;
//   * the typed lane holds plain-old-data TypedEvent records (node joins,
//     node leaves, periodic announces) that a single registered handler
//     consumes. A periodic typed event is a *cursor*: dispatching it at t
//     lazily re-arms the next occurrence at t + every while that stays
//     below its stop time, so a session announcing every 30 minutes for a
//     month costs one pending record, not window/30min closures.
// Interleaving between the lanes is deterministic: the earlier timestamp
// wins, and at equal timestamps the globally earlier scheduling (smaller
// shared sequence number) wins, exactly as if both lanes were one queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "crypto/sha1.hpp"
#include "net/ip.hpp"
#include "util/time.hpp"

namespace btpub {

/// One allocation-free simulation event. A tagged record rather than a
/// closure: the queue's registered handler switches on `kind`. `every > 0`
/// makes the event a lazy periodic cursor (see header comment).
struct TypedEvent {
  enum class Kind : std::uint8_t {
    NodeJoin,   ///< endpoint joins the DHT overlay
    NodeLeave,  ///< endpoint departs the overlay
    Announce,   ///< endpoint announce_peer-s `infohash`
  };

  Kind kind = Kind::NodeJoin;
  Endpoint endpoint{};
  /// Announce only: the torrent being announced.
  Sha1Digest infohash{};
  /// Re-arm period; 0 = one-shot. A dispatched occurrence at time t
  /// schedules the next at t + every iff t + every < until.
  SimDuration every = 0;
  /// Exclusive stop time for periodic re-arming.
  SimTime until = 0;
};

/// Discrete-event executor over SimTime.
class EventQueue {
 public:
  using Callback = std::function<void()>;
  /// Receives every dispatched typed event with its timestamp.
  using TypedHandler = std::function<void(const TypedEvent&, SimTime)>;

  /// Schedules `cb` at absolute simulated time `at`. Scheduling in the past
  /// (before now()) is clamped to now().
  void schedule_at(SimTime at, Callback cb);
  /// Schedules `cb` `delay` seconds from now.
  void schedule_in(SimDuration delay, Callback cb);

  /// Schedules a typed event at absolute time `at` (clamped to now() like
  /// schedule_at). Dispatch requires a handler: set_typed_handler must have
  /// been called before the first typed event fires.
  void schedule_typed(SimTime at, const TypedEvent& event);
  /// Registers the single consumer of typed events (latest wins).
  void set_typed_handler(TypedHandler handler) {
    typed_handler_ = std::move(handler);
  }

  /// Current simulated time (time of the last dispatched event).
  SimTime now() const noexcept { return now_; }

  /// Runs events until the queue is empty.
  void run();
  /// Runs events with timestamp <= deadline; the clock ends at
  /// max(now, deadline).
  void run_until(SimTime deadline);
  /// Dispatches the single next event (either lane), if any. Returns false
  /// when both lanes are empty.
  bool step();

  /// Pending events across both lanes.
  std::size_t pending() const noexcept {
    return queue_.size() + typed_queue_.size();
  }
  std::size_t pending_callbacks() const noexcept { return queue_.size(); }
  std::size_t pending_typed() const noexcept { return typed_queue_.size(); }
  std::uint64_t dispatched() const noexcept { return dispatched_; }

  /// Counting hooks: total schedule_at/schedule_in calls and total
  /// schedule_typed calls (including lazy re-arms). Tests use these to
  /// prove a path allocates no closures.
  std::uint64_t callbacks_scheduled() const noexcept {
    return callbacks_scheduled_;
  }
  std::uint64_t typed_scheduled() const noexcept { return typed_scheduled_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // tiebreaker: FIFO within a timestamp
    Callback cb;
  };
  struct TypedEntry {
    SimTime at;
    std::uint64_t seq;
    TypedEvent event;
  };
  template <typename E>
  struct Later {
    bool operator()(const E& a, const E& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// True when the typed lane holds the globally next event.
  bool typed_is_next() const noexcept;

  std::priority_queue<Event, std::vector<Event>, Later<Event>> queue_;
  std::priority_queue<TypedEntry, std::vector<TypedEntry>, Later<TypedEntry>>
      typed_queue_;
  TypedHandler typed_handler_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t callbacks_scheduled_ = 0;
  std::uint64_t typed_scheduled_ = 0;
};

}  // namespace btpub
