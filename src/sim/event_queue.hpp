// event_queue.hpp — minimal discrete-event simulation engine.
//
// The ecosystem driver and the live-monitor example schedule callbacks on a
// simulated clock (publisher "publish" events, crawler RSS polls, tracker
// query ticks). Events at equal timestamps run in scheduling order, which
// keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace btpub {

/// Discrete-event executor over SimTime.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute simulated time `at`. Scheduling in the past
  /// (before now()) is clamped to now().
  void schedule_at(SimTime at, Callback cb);
  /// Schedules `cb` `delay` seconds from now.
  void schedule_in(SimDuration delay, Callback cb);

  /// Current simulated time (time of the last dispatched event).
  SimTime now() const noexcept { return now_; }

  /// Runs events until the queue is empty.
  void run();
  /// Runs events with timestamp <= deadline; the clock ends at
  /// max(now, deadline).
  void run_until(SimTime deadline);
  /// Dispatches the single next event, if any. Returns false when empty.
  bool step();

  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t dispatched() const noexcept { return dispatched_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // tiebreaker: FIFO within a timestamp
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace btpub
