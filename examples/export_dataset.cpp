// export_dataset — the data-sharing side of the paper's §7 system: run a
// crawl (or load a cached one) and export it as CSV files that downstream
// tools can analyse — one row per torrent, one per publisher, one per
// (torrent, sighting).
//
// Build & run:   ./build/examples/export_dataset [out_dir] [seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "analysis/groups.hpp"
#include "core/ecosystem.hpp"
#include "util/strings.hpp"

using namespace btpub;

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "btpub-export";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  Ecosystem ecosystem(ScenarioConfig::quick(seed));
  ecosystem.build();
  const Dataset dataset = ecosystem.crawl();
  const IdentityAnalysis identity(dataset, ecosystem.geo(), 40);

  std::filesystem::create_directories(out_dir);

  // --- torrents.csv: one row per crawled torrent. ---
  {
    std::ofstream out(out_dir + "/torrents.csv");
    out << "portal_id,infohash,title,category,language,size_bytes,username,"
           "publisher_ip,publisher_isp,published_at,downloads,removed\n";
    for (std::size_t i = 0; i < dataset.torrent_count(); ++i) {
      const TorrentRecord& r = dataset.torrents[i];
      std::string isp = "";
      if (r.publisher_ip) {
        if (const auto loc = ecosystem.geo().lookup(*r.publisher_ip)) {
          isp = std::string(loc->isp_name);
        }
      }
      out << r.portal_id << ',' << r.infohash.hex() << ','
          << csv_escape(r.title) << ',' << to_string(r.category) << ','
          << to_string(r.language) << ',' << r.size_bytes << ','
          << csv_escape(r.username) << ','
          << (r.publisher_ip ? r.publisher_ip->to_string() : "") << ','
          << csv_escape(isp) << ',' << r.published_at << ','
          << dataset.downloaders[i].size() << ','
          << (r.observed_removed ? 1 : 0) << '\n';
    }
  }

  // --- publishers.csv: aggregated per username. ---
  {
    std::ofstream out(out_dir + "/publishers.csv");
    out << "username,contents,downloads,identified_ips,is_fake,is_top\n";
    for (const UsernameStats& stats : identity.usernames()) {
      out << csv_escape(stats.username) << ',' << stats.content_count << ','
          << stats.download_count << ',' << stats.ips.size() << ','
          << (identity.is_fake(stats.username) ? 1 : 0) << ','
          << (identity.in_group(stats.username, TargetGroup::Top) ? 1 : 0)
          << '\n';
    }
  }

  // --- sightings.csv: publisher presence samples (Appendix-A input). ---
  std::size_t sighting_rows = 0;
  {
    std::ofstream out(out_dir + "/sightings.csv");
    out << "portal_id,time_seconds\n";
    for (std::size_t i = 0; i < dataset.torrent_count(); ++i) {
      for (const SimTime t : dataset.publisher_sightings[i]) {
        out << dataset.torrents[i].portal_id << ',' << t << '\n';
        ++sighting_rows;
      }
    }
  }

  std::printf("exported to %s/: %zu torrents, %zu publishers, %zu sightings\n",
              out_dir.c_str(), dataset.torrent_count(),
              identity.usernames().size(), sighting_rows);
  return 0;
}
