// income_study — "altruistic or profit-driven?" end to end: classify the
// top publishers by business profile (§5.1), inspect the promotion channels
// and HTTP ad-network exchanges, estimate site economics with the
// six-service appraisal panel (§5.3), and total the ecosystem money flows
// (§6).
//
// Build & run:   ./build/examples/income_study [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/classify.hpp"
#include "analysis/income.hpp"
#include "core/ecosystem.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  Ecosystem ecosystem(ScenarioConfig::quick(seed));
  ecosystem.build();
  const Dataset dataset = ecosystem.crawl();
  const IdentityAnalysis identity(dataset, ecosystem.geo(), 40);
  Rng rng(seed);
  const auto classification =
      classify_top_publishers(dataset, identity, ecosystem.websites(), 5, rng);

  // --- Per-publisher profiles. ---
  AsciiTable profiles("Top publishers, classified");
  profiles.header({"username", "class", "promoting URL", "channels",
                   "monetisation", "content", "downloads"});
  for (const PublisherProfile& p : classification.profiles) {
    std::string channels;
    if (p.in_textbox) channels += "textbox ";
    if (p.in_filename) channels += "filename ";
    if (p.in_payload) channels += "payload ";
    if (channels.empty()) channels = "-";
    std::string money;
    if (p.ads) money += "ads ";
    if (p.donations) money += "donations ";
    if (p.vip) money += "vip ";
    if (money.empty()) money = "-";
    profiles.row({p.username, std::string(to_string(p.cls)),
                  p.domain.empty() ? "-" : p.domain, channels, money,
                  std::to_string(p.content_count),
                  std::to_string(p.download_count)});
  }
  profiles.print();

  // --- HTTP header inspection for one promoting site. ---
  for (const PublisherProfile& p : classification.profiles) {
    if (p.domain.empty() || p.ad_networks.empty()) continue;
    std::printf("HTTP exchange with http://www.%s/ (ad-network detection):\n",
                p.domain.c_str());
    for (const HttpHeader& header :
         ecosystem.websites().http_exchange(p.domain)) {
      std::printf("  %s: %s\n", header.name.c_str(), header.value.c_str());
    }
    std::printf("\n");
    break;
  }

  // --- Economics. ---
  AsciiTable incomes("Estimated site economics (six-service panel average)");
  incomes.header({"class", "sites", "median value", "median income/day",
                  "median visits/day"});
  for (const IncomeRow& row : income_table(classification, ecosystem.websites(),
                                           ecosystem.appraisal_panel())) {
    incomes.row({std::string(to_string(row.cls)), std::to_string(row.sites),
                 "$" + humanize(row.value_usd.median),
                 "$" + humanize(row.daily_income_usd.median),
                 humanize(row.daily_visits.median)});
  }
  incomes.print();

  const MoneyFlows flows =
      money_flows(dataset, classification, ecosystem.websites(),
                  ecosystem.appraisal_panel(), ecosystem.geo(), "OVH", 300.0);
  std::printf("ecosystem money flows: publishers earn ~$%s/day from ads; "
              "%zu OVH seedbox(es) cost ~%s EUR/month in hosting.\n",
              humanize(flows.publishers_income_per_day_usd).c_str(),
              flows.hosting_servers,
              humanize(flows.hosting_income_per_month_eur).c_str());
  std::printf("verdict: content publishing here is %s.\n",
              flows.publishers_income_per_day_usd > 0 ? "largely profit-driven"
                                                      : "altruistic");
  return 0;
}
