// fake_detection — the poisoning-index-attack study (§3.3 / §5):
// detect fake publishers from the username<->IP mapping plus moderation
// signals, quantify the attack (content/download shares, affected users),
// validate the detector against generator ground truth, and "download" a
// few suspicious files the way the authors did to see what the payloads
// really are.
//
// Build & run:   ./build/examples/fake_detection [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/groups.hpp"
#include "core/ecosystem.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  Ecosystem ecosystem(ScenarioConfig::quick(seed));
  ecosystem.build();
  const Dataset dataset = ecosystem.crawl();
  const IdentityAnalysis identity(dataset, ecosystem.geo(), 40);

  // --- The attack, as measured from observations only. ---
  const auto fake = identity.share_of(TargetGroup::Fake);
  std::size_t fake_downloads = 0;
  for (const UsernameStats* stats : identity.members(TargetGroup::Fake)) {
    fake_downloads += stats->download_count;
  }
  AsciiTable attack("Poisoning index attack (paper: 30% of content, 25% of "
                    "downloads, millions of victims)");
  attack.header({"fake usernames", "fake farm IPs", "content share",
                 "download share", "download attempts"});
  attack.row({std::to_string(identity.fake_usernames().size()),
              std::to_string(identity.fake_ips().size()),
              percent(fake.content), percent(fake.downloads),
              std::to_string(fake_downloads)});
  const auto breakdown = identity.top_ip_breakdown();
  attack.note("of the top-" + std::to_string(breakdown.considered) +
              " publisher IPs, " + std::to_string(breakdown.multi_username) +
              " map to many usernames (farm pattern; paper: 45%).");
  attack.print();

  // --- Validation against ground truth. ---
  std::size_t tp = 0, fp = 0, fn = 0;
  for (const UsernameStats& stats : identity.usernames()) {
    const auto owner = ecosystem.population().owner_of_username.at(stats.username);
    const bool truly_fake = is_fake(ecosystem.population().by_id(owner).cls);
    const bool flagged = identity.is_fake(stats.username);
    tp += truly_fake && flagged;
    fp += !truly_fake && flagged;
    fn += truly_fake && !flagged;
  }
  AsciiTable validation("Detector vs ground truth");
  validation.header({"true positives", "false positives", "false negatives",
                     "precision", "recall"});
  validation.row(
      {std::to_string(tp), std::to_string(fp), std::to_string(fn),
       percent(tp + fp ? static_cast<double>(tp) / (tp + fp) : 0.0),
       percent(tp + fn ? static_cast<double>(tp) / (tp + fn) : 0.0)});
  validation.print();

  // --- Download a few suspicious files, as the authors did (§5). ---
  // First the paper's experience: weeks after the crawl, virtually every
  // fake listing is already gone. Then the lucky case: fetching right after
  // discovery, before moderation catches up, reveals the payloads.
  std::size_t gone_later = 0, fake_total = 0;
  const SimTime later = dataset.window_end + days(20);
  for (std::size_t i = 0; i < dataset.torrent_count(); ++i) {
    const TorrentRecord& record = dataset.torrents[i];
    if (!identity.is_fake(record.username)) continue;
    ++fake_total;
    if (!ecosystem.portal().download_payload(record.portal_id, later)) {
      ++gone_later;
    }
  }
  std::printf("Weeks after the crawl, %zu/%zu fake listings are already "
              "removed (the paper: 'in most of the cases the content was "
              "not available anymore').\n",
              gone_later, fake_total);

  std::printf("Downloading a sample right after discovery instead...\n");
  std::size_t attempted = 0, gone = 0, antipiracy = 0, malware = 0;
  for (std::size_t i = 0;
       i < dataset.torrent_count() && attempted < 12; ++i) {
    const TorrentRecord& record = dataset.torrents[i];
    if (!identity.is_fake(record.username)) continue;
    ++attempted;
    const auto payload = ecosystem.portal().download_payload(
        record.portal_id, record.first_seen + hours(2));
    if (!payload) {
      ++gone;
      continue;
    }
    switch (*payload) {
      case PayloadKind::FakeAntipiracy:
        ++antipiracy;
        std::printf("  %-44.44s -> broken copy with anti-piracy banners\n",
                    record.title.c_str());
        break;
      case PayloadKind::FakeMalware:
        ++malware;
        std::printf("  %-44.44s -> video pointing at a malware 'player'\n",
                    record.title.c_str());
        break;
      case PayloadKind::Genuine:
        std::printf("  %-44.44s -> genuine content (false positive!)\n",
                    record.title.c_str());
        break;
    }
  }
  std::printf("  attempted %zu downloads: %zu already removed, %zu antipiracy "
              "decoys, %zu malware lures\n",
              attempted, gone, antipiracy, malware);
  return 0;
}
