// quickstart — the 60-second tour of the library:
//   1. build a small simulated BitTorrent ecosystem (portal + tracker +
//      publishers + swarms),
//   2. run the paper's measurement crawler over it,
//   3. run the identity analysis and print who publishes what.
//
// Build & run:   ./build/examples/quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/contribution.hpp"
#include "analysis/groups.hpp"
#include "core/ecosystem.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;

  // 1. A week of a small portal's life.
  Ecosystem ecosystem(ScenarioConfig::quick(seed));
  ecosystem.build();
  std::printf("ecosystem: %zu torrents published by %zu publisher entities\n",
              ecosystem.torrent_count(),
              ecosystem.population().publishers.size());

  // 2. Crawl it exactly as the paper's apparatus would.
  const Dataset dataset = ecosystem.crawl();
  std::printf("crawl: %zu torrents, %zu with an identified publisher IP, "
              "%zu distinct downloader IPs\n\n",
              dataset.torrent_count(), dataset.with_publisher_ip(),
              dataset.distinct_ips_global());

  // 3. Analyse: who publishes, and how skewed is it?
  const IdentityAnalysis identity(dataset, ecosystem.geo(), 40);
  const std::vector<double> xs{3, 10, 50, 100};
  const ContributionCurve curve = contribution_curve(identity, xs);

  AsciiTable table("Contribution skew (top x% of publishers)");
  table.header({"top x%", "content share"});
  for (const LorenzPoint& p : curve.points) {
    table.row({format_double(p.top_percent, 0) + "%",
               format_double(p.content_percent, 1) + "%"});
  }
  table.note("gini = " + format_double(curve.gini, 2));
  table.print();

  const auto fake = identity.share_of(TargetGroup::Fake);
  const auto top = identity.share_of(TargetGroup::Top);
  std::printf("fake publishers: %s of content, %s of downloads\n",
              percent(fake.content).c_str(), percent(fake.downloads).c_str());
  std::printf("top publishers:  %s of content, %s of downloads\n",
              percent(top.content).c_str(), percent(top.downloads).c_str());
  std::printf("\nTop five publishers by published content:\n");
  for (std::size_t i = 0; i < 5 && i < identity.usernames().size(); ++i) {
    const UsernameStats& stats = identity.usernames()[i];
    std::printf("  %-18s %3zu torrents, %5zu downloads%s\n",
                stats.username.c_str(), stats.content_count,
                stats.download_count,
                identity.is_fake(stats.username) ? "  [detected fake]" : "");
  }
  return 0;
}
