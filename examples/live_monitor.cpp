// live_monitor — the paper's §7 software: a system that continuously
// monitors new content published on the portal and reports, in (simulated)
// real time, each content's publisher, category, and — where identifiable —
// the publisher's IP, ISP, and location. Profit-driven publishers get an
// inline "publisher page" with their promoting URL and business type, and
// content from detected fake accounts is flagged (the filtering feature the
// paper describes as future work).
//
// The monitor runs on the discrete-event engine: an RSS poll every five
// minutes drives single tracker queries, exactly like the real deployment —
// plus a trackerless cross-check: every discovery also walks the Mainline
// DHT (iterative get_peers) and reports when the two vantages disagree, the
// spoofed-tracker-announce signature.
//
// New in this build: the streaming analysis layer (§4.5). A
// StreamingClassifier rides the crawl as a CrawlObserver — every tracker
// reply and DHT lookup feeds its sketches (HyperLogLog distinct-IP
// estimates, count-min announce rates) and its online session estimator —
// and the monitor prints rolling fake/top/altruistic verdicts with the
// sketch error bounds every simulated six hours, instead of waiting for a
// finished dataset.
//
// Build & run:   ./build/examples/live_monitor [seed]
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "analysis/classify.hpp"
#include "analysis/streaming/streaming_classifier.hpp"
#include "core/ecosystem.hpp"
#include "crawler/crawler.hpp"
#include "portal/rss.hpp"
#include "sim/event_queue.hpp"
#include "util/strings.hpp"

using namespace btpub;

namespace {

/// The monitoring database of §7: per-content rows plus per-publisher pages.
class MonitorDb {
 public:
  MonitorDb(const GeoDb& geo, const WebsiteDirectory& websites)
      : geo_(&geo), websites_(&websites) {}

  void on_content(const TorrentRecord& record, SimTime now) {
    ++contents_;
    std::string location = "-";
    std::string isp = "-";
    if (record.publisher_ip) {
      if (const auto loc = geo_->lookup(*record.publisher_ip)) {
        isp = std::string(loc->isp_name);
        location = std::string(loc->city) + ", " + std::string(loc->country);
      }
    }
    const bool flagged = fake_accounts_.contains(record.username);
    std::printf("[%s] %-44.44s %-9.9s user=%-14.14s ip=%-15s isp=%-12.12s %s%s\n",
                format_duration(now).c_str(), record.title.c_str(),
                std::string(to_string(record.category)).c_str(),
                record.username.c_str(),
                record.publisher_ip ? record.publisher_ip->to_string().c_str()
                                    : "-",
                isp.c_str(), location.c_str(),
                flagged ? "  << FAKE-PUBLISHER FILTER" : "");

    // Publisher page for promoters (the per-publisher web page of §7).
    if (const auto promo = find_promotion(record)) {
      if (publisher_pages_.insert(record.username).second) {
        std::string business = "unknown site";
        if (const auto view = websites_->visit(promo->domain)) {
          business = view->torrent_index ? "private BitTorrent portal"
                                         : "other web business";
        }
        std::printf("          publisher page: %s promotes http://www.%s/ "
                    "(%s)\n",
                    record.username.c_str(), promo->domain.c_str(),
                    business.c_str());
      }
    }
  }

  void on_removal(const std::string& username) {
    fake_accounts_.insert(username);
  }

  std::size_t contents() const { return contents_; }
  std::size_t flagged_accounts() const { return fake_accounts_.size(); }

 private:
  const GeoDb* geo_;
  const WebsiteDirectory* websites_;
  std::size_t contents_ = 0;
  std::unordered_set<std::string> publisher_pages_;
  std::unordered_set<std::string> fake_accounts_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 99;

  ScenarioConfig config = ScenarioConfig::spoofed(seed);
  config.window = days(2);  // keep the live log short
  Ecosystem ecosystem(config);
  ecosystem.build();

  Crawler crawler(ecosystem.portal(), ecosystem.tracker(), ecosystem.network(),
                  ecosystem.geo(), CrawlerConfig{}, seed);
  MonitorDb db(ecosystem.geo(), ecosystem.websites());

  // The streaming layer: classification happens while measuring. Every
  // discovery/peer/sighting the crawler makes streams into the sketches.
  StreamingConfig stream_config;
  stream_config.top_n = 10;  // the short two-day window has few publishers
  StreamingClassifier stream(ecosystem.geo(), ecosystem.websites(),
                             stream_config);
  crawler.set_observer(&stream);

  // The trackerless vantage: the swarms' DHT overlay, polled read-only
  // from a measurement box that never joins the routing tables.
  const auto overlay = ecosystem.build_dht_overlay(config.window);
  const Endpoint dht_vantage{IpAddress(10, 88, 0, 1), 6881};

  std::printf("monitoring portal '%s' for %lld simulated days...\n\n",
              ecosystem.portal().name().c_str(),
              static_cast<long long>(config.window / kDay));

  EventQueue queue;
  TorrentId last_seen = kInvalidTorrent;
  std::function<void()> poll = [&] {
    const SimTime now = queue.now();
    // 1. Fetch the RSS feed — as real XML — and parse it, exactly like a
    // 2010 feed reader would.
    const std::string xml = render_rss(
        ecosystem.portal().name(), ecosystem.portal().rss_since(last_seen, now));
    for (const RssItem& item : parse_rss(xml).items) {
      last_seen = std::max(last_seen == kInvalidTorrent ? item.id : last_seen,
                           item.id);
      std::vector<IpAddress> ips;
      std::vector<SimTime> sightings;
      if (const auto record = crawler.discover(item.id, now, ips, sightings)) {
        db.on_content(*record, now);
        // Trackerless cross-check: does the DHT confirm the swarm the
        // tracker just described? A populated tracker view with an empty
        // DHT view is the decoy-injection signature.
        overlay->advance_to(now);
        const auto dht_peers = overlay->get_peers(record->infohash, dht_vantage,
                                                  now, nullptr, {},
                                                  /*read_only=*/true);
        std::printf("          dht vantage: %zu peer(s), tracker saw %u%s\n",
                    dht_peers.size(), record->initial_peers,
                    record->initial_peers >= 5 && dht_peers.empty()
                        ? "  << TRACKER/DHT MISMATCH (spoof?)"
                        : "");
        // The DHT view streams into the same classifier: its sketches merge
        // both vantages' peer observations.
        if (!dht_peers.empty()) {
          std::vector<IpAddress> dht_ips;
          dht_ips.reserve(dht_peers.size());
          for (const Endpoint& peer : dht_peers) dht_ips.push_back(peer.ip);
          stream.on_downloaders(record->portal_id, dht_ips, now);
        }
      }
    }
    // 2. Learn from moderation: accounts whose content vanished are fake.
    for (TorrentId id = 0; id <= ecosystem.portal().newest_id() &&
                           id != kInvalidTorrent;
         ++id) {
      const auto page = ecosystem.portal().page(id, now);
      if (page && page->removed) {
        db.on_removal(page->username);
        stream.on_removal(id, now);  // provisional fake signal, mid-crawl
      }
    }
    if (now < config.window) queue.schedule_in(minutes(5), poll);
  };
  // 3. Rolling verdicts: every six simulated hours the streaming layer
  // reports who currently looks fake / top / altruistic, with the sketch
  // error bounds — analysis at crawl time, not post-hoc.
  std::function<void()> report = [&] {
    const SimTime now = queue.now();
    const StreamingSnapshot snap = stream.round(now);
    std::printf("\n---- rolling verdicts @ %s ----\n%s----\n\n",
                format_duration(now).c_str(), snap.to_text().c_str());
    if (now < config.window) queue.schedule_in(hours(6), report);
  };
  queue.schedule_at(hours(6), report);
  queue.schedule_at(0, poll);
  queue.run();

  std::printf("\nmonitored %zu contents; fake-publisher filter knows %zu "
              "banned accounts\n",
              db.contents(), db.flagged_accounts());

  const StreamingSnapshot final_snap = stream.round(config.window);
  std::printf("\nfinal streaming verdicts (%llu sketch updates):\n%s",
              static_cast<unsigned long long>(stream.updates()),
              final_snap.to_text().c_str());
  return 0;
}
