// btpub — command-line front end for the toolkit.
//
//   btpub simulate --scenario pb10 --seed 42 --out pb10.ds
//       build the ecosystem, run the measurement crawl, save the dataset
//   btpub analyze pb10.ds
//       identity analysis summary: skew, fake/top shares, top publishers
//   btpub export pb10.ds out_dir/
//       dump torrents/publishers/sightings as CSV
//   btpub feed --scenario quick --seed 7
//       print the portal's RSS 2.0 XML after a simulated day
//   btpub dht-crawl --scenario spoofed --seed 42 --out spoofed_dht.ds
//       run the trackerless (DHT) vantage next to the tracker crawl and
//       print the cross-check report (tracker-vs-DHT disagreement flags)
//
// Exit codes: 0 ok, 1 usage error, 2 runtime failure.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/contribution.hpp"
#include "analysis/groups.hpp"
#include "core/ecosystem.hpp"
#include "crawler/cross_check.hpp"
#include "crawler/dataset_io.hpp"
#include "portal/rss.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  btpub simulate --scenario"
               " <pb10|pb09|mn08|signature|quick|spoofed>"
               " [--seed N] [--threads N] --out FILE\n"
               "  btpub analyze FILE [--top N]\n"
               "  btpub export FILE OUT_DIR\n"
               "  btpub feed [--scenario NAME] [--seed N]\n"
               "  btpub dht-crawl [--scenario NAME] [--seed N] [--out FILE]"
               " [--bootstrap MAGNET]\n");
  return 1;
}

ScenarioConfig scenario_by_name(const std::string& name, std::uint64_t seed) {
  if (name == "pb10") return ScenarioConfig::pb10(seed);
  if (name == "pb09") return ScenarioConfig::pb09(seed);
  if (name == "mn08") return ScenarioConfig::mn08(seed);
  if (name == "signature") return ScenarioConfig::signature(seed);
  if (name == "quick") return ScenarioConfig::quick(seed);
  if (name == "spoofed") return ScenarioConfig::spoofed(seed);
  throw std::invalid_argument("unknown scenario '" + name + "'");
}

struct Options {
  std::string scenario = "quick";
  std::uint64_t seed = 42;
  std::string out;
  std::size_t top_n = 100;
  /// Worker threads for the ecosystem build and the crawl; 0 = hardware
  /// concurrency. Both phases are byte-identical for every value.
  std::size_t threads = 0;
  /// dht-crawl: magnet URI whose x.pe hints bootstrap the DHT vantage.
  std::string bootstrap;
  std::vector<std::string> positional;
};

Options parse_options(int argc, char** argv, int first) {
  Options options;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--scenario") {
      options.scenario = next();
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--out") {
      options.out = next();
    } else if (arg == "--top") {
      options.top_n = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      options.threads = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--bootstrap") {
      options.bootstrap = next();
    } else if (starts_with(arg, "--")) {
      throw std::invalid_argument("unknown option " + arg);
    } else {
      options.positional.push_back(arg);
    }
  }
  return options;
}

int cmd_simulate(const Options& options) {
  if (options.out.empty()) {
    std::fprintf(stderr, "simulate: --out FILE is required\n");
    return 1;
  }
  ScenarioConfig config = scenario_by_name(options.scenario, options.seed);
  // One knob drives both parallel engines; either phase is byte-identical
  // at any thread count.
  config.threads = options.threads;
  config.crawler.threads = options.threads;
  std::fprintf(stderr, "building %s (seed %llu)...\n", config.name.c_str(),
               static_cast<unsigned long long>(config.seed));
  Ecosystem ecosystem(config);
  ecosystem.build();
  std::fprintf(stderr, "crawling %zu torrents...\n", ecosystem.torrent_count());
  const Dataset dataset = ecosystem.crawl();
  save_dataset(dataset, options.out);
  std::printf("wrote %s: %zu torrents, %zu distinct downloader IPs\n",
              options.out.c_str(), dataset.torrent_count(),
              dataset.distinct_ips_global());
  return 0;
}

int cmd_analyze(const Options& options) {
  if (options.positional.empty()) {
    std::fprintf(stderr, "analyze: dataset file required\n");
    return 1;
  }
  const Dataset dataset = load_dataset(options.positional[0]);
  const IspCatalog catalog = IspCatalog::standard();
  const IdentityAnalysis identity(dataset, catalog.db(), options.top_n);

  AsciiTable summary("Dataset " + dataset.name);
  summary.header({"metric", "value"});
  summary.row({"torrents", std::to_string(dataset.torrent_count())});
  summary.row({"with username", std::to_string(dataset.with_username())});
  summary.row({"with publisher IP", std::to_string(dataset.with_publisher_ip())});
  summary.row({"distinct downloader IPs",
               std::to_string(dataset.distinct_ips_global())});
  summary.row({"publishers (usernames)",
               std::to_string(identity.usernames().size())});
  summary.row({"fake usernames", std::to_string(identity.fake_usernames().size())});
  summary.row({"top publishers", std::to_string(identity.top().size())});
  summary.print();

  const auto fake = identity.share_of(TargetGroup::Fake);
  const auto top = identity.share_of(TargetGroup::Top);
  AsciiTable shares("Group shares");
  shares.header({"group", "content", "downloads"});
  shares.row({"Fake", percent(fake.content), percent(fake.downloads)});
  shares.row({"Top", percent(top.content), percent(top.downloads)});
  shares.row({"Fake+Top", percent(fake.content + top.content),
              percent(fake.downloads + top.downloads)});
  shares.print();

  const std::vector<double> xs{1, 3, 10, 50};
  const auto curve = contribution_curve(identity, xs);
  AsciiTable skew("Contribution skew (gini " + format_double(curve.gini, 2) + ")");
  skew.header({"top x%", "content share"});
  for (const LorenzPoint& p : curve.points) {
    skew.row({format_double(p.top_percent, 0) + "%",
              format_double(p.content_percent, 1) + "%"});
  }
  skew.print();
  return 0;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

int cmd_export(const Options& options) {
  if (options.positional.size() < 2) {
    std::fprintf(stderr, "export: dataset file and output directory required\n");
    return 1;
  }
  const Dataset dataset = load_dataset(options.positional[0]);
  const std::string out_dir = options.positional[1];
  std::filesystem::create_directories(out_dir);

  std::ofstream torrents(out_dir + "/torrents.csv");
  torrents << "portal_id,infohash,title,category,username,publisher_ip,"
              "published_at,downloads,removed\n";
  for (std::size_t i = 0; i < dataset.torrent_count(); ++i) {
    const TorrentRecord& r = dataset.torrents[i];
    torrents << r.portal_id << ',' << r.infohash.hex() << ','
             << csv_escape(r.title) << ',' << to_string(r.category) << ','
             << csv_escape(r.username) << ','
             << (r.publisher_ip ? r.publisher_ip->to_string() : "") << ','
             << r.published_at << ',' << dataset.downloaders[i].size() << ','
             << (r.observed_removed ? 1 : 0) << '\n';
  }
  std::ofstream sightings(out_dir + "/sightings.csv");
  sightings << "portal_id,time_seconds\n";
  for (std::size_t i = 0; i < dataset.torrent_count(); ++i) {
    for (const SimTime t : dataset.publisher_sightings[i]) {
      sightings << dataset.torrents[i].portal_id << ',' << t << '\n';
    }
  }
  std::printf("exported %zu torrents to %s/\n", dataset.torrent_count(),
              out_dir.c_str());
  return 0;
}

int cmd_dht_crawl(const Options& options) {
  ScenarioConfig config = scenario_by_name(options.scenario, options.seed);
  config.threads = options.threads;
  config.crawler.threads = options.threads;
  config.dht_crawler.bootstrap_magnet = options.bootstrap;
  std::fprintf(stderr, "building %s (seed %llu)...\n", config.name.c_str(),
               static_cast<unsigned long long>(config.seed));
  Ecosystem ecosystem(config);
  ecosystem.build();
  std::fprintf(stderr, "crawling %zu torrents from both vantages...\n",
               ecosystem.torrent_count());
  const Dataset tracker_view = ecosystem.crawl();
  const Dataset dht_view = ecosystem.dht_crawl();
  if (!options.out.empty()) save_dataset(dht_view, options.out);

  const CrossCheckReport report = cross_check(tracker_view, dht_view);
  AsciiTable summary("Tracker vs DHT (" + config.name + ")");
  summary.header({"metric", "value"});
  summary.row({"torrents (tracker)", std::to_string(tracker_view.torrent_count())});
  summary.row({"torrents (dht)", std::to_string(dht_view.torrent_count())});
  summary.row({"matched", std::to_string(report.matched_count())});
  summary.row({"flagged (spoof signature)", std::to_string(report.flagged_count())});
  summary.print();

  AsciiTable flagged("Flagged torrents");
  flagged.header({"portal_id", "tracker peers", "dht peers", "overlap",
                  "publisher in dht"});
  for (const TorrentCrossCheck& check : report.torrents) {
    if (!check.flagged) continue;
    flagged.row({std::to_string(check.portal_id),
                 std::to_string(check.tracker_peers),
                 std::to_string(check.dht_peers),
                 format_double(check.overlap * 100.0, 1) + "%",
                 check.tracker_publisher_ip
                     ? (check.publisher_in_dht ? "yes" : "NO")
                     : "n/a"});
  }
  flagged.print();
  return 0;
}

int cmd_feed(const Options& options) {
  ScenarioConfig config = scenario_by_name(options.scenario, options.seed);
  config.window = days(1);
  Ecosystem ecosystem(config);
  ecosystem.build();
  const auto items =
      ecosystem.portal().rss_since(kInvalidTorrent, config.window, 30);
  std::fputs(render_rss(ecosystem.portal().name(), items).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Options options = parse_options(argc, argv, 2);
    if (command == "simulate") return cmd_simulate(options);
    if (command == "analyze") return cmd_analyze(options);
    if (command == "export") return cmd_export(options);
    if (command == "feed") return cmd_feed(options);
    if (command == "dht-crawl") return cmd_dht_crawl(options);
    return usage();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "btpub: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "btpub: error: %s\n", e.what());
    return 2;
  }
}
