// btpub — command-line front end for the toolkit.
//
//   btpub simulate --scenario pb10 --seed 42 --out pb10.ds
//       build the ecosystem, run the measurement crawl, save the dataset
//   btpub analyze pb10.ds
//       identity analysis summary: skew, fake/top shares, top publishers
//   btpub export pb10.ds out_dir/
//       dump torrents/publishers/sightings as CSV
//   btpub feed --scenario quick --seed 7
//       print the portal's RSS 2.0 XML after a simulated day
//   btpub dht-crawl --scenario spoofed --seed 42 --out spoofed_dht.ds
//       run the trackerless (DHT) vantage next to the tracker crawl and
//       print the cross-check report (tracker-vs-DHT disagreement flags)
//   btpub serve --port 8800 --shards 4
//       run the wire tracker daemon (BEP 15 UDP + HTTP announce/scrape);
//       SIGINT/SIGTERM drain gracefully and print serving stats
//   btpub loadgen --port 8800 --threads 4 --duration 5
//       drive a served tracker with deterministic announce streams and
//       print throughput + latency percentiles
//
// Exit codes: 0 ok, 1 usage error, 2 runtime failure.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/contribution.hpp"
#include "analysis/groups.hpp"
#include "core/ecosystem.hpp"
#include "crawler/cross_check.hpp"
#include "crawler/dataset_io.hpp"
#include "netio/loadgen.hpp"
#include "netio/serve.hpp"
#include "portal/rss.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  btpub simulate --scenario"
               " <pb10|pb09|mn08|signature|quick|spoofed>"
               " [--seed N] [--threads N] --out FILE\n"
               "  btpub analyze FILE [--top N]\n"
               "  btpub export FILE OUT_DIR\n"
               "  btpub feed [--scenario NAME] [--seed N]\n"
               "  btpub dht-crawl [--scenario NAME] [--seed N] [--out FILE]"
               " [--bootstrap MAGNET]\n"
               "  btpub serve [--bind IP] [--port N] [--http-port N]"
               " [--no-http] [--shards N]\n"
               "              [--swarms N] [--peers N] [--seed N]"
               " [--query-gap SECONDS]\n"
               "              [--duration SECONDS] [--max-announces N]\n"
               "  btpub loadgen [--target IP] --port N [--threads N]"
               " [--duration SECONDS]\n"
               "              [--rate PER_WORKER_PER_SEC] [--window N]"
               " [--numwant N]\n"
               "              [--max-requests N] [--swarms N] [--seed N]"
               " [--http --http-port N]\n");
  return 1;
}

ScenarioConfig scenario_by_name(const std::string& name, std::uint64_t seed) {
  if (name == "pb10") return ScenarioConfig::pb10(seed);
  if (name == "pb09") return ScenarioConfig::pb09(seed);
  if (name == "mn08") return ScenarioConfig::mn08(seed);
  if (name == "signature") return ScenarioConfig::signature(seed);
  if (name == "quick") return ScenarioConfig::quick(seed);
  if (name == "spoofed") return ScenarioConfig::spoofed(seed);
  throw std::invalid_argument("unknown scenario '" + name + "'");
}

struct Options {
  std::string scenario = "quick";
  std::uint64_t seed = 42;
  std::string out;
  std::size_t top_n = 100;
  /// Worker threads for the ecosystem build and the crawl; 0 = hardware
  /// concurrency. Both phases are byte-identical for every value.
  std::size_t threads = 0;
  /// dht-crawl: magnet URI whose x.pe hints bootstrap the DHT vantage.
  std::string bootstrap;
  // serve / loadgen (src/netio/).
  std::string bind_ip = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint16_t http_port = 0;
  bool no_http = false;
  bool use_http = false;
  std::size_t shards = 1;
  std::size_t swarms = 64;
  std::size_t peers = 2000;
  double query_gap = 0.0;
  double duration = 0.0;
  std::uint64_t max_announces = 0;
  std::uint64_t max_requests = 0;
  double rate = 0.0;
  std::size_t window = 32;
  std::uint32_t numwant = 50;
  std::vector<std::string> positional;
};

Options parse_options(int argc, char** argv, int first) {
  Options options;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--scenario") {
      options.scenario = next();
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--out") {
      options.out = next();
    } else if (arg == "--top") {
      options.top_n = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      options.threads = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--bootstrap") {
      options.bootstrap = next();
    } else if (arg == "--bind" || arg == "--target") {
      options.bind_ip = next();
    } else if (arg == "--port") {
      options.port = static_cast<std::uint16_t>(
          std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--http-port") {
      options.http_port = static_cast<std::uint16_t>(
          std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--no-http") {
      options.no_http = true;
    } else if (arg == "--http") {
      options.use_http = true;
    } else if (arg == "--shards") {
      options.shards = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--swarms") {
      options.swarms = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--peers") {
      options.peers = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--query-gap") {
      options.query_gap = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--duration") {
      options.duration = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--max-announces") {
      options.max_announces = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--max-requests") {
      options.max_requests = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--rate") {
      options.rate = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--window") {
      options.window = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--numwant") {
      options.numwant = static_cast<std::uint32_t>(
          std::strtoul(next().c_str(), nullptr, 10));
    } else if (starts_with(arg, "--")) {
      throw std::invalid_argument("unknown option " + arg);
    } else {
      options.positional.push_back(arg);
    }
  }
  return options;
}

int cmd_simulate(const Options& options) {
  if (options.out.empty()) {
    std::fprintf(stderr, "simulate: --out FILE is required\n");
    return 1;
  }
  ScenarioConfig config = scenario_by_name(options.scenario, options.seed);
  // One knob drives both parallel engines; either phase is byte-identical
  // at any thread count.
  config.threads = options.threads;
  config.crawler.threads = options.threads;
  std::fprintf(stderr, "building %s (seed %llu)...\n", config.name.c_str(),
               static_cast<unsigned long long>(config.seed));
  Ecosystem ecosystem(config);
  ecosystem.build();
  std::fprintf(stderr, "crawling %zu torrents...\n", ecosystem.torrent_count());
  const Dataset dataset = ecosystem.crawl();
  save_dataset(dataset, options.out);
  std::printf("wrote %s: %zu torrents, %zu distinct downloader IPs\n",
              options.out.c_str(), dataset.torrent_count(),
              dataset.distinct_ips_global());
  return 0;
}

int cmd_analyze(const Options& options) {
  if (options.positional.empty()) {
    std::fprintf(stderr, "analyze: dataset file required\n");
    return 1;
  }
  const Dataset dataset = load_dataset(options.positional[0]);
  const IspCatalog catalog = IspCatalog::standard();
  const IdentityAnalysis identity(dataset, catalog.db(), options.top_n);

  AsciiTable summary("Dataset " + dataset.name);
  summary.header({"metric", "value"});
  summary.row({"torrents", std::to_string(dataset.torrent_count())});
  summary.row({"with username", std::to_string(dataset.with_username())});
  summary.row({"with publisher IP", std::to_string(dataset.with_publisher_ip())});
  summary.row({"distinct downloader IPs",
               std::to_string(dataset.distinct_ips_global())});
  summary.row({"publishers (usernames)",
               std::to_string(identity.usernames().size())});
  summary.row({"fake usernames", std::to_string(identity.fake_usernames().size())});
  summary.row({"top publishers", std::to_string(identity.top().size())});
  summary.print();

  const auto fake = identity.share_of(TargetGroup::Fake);
  const auto top = identity.share_of(TargetGroup::Top);
  AsciiTable shares("Group shares");
  shares.header({"group", "content", "downloads"});
  shares.row({"Fake", percent(fake.content), percent(fake.downloads)});
  shares.row({"Top", percent(top.content), percent(top.downloads)});
  shares.row({"Fake+Top", percent(fake.content + top.content),
              percent(fake.downloads + top.downloads)});
  shares.print();

  const std::vector<double> xs{1, 3, 10, 50};
  const auto curve = contribution_curve(identity, xs);
  AsciiTable skew("Contribution skew (gini " + format_double(curve.gini, 2) + ")");
  skew.header({"top x%", "content share"});
  for (const LorenzPoint& p : curve.points) {
    skew.row({format_double(p.top_percent, 0) + "%",
              format_double(p.content_percent, 1) + "%"});
  }
  skew.print();
  return 0;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

int cmd_export(const Options& options) {
  if (options.positional.size() < 2) {
    std::fprintf(stderr, "export: dataset file and output directory required\n");
    return 1;
  }
  const Dataset dataset = load_dataset(options.positional[0]);
  const std::string out_dir = options.positional[1];
  std::filesystem::create_directories(out_dir);

  std::ofstream torrents(out_dir + "/torrents.csv");
  torrents << "portal_id,infohash,title,category,username,publisher_ip,"
              "published_at,downloads,removed\n";
  for (std::size_t i = 0; i < dataset.torrent_count(); ++i) {
    const TorrentRecord& r = dataset.torrents[i];
    torrents << r.portal_id << ',' << r.infohash.hex() << ','
             << csv_escape(r.title) << ',' << to_string(r.category) << ','
             << csv_escape(r.username) << ','
             << (r.publisher_ip ? r.publisher_ip->to_string() : "") << ','
             << r.published_at << ',' << dataset.downloaders[i].size() << ','
             << (r.observed_removed ? 1 : 0) << '\n';
  }
  std::ofstream sightings(out_dir + "/sightings.csv");
  sightings << "portal_id,time_seconds\n";
  for (std::size_t i = 0; i < dataset.torrent_count(); ++i) {
    for (const SimTime t : dataset.publisher_sightings[i]) {
      sightings << dataset.torrents[i].portal_id << ',' << t << '\n';
    }
  }
  std::printf("exported %zu torrents to %s/\n", dataset.torrent_count(),
              out_dir.c_str());
  return 0;
}

int cmd_dht_crawl(const Options& options) {
  ScenarioConfig config = scenario_by_name(options.scenario, options.seed);
  config.threads = options.threads;
  config.crawler.threads = options.threads;
  config.dht_crawler.bootstrap_magnet = options.bootstrap;
  std::fprintf(stderr, "building %s (seed %llu)...\n", config.name.c_str(),
               static_cast<unsigned long long>(config.seed));
  Ecosystem ecosystem(config);
  ecosystem.build();
  std::fprintf(stderr, "crawling %zu torrents from both vantages...\n",
               ecosystem.torrent_count());
  const Dataset tracker_view = ecosystem.crawl();
  const Dataset dht_view = ecosystem.dht_crawl();
  if (!options.out.empty()) save_dataset(dht_view, options.out);

  const CrossCheckReport report = cross_check(tracker_view, dht_view);
  AsciiTable summary("Tracker vs DHT (" + config.name + ")");
  summary.header({"metric", "value"});
  summary.row({"torrents (tracker)", std::to_string(tracker_view.torrent_count())});
  summary.row({"torrents (dht)", std::to_string(dht_view.torrent_count())});
  summary.row({"matched", std::to_string(report.matched_count())});
  summary.row({"flagged (spoof signature)", std::to_string(report.flagged_count())});
  summary.print();

  AsciiTable flagged("Flagged torrents");
  flagged.header({"portal_id", "tracker peers", "dht peers", "overlap",
                  "publisher in dht"});
  for (const TorrentCrossCheck& check : report.torrents) {
    if (!check.flagged) continue;
    flagged.row({std::to_string(check.portal_id),
                 std::to_string(check.tracker_peers),
                 std::to_string(check.dht_peers),
                 format_double(check.overlap * 100.0, 1) + "%",
                 check.tracker_publisher_ip
                     ? (check.publisher_in_dht ? "yes" : "NO")
                     : "n/a"});
  }
  flagged.print();
  return 0;
}

// The daemon the signal handler stops; set only while cmd_serve runs.
netio::ServeDaemon* g_serve_daemon = nullptr;

void stop_signal_handler(int) {
  // request_stop is a single eventfd write: async-signal-safe.
  if (g_serve_daemon != nullptr) g_serve_daemon->request_stop();
}

int cmd_serve(const Options& options) {
  netio::ServeConfig config;
  config.bind_ip = options.bind_ip;
  config.udp_port = options.port;
  config.http_port = options.http_port;
  config.enable_http = !options.no_http;
  config.shards = options.shards;
  config.swarms = options.swarms;
  config.peers_per_swarm = options.peers;
  config.seed = options.seed;
  config.query_gap = static_cast<SimDuration>(options.query_gap);
  config.duration_seconds = options.duration;
  config.max_announces = options.max_announces;

  try {
    netio::ServeDaemon daemon(config);
    g_serve_daemon = &daemon;
    std::signal(SIGINT, stop_signal_handler);
    std::signal(SIGTERM, stop_signal_handler);
    std::fprintf(stderr,
                 "[btpub] serving udp://%s:%u (%zu shard%s, %zu swarms x %zu"
                 " peers)%s\n",
                 config.bind_ip.c_str(), daemon.udp_port(),
                 daemon.shard_count(), daemon.shard_count() == 1 ? "" : "s",
                 config.swarms, config.peers_per_swarm,
                 config.enable_http
                     ? (", http://" + config.bind_ip + ":" +
                        std::to_string(daemon.http_port()) + "/announce")
                           .c_str()
                     : "");
    daemon.run();
    g_serve_daemon = nullptr;
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);

    const netio::ServeStats stats = daemon.stats();
    AsciiTable table("Serving stats");
    table.header({"metric", "value"});
    table.row({"datagrams received", std::to_string(stats.datagrams_rx)});
    table.row({"responses sent", std::to_string(stats.responses_tx)});
    table.row({"connects", std::to_string(stats.connects)});
    table.row({"announces", std::to_string(stats.announces)});
    table.row({"scrapes", std::to_string(stats.scrapes)});
    table.row({"malformed", std::to_string(stats.malformed)});
    table.row({"dropped short", std::to_string(stats.dropped_short)});
    table.row({"http requests", std::to_string(stats.http_requests)});
    table.row({"http announces", std::to_string(stats.http_announces)});
    table.print();
    return 0;
  } catch (const std::system_error& e) {
    g_serve_daemon = nullptr;
    std::fprintf(stderr, "[btpub] error: %s (errno %d)\n", e.what(),
                 e.code().value());
    return 2;
  }
}

int cmd_loadgen(const Options& options) {
  if (options.port == 0 && !(options.use_http && options.http_port != 0)) {
    std::fprintf(stderr, "loadgen: --port N is required\n");
    return 1;
  }
  netio::LoadgenConfig config;
  config.target_ip = options.bind_ip;
  config.udp_port = options.port;
  config.threads = options.threads == 0 ? 1 : options.threads;
  config.duration_seconds = options.duration > 0.0 ? options.duration : 2.0;
  config.max_requests = options.max_requests;
  config.rate = options.rate;
  config.window = options.window;
  config.seed = options.seed;
  config.swarms = options.swarms;
  config.numwant = options.numwant;
  config.use_http = options.use_http;
  config.http_port = options.http_port;

  try {
    const netio::LoadgenReport report = netio::run_loadgen(config);
    AsciiTable table("Loadgen report");
    table.header({"metric", "value"});
    table.row({"workers", std::to_string(config.threads)});
    table.row({"sent", std::to_string(report.sent)});
    table.row({"received", std::to_string(report.received)});
    table.row({"errors", std::to_string(report.errors)});
    table.row({"timeouts", std::to_string(report.timeouts)});
    table.row({"reconnects", std::to_string(report.reconnects)});
    table.row({"elapsed", format_double(report.elapsed_seconds, 2) + " s"});
    table.row({"throughput",
               format_double(report.throughput(), 0) + " announces/s"});
    table.row({"p50 latency",
               format_double(static_cast<double>(report.p50_ns) / 1e6, 3) +
                   " ms"});
    table.row({"p90 latency",
               format_double(static_cast<double>(report.p90_ns) / 1e6, 3) +
                   " ms"});
    table.row({"p99 latency",
               format_double(static_cast<double>(report.p99_ns) / 1e6, 3) +
                   " ms"});
    table.print();
    return report.received > 0 ? 0 : 2;
  } catch (const std::system_error& e) {
    std::fprintf(stderr, "[btpub] error: %s (errno %d)\n", e.what(),
                 e.code().value());
    return 2;
  }
}

int cmd_feed(const Options& options) {
  ScenarioConfig config = scenario_by_name(options.scenario, options.seed);
  config.window = days(1);
  Ecosystem ecosystem(config);
  ecosystem.build();
  const auto items =
      ecosystem.portal().rss_since(kInvalidTorrent, config.window, 30);
  std::fputs(render_rss(ecosystem.portal().name(), items).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Options options = parse_options(argc, argv, 2);
    if (command == "simulate") return cmd_simulate(options);
    if (command == "analyze") return cmd_analyze(options);
    if (command == "export") return cmd_export(options);
    if (command == "feed") return cmd_feed(options);
    if (command == "dht-crawl") return cmd_dht_crawl(options);
    if (command == "serve") return cmd_serve(options);
    if (command == "loadgen") return cmd_loadgen(options);
    return usage();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "btpub: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "btpub: error: %s\n", e.what());
    return 2;
  }
}
