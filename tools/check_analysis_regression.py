#!/usr/bin/env python3
"""Gate on parallel batch-analysis performance.

Compares a freshly generated BENCH_analysis.json against the committed
baseline at the repo root. Raw seconds are machine-dependent and raw
speedups are core-count-dependent (a single-core container legitimately
measures ~1x at any thread count), so the gate compares *parallel
efficiency* per (case, sessions): measured speedup divided by the ideal
speedup min(threads, cores) recorded in the same file. Efficiency is a
machine-normalised number in (0, ~1]; a >10% drop against baseline fails
the build.

Also fails on correctness signals that need no baseline: within one file,
the 1-thread and N-thread rows of a case must report the same digest and
item count (analysis_perf enforces this too; the gate keeps a hand-edited
JSON from slipping through).

Usage: check_analysis_regression.py BASELINE.json FRESH.json
                                    [--tolerance 0.10]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    config = doc.get("config", {})
    ideal = max(1, min(config.get("threads", 1), config.get("cores", 1)))
    rows = {}
    for row in doc.get("results", []):
        rows[(row["case"], row["sessions"], row["threads"])] = row
    return ideal, rows


def efficiency(rows, case, sessions, threads, ideal):
    serial = rows.get((case, sessions, 1))
    parallel = rows.get((case, sessions, threads))
    if serial is None or parallel is None or parallel["seconds"] <= 0.0:
        return None
    return (serial["seconds"] / parallel["seconds"]) / ideal


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.10)
    args = parser.parse_args()

    base_ideal, base = load(args.baseline)
    fresh_ideal, fresh = load(args.fresh)

    failed = False

    # Digest / item-count consistency inside the fresh file.
    threads_seen = sorted({t for (_, _, t) in fresh})
    for (case, sessions, threads), row in sorted(fresh.items()):
        serial = fresh.get((case, sessions, 1))
        if serial is None or threads == 1:
            continue
        if row.get("digest") != serial.get("digest"):
            print(f"{case}@{sessions}: digest differs between 1 and "
                  f"{threads} threads FAIL")
            failed = True
        if row.get("items") != serial.get("items"):
            print(f"{case}@{sessions}: item count differs between 1 and "
                  f"{threads} threads FAIL")
            failed = True

    # Efficiency comparison over cases both files measured.
    base_keys = {(c, s) for (c, s, _) in base}
    fresh_keys = {(c, s) for (c, s, _) in fresh}
    common = sorted(base_keys & fresh_keys)
    if not common:
        print("check_analysis_regression: no comparable cases "
              f"(baseline has {sorted(base_keys)}, "
              f"fresh has {sorted(fresh_keys)})")
        return 1

    base_threads = max((t for (_, _, t) in base), default=1)
    fresh_threads = max((t for (_, _, t) in fresh), default=1)
    compared = 0
    if base_ideal == 1 and fresh_ideal > 1:
        # The committed baseline was measured on a single-core box, where
        # "efficiency" degenerates to ~1 regardless of parallel quality
        # (speedup / 1, and no real parallelism was possible). Comparing
        # that against a multi-core runner would demand near-linear
        # scaling. Until a multi-core baseline is committed, gate only on
        # an absolute floor: the parallel run must not be catastrophically
        # slower than serial (locks serialising everything would show
        # speedup << 1 even with real cores available).
        print(f"baseline measured on 1 core; skipping efficiency "
              f"comparison, enforcing speedup >= 0.75 floor on "
              f"{fresh_ideal}-core fresh run")
        for case, sessions in common:
            serial = fresh.get((case, sessions, 1))
            if serial is None or serial["seconds"] < 0.1:
                # Sub-100ms cases measure pool spin-up, not scaling.
                continue
            f = efficiency(fresh, case, sessions, fresh_threads, 1)
            if f is None:
                continue
            compared += 1
            verdict = "OK" if f >= 0.75 else "REGRESSION"
            if verdict == "REGRESSION":
                failed = True
            print(f"{case}@{sessions}: raw speedup {f:.3f} "
                  f"(floor 0.750) {verdict}")
    else:
        for case, sessions in common:
            b = efficiency(base, case, sessions, base_threads, base_ideal)
            f = efficiency(fresh, case, sessions, fresh_threads, fresh_ideal)
            if b is None or f is None:
                continue
            compared += 1
            # Absolute slack floor: the fast cases measure tens of ms per
            # rep, where a few points of efficiency are scheduler noise.
            limit = min(b * (1.0 - args.tolerance), b - 0.05)
            verdict = "OK" if f >= limit else "REGRESSION"
            if verdict == "REGRESSION":
                failed = True
            print(f"{case}@{sessions}: efficiency {f:.3f} "
                  f"(speedup/{fresh_ideal}) vs baseline {b:.3f} "
                  f"(speedup/{base_ideal}, limit {limit:.3f}) {verdict}")

    if compared == 0:
        print("check_analysis_regression: no efficiency pairs to compare")
        return 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
