#!/usr/bin/env python3
"""Gate on wire-serving (daemon) performance.

Compares a freshly generated BENCH_net.json against the committed baseline
at the repo root. Raw announces/sec are machine-dependent (CI runners vary
wildly, and loopback shares cores between server and load generator), so
the gate compares the *wire_vs_inprocess* ratio per (transport, threads)
case: wire throughput divided by the same world answered through
announce_into with no sockets. The in-process loop is the in-tree control
workload, which normalises CPU speed away; what remains is the netio
layer's own overhead. A >10% worse ratio fails the build.

Also fails on correctness signals that need no baseline: any case with
errors, or a timeout rate above 1% of sent requests (the loopback path
must be effectively lossless).

Usage: check_net_regression.py BASELINE.json FRESH.json [--tolerance 0.10]
"""

import argparse
import json
import sys


def load_cases(path):
    """Maps (transport, threads) -> result row."""
    with open(path) as fh:
        doc = json.load(fh)
    return {(row["transport"], row["threads"]): row
            for row in doc.get("results", [])}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.10)
    args = parser.parse_args()

    base = load_cases(args.baseline)
    fresh = load_cases(args.fresh)
    common = sorted(set(base) & set(fresh))
    if not common:
        print("check_net_regression: no comparable cases "
              f"(baseline has {sorted(base)}, fresh has {sorted(fresh)})")
        return 1

    failed = False
    for key in common:
        transport, threads = key
        b, f = base[key], fresh[key]

        if f.get("errors", 0) > 0:
            print(f"{transport} x{threads}: {f['errors']} errors FAIL")
            failed = True
        sent = f.get("sent", 0)
        if sent > 0 and f.get("timeouts", 0) > 0.01 * sent:
            print(f"{transport} x{threads}: {f['timeouts']} timeouts of "
                  f"{sent} sent (>1%) FAIL")
            failed = True

        base_ratio = b.get("wire_vs_inprocess", 0.0)
        fresh_ratio = f.get("wire_vs_inprocess", 0.0)
        if base_ratio <= 0.0:
            continue
        # Absolute slack floor: quick runs measure ~1 s windows, so a few
        # hundredths of ratio is scheduler noise, not a regression.
        limit = min(base_ratio * (1.0 - args.tolerance), base_ratio - 0.02)
        verdict = "OK" if fresh_ratio >= limit else "REGRESSION"
        if verdict == "REGRESSION":
            failed = True
        print(f"{transport} x{threads}: wire/inprocess ratio "
              f"{fresh_ratio:.4f} vs baseline {base_ratio:.4f} "
              f"(limit {limit:.4f}) {verdict}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
