#!/usr/bin/env python3
"""Gate on mmap snapshot load performance.

Compares a freshly generated BENCH_snapshot.json against the committed
baseline at the repo root. Raw seconds are machine-dependent (CI runners
vary wildly), so the gate compares the *ratio* of mmap load time to
stream load time at each session count present in both files: the stream
loader is the in-tree control workload, which normalises CPU and disk
speed away. A >10% worse ratio fails the build.

Usage: check_snapshot_regression.py BASELINE.json FRESH.json [--tolerance 0.10]
"""

import argparse
import json
import sys


def load_ratios(path):
    """Maps session count -> mmap_load_seconds / stream_load_seconds."""
    with open(path) as fh:
        doc = json.load(fh)
    times = {}
    for row in doc.get("results", []):
        if row["phase"] in ("load_stream", "load_mmap"):
            times.setdefault(row["sessions"], {})[row["phase"]] = row["seconds"]
    ratios = {}
    for sessions, phases in times.items():
        if "load_stream" in phases and "load_mmap" in phases:
            if phases["load_stream"] <= 0:
                continue
            ratios[sessions] = phases["load_mmap"] / phases["load_stream"]
    return ratios


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.10)
    args = parser.parse_args()

    base = load_ratios(args.baseline)
    fresh = load_ratios(args.fresh)
    common = sorted(set(base) & set(fresh))
    if not common:
        print("check_snapshot_regression: no comparable session counts "
              f"(baseline has {sorted(base)}, fresh has {sorted(fresh)})")
        return 1

    failed = False
    for sessions in common:
        # Absolute slack floor: at small scales the mmap load is a few
        # microseconds, so the ratio is ~0 and a pure relative bound would
        # flag timer noise as a regression.
        limit = max(base[sessions] * (1.0 + args.tolerance),
                    base[sessions] + 0.005)
        verdict = "OK" if fresh[sessions] <= limit else "REGRESSION"
        if verdict == "REGRESSION":
            failed = True
        print(f"{sessions} sessions: mmap/stream load ratio "
              f"{fresh[sessions]:.4f} vs baseline {base[sessions]:.4f} "
              f"(limit {limit:.4f}) {verdict}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
