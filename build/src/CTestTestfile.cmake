# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("bencode")
subdirs("net")
subdirs("geo")
subdirs("torrent")
subdirs("sim")
subdirs("portal")
subdirs("tracker")
subdirs("swarm")
subdirs("websim")
subdirs("publisher")
subdirs("crawler")
subdirs("analysis")
subdirs("core")
