# Empty dependencies file for btpub_util.
# This may be replaced when dependencies are built.
