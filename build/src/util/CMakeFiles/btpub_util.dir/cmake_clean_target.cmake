file(REMOVE_RECURSE
  "libbtpub_util.a"
)
