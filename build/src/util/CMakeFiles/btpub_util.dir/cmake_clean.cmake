file(REMOVE_RECURSE
  "CMakeFiles/btpub_util.dir/rng.cpp.o"
  "CMakeFiles/btpub_util.dir/rng.cpp.o.d"
  "CMakeFiles/btpub_util.dir/stats.cpp.o"
  "CMakeFiles/btpub_util.dir/stats.cpp.o.d"
  "CMakeFiles/btpub_util.dir/strings.cpp.o"
  "CMakeFiles/btpub_util.dir/strings.cpp.o.d"
  "CMakeFiles/btpub_util.dir/table.cpp.o"
  "CMakeFiles/btpub_util.dir/table.cpp.o.d"
  "libbtpub_util.a"
  "libbtpub_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
