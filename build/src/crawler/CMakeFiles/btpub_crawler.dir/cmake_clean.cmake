file(REMOVE_RECURSE
  "CMakeFiles/btpub_crawler.dir/crawler.cpp.o"
  "CMakeFiles/btpub_crawler.dir/crawler.cpp.o.d"
  "CMakeFiles/btpub_crawler.dir/dataset.cpp.o"
  "CMakeFiles/btpub_crawler.dir/dataset.cpp.o.d"
  "CMakeFiles/btpub_crawler.dir/dataset_io.cpp.o"
  "CMakeFiles/btpub_crawler.dir/dataset_io.cpp.o.d"
  "libbtpub_crawler.a"
  "libbtpub_crawler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_crawler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
