file(REMOVE_RECURSE
  "libbtpub_crawler.a"
)
