# Empty compiler generated dependencies file for btpub_crawler.
# This may be replaced when dependencies are built.
