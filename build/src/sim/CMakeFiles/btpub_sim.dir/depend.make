# Empty dependencies file for btpub_sim.
# This may be replaced when dependencies are built.
