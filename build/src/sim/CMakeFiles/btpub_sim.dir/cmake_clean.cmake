file(REMOVE_RECURSE
  "CMakeFiles/btpub_sim.dir/event_queue.cpp.o"
  "CMakeFiles/btpub_sim.dir/event_queue.cpp.o.d"
  "libbtpub_sim.a"
  "libbtpub_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
