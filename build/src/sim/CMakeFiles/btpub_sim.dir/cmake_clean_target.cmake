file(REMOVE_RECURSE
  "libbtpub_sim.a"
)
