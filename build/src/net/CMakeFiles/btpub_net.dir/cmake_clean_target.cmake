file(REMOVE_RECURSE
  "libbtpub_net.a"
)
