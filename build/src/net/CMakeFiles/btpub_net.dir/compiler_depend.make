# Empty compiler generated dependencies file for btpub_net.
# This may be replaced when dependencies are built.
