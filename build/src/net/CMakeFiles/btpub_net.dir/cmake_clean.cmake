file(REMOVE_RECURSE
  "CMakeFiles/btpub_net.dir/compact.cpp.o"
  "CMakeFiles/btpub_net.dir/compact.cpp.o.d"
  "CMakeFiles/btpub_net.dir/ip.cpp.o"
  "CMakeFiles/btpub_net.dir/ip.cpp.o.d"
  "libbtpub_net.a"
  "libbtpub_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
