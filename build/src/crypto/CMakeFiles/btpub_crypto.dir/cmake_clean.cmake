file(REMOVE_RECURSE
  "CMakeFiles/btpub_crypto.dir/sha1.cpp.o"
  "CMakeFiles/btpub_crypto.dir/sha1.cpp.o.d"
  "libbtpub_crypto.a"
  "libbtpub_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
