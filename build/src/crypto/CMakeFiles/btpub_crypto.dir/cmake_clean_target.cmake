file(REMOVE_RECURSE
  "libbtpub_crypto.a"
)
