# Empty compiler generated dependencies file for btpub_crypto.
# This may be replaced when dependencies are built.
