file(REMOVE_RECURSE
  "libbtpub_core.a"
)
