# Empty dependencies file for btpub_core.
# This may be replaced when dependencies are built.
