file(REMOVE_RECURSE
  "CMakeFiles/btpub_core.dir/ecosystem.cpp.o"
  "CMakeFiles/btpub_core.dir/ecosystem.cpp.o.d"
  "CMakeFiles/btpub_core.dir/scenario.cpp.o"
  "CMakeFiles/btpub_core.dir/scenario.cpp.o.d"
  "libbtpub_core.a"
  "libbtpub_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
