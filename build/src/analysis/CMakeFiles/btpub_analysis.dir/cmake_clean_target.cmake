file(REMOVE_RECURSE
  "libbtpub_analysis.a"
)
