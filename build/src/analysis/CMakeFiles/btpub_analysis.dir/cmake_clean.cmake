file(REMOVE_RECURSE
  "CMakeFiles/btpub_analysis.dir/classify.cpp.o"
  "CMakeFiles/btpub_analysis.dir/classify.cpp.o.d"
  "CMakeFiles/btpub_analysis.dir/content_type.cpp.o"
  "CMakeFiles/btpub_analysis.dir/content_type.cpp.o.d"
  "CMakeFiles/btpub_analysis.dir/contribution.cpp.o"
  "CMakeFiles/btpub_analysis.dir/contribution.cpp.o.d"
  "CMakeFiles/btpub_analysis.dir/demographics.cpp.o"
  "CMakeFiles/btpub_analysis.dir/demographics.cpp.o.d"
  "CMakeFiles/btpub_analysis.dir/groups.cpp.o"
  "CMakeFiles/btpub_analysis.dir/groups.cpp.o.d"
  "CMakeFiles/btpub_analysis.dir/income.cpp.o"
  "CMakeFiles/btpub_analysis.dir/income.cpp.o.d"
  "CMakeFiles/btpub_analysis.dir/isp.cpp.o"
  "CMakeFiles/btpub_analysis.dir/isp.cpp.o.d"
  "CMakeFiles/btpub_analysis.dir/longitudinal.cpp.o"
  "CMakeFiles/btpub_analysis.dir/longitudinal.cpp.o.d"
  "CMakeFiles/btpub_analysis.dir/popularity.cpp.o"
  "CMakeFiles/btpub_analysis.dir/popularity.cpp.o.d"
  "CMakeFiles/btpub_analysis.dir/session.cpp.o"
  "CMakeFiles/btpub_analysis.dir/session.cpp.o.d"
  "libbtpub_analysis.a"
  "libbtpub_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
