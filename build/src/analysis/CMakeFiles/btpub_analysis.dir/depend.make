# Empty dependencies file for btpub_analysis.
# This may be replaced when dependencies are built.
