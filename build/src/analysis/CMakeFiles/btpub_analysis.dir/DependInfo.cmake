
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/classify.cpp" "src/analysis/CMakeFiles/btpub_analysis.dir/classify.cpp.o" "gcc" "src/analysis/CMakeFiles/btpub_analysis.dir/classify.cpp.o.d"
  "/root/repo/src/analysis/content_type.cpp" "src/analysis/CMakeFiles/btpub_analysis.dir/content_type.cpp.o" "gcc" "src/analysis/CMakeFiles/btpub_analysis.dir/content_type.cpp.o.d"
  "/root/repo/src/analysis/contribution.cpp" "src/analysis/CMakeFiles/btpub_analysis.dir/contribution.cpp.o" "gcc" "src/analysis/CMakeFiles/btpub_analysis.dir/contribution.cpp.o.d"
  "/root/repo/src/analysis/demographics.cpp" "src/analysis/CMakeFiles/btpub_analysis.dir/demographics.cpp.o" "gcc" "src/analysis/CMakeFiles/btpub_analysis.dir/demographics.cpp.o.d"
  "/root/repo/src/analysis/groups.cpp" "src/analysis/CMakeFiles/btpub_analysis.dir/groups.cpp.o" "gcc" "src/analysis/CMakeFiles/btpub_analysis.dir/groups.cpp.o.d"
  "/root/repo/src/analysis/income.cpp" "src/analysis/CMakeFiles/btpub_analysis.dir/income.cpp.o" "gcc" "src/analysis/CMakeFiles/btpub_analysis.dir/income.cpp.o.d"
  "/root/repo/src/analysis/isp.cpp" "src/analysis/CMakeFiles/btpub_analysis.dir/isp.cpp.o" "gcc" "src/analysis/CMakeFiles/btpub_analysis.dir/isp.cpp.o.d"
  "/root/repo/src/analysis/longitudinal.cpp" "src/analysis/CMakeFiles/btpub_analysis.dir/longitudinal.cpp.o" "gcc" "src/analysis/CMakeFiles/btpub_analysis.dir/longitudinal.cpp.o.d"
  "/root/repo/src/analysis/popularity.cpp" "src/analysis/CMakeFiles/btpub_analysis.dir/popularity.cpp.o" "gcc" "src/analysis/CMakeFiles/btpub_analysis.dir/popularity.cpp.o.d"
  "/root/repo/src/analysis/session.cpp" "src/analysis/CMakeFiles/btpub_analysis.dir/session.cpp.o" "gcc" "src/analysis/CMakeFiles/btpub_analysis.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crawler/CMakeFiles/btpub_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/btpub_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/websim/CMakeFiles/btpub_websim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/btpub_util.dir/DependInfo.cmake"
  "/root/repo/build/src/portal/CMakeFiles/btpub_portal.dir/DependInfo.cmake"
  "/root/repo/build/src/tracker/CMakeFiles/btpub_tracker.dir/DependInfo.cmake"
  "/root/repo/build/src/swarm/CMakeFiles/btpub_swarm.dir/DependInfo.cmake"
  "/root/repo/build/src/torrent/CMakeFiles/btpub_torrent.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/btpub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bencode/CMakeFiles/btpub_bencode.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/btpub_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
