# Empty dependencies file for btpub_swarm.
# This may be replaced when dependencies are built.
