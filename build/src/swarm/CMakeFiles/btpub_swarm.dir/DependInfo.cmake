
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/swarm/generator.cpp" "src/swarm/CMakeFiles/btpub_swarm.dir/generator.cpp.o" "gcc" "src/swarm/CMakeFiles/btpub_swarm.dir/generator.cpp.o.d"
  "/root/repo/src/swarm/network.cpp" "src/swarm/CMakeFiles/btpub_swarm.dir/network.cpp.o" "gcc" "src/swarm/CMakeFiles/btpub_swarm.dir/network.cpp.o.d"
  "/root/repo/src/swarm/swarm.cpp" "src/swarm/CMakeFiles/btpub_swarm.dir/swarm.cpp.o" "gcc" "src/swarm/CMakeFiles/btpub_swarm.dir/swarm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/torrent/CMakeFiles/btpub_torrent.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/btpub_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/btpub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/btpub_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bencode/CMakeFiles/btpub_bencode.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/btpub_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
