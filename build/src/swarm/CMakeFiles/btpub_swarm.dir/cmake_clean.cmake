file(REMOVE_RECURSE
  "CMakeFiles/btpub_swarm.dir/generator.cpp.o"
  "CMakeFiles/btpub_swarm.dir/generator.cpp.o.d"
  "CMakeFiles/btpub_swarm.dir/network.cpp.o"
  "CMakeFiles/btpub_swarm.dir/network.cpp.o.d"
  "CMakeFiles/btpub_swarm.dir/swarm.cpp.o"
  "CMakeFiles/btpub_swarm.dir/swarm.cpp.o.d"
  "libbtpub_swarm.a"
  "libbtpub_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
