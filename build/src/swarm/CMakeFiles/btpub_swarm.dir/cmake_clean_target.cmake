file(REMOVE_RECURSE
  "libbtpub_swarm.a"
)
