# Empty compiler generated dependencies file for btpub_torrent.
# This may be replaced when dependencies are built.
