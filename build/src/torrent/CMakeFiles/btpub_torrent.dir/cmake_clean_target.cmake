file(REMOVE_RECURSE
  "libbtpub_torrent.a"
)
