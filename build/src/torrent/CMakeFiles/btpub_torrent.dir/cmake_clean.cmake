file(REMOVE_RECURSE
  "CMakeFiles/btpub_torrent.dir/bitfield.cpp.o"
  "CMakeFiles/btpub_torrent.dir/bitfield.cpp.o.d"
  "CMakeFiles/btpub_torrent.dir/magnet.cpp.o"
  "CMakeFiles/btpub_torrent.dir/magnet.cpp.o.d"
  "CMakeFiles/btpub_torrent.dir/metainfo.cpp.o"
  "CMakeFiles/btpub_torrent.dir/metainfo.cpp.o.d"
  "CMakeFiles/btpub_torrent.dir/wire.cpp.o"
  "CMakeFiles/btpub_torrent.dir/wire.cpp.o.d"
  "libbtpub_torrent.a"
  "libbtpub_torrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_torrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
