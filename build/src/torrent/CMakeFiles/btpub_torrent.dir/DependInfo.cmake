
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/torrent/bitfield.cpp" "src/torrent/CMakeFiles/btpub_torrent.dir/bitfield.cpp.o" "gcc" "src/torrent/CMakeFiles/btpub_torrent.dir/bitfield.cpp.o.d"
  "/root/repo/src/torrent/magnet.cpp" "src/torrent/CMakeFiles/btpub_torrent.dir/magnet.cpp.o" "gcc" "src/torrent/CMakeFiles/btpub_torrent.dir/magnet.cpp.o.d"
  "/root/repo/src/torrent/metainfo.cpp" "src/torrent/CMakeFiles/btpub_torrent.dir/metainfo.cpp.o" "gcc" "src/torrent/CMakeFiles/btpub_torrent.dir/metainfo.cpp.o.d"
  "/root/repo/src/torrent/wire.cpp" "src/torrent/CMakeFiles/btpub_torrent.dir/wire.cpp.o" "gcc" "src/torrent/CMakeFiles/btpub_torrent.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bencode/CMakeFiles/btpub_bencode.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/btpub_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/btpub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/btpub_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
