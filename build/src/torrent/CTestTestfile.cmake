# CMake generated Testfile for 
# Source directory: /root/repo/src/torrent
# Build directory: /root/repo/build/src/torrent
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
