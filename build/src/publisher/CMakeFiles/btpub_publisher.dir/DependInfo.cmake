
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/publisher/names.cpp" "src/publisher/CMakeFiles/btpub_publisher.dir/names.cpp.o" "gcc" "src/publisher/CMakeFiles/btpub_publisher.dir/names.cpp.o.d"
  "/root/repo/src/publisher/population.cpp" "src/publisher/CMakeFiles/btpub_publisher.dir/population.cpp.o" "gcc" "src/publisher/CMakeFiles/btpub_publisher.dir/population.cpp.o.d"
  "/root/repo/src/publisher/profile.cpp" "src/publisher/CMakeFiles/btpub_publisher.dir/profile.cpp.o" "gcc" "src/publisher/CMakeFiles/btpub_publisher.dir/profile.cpp.o.d"
  "/root/repo/src/publisher/publisher.cpp" "src/publisher/CMakeFiles/btpub_publisher.dir/publisher.cpp.o" "gcc" "src/publisher/CMakeFiles/btpub_publisher.dir/publisher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/portal/CMakeFiles/btpub_portal.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/btpub_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/websim/CMakeFiles/btpub_websim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/btpub_util.dir/DependInfo.cmake"
  "/root/repo/build/src/torrent/CMakeFiles/btpub_torrent.dir/DependInfo.cmake"
  "/root/repo/build/src/bencode/CMakeFiles/btpub_bencode.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/btpub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/btpub_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
