file(REMOVE_RECURSE
  "CMakeFiles/btpub_publisher.dir/names.cpp.o"
  "CMakeFiles/btpub_publisher.dir/names.cpp.o.d"
  "CMakeFiles/btpub_publisher.dir/population.cpp.o"
  "CMakeFiles/btpub_publisher.dir/population.cpp.o.d"
  "CMakeFiles/btpub_publisher.dir/profile.cpp.o"
  "CMakeFiles/btpub_publisher.dir/profile.cpp.o.d"
  "CMakeFiles/btpub_publisher.dir/publisher.cpp.o"
  "CMakeFiles/btpub_publisher.dir/publisher.cpp.o.d"
  "libbtpub_publisher.a"
  "libbtpub_publisher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_publisher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
