# Empty compiler generated dependencies file for btpub_publisher.
# This may be replaced when dependencies are built.
