file(REMOVE_RECURSE
  "libbtpub_publisher.a"
)
