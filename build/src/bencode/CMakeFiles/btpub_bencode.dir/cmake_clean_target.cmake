file(REMOVE_RECURSE
  "libbtpub_bencode.a"
)
