# Empty dependencies file for btpub_bencode.
# This may be replaced when dependencies are built.
