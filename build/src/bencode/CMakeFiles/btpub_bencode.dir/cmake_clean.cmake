file(REMOVE_RECURSE
  "CMakeFiles/btpub_bencode.dir/bencode.cpp.o"
  "CMakeFiles/btpub_bencode.dir/bencode.cpp.o.d"
  "libbtpub_bencode.a"
  "libbtpub_bencode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_bencode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
