file(REMOVE_RECURSE
  "libbtpub_tracker.a"
)
