file(REMOVE_RECURSE
  "CMakeFiles/btpub_tracker.dir/announce.cpp.o"
  "CMakeFiles/btpub_tracker.dir/announce.cpp.o.d"
  "CMakeFiles/btpub_tracker.dir/private_tracker.cpp.o"
  "CMakeFiles/btpub_tracker.dir/private_tracker.cpp.o.d"
  "CMakeFiles/btpub_tracker.dir/tracker.cpp.o"
  "CMakeFiles/btpub_tracker.dir/tracker.cpp.o.d"
  "CMakeFiles/btpub_tracker.dir/udp.cpp.o"
  "CMakeFiles/btpub_tracker.dir/udp.cpp.o.d"
  "CMakeFiles/btpub_tracker.dir/udp_server.cpp.o"
  "CMakeFiles/btpub_tracker.dir/udp_server.cpp.o.d"
  "libbtpub_tracker.a"
  "libbtpub_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
