
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracker/announce.cpp" "src/tracker/CMakeFiles/btpub_tracker.dir/announce.cpp.o" "gcc" "src/tracker/CMakeFiles/btpub_tracker.dir/announce.cpp.o.d"
  "/root/repo/src/tracker/private_tracker.cpp" "src/tracker/CMakeFiles/btpub_tracker.dir/private_tracker.cpp.o" "gcc" "src/tracker/CMakeFiles/btpub_tracker.dir/private_tracker.cpp.o.d"
  "/root/repo/src/tracker/tracker.cpp" "src/tracker/CMakeFiles/btpub_tracker.dir/tracker.cpp.o" "gcc" "src/tracker/CMakeFiles/btpub_tracker.dir/tracker.cpp.o.d"
  "/root/repo/src/tracker/udp.cpp" "src/tracker/CMakeFiles/btpub_tracker.dir/udp.cpp.o" "gcc" "src/tracker/CMakeFiles/btpub_tracker.dir/udp.cpp.o.d"
  "/root/repo/src/tracker/udp_server.cpp" "src/tracker/CMakeFiles/btpub_tracker.dir/udp_server.cpp.o" "gcc" "src/tracker/CMakeFiles/btpub_tracker.dir/udp_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/swarm/CMakeFiles/btpub_swarm.dir/DependInfo.cmake"
  "/root/repo/build/src/bencode/CMakeFiles/btpub_bencode.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/btpub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/torrent/CMakeFiles/btpub_torrent.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/btpub_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/btpub_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/btpub_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
