# Empty dependencies file for btpub_tracker.
# This may be replaced when dependencies are built.
