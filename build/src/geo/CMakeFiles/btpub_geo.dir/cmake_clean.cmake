file(REMOVE_RECURSE
  "CMakeFiles/btpub_geo.dir/geo_db.cpp.o"
  "CMakeFiles/btpub_geo.dir/geo_db.cpp.o.d"
  "CMakeFiles/btpub_geo.dir/isp_catalog.cpp.o"
  "CMakeFiles/btpub_geo.dir/isp_catalog.cpp.o.d"
  "libbtpub_geo.a"
  "libbtpub_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
