# Empty compiler generated dependencies file for btpub_geo.
# This may be replaced when dependencies are built.
