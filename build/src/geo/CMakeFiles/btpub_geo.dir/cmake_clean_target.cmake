file(REMOVE_RECURSE
  "libbtpub_geo.a"
)
