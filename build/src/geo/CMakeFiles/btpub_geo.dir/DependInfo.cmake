
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/geo_db.cpp" "src/geo/CMakeFiles/btpub_geo.dir/geo_db.cpp.o" "gcc" "src/geo/CMakeFiles/btpub_geo.dir/geo_db.cpp.o.d"
  "/root/repo/src/geo/isp_catalog.cpp" "src/geo/CMakeFiles/btpub_geo.dir/isp_catalog.cpp.o" "gcc" "src/geo/CMakeFiles/btpub_geo.dir/isp_catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/btpub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/btpub_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
