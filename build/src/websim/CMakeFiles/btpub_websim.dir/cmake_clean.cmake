file(REMOVE_RECURSE
  "CMakeFiles/btpub_websim.dir/appraisal.cpp.o"
  "CMakeFiles/btpub_websim.dir/appraisal.cpp.o.d"
  "CMakeFiles/btpub_websim.dir/website.cpp.o"
  "CMakeFiles/btpub_websim.dir/website.cpp.o.d"
  "libbtpub_websim.a"
  "libbtpub_websim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_websim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
