# Empty dependencies file for btpub_websim.
# This may be replaced when dependencies are built.
