file(REMOVE_RECURSE
  "libbtpub_websim.a"
)
