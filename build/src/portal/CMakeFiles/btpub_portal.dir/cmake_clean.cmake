file(REMOVE_RECURSE
  "CMakeFiles/btpub_portal.dir/category.cpp.o"
  "CMakeFiles/btpub_portal.dir/category.cpp.o.d"
  "CMakeFiles/btpub_portal.dir/portal.cpp.o"
  "CMakeFiles/btpub_portal.dir/portal.cpp.o.d"
  "CMakeFiles/btpub_portal.dir/rss.cpp.o"
  "CMakeFiles/btpub_portal.dir/rss.cpp.o.d"
  "libbtpub_portal.a"
  "libbtpub_portal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_portal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
