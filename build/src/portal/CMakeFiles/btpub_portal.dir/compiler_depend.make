# Empty compiler generated dependencies file for btpub_portal.
# This may be replaced when dependencies are built.
