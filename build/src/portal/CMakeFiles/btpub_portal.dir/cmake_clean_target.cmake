file(REMOVE_RECURSE
  "libbtpub_portal.a"
)
