
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/portal/category.cpp" "src/portal/CMakeFiles/btpub_portal.dir/category.cpp.o" "gcc" "src/portal/CMakeFiles/btpub_portal.dir/category.cpp.o.d"
  "/root/repo/src/portal/portal.cpp" "src/portal/CMakeFiles/btpub_portal.dir/portal.cpp.o" "gcc" "src/portal/CMakeFiles/btpub_portal.dir/portal.cpp.o.d"
  "/root/repo/src/portal/rss.cpp" "src/portal/CMakeFiles/btpub_portal.dir/rss.cpp.o" "gcc" "src/portal/CMakeFiles/btpub_portal.dir/rss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/torrent/CMakeFiles/btpub_torrent.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/btpub_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bencode/CMakeFiles/btpub_bencode.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/btpub_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/btpub_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
