# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "5")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_monitor "/root/repo/build/examples/live_monitor" "6")
set_tests_properties(example_live_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fake_detection "/root/repo/build/examples/fake_detection" "7")
set_tests_properties(example_fake_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_income_study "/root/repo/build/examples/income_study" "8")
set_tests_properties(example_income_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_export_dataset "/root/repo/build/examples/export_dataset" "/root/repo/build/export-test" "9")
set_tests_properties(example_export_dataset PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
