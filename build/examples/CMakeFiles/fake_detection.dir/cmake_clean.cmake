file(REMOVE_RECURSE
  "CMakeFiles/fake_detection.dir/fake_detection.cpp.o"
  "CMakeFiles/fake_detection.dir/fake_detection.cpp.o.d"
  "fake_detection"
  "fake_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fake_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
