# Empty dependencies file for fake_detection.
# This may be replaced when dependencies are built.
