file(REMOVE_RECURSE
  "CMakeFiles/income_study.dir/income_study.cpp.o"
  "CMakeFiles/income_study.dir/income_study.cpp.o.d"
  "income_study"
  "income_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/income_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
