# Empty dependencies file for income_study.
# This may be replaced when dependencies are built.
