file(REMOVE_RECURSE
  "../bench/table3_ovh_comcast"
  "../bench/table3_ovh_comcast.pdb"
  "CMakeFiles/table3_ovh_comcast.dir/table3_ovh_comcast.cpp.o"
  "CMakeFiles/table3_ovh_comcast.dir/table3_ovh_comcast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ovh_comcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
