# Empty dependencies file for table3_ovh_comcast.
# This may be replaced when dependencies are built.
