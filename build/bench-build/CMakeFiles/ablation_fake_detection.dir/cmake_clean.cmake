file(REMOVE_RECURSE
  "../bench/ablation_fake_detection"
  "../bench/ablation_fake_detection.pdb"
  "CMakeFiles/ablation_fake_detection.dir/ablation_fake_detection.cpp.o"
  "CMakeFiles/ablation_fake_detection.dir/ablation_fake_detection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fake_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
