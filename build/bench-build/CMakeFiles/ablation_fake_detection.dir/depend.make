# Empty dependencies file for ablation_fake_detection.
# This may be replaced when dependencies are built.
