file(REMOVE_RECURSE
  "../bench/fig1_contribution"
  "../bench/fig1_contribution.pdb"
  "CMakeFiles/fig1_contribution.dir/fig1_contribution.cpp.o"
  "CMakeFiles/fig1_contribution.dir/fig1_contribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
