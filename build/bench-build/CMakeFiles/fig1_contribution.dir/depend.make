# Empty dependencies file for fig1_contribution.
# This may be replaced when dependencies are built.
