# Empty compiler generated dependencies file for ablation_crawler.
# This may be replaced when dependencies are built.
