file(REMOVE_RECURSE
  "../bench/ablation_crawler"
  "../bench/ablation_crawler.pdb"
  "CMakeFiles/ablation_crawler.dir/ablation_crawler.cpp.o"
  "CMakeFiles/ablation_crawler.dir/ablation_crawler.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crawler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
