file(REMOVE_RECURSE
  "../bench/fig2_content_type"
  "../bench/fig2_content_type.pdb"
  "CMakeFiles/fig2_content_type.dir/fig2_content_type.cpp.o"
  "CMakeFiles/fig2_content_type.dir/fig2_content_type.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_content_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
