file(REMOVE_RECURSE
  "../bench/fig3_popularity"
  "../bench/fig3_popularity.pdb"
  "CMakeFiles/fig3_popularity.dir/fig3_popularity.cpp.o"
  "CMakeFiles/fig3_popularity.dir/fig3_popularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
