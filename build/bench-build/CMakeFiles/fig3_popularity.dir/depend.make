# Empty dependencies file for fig3_popularity.
# This may be replaced when dependencies are built.
