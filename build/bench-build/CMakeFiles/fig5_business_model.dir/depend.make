# Empty dependencies file for fig5_business_model.
# This may be replaced when dependencies are built.
