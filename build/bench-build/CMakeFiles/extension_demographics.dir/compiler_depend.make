# Empty compiler generated dependencies file for extension_demographics.
# This may be replaced when dependencies are built.
