file(REMOVE_RECURSE
  "../bench/extension_demographics"
  "../bench/extension_demographics.pdb"
  "CMakeFiles/extension_demographics.dir/extension_demographics.cpp.o"
  "CMakeFiles/extension_demographics.dir/extension_demographics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_demographics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
