file(REMOVE_RECURSE
  "../bench/fig4_seeding"
  "../bench/fig4_seeding.pdb"
  "CMakeFiles/fig4_seeding.dir/fig4_seeding.cpp.o"
  "CMakeFiles/fig4_seeding.dir/fig4_seeding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_seeding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
