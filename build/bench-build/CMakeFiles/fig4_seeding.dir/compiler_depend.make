# Empty compiler generated dependencies file for fig4_seeding.
# This may be replaced when dependencies are built.
