# Empty compiler generated dependencies file for table2_isps.
# This may be replaced when dependencies are built.
