file(REMOVE_RECURSE
  "../bench/table2_isps"
  "../bench/table2_isps.pdb"
  "CMakeFiles/table2_isps.dir/table2_isps.cpp.o"
  "CMakeFiles/table2_isps.dir/table2_isps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_isps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
