# Empty dependencies file for table4_longitudinal.
# This may be replaced when dependencies are built.
