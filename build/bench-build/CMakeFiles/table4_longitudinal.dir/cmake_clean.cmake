file(REMOVE_RECURSE
  "../bench/table4_longitudinal"
  "../bench/table4_longitudinal.pdb"
  "CMakeFiles/table4_longitudinal.dir/table4_longitudinal.cpp.o"
  "CMakeFiles/table4_longitudinal.dir/table4_longitudinal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_longitudinal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
