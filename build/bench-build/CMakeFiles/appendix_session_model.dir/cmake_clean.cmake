file(REMOVE_RECURSE
  "../bench/appendix_session_model"
  "../bench/appendix_session_model.pdb"
  "CMakeFiles/appendix_session_model.dir/appendix_session_model.cpp.o"
  "CMakeFiles/appendix_session_model.dir/appendix_session_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_session_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
