# Empty dependencies file for appendix_session_model.
# This may be replaced when dependencies are built.
