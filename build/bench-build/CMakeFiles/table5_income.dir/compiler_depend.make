# Empty compiler generated dependencies file for table5_income.
# This may be replaced when dependencies are built.
