file(REMOVE_RECURSE
  "../bench/table5_income"
  "../bench/table5_income.pdb"
  "CMakeFiles/table5_income.dir/table5_income.cpp.o"
  "CMakeFiles/table5_income.dir/table5_income.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_income.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
