file(REMOVE_RECURSE
  "libbtpub_bench_common.a"
)
