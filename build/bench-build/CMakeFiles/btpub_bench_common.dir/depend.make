# Empty dependencies file for btpub_bench_common.
# This may be replaced when dependencies are built.
