file(REMOVE_RECURSE
  "CMakeFiles/btpub_bench_common.dir/common.cpp.o"
  "CMakeFiles/btpub_bench_common.dir/common.cpp.o.d"
  "libbtpub_bench_common.a"
  "libbtpub_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
