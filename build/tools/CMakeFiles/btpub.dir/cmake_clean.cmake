file(REMOVE_RECURSE
  "CMakeFiles/btpub.dir/btpub_cli.cpp.o"
  "CMakeFiles/btpub.dir/btpub_cli.cpp.o.d"
  "btpub"
  "btpub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btpub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
