# Empty compiler generated dependencies file for btpub.
# This may be replaced when dependencies are built.
