# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_feed "/root/repo/build/tools/btpub" "feed" "--scenario" "quick" "--seed" "4")
set_tests_properties(cli_feed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
