# Empty dependencies file for demographics_test.
# This may be replaced when dependencies are built.
