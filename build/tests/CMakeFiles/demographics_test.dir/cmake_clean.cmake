file(REMOVE_RECURSE
  "CMakeFiles/demographics_test.dir/demographics_test.cpp.o"
  "CMakeFiles/demographics_test.dir/demographics_test.cpp.o.d"
  "demographics_test"
  "demographics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demographics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
