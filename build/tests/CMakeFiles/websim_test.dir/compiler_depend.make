# Empty compiler generated dependencies file for websim_test.
# This may be replaced when dependencies are built.
