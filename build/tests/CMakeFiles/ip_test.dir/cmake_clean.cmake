file(REMOVE_RECURSE
  "CMakeFiles/ip_test.dir/ip_test.cpp.o"
  "CMakeFiles/ip_test.dir/ip_test.cpp.o.d"
  "ip_test"
  "ip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
