file(REMOVE_RECURSE
  "CMakeFiles/strings_time_test.dir/strings_time_test.cpp.o"
  "CMakeFiles/strings_time_test.dir/strings_time_test.cpp.o.d"
  "strings_time_test"
  "strings_time_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strings_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
