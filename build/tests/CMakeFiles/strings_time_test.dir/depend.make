# Empty dependencies file for strings_time_test.
# This may be replaced when dependencies are built.
