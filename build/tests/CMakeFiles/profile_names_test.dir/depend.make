# Empty dependencies file for profile_names_test.
# This may be replaced when dependencies are built.
