file(REMOVE_RECURSE
  "CMakeFiles/profile_names_test.dir/profile_names_test.cpp.o"
  "CMakeFiles/profile_names_test.dir/profile_names_test.cpp.o.d"
  "profile_names_test"
  "profile_names_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_names_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
