# Empty compiler generated dependencies file for generator_network_test.
# This may be replaced when dependencies are built.
