file(REMOVE_RECURSE
  "CMakeFiles/generator_network_test.dir/generator_network_test.cpp.o"
  "CMakeFiles/generator_network_test.dir/generator_network_test.cpp.o.d"
  "generator_network_test"
  "generator_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
