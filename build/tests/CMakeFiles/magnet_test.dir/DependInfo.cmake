
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/magnet_test.cpp" "tests/CMakeFiles/magnet_test.dir/magnet_test.cpp.o" "gcc" "tests/CMakeFiles/magnet_test.dir/magnet_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/btpub_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/btpub_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/crawler/CMakeFiles/btpub_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/publisher/CMakeFiles/btpub_publisher.dir/DependInfo.cmake"
  "/root/repo/build/src/websim/CMakeFiles/btpub_websim.dir/DependInfo.cmake"
  "/root/repo/build/src/swarm/CMakeFiles/btpub_swarm.dir/DependInfo.cmake"
  "/root/repo/build/src/tracker/CMakeFiles/btpub_tracker.dir/DependInfo.cmake"
  "/root/repo/build/src/portal/CMakeFiles/btpub_portal.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/btpub_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/torrent/CMakeFiles/btpub_torrent.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/btpub_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/btpub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bencode/CMakeFiles/btpub_bencode.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/btpub_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/btpub_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
