# Empty compiler generated dependencies file for udp_tracker_test.
# This may be replaced when dependencies are built.
