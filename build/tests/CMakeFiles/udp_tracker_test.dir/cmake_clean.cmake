file(REMOVE_RECURSE
  "CMakeFiles/udp_tracker_test.dir/udp_tracker_test.cpp.o"
  "CMakeFiles/udp_tracker_test.dir/udp_tracker_test.cpp.o.d"
  "udp_tracker_test"
  "udp_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
