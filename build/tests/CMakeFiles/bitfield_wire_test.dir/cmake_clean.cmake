file(REMOVE_RECURSE
  "CMakeFiles/bitfield_wire_test.dir/bitfield_wire_test.cpp.o"
  "CMakeFiles/bitfield_wire_test.dir/bitfield_wire_test.cpp.o.d"
  "bitfield_wire_test"
  "bitfield_wire_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitfield_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
