# Empty dependencies file for bitfield_wire_test.
# This may be replaced when dependencies are built.
