file(REMOVE_RECURSE
  "CMakeFiles/bencode_test.dir/bencode_test.cpp.o"
  "CMakeFiles/bencode_test.dir/bencode_test.cpp.o.d"
  "bencode_test"
  "bencode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bencode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
