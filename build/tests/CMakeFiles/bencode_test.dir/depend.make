# Empty dependencies file for bencode_test.
# This may be replaced when dependencies are built.
