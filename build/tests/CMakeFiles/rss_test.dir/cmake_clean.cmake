file(REMOVE_RECURSE
  "CMakeFiles/rss_test.dir/rss_test.cpp.o"
  "CMakeFiles/rss_test.dir/rss_test.cpp.o.d"
  "rss_test"
  "rss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
