# Empty compiler generated dependencies file for private_tracker_test.
# This may be replaced when dependencies are built.
