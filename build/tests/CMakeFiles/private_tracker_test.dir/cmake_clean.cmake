file(REMOVE_RECURSE
  "CMakeFiles/private_tracker_test.dir/private_tracker_test.cpp.o"
  "CMakeFiles/private_tracker_test.dir/private_tracker_test.cpp.o.d"
  "private_tracker_test"
  "private_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
