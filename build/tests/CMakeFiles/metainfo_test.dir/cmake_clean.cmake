file(REMOVE_RECURSE
  "CMakeFiles/metainfo_test.dir/metainfo_test.cpp.o"
  "CMakeFiles/metainfo_test.dir/metainfo_test.cpp.o.d"
  "metainfo_test"
  "metainfo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metainfo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
