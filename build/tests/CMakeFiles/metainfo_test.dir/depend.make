# Empty dependencies file for metainfo_test.
# This may be replaced when dependencies are built.
