// Figure 1 — percentage of content published by the top x% of publishers,
// plus §3.1's headline numbers (top-100 share, top-IP consumption).
#include "analysis/contribution.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::size_t threads = bench::threads_from_args(argc, argv);
  ScenarioConfig pb10 = ScenarioConfig::pb10(bench::kDefaultSeed);
  pb10.threads = threads;
  bench::banner("Figure 1", "Content published by the top x% of publishers",
                "top 3% of publishers contribute ~40% of content; ~100 "
                "publishers own 2/3 of content and 3/4 of downloads",
                pb10);

  const std::vector<double> xs{0.5, 1, 2, 3, 5, 10, 20, 40, 60, 80, 100};
  AsciiTable table("Figure 1 — cumulative content share of top x% publishers");
  std::vector<std::string> header{"dataset"};
  for (double x : xs) header.push_back(format_double(x, 1) + "%");
  header.push_back("gini");
  table.header(std::move(header));

  for (ScenarioConfig config :
       {ScenarioConfig::mn08(bench::kDefaultSeed),
        ScenarioConfig::pb09(bench::kDefaultSeed), pb10}) {
    config.threads = threads;
    const Dataset dataset = bench::dataset_for(config);
    const IdentityAnalysis identity(dataset, IspCatalog::standard().db(), 100,
                                    {}, threads);
    const ContributionCurve curve = contribution_curve(identity, xs);
    std::vector<std::string> row{dataset.name};
    for (const LorenzPoint& p : curve.points) {
      row.push_back(format_double(p.content_percent, 1));
    }
    row.push_back(format_double(curve.gini, 2));
    table.row(std::move(row));
  }
  table.print();

  // §3.1/§3.3 headline splits on pb10.
  const Dataset dataset = bench::dataset_for(pb10);
  const IspCatalog catalog = IspCatalog::standard();
  const IdentityAnalysis identity(dataset, catalog.db(), 100, {}, threads);
  const auto fake = identity.share_of(TargetGroup::Fake);
  const auto top = identity.share_of(TargetGroup::Top);

  AsciiTable split("pb10 headline splits (paper: fake 30%/25%, top 37%/50%, "
                   "together 2/3 and 3/4)");
  split.header({"group", "publishers", "content share", "download share"});
  split.row({"Fake", std::to_string(identity.fake_usernames().size()),
             percent(fake.content), percent(fake.downloads)});
  split.row({"Top (non-fake of top-100)", std::to_string(identity.top().size()),
             percent(top.content), percent(top.downloads)});
  split.row({"Fake+Top", "-", percent(fake.content + top.content),
             percent(fake.downloads + top.downloads)});
  split.note("fake usernames inside the top-100 (paper: 16): " +
             std::to_string(identity.compromised_in_top()));
  split.print();

  const auto consumption =
      top_publisher_consumption(dataset, identity, 100, threads);
  AsciiTable consume("Top-100 publisher IPs as consumers (paper: 40% download "
                     "nothing, 80% fewer than 5 files)");
  consume.header({"zero downloads", "under 5 downloads", "of"});
  consume.row({std::to_string(consumption.zero_downloads),
               std::to_string(consumption.under_five_downloads),
               std::to_string(consumption.considered)});
  consume.print();
  return 0;
}
