// Table 4 — lifetime and average publishing rate for the business classes
// of top publishers (BT Portals / Other Web Sites / Altruistic), from the
// portal's per-user history pages.
#include "analysis/classify.hpp"
#include "analysis/longitudinal.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::size_t threads = bench::threads_from_args(argc, argv);
  ScenarioConfig pb10 = ScenarioConfig::pb10(bench::kDefaultSeed);
  pb10.threads = threads;
  bench::banner("Table 4", "Lifetime and publishing rate per business class",
                "BT Portals 63/466/1816 days at 0.57/11.43/79.91 per day; "
                "Other Webs rate 0.38/4.31/18.98; Altruistic 10/376/1899 days "
                "at 0.10/3.80/23.67 (min/avg/max, full scale)",
                pb10);

  auto ecosystem = bench::build_ecosystem(pb10);
  const Dataset dataset = bench::dataset_for(pb10, *ecosystem);
  const IdentityAnalysis identity(dataset, ecosystem->geo(), 100, {}, threads);
  Rng rng(pb10.seed);
  const auto classification = classify_top_publishers(
      dataset, identity, ecosystem->websites(), 5, rng, threads);

  AsciiTable table("Table 4 — per-class lifetime and publishing rate");
  table.header({"class", "lifetime days (min/med/avg/max)",
                "rate per day (min/med/avg/max)", "publishers"});
  for (const LongitudinalRow& row : longitudinal_table(dataset, classification)) {
    auto fmt = [](const SummaryRow& s) {
      return format_double(s.min, 2) + " / " + format_double(s.median, 2) +
             " / " + format_double(s.avg, 2) + " / " + format_double(s.max, 2);
    };
    table.row({std::string(to_string(row.cls)), fmt(row.lifetime_days),
               fmt(row.publish_rate), std::to_string(row.publishers)});
  }
  table.note("rates are at the scenario's rate scale (" +
             format_double(pb10.population.rate_scale, 2) +
             "x of full scale); lifetimes are unscaled.");
  table.note("shape to match: profit-driven classes out-publish altruistic");
  table.note("ones; portal owners have the highest rates; lifetimes of");
  table.note("hundreds of days across all classes.");
  table.print();
  return 0;
}
