// Table 3 — characteristics of OVH vs Comcast feeders: fed torrents,
// distinct IPs, /16 prefixes and geographic locations, plus the §3.2
// observation that OVH addresses never show up as consumers.
#include "analysis/isp.hpp"
#include "common.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::size_t threads = bench::threads_from_args(argc, argv);
  ScenarioConfig pb10 = ScenarioConfig::pb10(bench::kDefaultSeed);
  pb10.threads = threads;
  bench::banner("Table 3", "OVH vs Comcast feeder profiles",
                "pb10: OVH 2213 torrents / 92 IPs / 7 prefixes / 4 locations; "
                "Comcast 408 / 185 / 139 / 147 — concentrated racks vs "
                "scattered homes",
                pb10);

  const IspCatalog catalog = IspCatalog::standard();
  AsciiTable table("Table 3 — feeder profiles per dataset");
  table.header({"row", "fed torrents", "IP addr", "/16 pref.", "geo loc.",
                "consumer IPs"});
  for (ScenarioConfig config :
       {ScenarioConfig::mn08(bench::kDefaultSeed),
        ScenarioConfig::pb09(bench::kDefaultSeed), pb10}) {
    config.threads = threads;
    const Dataset dataset = bench::dataset_for(config);
    for (const char* isp : {"OVH", "Comcast"}) {
      const IspFeederProfile profile =
          isp_feeder_profile(dataset, catalog.db(), isp);
      table.row({std::string(isp) + " (" + dataset.name + ")",
                 std::to_string(profile.fed_torrents),
                 std::to_string(profile.distinct_ips),
                 std::to_string(profile.distinct_prefixes16),
                 std::to_string(profile.distinct_locations),
                 std::to_string(consumers_from_isp(dataset, catalog.db(), isp))});
    }
    table.separator();
  }
  table.note("shape to match: OVH feeds several times more content from far");
  table.note("fewer addresses, a handful of prefixes and 2-4 data-center");
  table.note("cities, and contributes (almost) no consumers.");
  table.print();
  return 0;
}
