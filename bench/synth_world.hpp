// synth_world.hpp — deterministic synthetic crawl worlds for the perf
// benches. Shared by build_perf's snapshot suite and analysis_perf so both
// measure the same world byte-for-byte: ~`sessions` downloader entries
// spread over sessions/20 torrents, usernames drawn from a 10K pool
// (interning realism: heavy cross-torrent sharing), titles and filenames
// unique per torrent (arena growth realism). Every torrent draws from its
// own derive_seed substream, so the world is a pure function of
// (sessions, seed).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "crawler/dataset.hpp"
#include "util/rng.hpp"

namespace btpub::bench {

inline Dataset synth_dataset(std::uint64_t sessions, std::uint64_t seed) {
  Dataset d;
  d.name = "synthetic-snapshot";
  d.style = DatasetStyle::Pb10;
  d.window_start = 0;
  d.window_end = days(44);

  const std::uint64_t torrents = std::max<std::uint64_t>(1, sessions / 20);
  const std::uint64_t user_pool =
      std::min<std::uint64_t>(10'000, std::max<std::uint64_t>(1, torrents / 4));
  d.torrents.reserve(torrents);
  d.downloaders.reserve(torrents);
  d.publisher_sightings.reserve(torrents);

  char buf[64];
  for (std::uint64_t i = 0; i < torrents; ++i) {
    Rng rng(derive_seed(seed, 0xda7a, i));
    TorrentRecord r;
    r.portal_id = static_cast<TorrentId>(i);
    for (std::size_t k = 0; k < r.infohash.bytes.size(); ++k) {
      r.infohash.bytes[k] = static_cast<std::uint8_t>(rng() >> 56);
    }
    std::snprintf(buf, sizeof buf, "Title.%llu.x264",
                  static_cast<unsigned long long>(i));
    r.title = buf;
    r.category = static_cast<ContentCategory>(rng.uniform_int(0, 5));
    r.language = static_cast<Language>(rng.uniform_int(0, 3));
    r.size_bytes = rng.uniform_int(1 << 20, std::int64_t{1} << 33);
    std::snprintf(buf, sizeof buf, "user%llu",
                  static_cast<unsigned long long>(rng.uniform_int(
                      0, static_cast<std::int64_t>(user_pool) - 1)));
    r.username = buf;
    if (rng.uniform() < 0.6) {
      r.publisher_ip = IpAddress(static_cast<std::uint32_t>(rng()));
    }
    r.published_at = rng.uniform_int(0, d.window_end);
    r.first_seen = r.published_at;
    if (rng.uniform() < 0.1) r.textbox = "visit http://promo.example/now";
    const int n_files = static_cast<int>(rng.uniform_int(1, 3));
    for (int f = 0; f < n_files; ++f) {
      std::snprintf(buf, sizeof buf, "payload.%llu.part%d.rar",
                    static_cast<unsigned long long>(i), f);
      r.payload_filenames.emplace_back(buf);
    }
    r.piece_count = static_cast<std::size_t>(rng.uniform_int(16, 4096));
    r.initial_seeders = static_cast<std::uint32_t>(rng.uniform_int(0, 50));
    r.initial_peers = static_cast<std::uint32_t>(rng.uniform_int(0, 200));
    r.query_count = static_cast<std::uint32_t>(rng.uniform_int(1, 40));

    // Spread the session budget: torrent i gets the base share, the first
    // `sessions % torrents` torrents one extra.
    std::uint64_t quota = sessions / torrents + (i < sessions % torrents ? 1 : 0);
    std::vector<IpAddress> ips;
    ips.reserve(quota);
    for (std::uint64_t s = 0; s < quota; ++s) {
      ips.emplace_back(static_cast<std::uint32_t>(rng()));
    }
    r.max_concurrent = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        quota, 1 + static_cast<std::uint64_t>(rng.uniform_int(1, 64))));
    std::vector<SimTime> sightings;
    if (r.publisher_ip) {
      const int n = static_cast<int>(rng.uniform_int(1, 3));
      for (int s = 0; s < n; ++s) {
        sightings.push_back(rng.uniform_int(r.published_at, d.window_end));
      }
    }
    d.torrents.push_back(std::move(r));
    d.downloaders.push_back(std::move(ips));
    d.publisher_sightings.push_back(std::move(sightings));
  }
  for (std::uint64_t u = 0; u < user_pool; ++u) {
    Rng rng(derive_seed(seed, 0x05e4, u));
    UserPage page;
    std::snprintf(buf, sizeof buf, "user%llu",
                  static_cast<unsigned long long>(u));
    page.username = buf;
    page.banned = rng.uniform() < 0.05;
    const int n = static_cast<int>(rng.uniform_int(0, 8));
    for (int s = 0; s < n; ++s) {
      page.publish_times.push_back(rng.uniform_int(0, d.window_end));
    }
    d.user_pages.emplace(page.username, std::move(page));
  }
  return d;
}

inline std::uint64_t dataset_sessions(const Dataset& d) {
  std::uint64_t n = 0;
  for (const auto& ips : d.downloaders) n += ips.size();
  return n;
}

}  // namespace btpub::bench
