// Component microbenchmarks (google-benchmark): the hot paths of the
// measurement apparatus — SHA-1, bencode, tracker announces over a large
// swarm, peer sampling, session reconstruction, and the parallel crawl
// engine's thread scaling.
#include <benchmark/benchmark.h>

#include "analysis/session.hpp"
#include "bencode/bencode.hpp"
#include "core/ecosystem.hpp"
#include "crawler/crawler.hpp"
#include "crypto/sha1.hpp"
#include "torrent/metainfo.hpp"
#include "tracker/tracker.hpp"

namespace btpub {
namespace {

void BM_Sha1Hash(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Hash)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_BencodeEncodeMetainfo(benchmark::State& state) {
  const Metainfo metainfo = Metainfo::make(
      "http://tracker.example/announce", "Some.Release.2010",
      {{"Some.Release.2010.avi", 734003200}, {"Some.Release.2010.nfo", 4096}},
      256 * 1024, "salt");
  for (auto _ : state) {
    benchmark::DoNotOptimize(metainfo.encode());
  }
}
BENCHMARK(BM_BencodeEncodeMetainfo);

void BM_BencodeParseMetainfo(benchmark::State& state) {
  const std::string bytes =
      Metainfo::make("http://tracker.example/announce", "Some.Release.2010",
                     {{"Some.Release.2010.avi", 734003200}}, 256 * 1024, "salt")
          .encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Metainfo::parse(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_BencodeParseMetainfo);

Swarm make_swarm(std::size_t peers) {
  Swarm swarm(Sha1::hash("bench"), 1024, 0);
  for (std::uint32_t i = 0; i < peers; ++i) {
    PeerSession s;
    s.endpoint = Endpoint{IpAddress(0x0D000000 + i), 6881};
    s.arrive = static_cast<SimTime>(i % 1000);
    s.depart = days(30);
    if (i % 7 == 0) s.complete_at = s.arrive + hours(2);
    swarm.add_session(s);
  }
  swarm.finalize();
  return swarm;
}

void BM_TrackerAnnounce(benchmark::State& state) {
  Swarm swarm = make_swarm(static_cast<std::size_t>(state.range(0)));
  Tracker tracker(TrackerConfig{}, Rng(1));
  tracker.host_swarm(swarm);
  AnnounceRequest request;
  request.infohash = swarm.infohash();
  request.numwant = 200;
  request.now = days(1);
  std::uint32_t client = 0;
  for (auto _ : state) {
    request.client = Endpoint{IpAddress(0x0E000000 + (client++ & 0xffff)), 1};
    benchmark::DoNotOptimize(tracker.announce(request));
  }
}
BENCHMARK(BM_TrackerAnnounce)->Arg(100)->Arg(5000)->Arg(50000);

// Full announce round trip exactly as the crawler's monitor loop issues it
// post-fast-path: struct-level announce_into with per-worker scratch, no
// query-string or bencode round trip. One client re-announcing at the
// tracker's enforced gap (the steady-state pattern); time wraps before the
// swarm dies, which re-runs the sweep rebuild slow path once per ~3K
// iterations, just like BM_SwarmSweepAdvance.
void BM_AnnounceRoundTrip(benchmark::State& state) {
  Swarm swarm = make_swarm(static_cast<std::size_t>(state.range(0)));
  Tracker tracker(TrackerConfig{}, Rng(1));
  tracker.host_swarm(swarm);
  const SimDuration gap = tracker.enforced_gap() + kSecond;
  AnnounceRequest request;
  request.infohash = swarm.infohash();
  request.client = Endpoint{IpAddress(0x0E000001), 6881};
  request.numwant = 200;
  AnnounceReply reply;
  Tracker::AnnounceScratch scratch;
  SimTime now = hours(1);
  for (auto _ : state) {
    if (now > days(29)) {
      // Fresh client on wrap, BEFORE taking the timestamp, so the rewound
      // clock never pairs a stale last-query entry with an earlier time
      // (which would read as a rate violation and eventually a blacklist).
      now = hours(1);
      request.client.ip = IpAddress(request.client.ip.value() + 1);
    }
    request.now = now;
    now += gap;
    tracker.announce_into(request, reply, scratch);
    benchmark::DoNotOptimize(reply.peers.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnnounceRoundTrip)->Arg(100)->Arg(5000)->Arg(50000);

// The same round trip through the wire-format shim (to_query_string →
// handle_get → parse/encode → decode_announce_reply) — the pre-fast-path
// crawler inner loop, kept as a benchmark so the strings-vs-structs gap
// stays visible.
void BM_AnnounceRoundTripHttp(benchmark::State& state) {
  Swarm swarm = make_swarm(static_cast<std::size_t>(state.range(0)));
  Tracker tracker(TrackerConfig{}, Rng(1));
  tracker.host_swarm(swarm);
  const SimDuration gap = tracker.enforced_gap() + kSecond;
  AnnounceRequest request;
  request.infohash = swarm.infohash();
  request.client = Endpoint{IpAddress(0x0E000002), 6881};
  request.numwant = 200;
  SimTime now = hours(1);
  for (auto _ : state) {
    if (now > days(29)) {
      now = hours(1);
      request.client.ip = IpAddress(request.client.ip.value() + 1);
    }
    request.now = now;
    now += gap;
    const AnnounceReply reply =
        decode_announce_reply(tracker.handle_get(to_query_string(request)));
    benchmark::DoNotOptimize(reply.peers.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnnounceRoundTripHttp)->Arg(100)->Arg(5000)->Arg(50000);

void BM_EncodeAnnounceReply(benchmark::State& state) {
  AnnounceReply reply;
  reply.ok = true;
  reply.interval = minutes(12);
  reply.complete = 17;
  reply.incomplete = 183;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0)); ++i) {
    reply.peers.push_back(Endpoint{IpAddress(0x0D000000 + i),
                                   static_cast<std::uint16_t>(1024 + i)});
  }
  std::string buffer;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    encode_announce_reply_into(reply, buffer);
    benchmark::DoNotOptimize(buffer.data());
    bytes += static_cast<std::int64_t>(buffer.size());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_EncodeAnnounceReply)->Arg(50)->Arg(200);

void BM_SwarmSweepAdvance(benchmark::State& state) {
  Swarm swarm = make_swarm(50000);
  SimTime t = 0;
  for (auto _ : state) {
    t += minutes(12);
    if (t > days(29)) {
      t = 0;  // triggers the rebuild slow path once per wrap
    }
    benchmark::DoNotOptimize(swarm.counts_at(t));
  }
}
BENCHMARK(BM_SwarmSweepAdvance);

void BM_ReconstructSessions(benchmark::State& state) {
  std::vector<SimTime> sightings;
  Rng rng(2);
  SimTime t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += minutes(10) + static_cast<SimDuration>(rng.uniform_int(0, minutes(20)));
    if (i % 50 == 49) t += hours(9);  // periodic offline gaps
    sightings.push_back(t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reconstruct_sessions(sightings, hours(4)));
  }
}
BENCHMARK(BM_ReconstructSessions);

void BM_DiscoveryProbability(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(discovery_probability(50, 165, 13));
  }
}
BENCHMARK(BM_DiscoveryProbability);

// Parallel crawl throughput: full crawl of a quick-scenario ecosystem at
// 1/2/4/8 worker threads. The ecosystem is built once; each iteration
// resets the tracker's client state and re-runs the whole crawl. The
// resulting dataset is byte-identical at every thread count — only the
// wall time changes.
void BM_ParallelCrawlWindow(benchmark::State& state) {
  static Ecosystem* ecosystem = [] {
    auto* e = new Ecosystem(ScenarioConfig::quick(42));
    e->build();
    return e;
  }();
  CrawlerConfig config = ecosystem->config().crawler;
  config.threads = static_cast<std::size_t>(state.range(0));
  std::size_t torrents = 0;
  for (auto _ : state) {
    ecosystem->tracker().reset_state(42 ^ 0x7214CBull);
    Crawler crawler(ecosystem->portal(), ecosystem->tracker(),
                    ecosystem->network(), ecosystem->geo(), config,
                    42 ^ 0xC4A37E5ull);
    const Dataset dataset =
        crawler.crawl_window(0, ecosystem->config().window);
    torrents = dataset.torrent_count();
    benchmark::DoNotOptimize(dataset);
  }
  state.counters["torrents"] = static_cast<double>(torrents);
  state.counters["torrents/s"] = benchmark::Counter(
      static_cast<double>(torrents * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelCrawlWindow)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace
}  // namespace btpub

BENCHMARK_MAIN();
