// Figure 3 — average number of downloaders per torrent per publisher
// (box plots across the target groups).
#include "analysis/popularity.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main() {
  const ScenarioConfig pb10 = ScenarioConfig::pb10(bench::kDefaultSeed);
  bench::banner("Figure 3", "Avg downloaders per torrent per publisher",
                "top median ~7x All; Top-HP ~1.5x Top-CI; Fake least popular",
                pb10);

  const Dataset dataset = bench::dataset_for(pb10);
  const IspCatalog catalog = IspCatalog::standard();
  const IdentityAnalysis identity(dataset, catalog.db(), 100);
  Rng rng(pb10.seed);

  AsciiTable table("Figure 3 — per-publisher avg downloaders (box plots, pb10)");
  table.header({"group", "p25", "median", "p75", "publishers"});
  double all_median = 0.0, top_median = 0.0, hp_median = 0.0, ci_median = 0.0,
         fake_median = 0.0;
  for (const PopularityBox& box : popularity_panel(identity, 400, rng)) {
    table.row({std::string(to_string(box.group)), format_double(box.box.p25, 1),
               format_double(box.box.median, 1), format_double(box.box.p75, 1),
               std::to_string(box.box.count)});
    switch (box.group) {
      case TargetGroup::All:
        all_median = box.box.median;
        break;
      case TargetGroup::Fake:
        fake_median = box.box.median;
        break;
      case TargetGroup::Top:
        top_median = box.box.median;
        break;
      case TargetGroup::TopHP:
        hp_median = box.box.median;
        break;
      case TargetGroup::TopCI:
        ci_median = box.box.median;
        break;
    }
  }
  if (all_median > 0 && ci_median > 0) {
    table.note("Top/All median ratio (paper ~7x): " +
               format_double(top_median / all_median, 1) + "x");
    table.note("Top-HP/Top-CI median ratio (paper ~1.5x): " +
               format_double(hp_median / ci_median, 1) + "x");
    table.note(std::string("Fake is least popular: ") +
               (fake_median <= all_median ? "yes" : "NO"));
  }
  table.print();
  return 0;
}
