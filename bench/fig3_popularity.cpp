// Figure 3 — average number of downloaders per torrent per publisher
// (box plots across the target groups), plus the raw per-torrent
// popularity histogram with honest tail accounting.
#include "analysis/popularity.hpp"
#include "common.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::size_t threads = bench::threads_from_args(argc, argv);
  ScenarioConfig pb10 = ScenarioConfig::pb10(bench::kDefaultSeed);
  pb10.threads = threads;
  bench::banner("Figure 3", "Avg downloaders per torrent per publisher",
                "top median ~7x All; Top-HP ~1.5x Top-CI; Fake least popular",
                pb10);

  const Dataset dataset = bench::dataset_for(pb10);
  const IspCatalog catalog = IspCatalog::standard();
  const IdentityAnalysis identity(dataset, catalog.db(), 100, {}, threads);
  Rng rng(pb10.seed);

  AsciiTable table("Figure 3 — per-publisher avg downloaders (box plots, pb10)");
  table.header({"group", "p25", "median", "p75", "publishers"});
  double all_median = 0.0, top_median = 0.0, hp_median = 0.0, ci_median = 0.0,
         fake_median = 0.0;
  for (const PopularityBox& box : popularity_panel(identity, 400, rng)) {
    table.row({std::string(to_string(box.group)), format_double(box.box.p25, 1),
               format_double(box.box.median, 1), format_double(box.box.p75, 1),
               std::to_string(box.box.count)});
    switch (box.group) {
      case TargetGroup::All:
        all_median = box.box.median;
        break;
      case TargetGroup::Fake:
        fake_median = box.box.median;
        break;
      case TargetGroup::Top:
        top_median = box.box.median;
        break;
      case TargetGroup::TopHP:
        hp_median = box.box.median;
        break;
      case TargetGroup::TopCI:
        ci_median = box.box.median;
        break;
    }
  }
  if (all_median > 0 && ci_median > 0) {
    table.note("Top/All median ratio (paper ~7x): " +
               format_double(top_median / all_median, 1) + "x");
    table.note("Top-HP/Top-CI median ratio (paper ~1.5x): " +
               format_double(hp_median / ci_median, 1) + "x");
    table.note(std::string("Fake is least popular: ") +
               (fake_median <= all_median ? "yes" : "NO"));
  }
  table.print();

  // Raw per-torrent downloader-count distribution. The histogram keeps the
  // heavy tail out of the edge bins: overflow reports how many torrents
  // exceed the plotted range instead of silently inflating the last bucket.
  Histogram histogram(0.0, 200.0, 10);
  for (const auto& downloaders : dataset.downloaders) {
    histogram.add(static_cast<double>(downloaders.size()));
  }
  AsciiTable dist("Per-torrent distinct downloaders (histogram)");
  dist.header({"range", "torrents", "fraction"});
  const double width =
      (histogram.hi - histogram.lo) / static_cast<double>(histogram.counts.size());
  for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
    const double bin_lo = histogram.lo + width * static_cast<double>(i);
    dist.row({"[" + format_double(bin_lo, 0) + ", " +
                  format_double(bin_lo + width, 0) + ")",
              std::to_string(histogram.counts[i]),
              format_double(histogram.fraction(i) * 100.0, 1) + "%"});
  }
  dist.note("in range " + std::to_string(histogram.total()) + " / observed " +
            std::to_string(histogram.observed()) + "; overflow (>200 dl): " +
            std::to_string(histogram.overflow) + ", underflow: " +
            std::to_string(histogram.underflow));
  dist.print();
  return 0;
}
