// Extension — downloader & publisher demographics. Not a numbered table in
// the paper, but the §2 GeoIP mapping applied to the consumer side, the
// demographic view the BitTorrent-ecosystem literature the paper builds on
// (Zhang et al., Pouwelse et al.) reports. Also reprises §3.2's
// supply-vs-demand asymmetry: publishers sit in data-center countries,
// downloaders everywhere.
#include "analysis/demographics.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::size_t threads = bench::threads_from_args(argc, argv);
  ScenarioConfig pb10 = ScenarioConfig::pb10(bench::kDefaultSeed);
  pb10.threads = threads;
  bench::banner("Extension", "Downloader & publisher demographics",
                "supply concentrates at hosting countries (FR/US data "
                "centers); demand scatters across eyeball ISPs worldwide",
                pb10);

  const Dataset dataset = bench::dataset_for(pb10);
  const IspCatalog catalog = IspCatalog::standard();
  const auto demo = downloader_demographics(dataset, catalog.db(), 10, threads);

  AsciiTable countries("Top downloader countries");
  countries.header({"country", "distinct IPs", "share"});
  for (const DemographicRow& row : demo.by_country) {
    countries.row({row.label, std::to_string(row.downloaders),
                   percent(row.share)});
  }
  countries.note("located " + std::to_string(demo.located_ips) + " of " +
                 std::to_string(demo.total_distinct_ips) +
                 " distinct downloader IPs");
  countries.print();

  AsciiTable isps("Top downloader ISPs (all commercial — nobody torrents "
                  "from a rack)");
  isps.header({"ISP", "distinct IPs", "share"});
  for (const DemographicRow& row : demo.by_isp) {
    isps.row({row.label, std::to_string(row.downloaders), percent(row.share)});
  }
  isps.print();

  AsciiTable supply("Publisher countries (per identified published torrent)");
  supply.header({"country", "torrents", "share"});
  for (const DemographicRow& row :
       publisher_countries(dataset, catalog.db(), 10)) {
    supply.row({row.label, std::to_string(row.downloaders), percent(row.share)});
  }
  supply.note("FR leads through OVH's data centers despite hosting almost no");
  supply.note("downloaders — the supply/demand asymmetry behind Table 3.");
  supply.print();
  return 0;
}
