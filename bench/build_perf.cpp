// build_perf — machine-readable perf baseline for ecosystem construction
// and DHT-overlay scheduling. Times Ecosystem::build() at several thread
// counts plus build_dht_overlay() (typed lazy cursors), and writes wall
// time, peak RSS and the event-queue counters to a JSON file so CI can
// archive a perf trajectory across PRs.
//
// Every case runs in a fork()ed child so its peak RSS is its own: RSS is
// monotone per process, so back-to-back cases in one process would all
// report the largest predecessor's footprint. The child ships a POD result
// record back over a pipe.
//
// The overlay case also replays the scheduled life through the window:
// `dispatched` is then the number of occurrences an eager scheduler would
// have heap-allocated closures for up front, while `pending_after_build`
// is what the lazy typed cursors actually kept in memory — the
// O(sessions x window/30min) vs O(sessions) headline.
//
// --snapshot switches to the dataset snapshot suite (emits
// BENCH_snapshot.json by default): synthetic million-session worlds are
// built deterministically, then each persistence phase — pointer-heavy
// Dataset build, CompactDataset conversion, stream save/load, mmap
// save/load (+ inflate) — runs fork-isolated for wall time and honest
// peak RSS. The mmap load case opens the snapshot AND scans every
// downloader entry (distinct-IP count over the view), so its timing
// includes faulting the data in, not just the mmap() call.
//
// Usage: build_perf [--json PATH] [--threads N] [--scenario NAME]
//                   [--seed N] [--quick]
//                   [--snapshot] [--sessions N[,N...]] [--dir PATH]
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/ecosystem.hpp"
#include "crawler/compact_dataset.hpp"
#include "crawler/dataset_io.hpp"
#include "crawler/dataset_mmap.hpp"
#include "synth_world.hpp"
#include "util/rng.hpp"

namespace btpub {
namespace {

using bench::dataset_sessions;
using bench::synth_dataset;

struct Options {
  std::string json_path;  // defaulted per mode in run()
  std::string scenario = "quick";
  std::uint64_t seed = 42;
  /// The parallel case's worker count (the "N" in 1-vs-N).
  std::size_t threads = 4;
  bool quick = false;
  bool snapshot = false;
  /// Session counts for the snapshot suite (downloader entries per world).
  std::vector<std::uint64_t> sessions = {1'000'000, 10'000'000};
  /// Scratch directory for the snapshot suite's cache files.
  std::string dir = "/tmp";
};

ScenarioConfig scenario_by_name(const Options& opt) {
  ScenarioConfig config;
  if (opt.scenario == "pb10") {
    config = ScenarioConfig::pb10(opt.seed);
  } else if (opt.scenario == "pb09") {
    config = ScenarioConfig::pb09(opt.seed);
  } else if (opt.scenario == "mn08") {
    config = ScenarioConfig::mn08(opt.seed);
  } else if (opt.scenario == "signature") {
    config = ScenarioConfig::signature(opt.seed);
  } else if (opt.scenario == "spoofed") {
    config = ScenarioConfig::spoofed(opt.seed);
  } else {
    config = ScenarioConfig::quick(opt.seed);
  }
  if (opt.quick) {
    // CI smoke: a third of the reference population, half the window.
    config.window = days(4);
    config.population.regular_publishers /= 3;
  }
  return config;
}

/// POD shipped child -> parent over the pipe.
struct CaseResult {
  double seconds = 0.0;
  long peak_rss_kb = 0;
  std::uint64_t torrents = 0;
  std::uint64_t publication_events = 0;
  std::uint64_t pending_after_build = 0;
  std::uint64_t typed_scheduled = 0;
  std::uint64_t callbacks_scheduled = 0;
  std::uint64_t dispatched = 0;
  /// BuildStats per-phase wall seconds (the Amdahl breakdown); only the
  /// ecosystem_build cases fill these.
  double seconds_population = 0.0;
  double seconds_backfill = 0.0;
  double seconds_draw = 0.0;
  double seconds_prepare = 0.0;
  double seconds_commit = 0.0;
};

long peak_rss_kb_self() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

/// phase: "ecosystem_build" times Ecosystem::build() alone;
/// "dht_overlay" builds first, then times overlay construction and replays
/// the scheduled life through the crawl horizon.
CaseResult run_case(const std::string& phase, std::size_t threads,
                    const Options& opt) {
  ScenarioConfig config = scenario_by_name(opt);
  config.threads = threads;
  CaseResult result;
  Ecosystem ecosystem(config);

  if (phase == "ecosystem_build") {
    const auto t0 = std::chrono::steady_clock::now();
    ecosystem.build();
    const auto t1 = std::chrono::steady_clock::now();
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    const BuildStats& stats = ecosystem.build_stats();
    result.seconds_population = stats.seconds_population;
    result.seconds_backfill = stats.seconds_backfill;
    result.seconds_draw = stats.seconds_draw;
    result.seconds_prepare = stats.seconds_prepare;
    result.seconds_commit = stats.seconds_commit;
  } else {
    ecosystem.build();
    const SimTime horizon = config.window + config.dht_crawler.grace;
    const auto t0 = std::chrono::steady_clock::now();
    const auto overlay = ecosystem.build_dht_overlay(horizon);
    const auto t1 = std::chrono::steady_clock::now();
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    result.pending_after_build = overlay->events().pending();
    result.typed_scheduled = overlay->events().typed_scheduled();
    result.callbacks_scheduled = overlay->events().callbacks_scheduled();
    overlay->advance_to(horizon);  // replay: every join/announce/leave fires
    result.dispatched = overlay->events().dispatched();
  }
  result.peak_rss_kb = peak_rss_kb_self();
  result.torrents = ecosystem.torrent_count();
  result.publication_events = ecosystem.build_stats().publication_events;
  return result;
}

/// Runs one case in a forked child so peak RSS is per-case.
CaseResult run_case_forked(const std::string& phase, std::size_t threads,
                           const Options& opt) {
  int fd[2];
  if (pipe(fd) != 0) {
    std::perror("build_perf: pipe");
    std::exit(2);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("build_perf: fork");
    std::exit(2);
  }
  if (pid == 0) {
    close(fd[0]);
    const CaseResult result = run_case(phase, threads, opt);
    ssize_t wrote = write(fd[1], &result, sizeof result);
    _exit(wrote == static_cast<ssize_t>(sizeof result) ? 0 : 3);
  }
  close(fd[1]);
  CaseResult result;
  const ssize_t got = read(fd[0], &result, sizeof result);
  close(fd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof result) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "build_perf: %s@%zu child failed\n", phase.c_str(),
                 threads);
    std::exit(2);
  }
  return result;
}

struct Row {
  std::string phase;
  std::size_t threads;
  CaseResult r;
};

// ---------------------------------------------------------------------------
// Snapshot suite (--snapshot): synthetic worlds + persistence phases.
// ---------------------------------------------------------------------------

/// POD shipped child -> parent for one snapshot phase.
struct SnapResult {
  double seconds = 0.0;
  long peak_rss_kb = 0;
  std::uint64_t torrents = 0;
  std::uint64_t sessions = 0;      // downloader entries actually produced
  std::uint64_t bytes = 0;         // in-memory bytes (build phases)
  std::uint64_t distinct_ips = 0;  // cross-phase sanity value
};

// The synthetic worlds come from bench/synth_world.hpp, shared with
// analysis_perf so both suites measure the same bytes.

/// Rough heap footprint of the pointer-heavy form (for the bytes column).
std::uint64_t dataset_bytes_estimate(const Dataset& d) {
  std::uint64_t bytes = sizeof(Dataset);
  for (const TorrentRecord& r : d.torrents) {
    bytes += sizeof r + r.title.size() + r.username.size() + r.textbox.size();
    for (const std::string& f : r.payload_filenames) bytes += sizeof f + f.size();
  }
  for (const auto& ips : d.downloaders) bytes += sizeof ips + 4 * ips.size();
  for (const auto& s : d.publisher_sightings) bytes += sizeof s + 8 * s.size();
  for (const auto& [name, page] : d.user_pages) {
    bytes += 2 * name.size() + sizeof page + 8 * page.publish_times.size();
  }
  return bytes;
}

/// Runs `body` in a forked child (honest per-phase RSS), ships SnapResult
/// back over a pipe.
SnapResult run_snap_forked(const char* phase,
                           const std::function<SnapResult()>& body) {
  int fd[2];
  if (pipe(fd) != 0) {
    std::perror("build_perf: pipe");
    std::exit(2);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("build_perf: fork");
    std::exit(2);
  }
  if (pid == 0) {
    close(fd[0]);
    const SnapResult result = body();
    ssize_t wrote = write(fd[1], &result, sizeof result);
    _exit(wrote == static_cast<ssize_t>(sizeof result) ? 0 : 3);
  }
  close(fd[1]);
  SnapResult result;
  const ssize_t got = read(fd[0], &result, sizeof result);
  close(fd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof result) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "build_perf: snapshot phase %s failed\n", phase);
    std::exit(2);
  }
  return result;
}

struct SnapRow {
  std::string phase;
  std::uint64_t sessions_target = 0;
  SnapResult r;
  std::uint64_t file_bytes = 0;  // on-disk size, filled by the parent
};

/// One world's worth of phases. The stream and mmap cache files persist
/// between phases (written by the save phases, read by the load phases).
void run_snapshot_world(std::uint64_t sessions, const Options& opt,
                        std::vector<SnapRow>& rows) {
  namespace fs = std::filesystem;
  char name[64];
  std::snprintf(name, sizeof name, "btpub_snapshot_%llu.ds",
                static_cast<unsigned long long>(sessions));
  const std::string stream_path = (fs::path(opt.dir) / name).string();
  const std::string mmap_path = mmap_sibling_path(stream_path);
  const std::uint64_t seed = opt.seed;

  auto timed = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
  };
  auto finish = [](SnapResult& r, const Dataset& d) {
    r.torrents = d.torrents.size();
    r.sessions = dataset_sessions(d);
    r.peak_rss_kb = peak_rss_kb_self();
  };
  auto push = [&](const char* phase, const std::function<SnapResult()>& body) {
    std::fprintf(stderr, "build_perf: snapshot %s @%llu sessions...\n", phase,
                 static_cast<unsigned long long>(sessions));
    rows.push_back(SnapRow{phase, sessions, run_snap_forked(phase, body), 0});
  };

  push("dataset_build", [&] {
    SnapResult r;
    Dataset d;
    r.seconds = timed([&] { d = synth_dataset(sessions, seed); });
    r.bytes = dataset_bytes_estimate(d);
    r.distinct_ips = d.distinct_ips_global();
    finish(r, d);
    return r;
  });
  push("compact_build", [&] {
    SnapResult r;
    const Dataset d = synth_dataset(sessions, seed);
    CompactDataset c;
    r.seconds = timed([&] { c = compact_dataset(d); });
    r.bytes = c.byte_size();
    r.distinct_ips = c.view().distinct_ips_global();
    finish(r, d);
    return r;
  });
  push("save_stream", [&] {
    SnapResult r;
    const Dataset d = synth_dataset(sessions, seed);
    r.seconds = timed([&] { save_dataset(d, stream_path); });
    finish(r, d);
    return r;
  });
  push("save_mmap", [&] {
    SnapResult r;
    const Dataset d = synth_dataset(sessions, seed);
    const CompactDataset c = compact_dataset(d);
    r.seconds = timed([&] { save_mmap_snapshot(c, mmap_path); });
    r.bytes = c.byte_size();
    finish(r, d);
    return r;
  });
  // Load = time-to-ready (the stream format must parse every record; the
  // snapshot is ready after open + O(sections) fixup). Query = time-to-
  // answer for the distinct-downloader-IP count, paying the full data
  // touch on both sides — for the snapshot that includes faulting every
  // peer-blob page in, not just the mmap() syscall.
  push("load_stream", [&] {
    SnapResult r;
    Dataset d;
    r.seconds = timed([&] { d = load_dataset(stream_path); });
    r.distinct_ips = d.distinct_ips_global();
    finish(r, d);
    return r;
  });
  push("load_mmap", [&] {
    SnapResult r;
    MappedDataset mapped = [&]() {
      const auto t0 = std::chrono::steady_clock::now();
      MappedDataset m(mmap_path);
      const auto t1 = std::chrono::steady_clock::now();
      r.seconds = std::chrono::duration<double>(t1 - t0).count();
      return m;
    }();
    r.distinct_ips = mapped.view().distinct_ips_global();
    r.torrents = mapped.view().torrent_count();
    r.sessions = mapped.view().peer_blob.size() / 6;
    r.bytes = mapped.mapped_bytes();
    r.peak_rss_kb = peak_rss_kb_self();
    return r;
  });
  push("query_stream", [&] {
    SnapResult r;
    Dataset d;
    std::uint64_t distinct = 0;
    r.seconds = timed([&] {
      d = load_dataset(stream_path);
      distinct = d.distinct_ips_global();
    });
    r.distinct_ips = distinct;
    finish(r, d);
    return r;
  });
  push("query_mmap", [&] {
    SnapResult r;
    std::uint64_t distinct = 0;
    std::uint64_t torrents = 0, sessions = 0, bytes = 0;
    r.seconds = timed([&] {
      MappedDataset mapped(mmap_path);
      distinct = mapped.view().distinct_ips_global();
      torrents = mapped.view().torrent_count();
      sessions = mapped.view().peer_blob.size() / 6;
      bytes = mapped.mapped_bytes();
    });
    r.distinct_ips = distinct;
    r.torrents = torrents;
    r.sessions = sessions;
    r.bytes = bytes;
    r.peak_rss_kb = peak_rss_kb_self();
    return r;
  });
  push("load_mmap_inflate", [&] {
    SnapResult r;
    Dataset d;
    r.seconds = timed([&] { d = MappedDataset(mmap_path).to_dataset(); });
    r.distinct_ips = d.distinct_ips_global();
    finish(r, d);
    return r;
  });

  // Attach on-disk sizes, then sanity-check every phase agrees on the
  // distinct-IP count (a wrong snapshot must fail the bench, not publish
  // fast-but-broken numbers).
  std::uint64_t expected = 0;
  for (SnapRow& row : rows) {
    if (row.sessions_target != sessions) continue;
    if (row.phase == "save_stream" || row.phase == "load_stream" ||
        row.phase == "query_stream") {
      row.file_bytes = fs::file_size(stream_path);
    } else if (row.phase.rfind("save_mmap", 0) == 0 ||
               row.phase.rfind("load_mmap", 0) == 0 ||
               row.phase == "query_mmap") {
      row.file_bytes = fs::file_size(mmap_path);
    }
    if (row.r.distinct_ips != 0) {
      if (expected == 0) expected = row.r.distinct_ips;
      if (row.r.distinct_ips != expected) {
        std::fprintf(stderr,
                     "build_perf: phase %s distinct_ips mismatch "
                     "(%llu vs %llu)\n",
                     row.phase.c_str(),
                     static_cast<unsigned long long>(row.r.distinct_ips),
                     static_cast<unsigned long long>(expected));
        std::exit(2);
      }
    }
  }
  fs::remove(stream_path);
  fs::remove(mmap_path);
}

void write_snapshot_json(const Options& opt, const std::vector<SnapRow>& rows) {
  std::ofstream out(opt.json_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "build_perf: cannot open %s\n", opt.json_path.c_str());
    std::exit(1);
  }
  auto find = [&](std::uint64_t sessions,
                  std::string_view phase) -> const SnapRow* {
    for (const SnapRow& row : rows) {
      if (row.sessions_target == sessions && row.phase == phase) return &row;
    }
    return nullptr;
  };
  out << "{\n  \"benchmark\": \"dataset_snapshot\",\n";
  out << "  \"config\": {\"seed\": " << opt.seed << ", \"format_version\": "
      << mmap_format_version() << "},\n";
  char line[512];
  out << "  \"headline\": [\n";
  for (std::size_t i = 0; i < opt.sessions.size(); ++i) {
    const std::uint64_t n = opt.sessions[i];
    const SnapRow* stream = find(n, "load_stream");
    const SnapRow* mapped = find(n, "load_mmap");
    const SnapRow* qstream = find(n, "query_stream");
    const SnapRow* qmapped = find(n, "query_mmap");
    const SnapRow* build = find(n, "dataset_build");
    std::snprintf(
        line, sizeof line,
        "    {\"sessions\": %llu, \"mmap_load_speedup_vs_stream\": %.2f, "
        "\"mmap_query_speedup_vs_stream\": %.2f, "
        "\"mmap_query_rss_kb\": %ld, \"dataset_build_rss_kb\": %ld}%s\n",
        static_cast<unsigned long long>(n),
        stream->r.seconds / mapped->r.seconds,
        qstream->r.seconds / qmapped->r.seconds, qmapped->r.peak_rss_kb,
        build->r.peak_rss_kb, i + 1 < opt.sessions.size() ? "," : "");
    out << line;
  }
  out << "  ],\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SnapRow& row = rows[i];
    std::snprintf(
        line, sizeof line,
        "    {\"phase\": \"%s\", \"sessions\": %llu, \"seconds\": %.6f, "
        "\"peak_rss_kb\": %ld, \"torrents\": %llu, \"bytes\": %llu, "
        "\"file_bytes\": %llu, \"distinct_ips\": %llu}%s\n",
        row.phase.c_str(), static_cast<unsigned long long>(row.r.sessions),
        row.r.seconds, row.r.peak_rss_kb,
        static_cast<unsigned long long>(row.r.torrents),
        static_cast<unsigned long long>(row.r.bytes),
        static_cast<unsigned long long>(row.file_bytes),
        static_cast<unsigned long long>(row.r.distinct_ips),
        i + 1 < rows.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

int run_snapshot(const Options& opt) {
  std::vector<SnapRow> rows;
  for (const std::uint64_t sessions : opt.sessions) {
    run_snapshot_world(sessions, opt, rows);
  }
  write_snapshot_json(opt, rows);
  for (const std::uint64_t n : opt.sessions) {
    const SnapRow* stream = nullptr;
    const SnapRow* mapped = nullptr;
    const SnapRow* qstream = nullptr;
    const SnapRow* qmapped = nullptr;
    for (const SnapRow& row : rows) {
      if (row.sessions_target != n) continue;
      if (row.phase == "load_stream") stream = &row;
      if (row.phase == "load_mmap") mapped = &row;
      if (row.phase == "query_stream") qstream = &row;
      if (row.phase == "query_mmap") qmapped = &row;
    }
    std::printf(
        "%llu sessions: load %.4fs stream vs %.4fs mmap (%.0fx); "
        "distinct-IP query %.3fs vs %.3fs (%.1fx), query RSS %ld KB\n",
        static_cast<unsigned long long>(n), stream->r.seconds,
        mapped->r.seconds, stream->r.seconds / mapped->r.seconds,
        qstream->r.seconds, qmapped->r.seconds,
        qstream->r.seconds / qmapped->r.seconds, qmapped->r.peak_rss_kb);
  }
  std::printf("wrote %s\n", opt.json_path.c_str());
  return 0;
}

void write_json(const Options& opt, const ScenarioConfig& config,
                const std::vector<Row>& rows, double speedup) {
  std::ofstream out(opt.json_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "build_perf: cannot open %s\n", opt.json_path.c_str());
    std::exit(1);
  }
  out << "{\n  \"benchmark\": \"ecosystem_build\",\n";
  out << "  \"config\": {\"scenario\": \"" << config.name << "\", \"seed\": "
      << config.seed << ", \"window_days\": " << (config.window / kDay)
      << ", \"quick\": " << (opt.quick ? "true" : "false") << "},\n";
  char line[512];
  std::snprintf(line, sizeof line, "  \"build_speedup_%zu_threads\": %.2f,\n",
                opt.threads, speedup);
  out << line;
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::snprintf(
        line, sizeof line,
        "    {\"phase\": \"%s\", \"threads\": %zu, \"seconds\": %.4f, "
        "\"peak_rss_kb\": %ld, \"torrents\": %llu, "
        "\"pending_after_build\": %llu, \"typed_scheduled\": %llu, "
        "\"callbacks_scheduled\": %llu, \"dispatched\": %llu, "
        "\"seconds_population\": %.4f, \"seconds_backfill\": %.4f, "
        "\"seconds_draw\": %.4f, \"seconds_prepare\": %.4f, "
        "\"seconds_commit\": %.4f}%s\n",
        row.phase.c_str(), row.threads, row.r.seconds, row.r.peak_rss_kb,
        static_cast<unsigned long long>(row.r.torrents),
        static_cast<unsigned long long>(row.r.pending_after_build),
        static_cast<unsigned long long>(row.r.typed_scheduled),
        static_cast<unsigned long long>(row.r.callbacks_scheduled),
        static_cast<unsigned long long>(row.r.dispatched),
        row.r.seconds_population, row.r.seconds_backfill, row.r.seconds_draw,
        row.r.seconds_prepare, row.r.seconds_commit,
        i + 1 < rows.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "build_perf: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--threads") {
      opt.threads = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--scenario") {
      opt.scenario = next();
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--snapshot") {
      opt.snapshot = true;
    } else if (arg == "--dir") {
      opt.dir = next();
    } else if (arg == "--sessions") {
      opt.sessions.clear();
      const char* p = next();
      while (*p != '\0') {
        char* end = nullptr;
        const std::uint64_t n = std::strtoull(p, &end, 10);
        if (end == p || n == 0) {
          std::fprintf(stderr, "build_perf: bad --sessions list\n");
          return 2;
        }
        opt.sessions.push_back(n);
        p = *end == ',' ? end + 1 : end;
      }
      if (opt.sessions.empty()) {
        std::fprintf(stderr, "build_perf: --sessions needs at least one count\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: build_perf [--json PATH] [--threads N] "
                   "[--scenario NAME] [--seed N] [--quick] "
                   "[--snapshot] [--sessions N[,N...]] [--dir PATH]\n");
      return 2;
    }
  }
  if (opt.json_path.empty()) {
    opt.json_path = opt.snapshot ? "BENCH_snapshot.json" : "BENCH_build.json";
  }
  if (opt.snapshot) return run_snapshot(opt);
  if (opt.threads < 2) opt.threads = 2;

  std::vector<Row> rows;
  for (const std::size_t threads : {std::size_t{1}, opt.threads}) {
    std::fprintf(stderr, "build_perf: ecosystem_build @%zu thread(s)...\n",
                 threads);
    rows.push_back(Row{"ecosystem_build", threads,
                       run_case_forked("ecosystem_build", threads, opt)});
  }
  std::fprintf(stderr, "build_perf: dht_overlay construction + replay...\n");
  rows.push_back(
      Row{"dht_overlay", 1, run_case_forked("dht_overlay", 1, opt)});

  const double speedup = rows[0].r.seconds / rows[1].r.seconds;
  const ScenarioConfig config = scenario_by_name(opt);
  write_json(opt, config, rows, speedup);

  std::printf("build: %.3fs @1 thread, %.3fs @%zu threads (%.2fx), %llu "
              "torrents\n",
              rows[0].r.seconds, rows[1].r.seconds, opt.threads, speedup,
              static_cast<unsigned long long>(rows[0].r.torrents));
  for (std::size_t i = 0; i < 2; ++i) {
    const CaseResult& r = rows[i].r;
    const double serial = r.seconds_population + r.seconds_backfill +
                          r.seconds_commit;
    std::printf(
        "  phases @%zu: population %.3fs, backfill %.3fs, draw %.3fs, "
        "prepare %.3fs, commit %.3fs (serial floor %.0f%%)\n",
        rows[i].threads, r.seconds_population, r.seconds_backfill,
        r.seconds_draw, r.seconds_prepare, r.seconds_commit,
        r.seconds > 0.0 ? 100.0 * serial / r.seconds : 0.0);
  }
  std::printf("overlay: %.3fs construct, %llu pending cursors, %llu closures, "
              "%llu occurrences replayed\n",
              rows[2].r.seconds,
              static_cast<unsigned long long>(rows[2].r.pending_after_build),
              static_cast<unsigned long long>(rows[2].r.callbacks_scheduled),
              static_cast<unsigned long long>(rows[2].r.dispatched));
  std::printf("wrote %s\n", opt.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace btpub

int main(int argc, char** argv) { return btpub::run(argc, argv); }
