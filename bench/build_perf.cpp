// build_perf — machine-readable perf baseline for ecosystem construction
// and DHT-overlay scheduling. Times Ecosystem::build() at several thread
// counts plus build_dht_overlay() (typed lazy cursors), and writes wall
// time, peak RSS and the event-queue counters to a JSON file so CI can
// archive a perf trajectory across PRs.
//
// Every case runs in a fork()ed child so its peak RSS is its own: RSS is
// monotone per process, so back-to-back cases in one process would all
// report the largest predecessor's footprint. The child ships a POD result
// record back over a pipe.
//
// The overlay case also replays the scheduled life through the window:
// `dispatched` is then the number of occurrences an eager scheduler would
// have heap-allocated closures for up front, while `pending_after_build`
// is what the lazy typed cursors actually kept in memory — the
// O(sessions x window/30min) vs O(sessions) headline.
//
// Usage: build_perf [--json PATH] [--threads N] [--scenario NAME]
//                   [--seed N] [--quick]
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ecosystem.hpp"

namespace btpub {
namespace {

struct Options {
  std::string json_path = "BENCH_build.json";
  std::string scenario = "quick";
  std::uint64_t seed = 42;
  /// The parallel case's worker count (the "N" in 1-vs-N).
  std::size_t threads = 4;
  bool quick = false;
};

ScenarioConfig scenario_by_name(const Options& opt) {
  ScenarioConfig config;
  if (opt.scenario == "pb10") {
    config = ScenarioConfig::pb10(opt.seed);
  } else if (opt.scenario == "pb09") {
    config = ScenarioConfig::pb09(opt.seed);
  } else if (opt.scenario == "mn08") {
    config = ScenarioConfig::mn08(opt.seed);
  } else if (opt.scenario == "signature") {
    config = ScenarioConfig::signature(opt.seed);
  } else if (opt.scenario == "spoofed") {
    config = ScenarioConfig::spoofed(opt.seed);
  } else {
    config = ScenarioConfig::quick(opt.seed);
  }
  if (opt.quick) {
    // CI smoke: a third of the reference population, half the window.
    config.window = days(4);
    config.population.regular_publishers /= 3;
  }
  return config;
}

/// POD shipped child -> parent over the pipe.
struct CaseResult {
  double seconds = 0.0;
  long peak_rss_kb = 0;
  std::uint64_t torrents = 0;
  std::uint64_t publication_events = 0;
  std::uint64_t pending_after_build = 0;
  std::uint64_t typed_scheduled = 0;
  std::uint64_t callbacks_scheduled = 0;
  std::uint64_t dispatched = 0;
};

long peak_rss_kb_self() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

/// phase: "ecosystem_build" times Ecosystem::build() alone;
/// "dht_overlay" builds first, then times overlay construction and replays
/// the scheduled life through the crawl horizon.
CaseResult run_case(const std::string& phase, std::size_t threads,
                    const Options& opt) {
  ScenarioConfig config = scenario_by_name(opt);
  config.threads = threads;
  CaseResult result;
  Ecosystem ecosystem(config);

  if (phase == "ecosystem_build") {
    const auto t0 = std::chrono::steady_clock::now();
    ecosystem.build();
    const auto t1 = std::chrono::steady_clock::now();
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
  } else {
    ecosystem.build();
    const SimTime horizon = config.window + config.dht_crawler.grace;
    const auto t0 = std::chrono::steady_clock::now();
    const auto overlay = ecosystem.build_dht_overlay(horizon);
    const auto t1 = std::chrono::steady_clock::now();
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    result.pending_after_build = overlay->events().pending();
    result.typed_scheduled = overlay->events().typed_scheduled();
    result.callbacks_scheduled = overlay->events().callbacks_scheduled();
    overlay->advance_to(horizon);  // replay: every join/announce/leave fires
    result.dispatched = overlay->events().dispatched();
  }
  result.peak_rss_kb = peak_rss_kb_self();
  result.torrents = ecosystem.torrent_count();
  result.publication_events = ecosystem.build_stats().publication_events;
  return result;
}

/// Runs one case in a forked child so peak RSS is per-case.
CaseResult run_case_forked(const std::string& phase, std::size_t threads,
                           const Options& opt) {
  int fd[2];
  if (pipe(fd) != 0) {
    std::perror("build_perf: pipe");
    std::exit(2);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("build_perf: fork");
    std::exit(2);
  }
  if (pid == 0) {
    close(fd[0]);
    const CaseResult result = run_case(phase, threads, opt);
    ssize_t wrote = write(fd[1], &result, sizeof result);
    _exit(wrote == static_cast<ssize_t>(sizeof result) ? 0 : 3);
  }
  close(fd[1]);
  CaseResult result;
  const ssize_t got = read(fd[0], &result, sizeof result);
  close(fd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof result) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "build_perf: %s@%zu child failed\n", phase.c_str(),
                 threads);
    std::exit(2);
  }
  return result;
}

struct Row {
  std::string phase;
  std::size_t threads;
  CaseResult r;
};

void write_json(const Options& opt, const ScenarioConfig& config,
                const std::vector<Row>& rows, double speedup) {
  std::ofstream out(opt.json_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "build_perf: cannot open %s\n", opt.json_path.c_str());
    std::exit(1);
  }
  out << "{\n  \"benchmark\": \"ecosystem_build\",\n";
  out << "  \"config\": {\"scenario\": \"" << config.name << "\", \"seed\": "
      << config.seed << ", \"window_days\": " << (config.window / kDay)
      << ", \"quick\": " << (opt.quick ? "true" : "false") << "},\n";
  char line[512];
  std::snprintf(line, sizeof line, "  \"build_speedup_%zu_threads\": %.2f,\n",
                opt.threads, speedup);
  out << line;
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::snprintf(
        line, sizeof line,
        "    {\"phase\": \"%s\", \"threads\": %zu, \"seconds\": %.4f, "
        "\"peak_rss_kb\": %ld, \"torrents\": %llu, "
        "\"pending_after_build\": %llu, \"typed_scheduled\": %llu, "
        "\"callbacks_scheduled\": %llu, \"dispatched\": %llu}%s\n",
        row.phase.c_str(), row.threads, row.r.seconds, row.r.peak_rss_kb,
        static_cast<unsigned long long>(row.r.torrents),
        static_cast<unsigned long long>(row.r.pending_after_build),
        static_cast<unsigned long long>(row.r.typed_scheduled),
        static_cast<unsigned long long>(row.r.callbacks_scheduled),
        static_cast<unsigned long long>(row.r.dispatched),
        i + 1 < rows.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "build_perf: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--threads") {
      opt.threads = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--scenario") {
      opt.scenario = next();
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--quick") {
      opt.quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: build_perf [--json PATH] [--threads N] "
                   "[--scenario NAME] [--seed N] [--quick]\n");
      return 2;
    }
  }
  if (opt.threads < 2) opt.threads = 2;

  std::vector<Row> rows;
  for (const std::size_t threads : {std::size_t{1}, opt.threads}) {
    std::fprintf(stderr, "build_perf: ecosystem_build @%zu thread(s)...\n",
                 threads);
    rows.push_back(Row{"ecosystem_build", threads,
                       run_case_forked("ecosystem_build", threads, opt)});
  }
  std::fprintf(stderr, "build_perf: dht_overlay construction + replay...\n");
  rows.push_back(
      Row{"dht_overlay", 1, run_case_forked("dht_overlay", 1, opt)});

  const double speedup = rows[0].r.seconds / rows[1].r.seconds;
  const ScenarioConfig config = scenario_by_name(opt);
  write_json(opt, config, rows, speedup);

  std::printf("build: %.3fs @1 thread, %.3fs @%zu threads (%.2fx), %llu "
              "torrents\n",
              rows[0].r.seconds, rows[1].r.seconds, opt.threads, speedup,
              static_cast<unsigned long long>(rows[0].r.torrents));
  std::printf("overlay: %.3fs construct, %llu pending cursors, %llu closures, "
              "%llu occurrences replayed\n",
              rows[2].r.seconds,
              static_cast<unsigned long long>(rows[2].r.pending_after_build),
              static_cast<unsigned long long>(rows[2].r.callbacks_scheduled),
              static_cast<unsigned long long>(rows[2].r.dispatched));
  std::printf("wrote %s\n", opt.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace btpub

int main(int argc, char** argv) { return btpub::run(argc, argv); }
