// dht_perf — machine-readable perf baseline for the simulated Mainline
// DHT. Builds overlays of increasing size, then times iterative get_peers
// lookups from a read-only vantage, reporting the Kademlia quantities that
// matter: hops to convergence (O(log n)), messages per lookup, and raw
// lookup throughput. Writes BENCH_dht.json so CI can archive a perf
// trajectory across PRs.
//
// Usage: dht_perf [--json PATH] [--lookups N] [--quick]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "crypto/sha1.hpp"
#include "dht/overlay.hpp"
#include "util/rng.hpp"

namespace btpub {
namespace {

using dht::DhtOverlay;
using dht::LookupStats;

struct Options {
  std::string json_path = "BENCH_dht.json";
  std::size_t lookups = 2000;
  std::vector<std::size_t> overlay_sizes = {100, 1000, 4000};
};

struct Result {
  std::size_t nodes = 0;
  std::size_t lookups = 0;
  double avg_hops = 0.0;
  std::uint32_t max_hops = 0;
  double avg_messages = 0.0;
  double avg_peers = 0.0;
  double seconds = 0.0;
  double lookups_per_sec() const { return double(lookups) / seconds; }
};

Result run_case(std::size_t n_nodes, const Options& opt) {
  DhtOverlay overlay(/*seed=*/7);
  constexpr std::size_t kTorrents = 64;
  constexpr std::size_t kPeersPerTorrent = 20;

  // Join n nodes, one per second, from a synthetic /8.
  SimTime now = 0;
  std::vector<Endpoint> endpoints;
  endpoints.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const Endpoint endpoint{IpAddress(0x0D000000 + static_cast<std::uint32_t>(i)),
                            6881};
    overlay.add_node(endpoint, ++now);
    endpoints.push_back(endpoint);
  }
  // Populate peer stores: each torrent gets announces from a deterministic
  // slice of the population.
  std::vector<Sha1Digest> infohashes;
  infohashes.reserve(kTorrents);
  for (std::size_t t = 0; t < kTorrents; ++t) {
    infohashes.push_back(Sha1::hash("dht_perf_" + std::to_string(t)));
    for (std::size_t p = 0; p < kPeersPerTorrent; ++p) {
      overlay.announce_peer(infohashes.back(),
                            endpoints[(t * kPeersPerTorrent + p) % n_nodes],
                            ++now);
    }
  }

  const Endpoint vantage{IpAddress(10, 88, 0, 1), 6881};
  Rng rng(99);
  Result r;
  r.nodes = n_nodes;
  r.lookups = opt.lookups;
  std::uint64_t hops = 0, messages = 0, peers = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < opt.lookups; ++i) {
    const Sha1Digest& infohash =
        infohashes[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(kTorrents - 1)))];
    LookupStats stats;
    const auto found =
        overlay.get_peers(infohash, vantage, now, &stats, {}, /*read_only=*/true);
    hops += stats.hops;
    messages += stats.messages;
    peers += found.size();
    r.max_hops = std::max(r.max_hops, stats.hops);
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.avg_hops = double(hops) / double(opt.lookups);
  r.avg_messages = double(messages) / double(opt.lookups);
  r.avg_peers = double(peers) / double(opt.lookups);
  return r;
}

void write_json(const std::string& path, const Options& opt,
                const std::vector<Result>& results) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "dht_perf: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"benchmark\": \"dht_iterative_get_peers\",\n";
  out << "  \"config\": {\"lookups\": " << opt.lookups
      << ", \"torrents\": 64, \"peers_per_torrent\": 20}," << "\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    char line[256];
    std::snprintf(line, sizeof line,
                  "    {\"nodes\": %zu, \"lookups\": %zu, \"avg_hops\": %.2f, "
                  "\"max_hops\": %u, \"avg_messages\": %.1f, "
                  "\"avg_peers\": %.1f, \"seconds\": %.4f, "
                  "\"lookups_per_sec\": %.0f}%s\n",
                  r.nodes, r.lookups, r.avg_hops, r.max_hops, r.avg_messages,
                  r.avg_peers, r.seconds, r.lookups_per_sec(),
                  i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dht_perf: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--lookups") {
      opt.lookups = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--quick") {
      opt.lookups = 300;
      opt.overlay_sizes = {100, 1000};
    } else {
      std::fprintf(stderr,
                   "usage: dht_perf [--json PATH] [--lookups N] [--quick]\n");
      return 2;
    }
  }

  std::vector<Result> results;
  for (const std::size_t n : opt.overlay_sizes) {
    results.push_back(run_case(n, opt));
    const Result& r = results.back();
    std::printf("%5zu nodes: %6.0f lookups/s  avg %.2f hops (max %u), "
                "%.1f msgs/lookup, %.1f peers/lookup\n",
                r.nodes, r.lookups_per_sec(), r.avg_hops, r.max_hops,
                r.avg_messages, r.avg_peers);
  }
  write_json(opt.json_path, opt, results);
  std::printf("wrote %s\n", opt.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace btpub

int main(int argc, char** argv) { return btpub::run(argc, argv); }
