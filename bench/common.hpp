// common.hpp — shared plumbing for the reproduction harnesses: cached
// dataset generation per scenario and uniform output headers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/ecosystem.hpp"
#include "crawler/dataset.hpp"

namespace btpub::bench {

inline constexpr std::uint64_t kDefaultSeed = 42;

/// Directory used to cache generated datasets (override with the
/// BTPUB_CACHE_DIR environment variable). Delete it to force regeneration
/// after changing the generator.
std::string cache_dir();

/// Builds (but does not crawl) the ecosystem for a scenario. Expensive but
/// needed by benches that consult websites / appraisal services.
std::unique_ptr<Ecosystem> build_ecosystem(const ScenarioConfig& config);

/// Returns the scenario's dataset, crawling only on cache miss.
Dataset dataset_for(const ScenarioConfig& config);

/// Like dataset_for, but reuses an already-built ecosystem on cache miss.
Dataset dataset_for(const ScenarioConfig& config, Ecosystem& ecosystem);

/// Prints the uniform bench banner:
///   ### <id>: <title>
///   paper: <what the paper reports> | scenario: <name> seed=<seed>
void banner(const std::string& id, const std::string& title,
            const std::string& paper_note, const ScenarioConfig& config);

/// Parses the shared fig/table command line: `--threads N` (0 = hardware
/// concurrency) sets the worker count the harness passes to ecosystem
/// builds (ScenarioConfig::threads) and to the analysis passes. Every one
/// of those is byte-identical at any thread count, so the flag changes
/// wall time, never output. Returns 1 when the flag is absent; exits with
/// usage on unknown arguments.
std::size_t threads_from_args(int argc, char** argv);

}  // namespace btpub::bench
