// net_perf — machine-readable perf baseline for the wire-serving path
// (emits BENCH_net.json). Each case forks a ServeDaemon child (so its peak
// RSS is its own, same discipline as build_perf), drives it over loopback
// with the in-process load generator at 1/2/4/N worker threads, and
// records announces/sec plus p50/p90/p99 round-trip latency. A
// single-thread announce_into loop over an identical world provides the
// in-process control: the wire/in-process throughput ratio is the
// machine-normalized number CI gates on (tools/check_net_regression.py),
// since absolute packets/sec vary wildly across runner hardware.
//
// Usage: net_perf [--json PATH] [--duration SECONDS] [--quick]
#include <csignal>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "netio/loadgen.hpp"
#include "netio/serve.hpp"
#include "tracker/tracker.hpp"
#include "util/rng.hpp"

namespace btpub {
namespace {

struct Options {
  std::string json_path = "BENCH_net.json";
  double duration = 2.0;
  std::size_t swarms = 32;
  std::size_t peers = 2000;
  std::uint32_t numwant = 50;
  std::size_t window = 64;
  std::uint64_t seed = 42;
  bool quick = false;
};

struct CaseResult {
  std::string transport;
  std::size_t threads = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t errors = 0;
  std::uint64_t timeouts = 0;
  double seconds = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p90_ns = 0;
  std::uint64_t p99_ns = 0;
  long server_peak_rss_kb = 0;

  double ops_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(received) / seconds : 0.0;
  }
};

netio::ServeDaemon* g_child_daemon = nullptr;

void child_term_handler(int) {
  if (g_child_daemon != nullptr) g_child_daemon->request_stop();
}

struct ServerHandle {
  pid_t pid = -1;
  std::uint16_t udp_port = 0;
  std::uint16_t http_port = 0;
};

/// Forks a serving child with `shards` UDP shards; returns once the child
/// reports its bound ports. The child serves until SIGTERM (2-minute
/// backstop so a crashed parent cannot leak a spinning daemon).
ServerHandle spawn_server(std::size_t shards, const Options& opt) {
  int ports[2];
  if (pipe(ports) != 0) {
    std::perror("net_perf: pipe");
    std::exit(2);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("net_perf: fork");
    std::exit(2);
  }
  if (pid == 0) {
    close(ports[0]);
    try {
      netio::ServeConfig config;
      config.udp_port = 0;
      config.http_port = 0;
      config.shards = shards;
      config.swarms = opt.swarms;
      config.peers_per_swarm = opt.peers;
      config.seed = opt.seed;
      config.duration_seconds = 120.0;
      netio::ServeDaemon daemon(config);
      g_child_daemon = &daemon;
      signal(SIGTERM, child_term_handler);
      const std::uint16_t bound[2] = {daemon.udp_port(), daemon.http_port()};
      if (write(ports[1], bound, sizeof bound) != sizeof bound) _exit(3);
      close(ports[1]);
      daemon.run();
      _exit(0);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "net_perf: server child: %s\n", e.what());
      _exit(3);
    }
  }
  close(ports[1]);
  ServerHandle handle;
  handle.pid = pid;
  std::uint16_t bound[2] = {0, 0};
  if (read(ports[0], bound, sizeof bound) != sizeof bound) {
    std::fprintf(stderr, "net_perf: server child died before binding\n");
    std::exit(2);
  }
  close(ports[0]);
  handle.udp_port = bound[0];
  handle.http_port = bound[1];
  return handle;
}

/// SIGTERM + reap; returns the child's peak RSS in kB (ru_maxrss).
long stop_server(const ServerHandle& handle) {
  kill(handle.pid, SIGTERM);
  int status = 0;
  rusage usage{};
  if (wait4(handle.pid, &status, 0, &usage) != handle.pid) return 0;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "net_perf: server child exited abnormally (%d)\n",
                 status);
    std::exit(2);
  }
  return usage.ru_maxrss;
}

CaseResult run_wire_case(const char* transport, std::size_t threads,
                         const Options& opt) {
  const ServerHandle server = spawn_server(threads, opt);

  netio::LoadgenConfig config;
  config.udp_port = server.udp_port;
  config.threads = threads;
  config.duration_seconds = opt.duration;
  config.window = opt.window;
  config.seed = opt.seed;
  config.swarms = opt.swarms;
  config.numwant = opt.numwant;
  if (std::string_view(transport) == "http") {
    config.use_http = true;
    config.http_port = server.http_port;
  }
  const netio::LoadgenReport report = netio::run_loadgen(config);

  CaseResult r;
  r.transport = transport;
  r.threads = threads;
  r.sent = report.sent;
  r.received = report.received;
  r.errors = report.errors;
  r.timeouts = report.timeouts;
  r.seconds = report.elapsed_seconds;
  r.p50_ns = report.p50_ns;
  r.p90_ns = report.p90_ns;
  r.p99_ns = report.p99_ns;
  r.server_peak_rss_kb = stop_server(server);
  return r;
}

/// The control: the same world answered through announce_into directly,
/// no sockets. Wire cases are reported as a fraction of this.
CaseResult run_inprocess_case(const Options& opt) {
  std::vector<Swarm> world =
      netio::build_serve_world(opt.seed, opt.swarms, opt.peers);
  TrackerConfig config;
  config.min_query_gap = 0;
  config.max_query_gap = 0;
  Tracker tracker(config, Rng(derive_seed(opt.seed, 0x6e657453'65727665ULL)));
  for (Swarm& swarm : world) tracker.host_swarm(swarm);

  Rng rng(derive_seed(opt.seed, 1));
  AnnounceRequest request;
  request.numwant = opt.numwant;
  request.now = hours(2);
  AnnounceReply reply;
  Tracker::AnnounceScratch scratch;

  const std::size_t iters = opt.quick ? 100000 : 400000;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    request.infohash =
        netio::serve_swarm_infohash(opt.seed, rng.next() % opt.swarms);
    request.client =
        Endpoint{IpAddress(0x0B000000u + static_cast<std::uint32_t>(i % 256)),
                 6881};
    tracker.announce_into(request, reply, scratch);
    if (reply.ok == (reply.peers.size() > 1u << 30)) std::abort();  // keep live
  }
  const auto t1 = std::chrono::steady_clock::now();

  CaseResult r;
  r.transport = "inprocess";
  r.threads = 1;
  r.sent = r.received = iters;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

void write_json(const std::string& path, const Options& opt,
                const CaseResult& control,
                const std::vector<CaseResult>& results) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "net_perf: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  double ops_1 = 0.0, ops_4 = 0.0;
  for (const CaseResult& r : results) {
    if (r.transport != "udp") continue;
    if (r.threads == 1) ops_1 = r.ops_per_sec();
    if (r.threads == 4) ops_4 = r.ops_per_sec();
  }
  out << "{\n  \"benchmark\": \"net_serve\",\n";
  out << "  \"config\": {\"swarms\": " << opt.swarms
      << ", \"peers_per_swarm\": " << opt.peers
      << ", \"numwant\": " << opt.numwant << ", \"window\": " << opt.window
      << ", \"duration_seconds\": " << opt.duration
      << ", \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << "},\n";
  char line[512];
  std::snprintf(line, sizeof line,
                "  \"inprocess\": {\"announces\": %llu, \"seconds\": %.4f, "
                "\"ops_per_sec\": %.0f},\n",
                static_cast<unsigned long long>(control.received),
                control.seconds, control.ops_per_sec());
  out << line;
  // Scaling is meaningful only with >= 4 real cores; report it regardless
  // and let the gate decide (it compares against the committed baseline
  // from the same class of machine).
  std::snprintf(line, sizeof line, "  \"scaling_1_to_4\": %.3f,\n",
                ops_1 > 0.0 ? ops_4 / (4.0 * ops_1) : 0.0);
  out << line;
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    std::snprintf(
        line, sizeof line,
        "    {\"transport\": \"%s\", \"threads\": %zu, \"sent\": %llu, "
        "\"received\": %llu, \"errors\": %llu, \"timeouts\": %llu, "
        "\"seconds\": %.4f, \"announces_per_sec\": %.0f, "
        "\"wire_vs_inprocess\": %.4f, \"p50_ns\": %llu, \"p90_ns\": %llu, "
        "\"p99_ns\": %llu, \"server_peak_rss_kb\": %ld}%s\n",
        r.transport.c_str(), r.threads,
        static_cast<unsigned long long>(r.sent),
        static_cast<unsigned long long>(r.received),
        static_cast<unsigned long long>(r.errors),
        static_cast<unsigned long long>(r.timeouts), r.seconds,
        r.ops_per_sec(),
        control.ops_per_sec() > 0.0 ? r.ops_per_sec() / control.ops_per_sec()
                                    : 0.0,
        static_cast<unsigned long long>(r.p50_ns),
        static_cast<unsigned long long>(r.p90_ns),
        static_cast<unsigned long long>(r.p99_ns), r.server_peak_rss_kb,
        i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "net_perf: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--duration") {
      opt.duration = std::strtod(next(), nullptr);
    } else if (arg == "--quick") {
      opt.quick = true;
      opt.duration = 1.0;
    } else {
      std::fprintf(stderr,
                   "usage: net_perf [--json PATH] [--duration SECONDS] "
                   "[--quick]\n");
      return 2;
    }
  }

  // Best-of-2 everywhere: loopback numbers share cores with whatever else
  // the runner is doing, and that interference is one-sided (it only ever
  // slows a case down), so the max over two runs is the low-noise
  // estimate of true capacity — what the regression gate needs.
  CaseResult control = run_inprocess_case(opt);
  {
    const CaseResult again = run_inprocess_case(opt);
    if (again.ops_per_sec() > control.ops_per_sec()) control = again;
  }
  std::printf("%-5s %2zu thread(s): %9.0f announces/s\n", "ctrl",
              control.threads, control.ops_per_sec());

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw > 4 && !opt.quick) thread_counts.push_back(hw);
  if (opt.quick) thread_counts = {1, 2};

  const auto best_of_two = [&](const char* transport, std::size_t threads) {
    CaseResult best = run_wire_case(transport, threads, opt);
    const CaseResult again = run_wire_case(transport, threads, opt);
    return again.ops_per_sec() > best.ops_per_sec() ? again : best;
  };

  std::vector<CaseResult> results;
  for (const std::size_t threads : thread_counts) {
    results.push_back(best_of_two("udp", threads));
    const CaseResult& r = results.back();
    std::printf(
        "%-5s %2zu thread(s): %9.0f announces/s  p50 %.3f ms  p99 %.3f ms  "
        "rss %ld kB\n",
        r.transport.c_str(), r.threads, r.ops_per_sec(),
        static_cast<double>(r.p50_ns) / 1e6,
        static_cast<double>(r.p99_ns) / 1e6, r.server_peak_rss_kb);
  }
  results.push_back(best_of_two("http", 1));
  {
    const CaseResult& r = results.back();
    std::printf(
        "%-5s %2zu thread(s): %9.0f announces/s  p50 %.3f ms  p99 %.3f ms  "
        "rss %ld kB\n",
        r.transport.c_str(), r.threads, r.ops_per_sec(),
        static_cast<double>(r.p50_ns) / 1e6,
        static_cast<double>(r.p99_ns) / 1e6, r.server_peak_rss_kb);
  }

  write_json(opt.json_path, opt, control, results);
  std::printf("wrote %s\n", opt.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace btpub

int main(int argc, char** argv) { return btpub::run(argc, argv); }
