// Figure 4 — seeding behaviour per target group: (a) average seeding time,
// (b) average number of parallel seeded torrents, (c) aggregated session
// time. Uses the "signature" scenario: full-scale publishing *rates* with
// a reduced head-count, because per-publisher temporal density is exactly
// what these metrics measure.
#include "analysis/session.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::size_t threads = bench::threads_from_args(argc, argv);
  ScenarioConfig config = ScenarioConfig::signature(bench::kDefaultSeed);
  config.threads = threads;
  bench::banner("Figure 4", "Seeding behaviour per target group",
                "(a) fake longest, Top-HP > Top-CI, top 'a few hours'; "
                "(b) top ~3 parallel torrents, fake many, regular ~1; "
                "(c) fake longest sessions, top ~10x standard users",
                config);

  const Dataset dataset = bench::dataset_for(config);
  const IspCatalog catalog = IspCatalog::standard();
  const IdentityAnalysis identity(dataset, catalog.db(), 60, {}, threads);
  Rng rng(config.seed);

  const auto panel =
      seeding_panel(dataset, identity, 400, rng, hours(4), threads);

  AsciiTable a("Figure 4(a) — avg seeding time per torrent (hours)");
  a.header({"group", "p25", "median", "p75", "publishers"});
  AsciiTable b("Figure 4(b) — avg parallel seeded torrents");
  b.header({"group", "p25", "median", "p75"});
  AsciiTable c("Figure 4(c) — aggregated session time (hours)");
  c.header({"group", "p25", "median", "p75"});
  double all_agg = 0.0, top_agg = 0.0;
  for (const SeedingBox& box : panel) {
    const std::string group(to_string(box.group));
    a.row({group, format_double(box.seeding_time_hours.p25, 1),
           format_double(box.seeding_time_hours.median, 1),
           format_double(box.seeding_time_hours.p75, 1),
           std::to_string(box.publishers)});
    b.row({group, format_double(box.parallel_torrents.p25, 2),
           format_double(box.parallel_torrents.median, 2),
           format_double(box.parallel_torrents.p75, 2)});
    c.row({group, format_double(box.aggregated_session_hours.p25, 1),
           format_double(box.aggregated_session_hours.median, 1),
           format_double(box.aggregated_session_hours.p75, 1)});
    if (box.group == TargetGroup::All) all_agg = box.aggregated_session_hours.median;
    if (box.group == TargetGroup::Top) top_agg = box.aggregated_session_hours.median;
  }
  a.print();
  b.print();
  c.print();
  if (all_agg > 0) {
    std::printf("  Top/All aggregated-session ratio (paper ~10x): %.1fx\n\n",
                top_agg / all_agg);
  }
  return 0;
}
