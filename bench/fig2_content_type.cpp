// Figure 2 — type of content published by each target group
// (All / Fake / Top / Top-HP / Top-CI).
#include "analysis/content_type.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::size_t threads = bench::threads_from_args(argc, argv);
  ScenarioConfig pb10 = ScenarioConfig::pb10(bench::kDefaultSeed);
  pb10.threads = threads;
  bench::banner("Figure 2", "Content-type mix per target group",
                "video dominates everywhere (37-51% for All, larger for Top-HP);"
                " fake publishers concentrate on video + software",
                pb10);

  const Dataset dataset = bench::dataset_for(pb10);
  const IspCatalog catalog = IspCatalog::standard();
  const IdentityAnalysis identity(dataset, catalog.db(), 100, {}, threads);

  AsciiTable table("Figure 2 — content type fractions per group (pb10)");
  std::vector<std::string> header{"group"};
  for (const CoarseCategory c : kAllCoarseCategories) {
    header.emplace_back(to_string(c));
  }
  header.push_back("n");
  table.header(std::move(header));
  for (const ContentTypeMix& mix : content_type_panel(dataset, identity)) {
    std::vector<std::string> row{std::string(to_string(mix.group))};
    for (const CoarseCategory c : kAllCoarseCategories) {
      row.push_back(percent(mix.of(c)));
    }
    row.push_back(std::to_string(mix.contents));
    table.row(std::move(row));
  }
  table.note("shape to match: Video largest everywhere; Fake skews to Video");
  table.note("and Software (antipiracy decoys + malware); Top-CI (altruistic-");
  table.note("heavy) carries more Audio/Books than Top-HP.");
  table.print();
  return 0;
}
