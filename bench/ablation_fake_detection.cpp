// Ablation — the fake-publisher detection rule (§3.3). A publisher IP is
// called a farm when it published under at least `min_usernames` accounts
// of which at least `banned_fraction` were banned by moderation. This
// harness sweeps both thresholds against generator ground truth and also
// isolates the contribution of each signal (IP fan-out vs moderation bans).
#include <cstdio>

#include "analysis/groups.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

namespace {

struct Quality {
  double precision = 0.0;
  double recall = 0.0;
  std::size_t flagged = 0;
};

Quality score(const Ecosystem& ecosystem, const Dataset& dataset,
              const FakeDetectionConfig& config) {
  const IdentityAnalysis identity(dataset, ecosystem.geo(), 40, config);
  std::size_t tp = 0, fp = 0, fn = 0;
  for (const UsernameStats& stats : identity.usernames()) {
    const auto owner =
        ecosystem.population().owner_of_username.at(stats.username);
    const bool truly_fake = is_fake(ecosystem.population().by_id(owner).cls);
    const bool flagged = identity.is_fake(stats.username);
    tp += truly_fake && flagged;
    fp += !truly_fake && flagged;
    fn += truly_fake && !flagged;
  }
  Quality q;
  q.flagged = tp + fp;
  q.precision = tp + fp ? static_cast<double>(tp) / (tp + fp) : 1.0;
  q.recall = tp + fn ? static_cast<double>(tp) / (tp + fn) : 1.0;
  return q;
}

}  // namespace

int main() {
  const ScenarioConfig scenario = ScenarioConfig::quick(bench::kDefaultSeed);
  bench::banner("Ablation", "Fake-farm detection thresholds",
                "the paper labels an IP a fake farm when many usernames map "
                "to it and the portal keeps banning them (footnote 3)",
                scenario);

  Ecosystem ecosystem(scenario);
  ecosystem.build();
  const Dataset dataset = ecosystem.crawl();

  AsciiTable grid("Precision / recall over the threshold grid");
  grid.header({"min usernames/IP", "banned fraction", "flagged", "precision",
               "recall"});
  for (const std::size_t min_users : {2u, 3u, 5u, 8u}) {
    for (const double banned : {0.0, 0.3, 0.5, 0.9}) {
      FakeDetectionConfig config;
      config.min_usernames_per_ip = min_users;
      config.min_banned_fraction = banned;
      const Quality q = score(ecosystem, dataset, config);
      grid.row({std::to_string(min_users), format_double(banned, 1),
                std::to_string(q.flagged), percent(q.precision),
                percent(q.recall)});
    }
    grid.separator();
  }
  grid.note("the ban signal dominates: since moderation (eventually) removes");
  grid.note("every fake account, recall stays high across the grid, while");
  grid.note("requiring banned usernames keeps shared NATs/universities from");
  grid.note("being misread as farms (precision).");
  grid.print();

  // With leaky moderation (the realistic case the paper hints at: the
  // portals' cleanup "does not seem to be enough effective"), the ban
  // signal becomes incomplete and the thresholds start to matter.
  ScenarioConfig leaky = scenario;
  leaky.moderation_miss_probability = 0.5;
  Ecosystem leaky_eco(leaky);
  leaky_eco.build();
  const Dataset leaky_ds = leaky_eco.crawl();
  AsciiTable leaky_grid(
      "Same grid with moderation missing half of the fake listings");
  leaky_grid.header({"min usernames/IP", "banned fraction", "flagged",
                     "precision", "recall"});
  for (const std::size_t min_users : {2u, 3u, 5u, 8u}) {
    for (const double banned : {0.0, 0.3, 0.5, 0.9}) {
      FakeDetectionConfig config;
      config.min_usernames_per_ip = min_users;
      config.min_banned_fraction = banned;
      const Quality q = score(leaky_eco, leaky_ds, config);
      leaky_grid.row({std::to_string(min_users), format_double(banned, 1),
                      std::to_string(q.flagged), percent(q.precision),
                      percent(q.recall)});
    }
    leaky_grid.separator();
  }
  leaky_grid.note("once bans are incomplete, recall hinges on the IP fan-out");
  leaky_grid.note("rule: demanding too many usernames per IP or too high a");
  leaky_grid.note("banned fraction starts missing farms.");
  leaky_grid.print();

  // Signal isolation: fan-out only (banned fraction 0) on the IP rule vs
  // the full rule. The ban-based username rule is always active, so to see
  // the IP rule alone we compare flagged *IPs*.
  AsciiTable signals("Fake-farm IPs flagged per signal");
  signals.header({"rule", "farm IPs flagged"});
  for (const auto& [label, banned] :
       std::initializer_list<std::pair<const char*, double>>{
           {"fan-out only (>=3 usernames)", 0.0},
           {"fan-out + half banned (paper)", 0.5},
           {"fan-out + all banned", 1.0}}) {
    FakeDetectionConfig config;
    config.min_banned_fraction = banned;
    const IdentityAnalysis identity(dataset, ecosystem.geo(), 40, config);
    signals.row({label, std::to_string(identity.fake_ips().size())});
  }
  signals.print();
  return 0;
}
