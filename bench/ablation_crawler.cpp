// Ablation — how the crawler's design parameters drive what the study can
// see. The paper fixes: RSS polling "immediately", probe threshold 20
// peers, several vantage machines, 10-empty-replies stop. This harness
// sweeps each knob on the quick scenario and reports:
//   * publisher-IP identification rate (and correctness vs ground truth),
//   * download coverage (observed / true distinct downloaders),
//   * seeding-time estimation error.
#include <cstdio>

#include "analysis/session.hpp"
#include "common.hpp"
#include "crawler/crawler.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

namespace {

struct Outcome {
  double identified = 0.0;   // fraction of torrents with an identified IP
  double correct = 0.0;      // of those, fraction matching ground truth
  double coverage = 0.0;     // observed / true downloader IPs
  double session_error = 0.0;  // mean relative seeding-time error
};

Outcome evaluate(Ecosystem& ecosystem, const CrawlerConfig& config) {
  ecosystem.tracker().reset_state(1234);
  Crawler crawler(ecosystem.portal(), ecosystem.tracker(), ecosystem.network(),
                  ecosystem.geo(), config, 77);
  const Dataset dataset = crawler.crawl_window(0, ecosystem.config().window);

  Outcome outcome;
  std::size_t identified = 0, correct = 0;
  double observed = 0, truth_downloads = 0;
  double error = 0;
  std::size_t measured = 0;
  for (std::size_t i = 0; i < dataset.torrent_count(); ++i) {
    const TorrentRecord& record = dataset.torrents[i];
    const TorrentTruth& truth = ecosystem.truth(record.portal_id);
    observed += static_cast<double>(dataset.downloaders[i].size());
    truth_downloads += static_cast<double>(truth.true_downloads);
    if (record.publisher_ip) {
      ++identified;
      if (*record.publisher_ip == truth.publisher_ip) ++correct;
    }
    if (record.publisher_ip && *record.publisher_ip == truth.publisher_ip &&
        dataset.publisher_sightings[i].size() >= 4) {
      SimDuration true_time = 0;
      for (const Interval& s : truth.seed_sessions) true_time += s.length();
      if (true_time < hours(2)) continue;
      SimDuration estimated = 0;
      for (const Interval& s :
           reconstruct_sessions(dataset.publisher_sightings[i], hours(4))) {
        estimated += s.length();
      }
      error += std::abs(to_hours(estimated) - to_hours(true_time)) /
               to_hours(true_time);
      ++measured;
    }
  }
  const auto n = static_cast<double>(dataset.torrent_count());
  outcome.identified = identified / n;
  outcome.correct = identified ? static_cast<double>(correct) / identified : 0.0;
  outcome.coverage = truth_downloads > 0 ? observed / truth_downloads : 0.0;
  outcome.session_error = measured ? error / measured : 0.0;
  return outcome;
}

void add_row(AsciiTable& table, const std::string& label, const Outcome& o) {
  table.row({label, percent(o.identified), percent(o.correct),
             percent(o.coverage), percent(o.session_error)});
}

}  // namespace

int main() {
  const ScenarioConfig scenario = ScenarioConfig::quick(bench::kDefaultSeed);
  bench::banner("Ablation", "Crawler design parameters",
                "the paper's choices: immediate RSS reaction, probe only "
                "swarms with <20 peers and a single seeder, several vantage "
                "machines at the tracker's maximum rate",
                scenario);

  Ecosystem ecosystem(scenario);
  ecosystem.build();

  AsciiTable poll("RSS poll period (how fast a birth is detected)");
  poll.header({"rss_poll", "identified", "correct", "dl coverage",
               "session err"});
  for (const SimDuration period :
       {minutes(1), minutes(5), minutes(30), hours(2), hours(8)}) {
    CrawlerConfig config;
    config.rss_poll = period;
    add_row(poll, format_duration(period), evaluate(ecosystem, config));
  }
  poll.note("slower discovery -> swarms already crowded or multi-seeded ->");
  poll.note("identification collapses: the paper's 'immediately download");
  poll.note("the .torrent' is what makes the study possible at all.");
  poll.print();

  AsciiTable probe("Probe threshold (max peers for seeder identification)");
  probe.header({"max_probe_peers", "identified", "correct", "dl coverage",
                "session err"});
  for (const std::uint32_t limit : {5u, 10u, 20u, 60u, 200u}) {
    CrawlerConfig config;
    config.max_probe_peers = limit;
    add_row(probe, std::to_string(limit), evaluate(ecosystem, config));
  }
  probe.note("raising the threshold identifies more publishers but admits");
  probe.note("crowded swarms where the 'complete bitfield' may belong to an");
  probe.note("early downloader -> correctness decays.");
  probe.print();

  AsciiTable vantage("Vantage machines (aggregated query resolution)");
  vantage.header({"machines", "identified", "correct", "dl coverage",
                  "session err"});
  for (const std::size_t machines : {1u, 2u, 4u}) {
    CrawlerConfig config;
    config.vantage_points = machines;
    add_row(vantage, std::to_string(machines), evaluate(ecosystem, config));
  }
  vantage.note("more machines tighten the sighting grid: better download");
  vantage.note("coverage and session estimates, same identification (which");
  vantage.note("is decided at first contact).");
  vantage.print();

  AsciiTable stop("Stop rule (consecutive empty replies before abandoning)");
  stop.header({"empty replies", "identified", "correct", "dl coverage",
               "session err"});
  for (const std::uint32_t limit : {1u, 3u, 10u, 30u}) {
    CrawlerConfig config;
    config.empty_replies_to_stop = limit;
    add_row(stop, std::to_string(limit), evaluate(ecosystem, config));
  }
  stop.note("giving up after a single empty reply loses the stragglers of");
  stop.note("sparse swarms; the paper's 10 is already near the plateau.");
  stop.print();
  return 0;
}
