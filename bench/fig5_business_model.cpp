// Figure 5 / §6 — the business model of content publishing: quantified
// money flows between downloaders, publishers, portals, hosting providers
// and ad companies. The paper draws this as a diagram; we print the flows
// our simulated ecosystem implies, including the §6 OVH hosting-income
// estimate (servers x ~300 EUR/month).
#include "analysis/classify.hpp"
#include "analysis/income.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::size_t threads = bench::threads_from_args(argc, argv);
  ScenarioConfig pb10 = ScenarioConfig::pb10(bench::kDefaultSeed);
  pb10.threads = threads;
  bench::banner("Figure 5 / §6", "Business-model money flows",
                "OVH earns 23.4K-42.9K EUR/month from 78-164 publisher "
                "servers; publisher sites monetise via ads, donations and "
                "VIP accounts; The Pirate Bay itself valued ~$10M",
                pb10);

  auto ecosystem = bench::build_ecosystem(pb10);
  const Dataset dataset = bench::dataset_for(pb10, *ecosystem);
  const IdentityAnalysis identity(dataset, ecosystem->geo(), 100, {}, threads);
  Rng rng(pb10.seed);
  const auto classification = classify_top_publishers(
      dataset, identity, ecosystem->websites(), 5, rng, threads);
  const MoneyFlows flows =
      money_flows(dataset, classification, ecosystem->websites(),
                  ecosystem->appraisal_panel(), ecosystem->geo(), "OVH", 300.0);

  AsciiTable table("Figure 5 — estimated money flows");
  table.header({"flow", "estimate"});
  table.row({"downloaders -> publisher sites (visits monetised via ads)",
             "$" + humanize(flows.publishers_income_per_day_usd) + " / day"});
  table.row({"publishers -> hosting (OVH servers found in crawl)",
             std::to_string(flows.hosting_servers) + " servers"});
  table.row({"hosting income (servers x 300 EUR/month)",
             humanize(flows.hosting_income_per_month_eur) + " EUR / month"});
  table.row({"ad companies -> publisher sites",
             std::to_string(flows.publishers_with_ads) + " sites via " +
                 std::to_string(flows.ad_networks) + " ad networks"});
  table.note("money circulates: ads companies pay publishers for eyeballs the");
  table.note("portal delivers for free; publishers pay hosting providers for");
  table.note("the seedboxes that keep the content flowing.");
  table.print();

  // Count monetisation channels observed on profit-driven sites (§5.1).
  std::size_t ads = 0, donations = 0, vip = 0, signup = 0, profit = 0;
  for (const PublisherProfile& p : classification.profiles) {
    if (p.cls == BusinessClass::Altruistic) continue;
    ++profit;
    ads += p.ads;
    donations += p.donations;
    vip += p.vip;
    signup += p.signup;
  }
  AsciiTable channels("Monetisation channels across profit-driven publishers");
  channels.header({"publishers", "ads", "donations", "VIP access", "signup"});
  channels.row({std::to_string(profit), std::to_string(ads),
                std::to_string(donations), std::to_string(vip),
                std::to_string(signup)});
  channels.print();
  return 0;
}
