// Table 5 — publishers' website value, daily income and daily visits per
// profit-driven class, estimated by averaging six monitoring services; plus
// the §5.1 class shares the income rides on.
#include "analysis/classify.hpp"
#include "analysis/income.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::size_t threads = bench::threads_from_args(argc, argv);
  ScenarioConfig pb10 = ScenarioConfig::pb10(bench::kDefaultSeed);
  pb10.threads = threads;
  bench::banner("Table 5", "Promoting-website economics per class",
                "BT Portals value 1K/33K/313K/2.8M USD, income 1/55/440/3.7K "
                "USD/day, visits 74/21K/174K/1.4M; Other Webs slightly lower "
                "(min/median/avg/max)",
                pb10);

  auto ecosystem = bench::build_ecosystem(pb10);
  const Dataset dataset = bench::dataset_for(pb10, *ecosystem);
  const IdentityAnalysis identity(dataset, ecosystem->geo(), 100, {}, threads);
  Rng rng(pb10.seed);
  const auto classification = classify_top_publishers(
      dataset, identity, ecosystem->websites(), 5, rng, threads);

  // §5.1 class shares first (the business the incomes ride on).
  AsciiTable shares("§5.1 — class shares among top publishers (paper: "
                    "BT Portals 26% of top with 18%/29% content/downloads; "
                    "Other Webs 24% with 8%/11%; Altruistic 52% with "
                    "11.5%/11.5%)");
  shares.header({"class", "publishers", "content share", "download share"});
  for (const auto& share :
       classification.shares(identity.total_content(), identity.total_downloads())) {
    shares.row({std::string(to_string(share.cls)),
                std::to_string(share.publishers), percent(share.content),
                percent(share.downloads)});
  }
  shares.print();

  AsciiTable table("Table 5 — appraisal-panel estimates (min/median/avg/max)");
  table.header({"class", "value ($)", "daily income ($)", "daily visits",
                "sites"});
  for (const IncomeRow& row :
       income_table(classification, ecosystem->websites(),
                    ecosystem->appraisal_panel())) {
    auto fmt = [](const SummaryRow& s) {
      return humanize(s.min) + " / " + humanize(s.median) + " / " +
             humanize(s.avg) + " / " + humanize(s.max);
    };
    table.row({std::string(to_string(row.cls)), fmt(row.value_usd),
               fmt(row.daily_income_usd), fmt(row.daily_visits),
               std::to_string(row.sites)});
  }
  table.note("shape to match: median site worth tens of thousands of dollars");
  table.note("with tens of thousands of daily visits; heavy tail reaching");
  table.note("into the millions; averages far above medians.");
  table.print();

  // Language specialisation (§5.1's Spanish-content finding).
  std::size_t portal_publishers = 0, language_specific = 0, spanish = 0;
  for (const PublisherProfile& p : classification.profiles) {
    if (p.cls != BusinessClass::BtPortal) continue;
    ++portal_publishers;
    if (p.dominant_language) {
      ++language_specific;
      if (*p.dominant_language == Language::Spanish) ++spanish;
    }
  }
  std::printf("  BT-Portal language specialisation (paper: 40%% language-"
              "specific, 66%% of those Spanish): %zu/%zu specific, %zu Spanish\n\n",
              language_specific, portal_publishers, spanish);
  return 0;
}
