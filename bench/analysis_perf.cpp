// analysis_perf — machine-readable perf baseline for the parallel batch
// analysis engine (emits BENCH_analysis.json). Builds a deterministic
// synthetic world (bench/synth_world.hpp, shared with build_perf's
// snapshot suite), persists it once as an mmap snapshot, then runs each
// analysis pass span-native over the mapped view at 1 vs N threads:
//
//   identity       IdentityAnalysis table build (sharded scan + merge)
//   classify       business classification of every publisher
//   sessions       Figure-4 seeding panel (per-publisher reconstruction)
//   demographics   distinct-IP dedup + geo lookups over all sessions
//   consumption    top-publisher IP scan over every downloader entry
//
// Every case runs in a fork()ed child (honest per-case peak RSS; the POD
// result ships back over a pipe) and digests its full result structure
// with FNV-1a. The parent REFUSES to write numbers when the 1-thread and
// N-thread digests differ — the engine's whole contract is byte-identical
// results at every thread count, so a mismatch exits non-zero instead of
// publishing fast-but-wrong timings. `cores` is recorded so the regression
// gate can normalise away machines with fewer cores than threads (a
// single-core container legitimately measures ~1x).
//
// Usage: analysis_perf [--json PATH] [--threads N] [--seed N]
//                      [--sessions N[,N...]] [--dir PATH] [--quick]
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/classify.hpp"
#include "analysis/streaming/sketch.hpp"
#include "analysis/contribution.hpp"
#include "analysis/demographics.hpp"
#include "analysis/groups.hpp"
#include "analysis/session.hpp"
#include "crawler/dataset_mmap.hpp"
#include "geo/isp_catalog.hpp"
#include "synth_world.hpp"
#include "websim/website.hpp"

namespace btpub {
namespace {

using bench::dataset_sessions;
using bench::synth_dataset;

struct Options {
  std::string json_path = "BENCH_analysis.json";
  std::uint64_t seed = 42;
  /// The parallel case's worker count (the "N" in 1-vs-N).
  std::size_t threads = 4;
  std::vector<std::uint64_t> sessions = {1'000'000, 10'000'000};
  /// Scratch directory for the mmap snapshot files.
  std::string dir = "/tmp";
};

/// FNV-1a over the result structures. Unordered sets fold through an
/// order-independent XOR so the digest doesn't depend on bucket layout.
struct Digest {
  std::uint64_t h = 14695981039346656037ull;

  void bytes(const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  template <typename Set, typename Fn>
  void unordered(const Set& set, Fn&& element_hash) {
    std::uint64_t x = 0;
    for (const auto& e : set) x ^= element_hash(e);
    u64(set.size());
    u64(x);
  }
};

std::uint64_t str_hash(std::string_view s) {
  Digest d;
  d.str(s);
  return d.h;
}

void digest_identity(Digest& d, const IdentityAnalysis& identity) {
  d.u64(identity.usernames().size());
  for (const UsernameStats& u : identity.usernames()) {
    d.str(u.username);
    d.u64(u.content_count);
    d.u64(u.download_count);
    d.u64(u.banned ? 1 : 0);
    d.u64(u.torrents.size());
    for (std::size_t t : u.torrents) d.u64(t);
    d.u64(u.ips.size());
    for (IpAddress ip : u.ips) d.u64(ip.value());
  }
  d.u64(identity.ips().size());
  for (const IpStats& s : identity.ips()) {
    d.u64(s.ip.value());
    d.u64(s.content_count);
    d.u64(s.banned_usernames);
    d.u64(s.torrents.size());
    for (std::size_t t : s.torrents) d.u64(t);
    d.u64(s.usernames.size());
    for (const std::string& n : s.usernames) d.str(n);
  }
  for (const std::string& n : identity.top()) d.str(n);
  d.u64(identity.compromised_in_top());
  d.unordered(identity.fake_usernames(), str_hash);
  d.unordered(identity.fake_ips(),
              [](IpAddress ip) { return mix64(ip.value()); });
  d.unordered(identity.top_hp(), str_hash);
  d.unordered(identity.top_ci(), str_hash);
  for (TargetGroup g : {TargetGroup::All, TargetGroup::Fake, TargetGroup::Top,
                        TargetGroup::TopHP, TargetGroup::TopCI}) {
    const auto share = identity.share_of(g);
    d.f64(share.content);
    d.f64(share.downloads);
  }
  const auto breakdown = identity.top_ip_breakdown();
  d.u64(breakdown.considered);
  d.u64(breakdown.single_username);
  d.u64(breakdown.multi_username);
  d.u64(identity.total_content());
  d.u64(identity.total_downloads());
}

/// POD shipped child -> parent over the pipe.
struct CaseResult {
  double seconds = 0.0;  // per rep
  long peak_rss_kb = 0;
  std::uint64_t digest = 0;
  std::uint64_t items = 0;
  std::uint64_t reps = 0;
};

long peak_rss_kb_self() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

/// Runs one analysis pass `reps` times over the mapped view and digests
/// the final run's full result. The short passes repeat so the measured
/// wall time stays well clear of timer noise; results are identical
/// across reps by construction (fixed per-rep RNG seeds).
CaseResult run_case(const std::string& name, std::size_t threads,
                    const std::string& mmap_path, std::uint64_t seed) {
  const MappedDataset mapped(mmap_path);
  const CompactDatasetView view = mapped.view();
  const IspCatalog catalog = IspCatalog::standard();
  const GeoDb& geo = catalog.db();

  CaseResult result;
  result.reps = name == "demographics" || name == "consumption" ? 1 : 3;

  auto timed = [&](auto&& body) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t rep = 0; rep < result.reps; ++rep) body(rep);
    const auto t1 = std::chrono::steady_clock::now();
    result.seconds = std::chrono::duration<double>(t1 - t0).count() /
                     static_cast<double>(result.reps);
  };

  if (name == "identity") {
    timed([&](std::uint64_t) {
      const IdentityAnalysis identity(view, geo, 100, {}, threads);
      Digest d;
      digest_identity(d, identity);
      result.digest = d.h;
      result.items = identity.usernames().size() + identity.ips().size();
    });
  } else if (name == "classify") {
    // Promote every username into the top cut so the classifier scans the
    // whole world's promotion channels, not the paper's 100-publisher cut.
    const IdentityAnalysis identity(view, geo, view.torrent_count(), {},
                                    threads);
    const WebsiteDirectory websites;  // empty: every URL resolves off-site
    timed([&](std::uint64_t rep) {
      Rng rng(derive_seed(seed, 0xc1a5, rep));
      const ClassificationResult classified = classify_top_publishers(
          view, identity, websites, 0, rng, threads);
      Digest d;
      d.u64(classified.profiles.size());
      for (const PublisherProfile& p : classified.profiles) {
        d.str(p.username);
        d.u64(static_cast<std::uint64_t>(p.cls));
        d.str(p.domain);
        d.u64((p.in_textbox ? 1 : 0) | (p.in_filename ? 2 : 0) |
              (p.in_payload ? 4 : 0) | (p.ads ? 8 : 0) |
              (p.donations ? 16 : 0) | (p.vip ? 32 : 0) |
              (p.signup ? 64 : 0) | (p.private_tracker ? 128 : 0));
        for (const std::string& n : p.ad_networks) d.str(n);
        d.u64(p.content_count);
        d.u64(p.download_count);
        d.u64(p.dominant_language
                  ? 1 + static_cast<std::uint64_t>(*p.dominant_language)
                  : 0);
      }
      for (const auto& share :
           classified.shares(identity.total_content(),
                             identity.total_downloads())) {
        d.u64(share.publishers);
        d.f64(share.content);
        d.f64(share.downloads);
      }
      result.digest = d.h;
      result.items = classified.profiles.size();
    });
  } else if (name == "sessions") {
    const IdentityAnalysis identity(view, geo, 100, {}, threads);
    timed([&](std::uint64_t rep) {
      Rng rng(derive_seed(seed, 0x5e55, rep));
      const std::vector<SeedingBox> panel =
          seeding_panel(view, identity, 400, rng, hours(4), threads);
      Digest d;
      d.u64(panel.size());
      for (const SeedingBox& box : panel) {
        d.u64(static_cast<std::uint64_t>(box.group));
        d.u64(box.publishers);
        for (const BoxStats* stats :
             {&box.seeding_time_hours, &box.parallel_torrents,
              &box.aggregated_session_hours}) {
          d.f64(stats->min);
          d.f64(stats->p25);
          d.f64(stats->median);
          d.f64(stats->p75);
          d.f64(stats->max);
          d.u64(stats->count);
        }
      }
      result.digest = d.h;
      result.items = panel.size();
    });
  } else if (name == "demographics") {
    timed([&](std::uint64_t) {
      const DownloaderDemographics demo =
          downloader_demographics(view, geo, 10, threads);
      Digest d;
      d.u64(demo.total_distinct_ips);
      d.u64(demo.located_ips);
      for (const auto* rows : {&demo.by_country, &demo.by_isp}) {
        d.u64(rows->size());
        for (const DemographicRow& row : *rows) {
          d.str(row.label);
          d.u64(row.downloaders);
          d.f64(row.share);
        }
      }
      result.digest = d.h;
      result.items = demo.total_distinct_ips;
    });
  } else if (name == "consumption") {
    const IdentityAnalysis identity(view, geo, 100, {}, threads);
    timed([&](std::uint64_t) {
      const TopConsumptionStats stats =
          top_publisher_consumption(view, identity, 100, threads);
      Digest d;
      d.u64(stats.considered);
      d.u64(stats.zero_downloads);
      d.u64(stats.under_five_downloads);
      result.digest = d.h;
      result.items = stats.considered;
    });
  } else {
    std::fprintf(stderr, "analysis_perf: unknown case %s\n", name.c_str());
    std::exit(2);
  }
  result.peak_rss_kb = peak_rss_kb_self();
  return result;
}

/// Runs `body` in a forked child so peak RSS is per-case.
CaseResult run_forked(const char* what,
                      const std::function<CaseResult()>& body) {
  int fd[2];
  if (pipe(fd) != 0) {
    std::perror("analysis_perf: pipe");
    std::exit(2);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("analysis_perf: fork");
    std::exit(2);
  }
  if (pid == 0) {
    close(fd[0]);
    const CaseResult result = body();
    ssize_t wrote = write(fd[1], &result, sizeof result);
    _exit(wrote == static_cast<ssize_t>(sizeof result) ? 0 : 3);
  }
  close(fd[1]);
  CaseResult result;
  const ssize_t got = read(fd[0], &result, sizeof result);
  close(fd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof result) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "analysis_perf: %s child failed\n", what);
    std::exit(2);
  }
  return result;
}

struct Row {
  std::string name;
  std::uint64_t sessions = 0;
  std::size_t threads = 0;
  CaseResult r;
};

constexpr const char* kCases[] = {"identity", "classify", "sessions",
                                  "demographics", "consumption"};

void run_world(std::uint64_t sessions, const Options& opt,
               std::vector<Row>& rows) {
  namespace fs = std::filesystem;
  char name[64];
  std::snprintf(name, sizeof name, "btpub_analysis_%llu.ds",
                static_cast<unsigned long long>(sessions));
  const std::string mmap_path =
      mmap_sibling_path((fs::path(opt.dir) / name).string());

  std::fprintf(stderr, "analysis_perf: building %llu-session snapshot...\n",
               static_cast<unsigned long long>(sessions));
  run_forked("snapshot build", [&] {
    const Dataset d = synth_dataset(sessions, opt.seed);
    save_mmap_snapshot(d, mmap_path);
    CaseResult r;
    r.items = dataset_sessions(d);
    r.peak_rss_kb = peak_rss_kb_self();
    return r;
  });

  for (const char* c : kCases) {
    for (const std::size_t threads : {std::size_t{1}, opt.threads}) {
      std::fprintf(stderr, "analysis_perf: %s @%zu thread(s)...\n", c,
                   threads);
      rows.push_back(Row{c, sessions, threads,
                         run_forked(c, [&] {
                           return run_case(c, threads, mmap_path, opt.seed);
                         })});
      const Row& row = rows.back();
      std::fprintf(stderr,
                   "analysis_perf:   %.4fs/rep, digest %016llx, %llu items\n",
                   row.r.seconds,
                   static_cast<unsigned long long>(row.r.digest),
                   static_cast<unsigned long long>(row.r.items));
    }
    // The determinism gate: refuse to publish timings whose results
    // differ between thread counts.
    const Row& serial = rows[rows.size() - 2];
    const Row& parallel = rows[rows.size() - 1];
    if (serial.r.digest != parallel.r.digest) {
      std::fprintf(stderr,
                   "analysis_perf: %s digest mismatch @%llu sessions "
                   "(1 thread %016llx vs %zu threads %016llx)\n",
                   c, static_cast<unsigned long long>(sessions),
                   static_cast<unsigned long long>(serial.r.digest),
                   opt.threads,
                   static_cast<unsigned long long>(parallel.r.digest));
      std::exit(2);
    }
  }
  fs::remove(mmap_path);
}

const Row* find_row(const std::vector<Row>& rows, std::uint64_t sessions,
                    std::string_view name, std::size_t threads) {
  for (const Row& row : rows) {
    if (row.sessions == sessions && row.name == name &&
        row.threads == threads) {
      return &row;
    }
  }
  return nullptr;
}

void write_json(const Options& opt, const std::vector<Row>& rows) {
  std::ofstream out(opt.json_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "analysis_perf: cannot open %s\n",
                 opt.json_path.c_str());
    std::exit(1);
  }
  const unsigned cores = std::thread::hardware_concurrency();
  out << "{\n  \"benchmark\": \"analysis_parallel\",\n";
  char line[512];
  std::snprintf(line, sizeof line,
                "  \"config\": {\"seed\": %llu, \"threads\": %zu, "
                "\"cores\": %u, \"format_version\": %d},\n",
                static_cast<unsigned long long>(opt.seed), opt.threads, cores,
                mmap_format_version());
  out << line;
  out << "  \"headline\": [\n";
  for (std::size_t i = 0; i < opt.sessions.size(); ++i) {
    const std::uint64_t n = opt.sessions[i];
    double total_serial = 0.0, total_parallel = 0.0;
    std::string speedups;
    for (const char* c : kCases) {
      const Row* serial = find_row(rows, n, c, 1);
      const Row* parallel = find_row(rows, n, c, opt.threads);
      total_serial += serial->r.seconds;
      total_parallel += parallel->r.seconds;
      std::snprintf(line, sizeof line, "\"%s_speedup\": %.2f, ", c,
                    serial->r.seconds / parallel->r.seconds);
      speedups += line;
    }
    const Row* demo = find_row(rows, n, "demographics", opt.threads);
    std::snprintf(line, sizeof line,
                  "    {\"sessions\": %llu, %s\"analysis_speedup\": %.2f, "
                  "\"demographics_rss_kb\": %ld}%s\n",
                  static_cast<unsigned long long>(n), speedups.c_str(),
                  total_serial / total_parallel, demo->r.peak_rss_kb,
                  i + 1 < opt.sessions.size() ? "," : "");
    out << line;
  }
  out << "  ],\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::snprintf(
        line, sizeof line,
        "    {\"case\": \"%s\", \"sessions\": %llu, \"threads\": %zu, "
        "\"reps\": %llu, \"seconds\": %.6f, \"peak_rss_kb\": %ld, "
        "\"items\": %llu, \"digest\": \"%016llx\"}%s\n",
        row.name.c_str(), static_cast<unsigned long long>(row.sessions),
        row.threads, static_cast<unsigned long long>(row.r.reps),
        row.r.seconds, row.r.peak_rss_kb,
        static_cast<unsigned long long>(row.r.items),
        static_cast<unsigned long long>(row.r.digest),
        i + 1 < rows.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "analysis_perf: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--threads") {
      opt.threads =
          static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--dir") {
      opt.dir = next();
    } else if (arg == "--quick") {
      opt.sessions = {1'000'000};
    } else if (arg == "--sessions") {
      opt.sessions.clear();
      const char* p = next();
      while (*p != '\0') {
        char* end = nullptr;
        const std::uint64_t n = std::strtoull(p, &end, 10);
        if (end == p || n == 0) {
          std::fprintf(stderr, "analysis_perf: bad --sessions list\n");
          return 2;
        }
        opt.sessions.push_back(n);
        p = *end == ',' ? end + 1 : end;
      }
      if (opt.sessions.empty()) {
        std::fprintf(stderr,
                     "analysis_perf: --sessions needs at least one count\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: analysis_perf [--json PATH] [--threads N] "
                   "[--seed N] [--sessions N[,N...]] [--dir PATH] "
                   "[--quick]\n");
      return 2;
    }
  }
  if (opt.threads < 2) opt.threads = 2;

  std::vector<Row> rows;
  for (const std::uint64_t sessions : opt.sessions) {
    run_world(sessions, opt, rows);
  }
  write_json(opt, rows);

  for (const std::uint64_t n : opt.sessions) {
    std::printf("%llu sessions:\n", static_cast<unsigned long long>(n));
    for (const char* c : kCases) {
      const Row* serial = find_row(rows, n, c, 1);
      const Row* parallel = find_row(rows, n, c, opt.threads);
      std::printf("  %-13s %.4fs @1 vs %.4fs @%zu threads (%.2fx), "
                  "digests match\n",
                  c, serial->r.seconds, parallel->r.seconds, opt.threads,
                  serial->r.seconds / parallel->r.seconds);
    }
  }
  std::printf("cores: %u\nwrote %s\n", std::thread::hardware_concurrency(),
              opt.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace btpub

int main(int argc, char** argv) { return btpub::run(argc, argv); }
