// Table 2 — content publishers distribution per ISP (top-10 per dataset).
#include "analysis/isp.hpp"
#include "common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::size_t threads = bench::threads_from_args(argc, argv);
  ScenarioConfig pb10 = ScenarioConfig::pb10(bench::kDefaultSeed);
  pb10.threads = threads;
  bench::banner("Table 2", "Content publishers distribution per ISP",
                "pb10 top-10 led by OVH 15.16% (hosting), then a mix of "
                "hosting providers and commercial ISPs (Comcast 2.86%)",
                pb10);

  const IspCatalog catalog = IspCatalog::standard();
  for (ScenarioConfig config :
       {ScenarioConfig::mn08(bench::kDefaultSeed),
        ScenarioConfig::pb09(bench::kDefaultSeed), pb10}) {
    config.threads = threads;
    const Dataset dataset = bench::dataset_for(config);
    const auto rows = top_publisher_isps(dataset, catalog.db(), 10);
    AsciiTable table("Table 2 — " + dataset.name + " top-10 ISPs by fed content");
    table.header({"ISP", "type", "% content", "% publisher IPs", "torrents",
                  "IPs"});
    for (const IspShareRow& row : rows) {
      table.row({row.isp, std::string(to_string(row.type)),
                 percent(row.content_share), percent(row.publisher_share),
                 std::to_string(row.torrents), std::to_string(row.publisher_ips)});
    }
    if (dataset.style == DatasetStyle::Pb10) {
      const auto hosting = top_hosting_share(
          IdentityAnalysis(dataset, catalog.db(), 100, {}, threads),
          catalog.db(), "OVH", 100);
      table.note("top-100 publishers at hosting providers (paper: 42%): " +
                 std::to_string(hosting.at_hosting) + "/" +
                 std::to_string(hosting.considered) + ", of which at OVH: " +
                 std::to_string(hosting.at_named_isp));
    }
    table.print();
  }
  return 0;
}
