// Appendix A — validation of the session-estimation model:
//   (1) the discovery-probability formula P = 1-(1-W/N)^m against an
//       empirical tracker-sampling experiment;
//   (2) the derived operating point (W=50, N=165 -> m=13, ~4 h at 18-minute
//       query gaps);
//   (3) robustness of the seeding-time estimate to the offline threshold
//       (2 h / 4 h / 6 h), measured against generator ground truth.
#include <cstdio>

#include "analysis/session.hpp"
#include "common.hpp"
#include "swarm/swarm.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

namespace {

/// Empirical P(target seen within m samples of W out of N present peers).
double empirical_discovery(std::size_t w, std::size_t n, std::size_t m,
                           std::size_t trials, Rng& rng) {
  // Build a static swarm of n peers; the target is peer 0.
  Swarm swarm(Sha1::hash("appendixA"), 16, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    PeerSession s;
    s.endpoint = Endpoint{IpAddress(0x0C000000 + i), 6881};
    s.arrive = 0;
    s.depart = days(365);
    swarm.add_session(s);
  }
  swarm.finalize();
  const IpAddress target(0x0C000000);
  std::size_t hits = 0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    bool seen = false;
    for (std::size_t q = 0; q < m && !seen; ++q) {
      for (const PeerSession* peer : swarm.sample_peers(10, w, rng)) {
        if (peer->endpoint.ip == target) {
          seen = true;
          break;
        }
      }
    }
    hits += seen;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace

int main() {
  const ScenarioConfig quick = ScenarioConfig::quick(bench::kDefaultSeed);
  bench::banner("Appendix A", "Session-estimation model validation",
                "P = 1-(1-W/N)^m; W=50, N=165 -> m=13 for P>0.99, i.e. ~4h at "
                "18-minute gaps; results stable for 2h/6h thresholds",
                quick);

  Rng rng(7);
  AsciiTable formula("Equation (1) — analytic vs empirical discovery probability");
  formula.header({"W", "N", "m", "analytic P", "empirical P"});
  struct Point {
    std::size_t w, n, m;
  };
  for (const Point p : {Point{50, 165, 1}, Point{50, 165, 4}, Point{50, 165, 13},
                        Point{200, 1000, 5}, Point{20, 400, 30}}) {
    const double analytic = discovery_probability(
        static_cast<double>(p.w), static_cast<double>(p.n), p.m);
    const double empirical = empirical_discovery(p.w, p.n, p.m, 4000, rng);
    formula.row({std::to_string(p.w), std::to_string(p.n), std::to_string(p.m),
                 format_double(analytic, 4), format_double(empirical, 4)});
  }
  formula.print();

  AsciiTable operating("Operating point (paper: m=13 queries, 18-minute gaps "
                       "-> 4h offline threshold at P=0.99)");
  operating.header({"W", "N", "target P", "queries m", "time at 18-min gaps"});
  const std::size_t m = queries_for_probability(50, 165, 0.99);
  operating.row({"50", "165", "0.99", std::to_string(m),
                 format_double(to_hours(static_cast<SimDuration>(m) * minutes(18)), 1) +
                     " h"});
  operating.print();

  // Threshold robustness on a real (simulated) crawl against ground truth.
  Ecosystem ecosystem(quick);
  ecosystem.build();
  const Dataset dataset = ecosystem.crawl();
  AsciiTable robustness("Seeding-time estimate vs ground truth per offline "
                        "threshold (paper: 2h/4h/6h give similar results)");
  robustness.header({"threshold", "mean relative error", "torrents measured"});
  for (const SimDuration threshold : {hours(2), hours(4), hours(6)}) {
    double total_error = 0.0;
    std::size_t measured = 0;
    for (std::size_t i = 0; i < dataset.torrent_count(); ++i) {
      const TorrentRecord& record = dataset.torrents[i];
      if (!record.publisher_ip) continue;
      const TorrentTruth& truth = ecosystem.truth(record.portal_id);
      if (*record.publisher_ip != truth.publisher_ip) continue;
      if (dataset.publisher_sightings[i].size() < 4) continue;
      SimDuration true_time = 0;
      for (const Interval& s : truth.seed_sessions) true_time += s.length();
      if (true_time < hours(2)) continue;
      const auto sessions =
          reconstruct_sessions(dataset.publisher_sightings[i], threshold);
      SimDuration estimated = 0;
      for (const Interval& s : sessions) estimated += s.length();
      total_error += std::abs(to_hours(estimated) - to_hours(true_time)) /
                     to_hours(true_time);
      ++measured;
    }
    robustness.row({format_duration(threshold),
                    percent(measured ? total_error / measured : 0.0),
                    std::to_string(measured)});
  }
  robustness.note("the 4h threshold reconstructs seeding time within a modest");
  robustness.note("relative error, and 2h/6h agree — the estimator is not");
  robustness.note("sensitive to the exact cut, as Appendix A argues.");
  robustness.print();
  return 0;
}
