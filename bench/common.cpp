#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "crawler/dataset_io.hpp"

namespace btpub::bench {

std::string cache_dir() {
  if (const char* env = std::getenv("BTPUB_CACHE_DIR")) return env;
  return "btpub-cache";
}

std::unique_ptr<Ecosystem> build_ecosystem(const ScenarioConfig& config) {
  auto ecosystem = std::make_unique<Ecosystem>(config);
  ecosystem->build();
  return ecosystem;
}

namespace {

std::string cache_path(const ScenarioConfig& config) {
  // The format version is part of the key: bumping the on-disk layout
  // makes every stale btpub-cache/*.ds regenerate instead of silently
  // deserializing (or choking on) old bytes.
  return cache_dir() + "/" + config.name + "_seed" + std::to_string(config.seed) +
         "_w" + std::to_string(config.window / kDay) + "_v" +
         std::to_string(dataset_format_version()) + ".ds";
}

}  // namespace

Dataset dataset_for(const ScenarioConfig& config) {
  return load_or_generate(cache_path(config), [&config]() {
    std::fprintf(stderr, "[btpub] generating %s (seed %llu) — first run only\n",
                 config.name.c_str(),
                 static_cast<unsigned long long>(config.seed));
    Ecosystem ecosystem(config);
    ecosystem.build();
    return ecosystem.crawl();
  });
}

Dataset dataset_for(const ScenarioConfig& config, Ecosystem& ecosystem) {
  return load_or_generate(cache_path(config),
                          [&ecosystem]() { return ecosystem.crawl(); });
}

std::size_t threads_from_args(int argc, char** argv) {
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--threads N]\n", argv[0]);
      std::exit(2);
    }
  }
  return threads;
}

void banner(const std::string& id, const std::string& title,
            const std::string& paper_note, const ScenarioConfig& config) {
  std::printf("### %s: %s\n", id.c_str(), title.c_str());
  std::printf("    paper: %s\n", paper_note.c_str());
  std::printf("    scenario: %s  seed=%llu  window=%lldd\n\n",
              config.name.c_str(), static_cast<unsigned long long>(config.seed),
              static_cast<long long>(config.window / kDay));
}

}  // namespace btpub::bench
