// Table 1 — datasets description: torrents with identified username / IP
// and total discovered IP addresses, for the mn08 / pb09 / pb10 crawls.
#include "common.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace btpub;

int main(int argc, char** argv) {
  const std::size_t threads = bench::threads_from_args(argc, argv);
  const auto configs = {ScenarioConfig::mn08(bench::kDefaultSeed),
                        ScenarioConfig::pb09(bench::kDefaultSeed),
                        ScenarioConfig::pb10(bench::kDefaultSeed)};

  bench::banner("Table 1", "Datasets description",
                "mn08 -/20.8K torrents, 8.2M IPs | pb09 23.2K/10.4K, 52.9K IPs "
                "| pb10 38.4K/14.6K, 27.3M IPs (full scale)",
                *configs.begin());

  AsciiTable table("Table 1 — datasets (simulated scale)");
  table.header({"dataset", "window", "#torrents (user/IP)", "#IP addresses",
                "IP obs. total"});
  for (ScenarioConfig config : configs) {
    config.threads = threads;
    const Dataset dataset = bench::dataset_for(config);
    std::string identified;
    if (dataset.style == DatasetStyle::Mn08) {
      identified = "- / " + std::to_string(dataset.with_publisher_ip());
    } else {
      identified = std::to_string(dataset.with_username()) + " / " +
                   std::to_string(dataset.with_publisher_ip());
    }
    table.row({dataset.name, std::to_string(config.window / kDay) + "d",
               identified, humanize(static_cast<double>(dataset.distinct_ips_global())),
               humanize(static_cast<double>(dataset.ip_observations_total()))});
  }
  table.note("shape to match: pb10 identifies the publisher IP for a minority");
  table.note("of torrents (paper: 38%); pb09's single-query style sees 2-3");
  table.note("orders of magnitude fewer IPs than the monitored crawls.");
  table.print();
  return 0;
}
