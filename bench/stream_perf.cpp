// stream_perf — machine-readable perf baseline for the streaming analysis
// layer (§4.5). Measures the per-update cost of each streaming component
// (HyperLogLog add, count-min add, online session insertion, the
// classifier's observer hot path) and the end-to-end cost of running a
// full tracker crawl with the StreamingClassifier attached versus plain,
// then writes wall time, per-update nanoseconds and peak RSS to a JSON
// file so CI can archive the trajectory across PRs.
//
// Every case runs in a fork()ed child so its peak RSS is its own (RSS is
// monotone per process); the child ships a POD result record back over a
// pipe — the same harness shape as build_perf.
//
// Usage: stream_perf [--json PATH] [--seed N] [--quick]
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/streaming/online_session.hpp"
#include "analysis/streaming/sketch.hpp"
#include "analysis/streaming/streaming_classifier.hpp"
#include "core/ecosystem.hpp"
#include "crawler/crawler.hpp"

namespace btpub {
namespace {

struct Options {
  std::string json_path = "BENCH_stream.json";
  std::uint64_t seed = 42;
  bool quick = false;
};

/// POD shipped child -> parent over the pipe.
struct CaseResult {
  double seconds = 0.0;      // timed section only
  long peak_rss_kb = 0;
  std::uint64_t updates = 0;  // units the timed section processed
  /// Case-specific quality metric: relative estimate error for the sketch
  /// cases, snapshot seconds for the crawl cases.
  double aux = 0.0;
};

long peak_rss_kb_self() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

ScenarioConfig crawl_scenario(const Options& opt) {
  ScenarioConfig config = ScenarioConfig::quick(opt.seed);
  if (opt.quick) {
    config.window = days(2);
    config.population.regular_publishers /= 3;
  }
  return config;
}

CaseResult run_case(const std::string& name, const Options& opt) {
  CaseResult result;

  if (name == "hll_update") {
    // The distinct-IP hot path, including the saturation regime the sketch
    // exists for: millions of distinct keys into one 4 KiB sketch.
    const std::uint64_t n = opt.quick ? 2'000'000 : 10'000'000;
    HyperLogLog hll(12);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < n; ++i) hll.add(i);
    result.seconds = seconds_since(t0);
    result.updates = n;
    result.aux = std::abs(hll.estimate() - static_cast<double>(n)) /
                 static_cast<double>(n);
  } else if (name == "cms_update") {
    const std::uint64_t n = opt.quick ? 2'000'000 : 10'000'000;
    CountMinSketch cms(4096, 4);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < n; ++i) cms.add(i & 0xFFFFF);
    result.seconds = seconds_since(t0);
    result.updates = n;
    result.aux = cms.epsilon();
  } else if (name == "sighting_update") {
    // Per-sighting insertion cost of the online session estimator over a
    // realistic publisher mix: mostly in-order tracker sightings with a
    // second vantage interleaving out of order.
    const std::size_t publishers = opt.quick ? 500 : 2000;
    const std::size_t per_publisher = opt.quick ? 400 : 1000;
    Rng rng(opt.seed);
    std::vector<OnlineSessionEstimator> estimators(publishers);
    std::vector<SimTime> times;
    times.reserve(per_publisher);
    const auto t0 = std::chrono::steady_clock::now();
    for (auto& est : estimators) {
      times.clear();
      SimTime t = 0;
      for (std::size_t s = 0; s < per_publisher; ++s) {
        t += minutes(5 + rng.uniform_int(0, 120));
        times.push_back(t);
      }
      // ~10% of the stream arrives late (the DHT vantage).
      for (std::size_t s = 0; s + 10 < times.size(); s += 10) {
        std::swap(times[s], times[s + 10]);
      }
      for (const SimTime sighting : times) est.add_sighting(sighting);
    }
    result.seconds = seconds_since(t0);
    result.updates = publishers * per_publisher;
    double sessions = 0.0;
    for (const auto& est : estimators) {
      sessions += static_cast<double>(est.session_count());
    }
    result.aux = sessions / static_cast<double>(publishers);
  } else if (name == "classifier_push") {
    // The observer hot path end to end: slot lookup under the shared lock,
    // HLL add, count-min add, session insertion.
    const TorrentId torrents = opt.quick ? 200 : 1000;
    const int rounds = 50, batch = 40;
    GeoDb geo;
    WebsiteDirectory websites;
    StreamingClassifier stream(geo, websites, {});
    for (TorrentId id = 0; id < torrents; ++id) {
      TorrentRecord record;
      record.portal_id = id;
      record.username = "pub" + std::to_string(id % 97);
      record.publisher_ip = IpAddress(0x0A000000u + static_cast<std::uint32_t>(id));
      stream.on_discover(record, 0);
    }
    std::vector<IpAddress> ips(batch);
    const auto t0 = std::chrono::steady_clock::now();
    for (int round = 0; round < rounds; ++round) {
      const SimTime now = minutes(30) * (round + 1);
      for (TorrentId id = 0; id < torrents; ++id) {
        for (int i = 0; i < batch; ++i) {
          ips[static_cast<std::size_t>(i)] = IpAddress(
              0x20000000u + static_cast<std::uint32_t>(id) * 8192 +
              static_cast<std::uint32_t>(round * batch + i));
        }
        stream.on_downloaders(id, ips, now);
        stream.on_publisher_sighting(id, now);
      }
    }
    result.seconds = seconds_since(t0);
    result.updates = stream.updates();
    const auto s0 = std::chrono::steady_clock::now();
    const StreamingSnapshot snap = stream.finalize(hours(25));
    result.aux = seconds_since(s0);  // full-snapshot cost
    if (snap.torrents != static_cast<std::size_t>(torrents)) std::exit(4);
  } else if (name == "crawl_plain" || name == "crawl_observer") {
    // End-to-end: the quick-scenario tracker crawl, with and without the
    // streaming classifier riding along; the pair quantifies the observer
    // overhead on the real announce path.
    ScenarioConfig config = crawl_scenario(opt);
    Ecosystem ecosystem(config);
    ecosystem.build();
    StreamingClassifier stream(ecosystem.geo(), ecosystem.websites(), {});
    ecosystem.tracker().reset_state(derive_seed(config.seed, 0xBE7Cull));
    Crawler crawler(ecosystem.portal(), ecosystem.tracker(),
                    ecosystem.network(), ecosystem.geo(), config.crawler,
                    derive_seed(config.seed, 0xC7A31ull));
    if (name == "crawl_observer") crawler.set_observer(&stream);
    const auto t0 = std::chrono::steady_clock::now();
    const Dataset dataset = crawler.crawl_window(0, config.window);
    result.seconds = seconds_since(t0);
    result.updates = name == "crawl_observer"
                         ? stream.updates()
                         : static_cast<std::uint64_t>(
                               dataset.ip_observations_total());
    if (name == "crawl_observer") {
      const auto s0 = std::chrono::steady_clock::now();
      const StreamingSnapshot snap = stream.finalize(config.window);
      result.aux = seconds_since(s0);
      if (snap.torrents != dataset.torrent_count()) std::exit(4);
    }
  } else {
    std::fprintf(stderr, "stream_perf: unknown case %s\n", name.c_str());
    std::exit(2);
  }

  result.peak_rss_kb = peak_rss_kb_self();
  return result;
}

/// Runs one case in a forked child so peak RSS is per-case.
CaseResult run_case_forked(const std::string& name, const Options& opt) {
  int fd[2];
  if (pipe(fd) != 0) {
    std::perror("stream_perf: pipe");
    std::exit(2);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("stream_perf: fork");
    std::exit(2);
  }
  if (pid == 0) {
    close(fd[0]);
    const CaseResult result = run_case(name, opt);
    ssize_t wrote = write(fd[1], &result, sizeof result);
    _exit(wrote == static_cast<ssize_t>(sizeof result) ? 0 : 3);
  }
  close(fd[1]);
  CaseResult result;
  const ssize_t got = read(fd[0], &result, sizeof result);
  close(fd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof result) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "stream_perf: case %s child failed\n", name.c_str());
    std::exit(2);
  }
  return result;
}

struct Row {
  std::string name;
  CaseResult r;
};

void write_json(const Options& opt, const std::vector<Row>& rows,
                double observer_overhead) {
  std::ofstream out(opt.json_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "stream_perf: cannot open %s\n",
                 opt.json_path.c_str());
    std::exit(1);
  }
  out << "{\n  \"benchmark\": \"streaming_analysis\",\n";
  out << "  \"config\": {\"seed\": " << opt.seed << ", \"quick\": "
      << (opt.quick ? "true" : "false") << "},\n";
  char line[512];
  std::snprintf(line, sizeof line,
                "  \"crawl_observer_overhead\": %.3f,\n", observer_overhead);
  out << line;
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const double ns_per_update =
        row.r.updates > 0
            ? row.r.seconds * 1e9 / static_cast<double>(row.r.updates)
            : 0.0;
    std::snprintf(
        line, sizeof line,
        "    {\"case\": \"%s\", \"seconds\": %.4f, \"updates\": %llu, "
        "\"ns_per_update\": %.1f, \"peak_rss_kb\": %ld, \"aux\": %.6f}%s\n",
        row.name.c_str(), row.r.seconds,
        static_cast<unsigned long long>(row.r.updates), ns_per_update,
        row.r.peak_rss_kb, row.r.aux, i + 1 < rows.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "stream_perf: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--quick") {
      opt.quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: stream_perf [--json PATH] [--seed N] [--quick]\n");
      return 2;
    }
  }

  const std::vector<std::string> cases{"hll_update", "cms_update",
                                       "sighting_update", "classifier_push",
                                       "crawl_plain", "crawl_observer"};
  std::vector<Row> rows;
  for (const std::string& name : cases) {
    std::fprintf(stderr, "stream_perf: %s...\n", name.c_str());
    rows.push_back(Row{name, run_case_forked(name, opt)});
  }

  const double plain = rows[4].r.seconds;
  const double observer_overhead =
      plain > 0.0 ? rows[5].r.seconds / plain : 0.0;
  write_json(opt, rows, observer_overhead);

  for (const Row& row : rows) {
    const double ns = row.r.updates > 0 ? row.r.seconds * 1e9 /
                                              static_cast<double>(row.r.updates)
                                        : 0.0;
    std::printf("%-16s %8.3fs  %10llu updates  %7.1f ns/update  %7ld KB  "
                "aux=%.6f\n",
                row.name.c_str(), row.r.seconds,
                static_cast<unsigned long long>(row.r.updates), ns,
                row.r.peak_rss_kb, row.r.aux);
  }
  std::printf("crawl observer overhead: %.3fx\nwrote %s\n", observer_overhead,
              opt.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace btpub

int main(int argc, char** argv) { return btpub::run(argc, argv); }
