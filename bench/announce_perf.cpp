// announce_perf — machine-readable perf baseline for the announce fast
// path. Times the full steady-state announce round trip (struct-level
// announce_into and, for reference, the HTTP-string shim) at several
// thread counts and writes the numbers to a JSON file so CI can archive a
// perf trajectory across PRs.
//
// Threading mirrors the crawler: the tracker is shared, every worker owns
// its torrent (one swarm per thread — concurrent announces for the same
// infohash are unsupported by the sweep) plus its reply/scratch buffers.
//
// Usage: announce_perf [--json PATH] [--iters N] [--peers N] [--quick]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "crypto/sha1.hpp"
#include "tracker/tracker.hpp"

namespace btpub {
namespace {

struct Options {
  std::string json_path = "BENCH_announce.json";
  // Per-thread announce count. 3000 fits inside one swarm lifetime at the
  // enforced gap, so a client only has to rotate on wrap, like the crawl.
  std::size_t iters = 60000;
  std::size_t peers = 5000;
};

struct Result {
  std::string mode;
  std::size_t threads = 0;
  std::size_t announces = 0;
  double seconds = 0.0;
  double ns_per_announce() const { return seconds * 1e9 / double(announces); }
  double ops_per_sec() const { return double(announces) / seconds; }
};

Swarm make_swarm(const std::string& tag, std::size_t peers) {
  Swarm swarm(Sha1::hash(tag), 1024, 0);
  for (std::uint32_t i = 0; i < peers; ++i) {
    PeerSession s;
    s.endpoint = Endpoint{IpAddress(0x0D000000 + i), 6881};
    s.arrive = static_cast<SimTime>(i % 1000);
    s.depart = days(30);
    if (i % 7 == 0) s.complete_at = s.arrive + hours(2);
    swarm.add_session(s);
  }
  swarm.finalize();
  return swarm;
}

/// One worker's announce loop; `http` selects the wire-format shim.
void run_worker(Tracker& tracker, const Sha1Digest& infohash,
                std::uint32_t client_base, std::size_t iters, bool http) {
  const SimDuration gap = tracker.enforced_gap() + kSecond;
  AnnounceRequest request;
  request.infohash = infohash;
  request.client = Endpoint{IpAddress(client_base), 6881};
  request.numwant = 200;
  AnnounceReply reply;
  Tracker::AnnounceScratch scratch;
  SimTime now = hours(1);
  for (std::size_t i = 0; i < iters; ++i) {
    if (now > days(29)) {  // fresh client before the rewind trips the limiter
      now = hours(1);
      request.client.ip = IpAddress(request.client.ip.value() + 1);
    }
    request.now = now;
    now += gap;
    if (http) {
      reply = decode_announce_reply(tracker.handle_get(to_query_string(request)));
    } else {
      tracker.announce_into(request, reply, scratch);
    }
    if (reply.ok == (reply.peers.size() > 1u << 30)) std::abort();  // keep live
  }
}

Result run_case(const std::string& mode, std::size_t threads,
                const Options& opt) {
  Tracker tracker(TrackerConfig{}, Rng(1));
  std::vector<Swarm> swarms;
  swarms.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    swarms.push_back(make_swarm("announce_perf_" + std::to_string(t), opt.peers));
  }
  for (Swarm& swarm : swarms) tracker.host_swarm(swarm);  // build-time only

  const bool http = mode == "http";
  const auto t0 = std::chrono::steady_clock::now();
  if (threads == 1) {
    run_worker(tracker, swarms[0].infohash(), 0x0E000000, opt.iters, http);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        run_worker(tracker, swarms[t].infohash(),
                   0x0E000000 + static_cast<std::uint32_t>(t) * 0x10000,
                   opt.iters, http);
      });
    }
    for (std::thread& w : workers) w.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  Result r;
  r.mode = mode;
  r.threads = threads;
  r.announces = opt.iters * threads;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

void write_json(const std::string& path, const Options& opt,
                const std::vector<Result>& results) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "announce_perf: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\n  \"benchmark\": \"announce_round_trip\",\n";
  out << "  \"config\": {\"peers_per_swarm\": " << opt.peers
      << ", \"numwant\": 200, \"iters_per_thread\": " << opt.iters << "},\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    char line[256];
    std::snprintf(line, sizeof line,
                  "    {\"mode\": \"%s\", \"threads\": %zu, \"announces\": %zu, "
                  "\"seconds\": %.4f, \"ns_per_announce\": %.1f, "
                  "\"ops_per_sec\": %.0f}%s\n",
                  r.mode.c_str(), r.threads, r.announces, r.seconds,
                  r.ns_per_announce(), r.ops_per_sec(),
                  i + 1 < results.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
}

int run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "announce_perf: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") {
      opt.json_path = next();
    } else if (arg == "--iters") {
      opt.iters = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--peers") {
      opt.peers = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--quick") {
      opt.iters = 5000;
    } else {
      std::fprintf(stderr,
                   "usage: announce_perf [--json PATH] [--iters N] [--peers N] "
                   "[--quick]\n");
      return 2;
    }
  }

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw >= 8) thread_counts.push_back(8);

  std::vector<Result> results;
  for (const char* mode : {"struct", "http"}) {
    for (const std::size_t threads : thread_counts) {
      results.push_back(run_case(mode, threads, opt));
      const Result& r = results.back();
      std::printf("%-6s %2zu thread(s): %9.0f announces/s  (%.0f ns/announce)\n",
                  r.mode.c_str(), r.threads, r.ops_per_sec(),
                  r.ns_per_announce());
    }
  }
  write_json(opt.json_path, opt, results);
  std::printf("wrote %s\n", opt.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace btpub

int main(int argc, char** argv) { return btpub::run(argc, argv); }
