// netio_udp_wire_test — the BEP 15 serving path over real loopback
// sockets: byte-identity of socket-served announces against the direct
// announce_into fast path, scrape correctness, and a fuzz sweep of
// malformed datagrams (truncated, bad action, stale connection id,
// oversized numwant, random bytes) that must never kill the daemon.
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "netio/loadgen.hpp"
#include "netio/serve.hpp"
#include "netio/socket.hpp"
#include "tracker/tracker.hpp"
#include "tracker/udp.hpp"
#include "tracker/udp_server.hpp"
#include "util/rng.hpp"

namespace btpub::netio {
namespace {

constexpr std::uint64_t kSeed = 97;
constexpr std::size_t kSwarms = 4;
constexpr std::size_t kPeers = 200;
const SimTime kFrozen = hours(2);

ServeConfig test_config() {
  ServeConfig config;
  config.shards = 1;
  config.swarms = kSwarms;
  config.peers_per_swarm = kPeers;
  config.seed = kSeed;
  config.enable_http = false;
  config.fixed_time = kFrozen;
  return config;
}

/// A blocking-ish client: connected UDP socket + poll with a deadline.
class WireClient {
 public:
  explicit WireClient(std::uint16_t port)
      : fd_(make_udp_client_socket("127.0.0.1", port)) {}

  void send_raw(std::string_view datagram) {
    ASSERT_EQ(send(fd_.get(), datagram.data(), datagram.size(), 0),
              static_cast<ssize_t>(datagram.size()));
  }

  std::optional<std::string> recv_one(int timeout_ms = 2000) {
    pollfd p{fd_.get(), POLLIN, 0};
    if (poll(&p, 1, timeout_ms) <= 0) return std::nullopt;
    char buf[4096];
    const ssize_t n = recv(fd_.get(), buf, sizeof buf, 0);
    if (n < 0) return std::nullopt;
    return std::string(buf, static_cast<std::size_t>(n));
  }

  std::uint64_t connect_handshake(std::uint32_t tid = 1) {
    UdpConnectRequest request{tid};
    send_raw(request.encode());
    const auto raw = recv_one();
    EXPECT_TRUE(raw.has_value());
    const auto response = UdpConnectResponse::decode(*raw);
    EXPECT_TRUE(response.has_value());
    EXPECT_EQ(response->transaction_id, tid);
    return response->connection_id;
  }

 private:
  FdHandle fd_;
};

/// The daemon's world and tracker, rebuilt in-process: same seed, same
/// config — replies must match the wire byte for byte.
struct LocalReplica {
  std::vector<Swarm> world;
  Tracker tracker;

  LocalReplica()
      : world(build_serve_world(kSeed, kSwarms, kPeers)),
        tracker(replica_config(), Rng(derive_seed(kSeed, kTrackerSeedTag))) {
    for (Swarm& swarm : world) tracker.host_swarm(swarm);
  }

  static TrackerConfig replica_config() {
    TrackerConfig config;
    config.min_query_gap = 0;
    config.max_query_gap = 0;
    return config;
  }

  // Matches serve.cpp's tracker seed derivation; the test breaks loudly if
  // the daemon changes its seeding scheme (that would silently break
  // shard-replica byte-identity too).
  static constexpr std::uint64_t kTrackerSeedTag = 0x6e657453'65727665ULL;
};

TEST(NetioUdpWire, AnnounceBytesMatchDirectFastPath) {
  ServeDaemon daemon(test_config());
  daemon.start();
  WireClient client(daemon.udp_port());
  const std::uint64_t cid = client.connect_handshake();

  LocalReplica replica;
  AnnounceReply reply;
  Tracker::AnnounceScratch scratch;

  for (std::size_t s = 0; s < kSwarms; ++s) {
    UdpAnnounceRequest announce;
    announce.connection_id = cid;
    announce.transaction_id = 100 + static_cast<std::uint32_t>(s);
    announce.infohash = serve_swarm_infohash(kSeed, s);
    announce.ip = 0x0B010000u + static_cast<std::uint32_t>(s);
    announce.port = 6881;
    announce.num_want = 50;
    client.send_raw(announce.encode());
    const auto wire = client.recv_one();
    ASSERT_TRUE(wire.has_value());

    AnnounceRequest direct;
    direct.infohash = announce.infohash;
    direct.client = Endpoint{IpAddress(announce.ip), announce.port};
    direct.numwant = announce.num_want;
    direct.now = kFrozen;
    replica.tracker.announce_into(direct, reply, scratch);
    ASSERT_TRUE(reply.ok);
    std::string expected;
    UdpTrackerEndpoint::encode_announce_response_into(
        announce.transaction_id, reply, expected);
    EXPECT_EQ(*wire, expected) << "swarm " << s;
  }

  daemon.request_stop();
  daemon.join();
}

TEST(NetioUdpWire, ScrapeCountsHostedAndUnhostedRows) {
  ServeDaemon daemon(test_config());
  daemon.start();
  WireClient client(daemon.udp_port());
  const std::uint64_t cid = client.connect_handshake();

  UdpScrapeRequest scrape;
  scrape.connection_id = cid;
  scrape.transaction_id = 9;
  scrape.infohashes = {serve_swarm_infohash(kSeed, 0),
                       Sha1::hash("not a served swarm")};
  client.send_raw(scrape.encode());
  const auto wire = client.recv_one();
  ASSERT_TRUE(wire.has_value());
  const auto response = UdpScrapeResponse::decode(*wire);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->transaction_id, 9u);
  ASSERT_EQ(response->entries.size(), 2u);
  // Every served peer is present at the frozen time; ~1/7 completed.
  EXPECT_GT(response->entries[0].seeders, 0u);
  EXPECT_GT(response->entries[0].leechers, 0u);
  EXPECT_EQ(response->entries[0].seeders + response->entries[0].leechers,
            kPeers);
  EXPECT_EQ(response->entries[1], UdpScrapeEntry{});

  daemon.request_stop();
  daemon.join();
}

TEST(NetioUdpWire, ShortDatagramsAreDroppedNotAnswered) {
  ServeDaemon daemon(test_config());
  daemon.start();
  {
    WireClient client(daemon.udp_port());
    const std::string valid = UdpConnectRequest{5}.encode();
    // All 16 too-short prefixes, then one valid connect: the only reply
    // must be the connect response (everything shorter was dropped).
    for (std::size_t len = 0; len < 16; ++len) {
      client.send_raw(std::string_view(valid).substr(0, len));
    }
    client.send_raw(valid);
    const auto raw = client.recv_one();
    ASSERT_TRUE(raw.has_value());
    const auto response = UdpConnectResponse::decode(*raw);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->transaction_id, 5u);
    EXPECT_FALSE(client.recv_one(200).has_value());
  }
  daemon.request_stop();
  daemon.join();
  const ServeStats stats = daemon.stats();
  EXPECT_EQ(stats.dropped_short, 16u);
  EXPECT_EQ(stats.responses_tx, stats.datagrams_rx - stats.dropped_short);
}

TEST(NetioUdpWire, TruncatedAnnouncesGetErrorReplies) {
  ServeDaemon daemon(test_config());
  daemon.start();
  WireClient client(daemon.udp_port());
  const std::uint64_t cid = client.connect_handshake();

  UdpAnnounceRequest announce;
  announce.connection_id = cid;
  announce.transaction_id = 77;
  announce.infohash = serve_swarm_infohash(kSeed, 0);
  announce.port = 6881;
  const std::string full = announce.encode();
  ASSERT_EQ(full.size(), 98u);

  // Every truncation in [16, 98) must be answered (with an error — a
  // truncated announce can never decode) and must not kill the daemon.
  std::size_t sent = 0;
  for (std::size_t len = 16; len < full.size(); ++len) {
    client.send_raw(std::string_view(full).substr(0, len));
    ++sent;
    const auto raw = client.recv_one();
    ASSERT_TRUE(raw.has_value()) << "no reply at length " << len;
    EXPECT_EQ(udp_response_action(*raw), UdpAction::Error);
  }
  EXPECT_EQ(sent, 82u);

  daemon.request_stop();
  daemon.join();
}

TEST(NetioUdpWire, MalformedAndHostileDatagramsNeverCrashTheDaemon) {
  ServeDaemon daemon(test_config());
  daemon.start();
  WireClient client(daemon.udp_port());
  const std::uint64_t cid = client.connect_handshake();

  // Bad action value.
  {
    std::string bad(16, '\0');
    bad[11] = 99;  // action field (offset 8..11), not a known action
    client.send_raw(bad);
    const auto raw = client.recv_one();
    ASSERT_TRUE(raw.has_value());
    const auto error = UdpErrorResponse::decode(*raw);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->message, "malformed datagram");
  }

  // Stale / fabricated connection id.
  {
    UdpAnnounceRequest announce;
    announce.connection_id = cid ^ 0xDEADBEEFULL;
    announce.transaction_id = 13;
    announce.infohash = serve_swarm_infohash(kSeed, 1);
    announce.port = 6881;
    client.send_raw(announce.encode());
    const auto raw = client.recv_one();
    ASSERT_TRUE(raw.has_value());
    const auto error = UdpErrorResponse::decode(*raw);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->transaction_id, 13u);
    EXPECT_EQ(error->message, "invalid connection id");
  }

  // Oversized numwant: clamped to the tracker's max, never a huge reply.
  {
    UdpAnnounceRequest announce;
    announce.connection_id = cid;
    announce.transaction_id = 14;
    announce.infohash = serve_swarm_infohash(kSeed, 1);
    announce.ip = 0x0B020304u;
    announce.port = 6881;
    announce.num_want = 0xFFFFFFFEu;  // huge, but not the ~0 sentinel
    client.send_raw(announce.encode());
    const auto raw = client.recv_one();
    ASSERT_TRUE(raw.has_value());
    const auto response = UdpAnnounceResponse::decode(*raw);
    ASSERT_TRUE(response.has_value());
    EXPECT_LE(response->peers.size(), TrackerConfig{}.max_numwant);
  }

  // 200 random-byte datagrams of random lengths.
  {
    Rng rng(123);
    for (int i = 0; i < 200; ++i) {
      std::string noise(16 + rng.next() % 104, '\0');
      for (char& c : noise) c = static_cast<char>(rng.next());
      client.send_raw(noise);
      ASSERT_TRUE(client.recv_one().has_value()) << "datagram " << i;
    }
  }

  // The daemon is still fully functional afterwards.
  {
    UdpAnnounceRequest announce;
    announce.connection_id = cid;
    announce.transaction_id = 15;
    announce.infohash = serve_swarm_infohash(kSeed, 2);
    announce.ip = 0x0B030303u;
    announce.port = 6881;
    announce.num_want = 10;
    client.send_raw(announce.encode());
    const auto raw = client.recv_one();
    ASSERT_TRUE(raw.has_value());
    const auto response = UdpAnnounceResponse::decode(*raw);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->transaction_id, 15u);
    EXPECT_EQ(response->peers.size(), 10u);
  }

  daemon.request_stop();
  daemon.join();
  EXPECT_GT(daemon.stats().malformed, 0u);
}

TEST(NetioUdpWire, LatencyHistogramBucketsAndPercentiles) {
  LatencyHistogram hist;
  for (std::uint64_t v = 1; v <= 1000; ++v) hist.record(v * 1000);
  EXPECT_EQ(hist.total(), 1000u);
  // Buckets are ~12.5% wide: percentiles land within one bucket of truth.
  EXPECT_NEAR(static_cast<double>(hist.percentile_ns(0.5)), 500e3, 70e3);
  EXPECT_NEAR(static_cast<double>(hist.percentile_ns(0.99)), 990e3, 130e3);
  EXPECT_LE(hist.percentile_ns(0.0), 1500u);

  LatencyHistogram other;
  other.record(42);
  other.merge(hist);
  EXPECT_EQ(other.total(), 1001u);
}

}  // namespace
}  // namespace btpub::netio
