// Announce fast-path contract tests:
//   * golden response bytes for a fixed (seed, query) pair — the
//     zero-allocation refactor must not move a single byte on the wire;
//   * the streaming bencode::Writer encoding matches the canonical
//     tree-based encoder for both reply forms;
//   * announce_into() is observably identical to announce();
//   * the steady-state announce_into + encode round trip performs zero
//     heap allocations once buffers are warm (counted via global
//     operator new instrumentation, local to this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "bencode/bencode.hpp"
#include "crypto/sha1.hpp"
#include "net/compact.hpp"
#include "tracker/tracker.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

// Counting global allocator: every operator-new form funnels through here.
// gtest and the fixtures allocate freely; only the delta across the
// measured steady-state section must be zero.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = ((size ? size : 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace btpub {
namespace {

PeerSession session(std::uint32_t ip, SimTime arrive, SimTime depart,
                    bool seeder = false) {
  PeerSession s;
  s.endpoint = Endpoint{IpAddress(ip), 6881};
  s.arrive = arrive;
  s.depart = depart;
  if (seeder) s.complete_at = arrive;
  return s;
}

Swarm make_golden_swarm(SimTime depart = 100000) {
  Swarm swarm(Sha1::hash("golden"), 64, 0);
  swarm.add_session(session(1, 0, depart, /*seeder=*/true));
  for (std::uint32_t i = 2; i <= 300; ++i) {
    swarm.add_session(session(i, 0, depart));
  }
  swarm.finalize();
  return swarm;
}

// Captured from the pre-fast-path implementation (PR 1 tree): the exact
// query string and the SHA-1 of the exact response body for this fixed
// (tracker seed, swarm, client, time) tuple. If either expectation moves,
// the wire format changed — that is a protocol break, not a refactor.
TEST(AnnounceGolden, FixedSeedQueryBytesUnchanged) {
  Swarm swarm = make_golden_swarm();
  Tracker tracker(TrackerConfig{}, Rng(5));
  tracker.host_swarm(swarm);

  AnnounceRequest request;
  request.infohash = swarm.infohash();
  request.client = Endpoint{IpAddress(10, 0, 0, 8), 6881};
  request.numwant = 200;
  request.now = 10;

  const std::string query = to_query_string(request);
  EXPECT_EQ(query,
            "/announce?info_hash=%EC0%AD%C7%9EsI%00C%0EAt%CF%0A6%C2%D0%C4%22r"
            "&ip=10.0.0.8&port=6881&numwant=200&t=10");

  const std::string body = tracker.handle_get(query);
  EXPECT_EQ(body.size(), 1260u);
  EXPECT_EQ(Sha1::hash(body).hex(),
            "b9c7f4a9df9c5217b724ea360f5117ece797f841");
}

// The writer-based encoder must emit byte-for-byte what the canonical
// tree encoder (bencode::Value over std::map) produces.
TEST(AnnounceEncode, WriterMatchesTreeEncoderSuccess) {
  AnnounceReply reply;
  reply.ok = true;
  reply.interval = minutes(11);
  reply.complete = 2;
  reply.incomplete = 41;
  for (std::uint32_t i = 0; i < 37; ++i) {
    reply.peers.push_back(Endpoint{IpAddress(0x51000000 + i * 977),
                                   static_cast<std::uint16_t>(1024 + i)});
  }

  bencode::Dict dict;
  dict.emplace("interval", static_cast<std::int64_t>(reply.interval));
  dict.emplace("complete", static_cast<std::int64_t>(reply.complete));
  dict.emplace("incomplete", static_cast<std::int64_t>(reply.incomplete));
  dict.emplace("peers", encode_compact_peers(reply.peers));
  const std::string tree = bencode::encode(bencode::Value(std::move(dict)));

  EXPECT_EQ(encode_announce_reply(reply), tree);
}

TEST(AnnounceEncode, WriterMatchesTreeEncoderFailure) {
  AnnounceReply reply;
  reply.ok = false;
  reply.failure_reason = "unregistered torrent";

  bencode::Dict dict;
  dict.emplace("failure reason", reply.failure_reason);
  const std::string tree = bencode::encode(bencode::Value(std::move(dict)));

  EXPECT_EQ(encode_announce_reply(reply), tree);
}

TEST(AnnounceEncode, IntoReusesBufferAndClearsStaleBytes) {
  AnnounceReply big;
  big.ok = true;
  big.interval = 600;
  for (std::uint32_t i = 0; i < 120; ++i) {
    big.peers.push_back(Endpoint{IpAddress(i + 1), 6881});
  }
  AnnounceReply small;
  small.ok = false;
  small.failure_reason = "slow down";

  std::string buffer;
  encode_announce_reply_into(big, buffer);
  EXPECT_EQ(buffer, encode_announce_reply(big));
  encode_announce_reply_into(small, buffer);  // shrinking reuse, no stale tail
  EXPECT_EQ(buffer, encode_announce_reply(small));
}

TEST(AnnounceFastPath, AnnounceIntoMatchesAnnounce) {
  Swarm swarm = make_golden_swarm();
  Tracker tracker(TrackerConfig{}, Rng(5));
  tracker.host_swarm(swarm);
  const SimDuration gap = tracker.enforced_gap() + kSecond;

  // Two trackers would draw distinct sample seeds, so compare the two
  // entry points on one tracker at distinct query times: sampling is a
  // pure function of (seed, infohash, time, client), never of call order.
  Tracker::AnnounceScratch scratch;
  AnnounceReply reused;
  for (int i = 0; i < 5; ++i) {
    AnnounceRequest request;
    request.infohash = swarm.infohash();
    request.client = Endpoint{IpAddress(10, 1, 0, static_cast<std::uint8_t>(i)),
                              6881};
    request.numwant = 50;
    request.now = 100 + static_cast<SimTime>(i) * gap;
    tracker.announce_into(request, reused, scratch);

    AnnounceRequest again = request;
    again.client.ip = IpAddress(10, 2, 0, static_cast<std::uint8_t>(i));
    const AnnounceReply fresh = tracker.announce(again);
    ASSERT_TRUE(reused.ok);
    ASSERT_TRUE(fresh.ok);
    EXPECT_EQ(reused.complete, fresh.complete);
    EXPECT_EQ(reused.incomplete, fresh.incomplete);
    EXPECT_EQ(reused.interval, fresh.interval);
    EXPECT_EQ(reused.peers.size(), 50u);
  }

  // Failure forms fully overwrite the reused reply, too.
  AnnounceRequest unknown;
  unknown.infohash = Sha1::hash("not hosted");
  unknown.client = Endpoint{IpAddress(10, 3, 0, 1), 6881};
  unknown.now = days(1);
  tracker.announce_into(unknown, reused, scratch);
  EXPECT_FALSE(reused.ok);
  EXPECT_EQ(reused.failure_reason, "unregistered torrent");
  EXPECT_TRUE(reused.peers.empty());
  EXPECT_EQ(reused.complete, 0u);
  EXPECT_EQ(reused.incomplete, 0u);
}

TEST(AnnounceFastPath, SampledRepliesIdenticalToLegacySampling) {
  // The scratch-based sampler must consume the RNG identically and return
  // the same peers in the same order as the allocating overload.
  Swarm a = make_golden_swarm();
  Swarm b = make_golden_swarm();
  for (SimTime t : {SimTime{10}, SimTime{500}, SimTime{99999}}) {
    Rng rng_a(derive_seed(7, static_cast<std::uint64_t>(t)));
    Rng rng_b(derive_seed(7, static_cast<std::uint64_t>(t)));
    const auto legacy = a.sample_peers(t, 40, rng_a);
    std::vector<const PeerSession*> out;
    Swarm::SampleScratch scratch;
    b.sample_peers(t, 40, rng_b, out, scratch);
    ASSERT_EQ(legacy.size(), out.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      EXPECT_EQ(legacy[i]->endpoint, out[i]->endpoint) << "index " << i;
    }
    // And the generators must be in lockstep afterwards.
    EXPECT_EQ(rng_a.next(), rng_b.next());
  }
}

TEST(AnnounceFastPath, SteadyStateAnnounceIsAllocationFree) {
  Swarm swarm = make_golden_swarm(days(30));
  Tracker tracker(TrackerConfig{}, Rng(5));
  tracker.host_swarm(swarm);
  const SimDuration gap = tracker.enforced_gap() + kSecond;

  AnnounceRequest request;
  request.infohash = swarm.infohash();
  request.client = Endpoint{IpAddress(10, 0, 0, 9), 6881};
  request.numwant = 200;

  AnnounceReply reply;
  Tracker::AnnounceScratch scratch;
  std::string body;

  // Warm-up: grows reply.peers / scratch / encode buffer capacities, seats
  // the client's rate-limit entry and sweeps the swarm to full presence.
  SimTime now = hours(1);
  for (int i = 0; i < 50; ++i, now += gap) {
    request.now = now;
    tracker.announce_into(request, reply, scratch);
    encode_announce_reply_into(reply, body);
    ASSERT_TRUE(reply.ok);
  }

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i, now += gap) {
    request.now = now;
    tracker.announce_into(request, reply, scratch);
    encode_announce_reply_into(reply, body);
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "steady-state announce_into + encode performed heap allocations";
  EXPECT_TRUE(reply.ok);
  EXPECT_EQ(reply.peers.size(), 200u);
}

}  // namespace
}  // namespace btpub
